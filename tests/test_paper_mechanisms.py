"""Tests that pin the paper's *mechanism* claims, figure by figure.

These are quantitative checks of the illustrative figures (1-6), not the
evaluation figures (7-11, which live in benchmarks/): redundant halo
computation, fusion's conv-chain limitation, merged execution's
synchronization structure, and mixed-precision memory behavior.
"""

import numpy as np

from repro.baselines import fuse_graph
from repro.bench.harness import run_brickdl
from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec

from testlib import input_for


def fig1_graph(length=64, channels=2):
    """The paper's Fig. 1: a subgraph with two 1-D convolutions."""
    b = GraphBuilder("fig1", TensorSpec(1, channels, (length,)))
    b.conv(channels, 3, padding=1, bias=False, name="conv1")
    b.conv(channels, 3, padding=1, bias=False, name="conv2")
    return b.finish()


class TestFig1RedundantComputation:
    """Fig. 1/2(c): padded execution recomputes halo regions; Fig. 1/5:
    memoized execution averts exactly that redundancy."""

    def _flops(self, strategy):
        row, _ = run_brickdl(fig1_graph(), strategy=strategy, brick=8,
                             layer_schedule=(2,))
        return row

    def test_padded_recomputes_memoized_does_not(self):
        padded = self._flops(Strategy.PADDED)
        memo = self._flops(Strategy.MEMOIZED)
        # Identical work modulo the halo pyramid: padded burns more flops.
        assert padded.compute > memo.compute
        # Memoized pays instead in atomics (two compulsory CAS per brick).
        assert memo.atomics_compulsory_count == 2 * memo.num_tasks or \
            memo.atomics_compulsory_count > 0

    def test_memoized_computes_each_brick_once(self):
        g = fig1_graph()
        g.init_weights()
        from repro.core.bricked import BrickedTensor
        from repro.core.handles import BrickedHandle
        from repro.core.memoized import MemoizedBrickExecutor
        from repro.graph.traversal import subgraph_view
        from repro.gpusim.device import Device

        x = input_for(g)
        view = subgraph_view(g, [1, 2])
        dev = Device()
        bt = BrickedTensor.from_dense(x, (8,))
        entry = BrickedHandle(spec=g.node(0).spec, grid=bt.grid,
                              buffer=dev.allocate("in", bt.nbytes), data=bt)
        ex = MemoizedBrickExecutor(view, (8,), dev, {0: entry}, {}, functional=True)
        ex.run()
        total_bricks = sum(h.grid.num_bricks for h in ex.memo.values())
        assert len(dev.tasks) == total_bricks  # exactly once, never thrice

    def test_merged_1d_exact(self):
        g = fig1_graph()
        g.init_weights()
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        for strategy in (Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT):
            res = BrickDLEngine(fig1_graph(), strategy_override=strategy,
                                brick_override=8, layer_schedule=(2,)).run(x)
            np.testing.assert_allclose(res.outputs["conv2"], ref["conv2"], atol=1e-4)


class TestFig2FusionLimitation:
    """Section 2 / Fig. 2(b): operator fusion cannot fuse back-to-back
    convolutions -- only pointwise followers."""

    def test_conv_chain_not_fused(self):
        b = GraphBuilder("t", TensorSpec(1, 4, (16, 16)))
        b.conv(4, 3, padding=1, name="conv1")
        b.conv(4, 3, padding=1, name="conv2")
        g = b.finish()
        groups = fuse_graph(g)
        assert len(groups) == 2  # two kernels, not one

    def test_conv_pointwise_is_fused(self):
        b = GraphBuilder("t", TensorSpec(1, 4, (16, 16)))
        b.conv(4, 3, padding=1, name="conv")
        b.relu(name="relu")
        g = b.finish()
        assert len(fuse_graph(g)) == 1

    def test_merged_execution_does_merge_conv_chains(self):
        """The gap BrickDL fills: one merged subgraph spans both convs."""
        g = fig1_graph()
        plan = BrickDLEngine(g, brick_override=8, layer_schedule=(2,)).compile()
        merged = [s for s in plan.subgraphs if s.is_merged]
        assert len(merged) == 1 and len(merged[0].subgraph) == 2


class TestFig3Synchronization:
    """Fig. 3: per-operator sync for conventional execution vs one sync per
    merged subgraph."""

    def test_sync_counts(self):
        from repro.baselines import CudnnBaseline
        from repro.gpusim.device import Device

        g1 = fig1_graph(length=128)
        dev1 = Device()
        CudnnBaseline(g1).run(functional=False, device=dev1)
        g2 = fig1_graph(length=128)
        eng = BrickDLEngine(g2, strategy_override=Strategy.PADDED, brick_override=8,
                            layer_schedule=(2,))
        dev2 = Device()
        eng.run(inputs=None, functional=False, device=dev2)
        assert dev2._sync_count < dev1._sync_count


class TestMixedPrecision:
    """fp16 halves every activation byte count; the simulator's transaction
    counters must reflect it."""

    def _graph(self, dtype):
        b = GraphBuilder(f"p{np.dtype(dtype).name}", TensorSpec(1, 8, (48, 48), dtype=dtype))
        b.conv(8, 3, padding=1, name="c1")
        b.conv(8, 3, padding=1, name="c2")
        return b.finish()

    def test_fp16_functional(self):
        g = self._graph(np.float16)
        g.init_weights()
        x = np.random.default_rng(0).standard_normal((1, 8, 48, 48)).astype(np.float16)
        out = ReferenceExecutor(g).run(x)
        assert out["c2"].dtype == np.float16

    def test_fp16_halves_brick_bytes(self):
        from repro.core.bricked import BrickedTensor

        x32 = np.zeros((1, 8, 48, 48), np.float32)
        x16 = x32.astype(np.float16)
        assert BrickedTensor.from_dense(x16, (4, 4)).brick_nbytes * 2 == \
            BrickedTensor.from_dense(x32, (4, 4)).brick_nbytes

    def test_fp16_reduces_dram_traffic(self):
        res32 = BrickDLEngine(self._graph(np.float32), strategy_override=Strategy.MEMOIZED,
                              brick_override=4, layer_schedule=(2,)).run(
                              inputs=None, functional=False)
        res16 = BrickDLEngine(self._graph(np.float16), strategy_override=Strategy.MEMOIZED,
                              brick_override=4, layer_schedule=(2,)).run(
                              inputs=None, functional=False)
        ratio = res16.metrics.memory.dram_txns / res32.metrics.memory.dram_txns
        assert 0.35 < ratio < 0.75  # ~half the bytes, same weight structure
