"""Memoization-protocol checkers: small-model exploration and trace replay.

The seeded-mutation tests are the checker's own coverage proof (satellite
4): protocol variants with a deliberately broken tag transition must be
caught by the explorer, and a deliberately corrupted task trace must be
caught by the replay pass.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import (
    GridModel,
    ProtocolModel,
    explore_protocol,
    replay_tasks_from_chrome_trace,
    replay_trace,
)
from repro.bench.harness import adapt_sectors
from repro.core.engine import BrickDLEngine
from repro.gpusim.device import Device
from repro.gpusim.spec import A100
from repro.models import build
from repro.profiling import TraceCollector, chrome_trace


class TestExplorer:
    def test_correct_protocol_is_clean(self):
        report = explore_protocol(GridModel(), ProtocolModel())
        assert report.ok, report.summary("default grid")
        assert not report.by_code("protocol.truncated")

    def test_correct_protocol_three_workers(self):
        report = explore_protocol(GridModel(workers=3), ProtocolModel())
        assert report.ok, report.summary("3 workers")

    def test_correct_protocol_longer_compute(self):
        report = explore_protocol(GridModel(compute_turns=2), ProtocolModel())
        assert report.ok, report.summary("compute_turns=2")

    def test_dropped_release_is_caught(self):
        """Remove the 1->2 release CAS: consumers spin on bricks that are
        finished but never tagged COMPLETE."""
        report = explore_protocol(GridModel(), ProtocolModel(release=False))
        codes = {d.code for d in report.errors}
        assert codes & {"protocol.stall-deadlock", "protocol.lost-release"}, codes

    def test_nonatomic_acquire_is_caught(self):
        """Split the 0->1 acquire CAS into read-then-write: two workers can
        both observe tag 0 and both compute the brick."""
        report = explore_protocol(GridModel(), ProtocolModel(atomic_acquire=False))
        assert report.by_code("protocol.double-compute")

    def test_counterexample_interleaving_attached(self):
        report = explore_protocol(GridModel(), ProtocolModel(atomic_acquire=False))
        diag = report.by_code("protocol.double-compute")[0]
        assert isinstance(diag.detail, list) and diag.detail, diag
        assert all(0 <= w < GridModel().workers for w in diag.detail)

    def test_truncation_is_reported(self):
        report = explore_protocol(GridModel(), ProtocolModel(), max_states=10)
        warned = report.by_code("protocol.truncated")
        assert warned and report.ok  # truncation warns, never errors


def _traced_run(name="resnet50"):
    graph = build(name, reduced=True)
    engine = BrickDLEngine(graph)
    plan = engine.compile()
    device = Device(adapt_sectors(A100, plan))
    trace = device.attach(TraceCollector())
    engine.run(inputs=None, functional=False, device=device, plan=plan)
    return plan, trace


@pytest.fixture(scope="module")
def resnet_run():
    return _traced_run()


class TestReplay:
    def test_real_run_is_clean(self, resnet_run):
        plan, trace = resnet_run
        report = replay_trace(plan, trace.records)
        assert report.ok, report.summary("resnet50 replay")
        assert any(r.brick is not None for r in trace.records)

    def test_chrome_trace_roundtrip(self, resnet_run):
        plan, trace = resnet_run
        tasks = replay_tasks_from_chrome_trace(chrome_trace(trace))
        assert tasks
        report = replay_trace(plan, tasks)
        assert report.ok, report.summary("chrome roundtrip")

    def _memo_records(self, trace):
        return [r for r in trace.records
                if r.strategy == "memoized" and r.brick is not None]

    def test_duplicated_task_is_caught(self, resnet_run):
        plan, trace = resnet_run
        dup = self._memo_records(trace)[0]
        records = list(trace.records) + [replace(dup, seq=len(trace.records))]
        report = replay_trace(plan, records)
        assert report.by_code("replay.double-compute")

    def test_missing_exit_brick_is_caught(self, resnet_run):
        plan, trace = resnet_run
        memo = self._memo_records(trace)
        exit_ids = {eid for sub in plan.subgraphs if sub.strategy.value == "memoized"
                    for eid in sub.subgraph.exit_ids}
        victim = next(r for r in memo if r.node_id in exit_ids)
        records = [r for r in trace.records if r is not victim]
        report = replay_trace(plan, records)
        assert report.by_code("replay.missing-brick")

    def test_inverted_order_is_caught(self, resnet_run):
        """Swap a producer's seq with a later consumer's: the read no longer
        happens-after the completion."""
        plan, trace = resnet_run
        memo = self._memo_records(trace)
        # Find a consumer whose producer is another memoized record.
        graph = plan.graph
        swap = None
        for r in memo:
            for pred in graph.node(r.node_id).inputs:
                p = next((q for q in memo if q.node_id == pred
                          and q.batch_index == r.batch_index and q.seq < r.seq), None)
                if p is not None:
                    swap = (p, r)
                    break
            if swap:
                break
        assert swap, "no member-edge producer/consumer pair in trace"
        p, r = swap
        records = [replace(q, seq=r.seq) if q is p else
                   replace(q, seq=p.seq) if q is r else q
                   for q in trace.records]
        report = replay_trace(plan, records)
        assert report.by_code("replay.read-before-produce")

    def test_foreign_brick_is_caught(self, resnet_run):
        plan, trace = resnet_run
        victim = self._memo_records(trace)[0]
        bad = replace(victim, brick=tuple(9999 for _ in victim.brick))
        records = [bad if r is victim else r for r in trace.records]
        report = replay_trace(plan, records)
        codes = {d.code for d in report.errors}
        assert "replay.invalid-brick" in codes

    def test_strict_engine_runs_clean(self):
        graph = build("resnet50", reduced=True)
        engine = BrickDLEngine(graph, strict=True)
        result = engine.run(inputs=None, functional=False)
        assert result.metrics.total_time > 0
