"""Unit tests for the interval/region algebra (repro.graph.regions)."""

import pytest

from repro.errors import ShapeError
from repro.graph.regions import (
    GlobalMap,
    IdentityMap,
    Interval,
    Region,
    StencilMap,
    TransposedMap,
    compose_required,
)


class TestInterval:
    def test_length_and_empty(self):
        assert Interval(2, 5).length == 3
        assert Interval(5, 5).is_empty()
        assert Interval(6, 4).length == 0

    def test_shift(self):
        assert Interval(1, 4).shift(3) == Interval(4, 7)

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 3).intersect(Interval(5, 8)).is_empty()

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(5, 8)) == Interval(0, 8)
        assert Interval(3, 3).hull(Interval(1, 2)) == Interval(1, 2)

    def test_clip(self):
        assert Interval(-3, 12).clip(10) == Interval(0, 10)

    def test_contains(self):
        assert Interval(0, 10).contains(Interval(2, 5))
        assert not Interval(0, 10).contains(Interval(8, 12))
        assert Interval(0, 1).contains(Interval(5, 5))  # empty is contained

    def test_expand(self):
        assert Interval(4, 6).expand(1, 2) == Interval(3, 8)

    def test_iter(self):
        assert list(Interval(2, 5)) == [2, 3, 4]


class TestRegion:
    def test_from_extents(self):
        r = Region.from_extents((4, 6))
        assert r.shape == (4, 6)
        assert r.size == 24

    def test_rank_mismatch(self):
        with pytest.raises(ShapeError):
            Region.from_bounds([0], [1, 2])
        with pytest.raises(ShapeError):
            Region.from_extents((4,)).intersect(Region.from_extents((4, 4)))

    def test_intersect_hull(self):
        a = Region.from_bounds([0, 0], [4, 4])
        b = Region.from_bounds([2, 2], [6, 6])
        assert a.intersect(b) == Region.from_bounds([2, 2], [4, 4])
        assert a.hull(b) == Region.from_bounds([0, 0], [6, 6])

    def test_empty_propagation(self):
        a = Region.from_bounds([0, 5], [4, 5])
        assert a.is_empty()
        b = Region.from_extents((3, 3))
        assert a.hull(b) == b

    def test_slices(self):
        r = Region.from_bounds([2, 3], [5, 7])
        assert r.slices() == (slice(2, 5), slice(3, 7))
        assert r.slices(origin=(2, 3)) == (slice(0, 3), slice(0, 4))

    def test_clip_and_shift(self):
        r = Region.from_bounds([-2, 8], [3, 12]).clip((10, 10))
        assert r == Region.from_bounds([0, 8], [3, 10])
        assert r.shift((1, -1)) == Region.from_bounds([1, 7], [4, 9])


class TestStencilMap:
    def test_conv3_same(self):
        m = StencilMap(stride=1, padding=1, k_eff=3)
        assert m.in_interval(Interval(0, 8)) == Interval(-1, 9)
        assert m.out_extent(8) == 8
        assert m.alpha_beta() == (1, 2)

    def test_strided(self):
        m = StencilMap(stride=2, padding=1, k_eff=3)
        assert m.in_interval(Interval(0, 4)) == Interval(-1, 8)
        assert m.out_extent(8) == 4

    def test_dilated(self):
        # 3-tap kernel with dilation 2 -> k_eff 5.
        m = StencilMap(stride=1, padding=2, k_eff=5)
        assert m.in_interval(Interval(0, 8)) == Interval(-2, 10)
        assert m.out_extent(8) == 8

    def test_identity(self):
        m = IdentityMap()
        assert m.in_interval(Interval(3, 7)) == Interval(3, 7)
        assert m.out_extent(11) == 11

    def test_invalid_params(self):
        with pytest.raises(ShapeError):
            StencilMap(stride=0)
        with pytest.raises(ShapeError):
            StencilMap(k_eff=0)

    def test_local_out_offset_aligned(self):
        m = StencilMap(stride=2, padding=1, k_eff=3)
        iv = m.in_interval(Interval(4, 8))
        assert m.local_out_offset(4, iv.lo) == 0

    def test_local_out_offset_misaligned_raises(self):
        m = StencilMap(stride=2, padding=0, k_eff=3)
        with pytest.raises(ShapeError):
            m.local_out_offset(0, 1)

    def test_out_extent_too_small(self):
        with pytest.raises(ShapeError):
            StencilMap(stride=1, padding=0, k_eff=5).out_extent(3)


class TestTransposedMap:
    def test_forward_extent(self):
        m = TransposedMap(stride=2, padding=1, kernel=4)
        assert m.out_extent(5) == (5 - 1) * 2 + 4 - 2

    def test_in_interval_roundtrip(self):
        # Every output position must be derivable from the input interval.
        m = TransposedMap(stride=2, padding=1, kernel=4)
        out = Interval(3, 9)
        inp = m.in_interval(out)
        for o in out:
            producers = [i for i in inp if 0 <= o - (i * 2 - 1) < 4]
            assert producers, f"output {o} has no producer in {inp}"

    def test_local_out_offset(self):
        m = TransposedMap(stride=2, padding=1, kernel=4)
        out = Interval(4, 8)
        inp = m.in_interval(out)
        off = m.local_out_offset(out.lo, inp.lo)
        assert off >= 0


class TestGlobalMap:
    def test_requires_everything(self):
        m = GlobalMap(extent=17)
        assert m.in_interval(Interval(0, 1)) == Interval(0, 17)
        assert m.out_extent(17) == 1
        assert m.alpha_beta() is None

    def test_extent_mismatch(self):
        with pytest.raises(ShapeError):
            GlobalMap(extent=8).out_extent(9)


class TestComposeRequired:
    def test_two_conv_chain_matches_paper_fig4(self):
        """Two 3x3 convs: brick B needs B+2p then B+4p (paper Fig. 4)."""
        conv = StencilMap(1, 1, 3)
        out = Region.from_bounds([0, 0], [8, 8])
        regions = compose_required([[conv, conv], [conv, conv]], out)
        assert regions[-1].shape == (8, 8)
        assert regions[1].shape == (10, 10)   # B + 2p
        assert regions[0].shape == (12, 12)   # B + 4p

    def test_pointwise_chain_is_identity(self):
        maps = [[IdentityMap(), IdentityMap()]] * 4
        out = Region.from_bounds([4, 4], [8, 8])
        regions = compose_required(maps, out)
        assert all(r == out for r in regions)

    def test_rank_mismatch(self):
        with pytest.raises(ShapeError):
            compose_required([[IdentityMap()]], Region.from_extents((4, 4)))
