"""Fleet scheduling: priority classes, EDF batching, quotas, pool, autoscaler.

The EDF property test (hypothesis) pins the scheduler's ordering
invariant: within any formed batch of an EDF class, requests are in
non-decreasing deadline order -- no admitted request is deadline-inverted
inside its batch.  The head-vs-EDF bit-identity test pins the complementary
serving invariant: batching *order* never changes result bits, only
latency.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import (
    AdmissionQueue,
    Autoscaler,
    AutoscalerConfig,
    DevicePool,
    FleetBatcher,
    InferenceServer,
    PriorityClass,
    ServeConfig,
    TenantQuotaError,
)
from repro.serve.request import InferenceRequest
from repro.serve.scheduler import edf_key

from testlib import input_for, small_chain_graph


def _request(loop, request_id=0, deadline_s=None, model="m", priority="edf"):
    now = loop.time()
    return InferenceRequest(
        request_id=request_id, input=None,
        deadline_s=None if deadline_s is None else now + deadline_s,
        enqueued_s=now, future=loop.create_future(),
        model=model, priority=priority)


EDF = PriorityClass(name="edf", rank=0, batching="edf")
HEAD = PriorityClass(name="head", rank=1, batching="head")


# ---------------------------------------------------------------------------
# EDF ordering property (hypothesis)
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.one_of(st.none(),
                          st.floats(min_value=0.001, max_value=10.0)),
                min_size=1, max_size=24))
def test_edf_batches_never_deadline_inverted(deadline_offsets):
    """Every batch an EDF class forms is sorted by (deadline, arrival)."""

    async def run():
        loop = asyncio.get_running_loop()
        queue = AdmissionQueue([EDF], depth=len(deadline_offsets) + 1)
        for i, offset in enumerate(deadline_offsets):
            queue.put_nowait(_request(loop, i, offset), "edf")
        batcher = FleetBatcher(queue, max_batch=8, max_wait_s=0.0)
        batches = []
        while not queue.empty() or not batches:
            _cls, batch = await batcher.next_batch()
            batches.append(batch)
        return batches

    batches = asyncio.run(run())
    served = [r.request_id for batch in batches for r in batch]
    assert sorted(served) == list(range(len(deadline_offsets)))
    for batch in batches:
        keys = [edf_key(r) for r in batch]
        assert keys == sorted(keys), f"deadline inversion in batch {keys}"


def test_edf_key_orders_deadline_free_last_fifo():
    async def run():
        loop = asyncio.get_running_loop()
        reqs = [_request(loop, 0, None), _request(loop, 1, 5.0),
                _request(loop, 2, None), _request(loop, 3, 1.0)]
        return sorted(reqs, key=edf_key)

    ordered = asyncio.run(run())
    assert [r.request_id for r in ordered] == [3, 1, 0, 2]


# ---------------------------------------------------------------------------
# head vs EDF: identical membership -> identical result bits
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("batching", ["head", "edf"])
def test_batching_mode_does_not_change_bits(batching):
    """A 4-request burst rides batches under either mode; every per-request
    output must be bit-identical to its mode-free single-shot run, so head
    vs EDF can only move latency, never values."""
    graph = small_chain_graph(name="serve_chain")
    config = ServeConfig(devices=1, max_batch=4, max_wait_s=0.2,
                         batching=batching)
    server = InferenceServer(graph, config=config)
    inputs = [input_for(graph, seed=i) for i in range(4)]

    async def run():
        async with server:
            # Decreasing deadlines: EDF reverses arrival order, head keeps it.
            return await asyncio.gather(*[
                server.submit(inputs[i], timeout_s=10.0 - i)
                for i in range(4)])

    responses = asyncio.run(run())
    assert any(r.batch_size > 1 for r in responses)
    from repro.core.engine import BrickDLEngine

    engine = BrickDLEngine(graph, spec=server.spec)
    plan = engine.compile()
    for i, resp in enumerate(responses):
        single = engine.run(inputs[i], functional=True, plan=plan).outputs
        for name, want in single.items():
            assert np.array_equal(resp.outputs[name], want), \
                f"{batching}: request {i} output {name} differs"


# ---------------------------------------------------------------------------
# admission queue and priority scheduling
# ---------------------------------------------------------------------------

def test_admission_queue_depth_is_shared_across_classes():
    async def run():
        loop = asyncio.get_running_loop()
        queue = AdmissionQueue([EDF, HEAD], depth=3)
        queue.put_nowait(_request(loop, 0, 1.0), "edf")
        queue.put_nowait(_request(loop, 1, priority="head"), "head")
        queue.put_nowait(_request(loop, 2, priority="head"), "head")
        with pytest.raises(asyncio.QueueFull):
            queue.put_nowait(_request(loop, 3, 1.0), "edf")
        assert queue.qsize() == 3
        assert queue.class_size("edf") == 1

    asyncio.run(run())


def test_admission_queue_rejects_unknown_class():
    async def run():
        loop = asyncio.get_running_loop()
        queue = AdmissionQueue([EDF], depth=4)
        with pytest.raises(KeyError):
            queue.put_nowait(_request(loop, 0), "nope")

    asyncio.run(run())


def test_pop_filters_by_model_leaving_others_queued():
    async def run():
        loop = asyncio.get_running_loop()
        queue = AdmissionQueue([EDF, HEAD], depth=8)
        queue.put_nowait(_request(loop, 0, 1.0, model="a"), "edf")
        queue.put_nowait(_request(loop, 1, 0.5, model="b"), "edf")
        queue.put_nowait(_request(loop, 2, 0.7, model="b"), "edf")
        got = queue.pop("edf", model="b")
        assert got.request_id == 1  # earliest deadline among model b
        assert queue.class_size("edf") == 2
        assert queue.pop("edf", model="c") is None
        # Head classes filter in arrival order.
        queue.put_nowait(_request(loop, 3, model="a", priority="head"), "head")
        queue.put_nowait(_request(loop, 4, model="b", priority="head"), "head")
        assert queue.pop("head", model="b").request_id == 4

    asyncio.run(run())


def test_higher_rank_class_is_served_first():
    async def run():
        loop = asyncio.get_running_loop()
        queue = AdmissionQueue([EDF, HEAD], depth=8)
        queue.put_nowait(_request(loop, 0, priority="head"), "head")
        queue.put_nowait(_request(loop, 1, priority="head"), "head")
        queue.put_nowait(_request(loop, 2, 1.0), "edf")
        batcher = FleetBatcher(queue, max_batch=8, max_wait_s=0.0)
        cls, batch = await batcher.next_batch()
        return cls.name, [r.request_id for r in batch]

    name, ids = asyncio.run(run())
    assert name == "edf" and ids == [2]


def test_preemption_cuts_lower_class_coalescing_window():
    async def run():
        loop = asyncio.get_running_loop()
        queue = AdmissionQueue([EDF, HEAD], depth=8)
        cuts = []
        batcher = FleetBatcher(queue, max_batch=8, max_wait_s=0.5,
                               on_preempt=lambda c, t, n: cuts.append((c.name, t.name, n)))
        queue.put_nowait(_request(loop, 0, priority="head"), "head")
        task = asyncio.create_task(batcher.next_batch())
        await asyncio.sleep(0.02)   # batcher is now coalescing the head class
        queue.put_nowait(_request(loop, 1, 1.0), "edf")
        cls, batch = await asyncio.wait_for(task, timeout=1.0)
        assert cls.name == "head" and len(batch) == 1
        assert batcher.preemptions == 1
        assert cuts == [("head", "edf", 1)]
        cls2, batch2 = await batcher.next_batch()
        assert cls2.name == "edf" and batch2[0].request_id == 1

    asyncio.run(run())


# ---------------------------------------------------------------------------
# tenant quotas
# ---------------------------------------------------------------------------

def test_tenant_quota_sheds_flood_but_not_other_tenants():
    graph = small_chain_graph(name="serve_chain")
    config = ServeConfig(devices=1, max_batch=4, max_wait_s=0.02,
                         functional=False, default_tenant_quota=2)
    server = InferenceServer(graph, config=config)

    async def run():
        async with server:
            results = await asyncio.gather(
                *[server.submit(None, tenant="greedy") for _ in range(4)],
                server.submit(None, tenant="polite"),
                return_exceptions=True)
        return results

    results = asyncio.run(run())
    quota_errors = [r for r in results if isinstance(r, TenantQuotaError)]
    assert len(quota_errors) == 2
    assert all(e.tenant == "greedy" for e in quota_errors)
    assert not isinstance(results[-1], Exception)   # polite tenant admitted
    stats = server.stats()
    assert stats["tenants"]["greedy"]["shed"] == 2
    assert stats["tenants"]["greedy"]["completed"] == 2
    assert stats["tenants"]["polite"]["shed"] == 0
    shed = server.registry.counter("serve_requests_shed", reason="quota",
                                   tenant="greedy",
                                   **{"class": "standard"})
    assert shed.value == 2


# ---------------------------------------------------------------------------
# device pool
# ---------------------------------------------------------------------------

async def _idle_worker(index, queue):
    while True:
        item = await queue.get()
        if item is None:
            return


def test_device_pool_retires_idle_device_and_skips_stale_token():
    async def run():
        pool = DevicePool(_idle_worker)
        a = pool.spawn()
        b = pool.spawn()
        assert pool.size == 2
        first = await pool.acquire()   # FIFO rotation: oldest first
        assert first == a and pool.busy == 1
        retired = pool.retire_one()
        assert retired == b            # LIFO retirement: newest goes first
        assert pool.size == 1
        # b was idle: its sentinel lands now and its task exits.
        await asyncio.wait_for(pool._tasks[b], timeout=1.0)
        pool.release(a)
        # Idle queue now holds [b (dead token), a]; acquire must skip b.
        index = await asyncio.wait_for(pool.acquire(), timeout=1.0)
        assert index == a
        pool.release(a)
        for t in pool.tasks():
            t.cancel()

    asyncio.run(run())


def test_device_pool_busy_device_finishes_before_retiring():
    served = []

    async def worker(index, queue):
        while True:
            item = await queue.get()
            if item is None:
                return
            served.append(item)
            pool.release(index)

    async def run():
        nonlocal pool
        pool = DevicePool(worker)
        a = pool.spawn()
        index = await pool.acquire()
        assert index == a and pool.busy == 1
        pool.retire_one()              # busy: retirement is deferred
        pool.dispatch(index, "batch-1")
        await asyncio.sleep(0.01)
        assert served == ["batch-1"]   # in-flight work completed
        await asyncio.wait_for(asyncio.gather(*pool.tasks()), timeout=1.0)
        assert pool.size == 0

    pool = None
    asyncio.run(run())


# ---------------------------------------------------------------------------
# autoscaler control law
# ---------------------------------------------------------------------------

def test_autoscaler_hysteresis_cooldown_and_bounds():
    async def run():
        pool = DevicePool(_idle_worker)
        pool.spawn()
        signals = {"depth": 0, "burn": 0.0}
        config = AutoscalerConfig(min_devices=1, max_devices=3,
                                  interval_s=1.0, hysteresis_ticks=2,
                                  cooldown_s=5.0,
                                  scale_up_queue_per_device=4.0,
                                  scale_down_queue_per_device=0.5)
        scaler = Autoscaler(config, pool,
                            lambda: (signals["depth"], signals["burn"]))
        signals["depth"] = 10
        assert scaler.tick(1.0) is None          # 1 hot tick: hysteresis holds
        event = scaler.tick(2.0)                 # 2nd hot tick: scale up
        assert event.direction == "up" and pool.size == 2
        assert scaler.tick(3.0) is None          # cooling down
        assert scaler.tick(4.0) is None
        event = scaler.tick(8.0)                 # cooldown over, still hot
        assert event.direction == "up" and pool.size == 3
        signals["depth"] = 50
        assert scaler.tick(14.0) is None         # at max_devices: no event
        assert scaler.tick(15.0) is None
        signals["depth"] = 0
        assert scaler.tick(20.0) is None         # 1 idle tick
        event = scaler.tick(21.0)                # 2nd idle tick: scale down
        assert event.direction == "down" and event.reason == "idle"
        assert pool.size == 2
        assert scaler.scale_ups == 2 and scaler.scale_downs == 1
        assert [e.direction for e in scaler.events] == ["up", "up", "down"]
        for t in pool.tasks():
            t.cancel()

    asyncio.run(run())


def test_autoscaler_burn_signal_scales_up():
    async def run():
        pool = DevicePool(_idle_worker)
        pool.spawn()
        config = AutoscalerConfig(min_devices=1, max_devices=2,
                                  hysteresis_ticks=1, scale_up_burn=2.0)
        scaler = Autoscaler(config, pool, lambda: (0, 5.0))
        event = scaler.tick(1.0)
        assert event.direction == "up" and event.reason == "burn"
        for t in pool.tasks():
            t.cancel()

    asyncio.run(run())
