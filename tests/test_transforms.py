"""Graph-rewriting pass tests: numerical preservation and structure."""

import numpy as np
import pytest

from repro.core.engine import BrickDLEngine
from repro.core.reference import ReferenceExecutor
from repro.graph.builder import GraphBuilder
from repro.graph.ops import BatchNorm, Conv
from repro.graph.tensorspec import TensorSpec
from repro.graph.transforms import (
    eliminate_common_subexpressions,
    eliminate_dead_nodes,
    fold_batchnorm,
    optimize,
)

from testlib import input_for, residual_graph, small_chain_graph


def run_outputs(graph, x):
    return ReferenceExecutor(graph).run(x)


class TestFoldBatchnorm:
    def test_bn_removed_and_values_preserved(self):
        g = small_chain_graph(size=32)
        g.init_weights()
        x = input_for(g)
        before = run_outputs(g, x)
        folded = fold_batchnorm(g)
        assert not any(isinstance(n.op, BatchNorm) for n in folded.nodes)
        after = run_outputs(folded, x)
        for k in before:
            np.testing.assert_allclose(after[k], before[k], atol=1e-4, rtol=1e-4)

    def test_folded_conv_gains_bias(self):
        g = small_chain_graph(size=32)
        folded = fold_batchnorm(g)
        conv = folded.node("c1/conv")
        assert isinstance(conv.op, Conv) and conv.op.bias
        assert "bias" in conv.weights

    def test_residual_graph_preserved(self):
        g = residual_graph()
        g.init_weights()
        x = input_for(g)
        before = run_outputs(g, x)
        folded = fold_batchnorm(g)
        after = run_outputs(folded, x)
        for k in before:
            np.testing.assert_allclose(after[k], before[k], atol=1e-4, rtol=1e-4)
        assert len(folded) < len(g)

    def test_bn_with_two_consumers_kept(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (16, 16)))
        c = b.conv(4, 3, padding=1, bias=False, name="conv")
        left = b.relu(src=c, name="left")
        right = b.batchnorm(src=c, name="right")  # conv has 2 consumers
        b.add(left, right, name="join")
        g = b.finish()
        folded = fold_batchnorm(g)
        assert any(isinstance(n.op, BatchNorm) for n in folded.nodes)

    def test_noop_when_nothing_to_fold(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (8, 8)))
        b.conv(4, 3, padding=1, name="conv")
        g = b.finish()
        assert fold_batchnorm(g) is g

    def test_merged_execution_on_folded_graph(self):
        g = small_chain_graph(size=48)
        g.init_weights()
        x = input_for(g)
        before = run_outputs(g, x)
        folded = fold_batchnorm(g)
        res = BrickDLEngine(folded).run(x)
        for k in before:
            np.testing.assert_allclose(res.outputs[k], before[k], atol=1e-3, rtol=1e-3)


class TestDeadCode:
    def test_unused_branch_removed(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (8, 8)))
        used = b.conv(4, 3, padding=1, name="used")
        b.conv(4, 3, padding=1, src=b.graph.node("input"), name="dead")
        b.relu(src=used, name="out")
        g = b.finish(output=b.graph.node("out"))
        pruned = eliminate_dead_nodes(g)
        names = [n.name for n in pruned.nodes]
        assert "dead" not in names and "used" in names

    def test_all_live_is_noop(self):
        g = small_chain_graph()
        assert eliminate_dead_nodes(g) is g


class TestCse:
    def test_identical_convs_merged(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (8, 8)))
        root = b.current
        op = Conv(out_channels=4, kernel=(3, 3), padding=1, bias=False)
        a = b.graph.add(op, [root], name="a")
        c = b.graph.add(op, [root], name="c")
        c.weights = a.weights = {"weight": np.ones((4, 3, 3, 3), np.float32)}
        out = b.add(a, c, name="sum")
        g = b.finish(output=out)
        g.init_weights()
        x = input_for(g)
        before = run_outputs(g, x)["sum"]
        merged = eliminate_common_subexpressions(g)
        assert len(merged) < len(g)
        after = run_outputs(merged, x)["sum"]
        np.testing.assert_allclose(after, before, atol=1e-5)

    def test_different_weights_not_merged(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (8, 8)))
        root = b.current
        op = Conv(out_channels=4, kernel=(3, 3), padding=1, bias=False)
        a = b.graph.add(op, [root], name="a")
        c = b.graph.add(op, [root], name="c")
        a.weights = {"weight": np.ones((4, 3, 3, 3), np.float32)}
        c.weights = {"weight": np.zeros((4, 3, 3, 3), np.float32)}
        out = b.add(a, c, name="sum")
        g = b.finish(output=out)
        assert len(eliminate_common_subexpressions(g)) == len(g)


class TestPipeline:
    @pytest.mark.parametrize("make", [small_chain_graph, residual_graph])
    def test_optimize_preserves_outputs(self, make):
        g = make()
        g.init_weights()
        x = input_for(g)
        before = run_outputs(g, x)
        opt = optimize(g)
        after = run_outputs(opt, x)
        for k in before:
            np.testing.assert_allclose(after[k], before[k], atol=1e-4, rtol=1e-4)

    def test_optimize_shrinks_models(self):
        from repro.models import build

        g = build("resnet50", reduced=True)
        opt = optimize(g)
        assert len(opt) < len(g)

    def test_optimized_model_runs_merged(self):
        from repro.models import build

        g = build("deepcam", reduced=True)
        g.init_weights()
        x = input_for(g)
        before = run_outputs(g, x)
        opt = optimize(g)
        res = BrickDLEngine(opt).run(x)
        for k in before:
            np.testing.assert_allclose(res.outputs[k], before[k], atol=2e-3, rtol=1e-2)
