"""Benchmark-harness tests: microbenchmarks, proxies, runners, reporting,
and smoke runs of each figure driver at micro scale."""

import numpy as np
import pytest

from repro.baselines import CudnnBaseline
from repro.bench import figures, microbench, proxies
from repro.bench.harness import adapt_sectors, run_brickdl, run_conventional, scale_preset
from repro.bench.reporting import BreakdownRow, format_breakdowns, format_table
from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.gpusim.spec import A100


class TestMicrobench:
    def test_atomic_matches_paper(self):
        r = microbench.atomic_microbenchmark()
        assert r.time_per_atomic_ns == pytest.approx(87.45, abs=0.01)
        assert r.num_threads == 64 * 1024

    def test_compute_matches_paper(self):
        r = microbench.compute_microbenchmark()
        assert r.time_per_call_us == pytest.approx(6.72, abs=0.05)

    def test_compute_scales_with_kernel(self):
        small = microbench.compute_microbenchmark(kernel=(3, 3, 3))
        big = microbench.compute_microbenchmark(kernel=(5, 5, 5))
        assert big.time_per_call_us > small.time_per_call_us


class TestProxies:
    def test_six_layer_structure(self):
        g = proxies.six_layer_proxy(size=20)
        convs = [n for n in g.nodes if n.op.kind == "conv"]
        assert len(convs) == 6
        # Unpadded 3^3 convs shrink by 2 per layer.
        assert convs[0].spec.spatial == (18, 18, 18)
        assert convs[-1].spec.spatial == (8, 8, 8)

    def test_three_layer_structure(self):
        g = proxies.three_layer_proxy(size=16)
        assert sum(1 for n in g.nodes if n.op.kind == "conv") == 3

    def test_proxy_functional(self):
        """The proxies run functionally like any other graph."""
        g = proxies.conv_chain_3d(layers=2, size=12, channels=4, in_channels=2)
        x = np.random.default_rng(0).standard_normal(g.input_nodes[0].spec.shape).astype(np.float32)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(g, strategy_override=Strategy.MEMOIZED, brick_override=4,
                            layer_schedule=(2,)).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)


class TestHarness:
    def test_scale_preset_default(self, monkeypatch):
        monkeypatch.delenv("BRICKDL_SCALE", raising=False)
        assert scale_preset() == "small"

    def test_scale_preset_invalid(self, monkeypatch):
        monkeypatch.setenv("BRICKDL_SCALE", "gigantic")
        with pytest.raises(ValueError):
            scale_preset()

    def test_run_brickdl_returns_row_and_plan(self):
        row, plan = run_brickdl(proxies.conv_chain_3d(2, 16, channels=4), brick=4,
                                strategy=Strategy.PADDED, layer_schedule=(2,))
        assert row.total > 0 and row.num_tasks > 0
        assert plan.merged_count == 1

    def test_run_conventional(self):
        row = run_conventional(CudnnBaseline, proxies.conv_chain_3d(2, 16, channels=4))
        assert row.label == "cudnn" and row.dram_txns > 0

    def test_adapt_sectors_matches_brick(self):
        g = proxies.conv_chain_3d(2, 24, channels=8)
        eng = BrickDLEngine(g, brick_override=8, strategy_override=Strategy.PADDED,
                            layer_schedule=(2,))
        plan = eng.compile()
        spec = adapt_sectors(A100, plan)
        assert spec.l2_sector_bytes >= A100.l2_sector_bytes

    def test_adapt_sectors_no_merged_is_identity(self):
        from testlib import small_chain_graph

        plan = BrickDLEngine(small_chain_graph(size=24)).compile()  # all fallback
        assert adapt_sectors(A100, plan) is A100


class TestReporting:
    def _row(self, label, total=2.0, dram=1.0):
        return BreakdownRow(label=label, total=total, dram=dram, idle=total - dram,
                            compute=0.5, atomics_compulsory=0.1, atomics_conflict=0.0,
                            other=total - 0.6, l1_txns=100, l2_txns=80, dram_txns=50,
                            num_tasks=7, atomics_compulsory_count=10, atomics_conflict_count=2)

    def test_format_table_alignment(self):
        t = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = t.splitlines()
        assert lines[0] == "T"
        assert len({len(l) for l in lines[1:]}) == 1  # rectangular

    def test_breakdowns_relative(self):
        base = self._row("base")
        other = self._row("x", total=1.0)
        text = format_breakdowns([base, other], relative_to=base)
        assert "0.500" in text

    def test_normalized_to(self):
        a, b = self._row("a"), self._row("b", total=4.0, dram=2.0)
        n = b.normalized_to(a)
        assert n["total"] == pytest.approx(2.0)
        assert n["dram_txns"] == pytest.approx(1.0)


class TestFigureDrivers:
    """Micro-scale smoke runs; the real shapes are checked in benchmarks/."""

    def test_fig10_micro(self):
        r = figures.fig10_subgraph_size(scale="small")
        rows = r.groups["6-layer CNN proxy"]
        assert rows[0].label == "cudnn"
        assert len(rows) == 1 + 4 * 2
        assert "Fig. 10" in r.name and "cudnn" in r.render()

    def test_fig11_micro(self):
        r = figures.fig11_brick_size(scale="small", bricks=(8, 16))
        rows = r.groups["3-layer CNN proxy"]
        assert len(rows) == 1 + 2 * 2

    def test_fig7_single_model(self):
        r = figures.fig7_end_to_end(models=("resnet50",), scale="small")
        rows = r.groups["resnet50"]
        assert [x.label for x in rows] == ["cudnn", "brickdl", "torchscript", "xla"]
        table = figures.fig7_summary_table(r)
        assert "resnet50" in table

    def test_fig8_and_9(self):
        r = figures.fig8_resnet_case_study(scale="small", num_subgraphs=2)
        assert 1 <= len(r.groups) <= 2
        table = figures.fig9_data_movement(r)
        assert "DRAM vs cudnn" in table

    def test_fig8_breakdown_identities(self):
        r = figures.fig8_resnet_case_study(scale="small", num_subgraphs=1)
        for rows in r.groups.values():
            for row in rows:
                assert row.total == pytest.approx(row.idle + row.dram)
                assert row.total == pytest.approx(
                    row.other + row.compute + row.atomics_compulsory + row.atomics_conflict
                )
