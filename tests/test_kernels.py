"""NumPy kernel tests against scipy / manual references."""

import numpy as np
import pytest
from scipy import signal

from repro.errors import ShapeError
from repro.kernels.conv import conv_forward
from repro.kernels.conv_transpose import conv_transpose_forward, conv_transpose_full
from repro.kernels.dense import dense_forward, flatten_forward
from repro.kernels.pointwise import (
    activation,
    add_bias,
    batchnorm_inference,
    channel_softmax,
    elementwise_add,
    leaky_relu,
    relu,
    sigmoid,
)
from repro.kernels.pooling import global_avg_pool, pool_forward
from repro.kernels.windows import pad_spatial, spatial_windows


def scipy_conv2d(x, w, padding):
    n, c, h, ww = x.shape
    o = w.shape[0]
    xp = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
    out = np.zeros((n, o, h + 2 * padding - w.shape[2] + 1, ww + 2 * padding - w.shape[3] + 1), np.float32)
    for ni in range(n):
        for oi in range(o):
            acc = np.zeros(out.shape[2:])
            for ci in range(c):
                acc += signal.correlate(xp[ni, ci], w[oi, ci], mode="valid")
            out[ni, oi] = acc
    return out


class TestConv:
    def test_vs_scipy(self, rng):
        x = rng.standard_normal((2, 3, 11, 9)).astype(np.float32)
        w = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        out = conv_forward(x, w, padding=1)
        np.testing.assert_allclose(out, scipy_conv2d(x, w, 1), atol=1e-4)

    def test_bias(self, rng):
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 2, 1, 1)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        out = conv_forward(x, w, bias=b)
        np.testing.assert_allclose(out[0, :, 0, 0], (w[:, :, 0, 0] @ x[0, :, 0, 0]) + b, atol=1e-5)

    def test_stride_matches_subsampling(self, rng):
        x = rng.standard_normal((1, 2, 12, 12)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        full = conv_forward(x, w, stride=1, padding=1)
        strided = conv_forward(x, w, stride=2, padding=1)
        np.testing.assert_allclose(strided, full[:, :, ::2, ::2], atol=1e-5)

    def test_dilation_equals_inserted_zero_kernel(self, rng):
        x = rng.standard_normal((1, 1, 10, 10)).astype(np.float32)
        w = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        w_dilated = np.zeros((1, 1, 5, 5), np.float32)
        w_dilated[0, 0, ::2, ::2] = w[0, 0]
        np.testing.assert_allclose(
            conv_forward(x, w, dilation=2, padding=2),
            conv_forward(x, w_dilated, padding=2),
            atol=1e-5,
        )

    def test_groups_match_split(self, rng):
        x = rng.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = rng.standard_normal((6, 2, 3, 3)).astype(np.float32)
        out = conv_forward(x, w, padding=1, groups=2)
        lo = conv_forward(x[:, :2], w[:3], padding=1)
        hi = conv_forward(x[:, 2:], w[3:], padding=1)
        np.testing.assert_allclose(out, np.concatenate([lo, hi], axis=1), atol=1e-5)

    def test_3d_shape_and_value(self, rng):
        x = rng.standard_normal((1, 2, 5, 6, 7)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3, 3)).astype(np.float32)
        out = conv_forward(x, w, padding=1)
        assert out.shape == (1, 3, 5, 6, 7)
        # Centre element check against explicit sum.
        manual = (x[0, :, 1:4, 1:4, 1:4] * w[0]).sum()
        np.testing.assert_allclose(out[0, 0, 2, 2, 2], manual, rtol=1e-4)

    def test_channel_mismatch(self, rng):
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((2, 4, 3, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            conv_forward(x, w)


class TestConvTranspose:
    def test_inverse_of_subsampling_shape(self, rng):
        x = rng.standard_normal((1, 2, 5, 7)).astype(np.float32)
        w = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        out = conv_transpose_forward(x, w, stride=2, padding=1)
        assert out.shape == (1, 3, 10, 14)

    def test_manual_scatter(self, rng):
        x = rng.standard_normal((1, 2, 3, 3)).astype(np.float32)
        w = rng.standard_normal((2, 2, 3, 3)).astype(np.float32)
        s, p = 2, 1
        ref = np.zeros((1, 2, (3 - 1) * s + 3, (3 - 1) * s + 3), np.float32)
        for i in range(3):
            for j in range(3):
                for c in range(2):
                    for o in range(2):
                        ref[0, o, i * s:i * s + 3, j * s:j * s + 3] += x[0, c, i, j] * w[c, o]
        out = conv_transpose_forward(x, w, stride=s, padding=p)
        np.testing.assert_allclose(out, ref[:, :, p:-p, p:-p], atol=1e-5)

    def test_full_variant_has_no_crop(self, rng):
        x = rng.standard_normal((1, 1, 4, 4)).astype(np.float32)
        w = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        assert conv_transpose_full(x, w, stride=1).shape == (1, 1, 6, 6)


class TestPooling:
    def test_max(self, rng):
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        out = pool_forward(x, (2, 2))
        assert out[0, 0, 0, 0] == x[0, 0, :2, :2].max()

    def test_avg(self, rng):
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        out = pool_forward(x, (2, 2), mode="avg")
        np.testing.assert_allclose(out[0, 1, 2, 3], x[0, 1, 4:6, 6:8].mean(), rtol=1e-5)

    def test_max_padding_is_neutral(self):
        x = -np.ones((1, 1, 4, 4), np.float32)
        out = pool_forward(x, (3, 3), stride=2, padding=1)
        assert (out == -1).all()  # -inf padding never wins

    def test_avg_count_include_pad(self):
        x = np.ones((1, 1, 4, 4), np.float32)
        out = pool_forward(x, (3, 3), stride=2, padding=1, mode="avg")
        # Corner window: 4 ones of 9 cells.
        np.testing.assert_allclose(out[0, 0, 0, 0], 4 / 9, rtol=1e-5)

    def test_global(self, rng):
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        out = global_avg_pool(x)
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(out[1, 2, 0, 0], x[1, 2].mean(), rtol=1e-5)


class TestPointwise:
    def test_relu_family(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        assert (relu(x) >= 0).all()
        lr = leaky_relu(x, 0.1)
        np.testing.assert_allclose(lr[x < 0], 0.1 * x[x < 0], rtol=1e-5)

    def test_sigmoid_stable(self):
        x = np.array([[-100.0, 0.0, 100.0]], np.float32)
        out = sigmoid(x)
        np.testing.assert_allclose(out, [[0.0, 0.5, 1.0]], atol=1e-6)

    def test_batchnorm(self, rng):
        x = rng.standard_normal((1, 3, 4, 4)).astype(np.float32)
        scale = np.array([1.0, 2.0, 3.0], np.float32)
        shift = np.array([0.5, 0.0, -0.5], np.float32)
        out = batchnorm_inference(x, scale, shift)
        np.testing.assert_allclose(out[0, 1], 2 * x[0, 1], rtol=1e-5)

    def test_add_and_bias(self, rng):
        x = rng.standard_normal((1, 2, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(elementwise_add(x, x), 2 * x, rtol=1e-6)
        b = np.array([1.0, -1.0], np.float32)
        out = add_bias(x, b)
        np.testing.assert_allclose(out[0, 0], x[0, 0] + 1, rtol=1e-6)

    def test_softmax_sums_to_one(self, rng):
        x = rng.standard_normal((2, 5, 3, 3)).astype(np.float32)
        out = channel_softmax(x)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)

    def test_activation_dispatch(self, rng):
        x = rng.standard_normal((4,)).astype(np.float32)
        np.testing.assert_allclose(activation(x, "tanh"), np.tanh(x), rtol=1e-5)


class TestDense:
    def test_flatten(self, rng):
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        assert flatten_forward(x).shape == (2, 60)

    def test_dense(self, rng):
        x = rng.standard_normal((2, 6)).astype(np.float32)
        w = rng.standard_normal((4, 6)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        np.testing.assert_allclose(dense_forward(x, w, b), x @ w.T + b, rtol=1e-5)


class TestWindows:
    def test_window_fit_check(self, rng):
        x = rng.standard_normal((1, 1, 4, 4)).astype(np.float32)
        with pytest.raises(ShapeError):
            spatial_windows(x, (5, 5), (1, 1), (1, 1))

    def test_pad_value(self):
        x = np.zeros((1, 1, 2, 2), np.float32)
        out = pad_spatial(x, (1, 1), value=-np.inf)
        assert np.isinf(out[0, 0, 0, 0])
        assert out.shape == (1, 1, 4, 4)
