"""Simulated-GPU substrate tests: caches, memory system, timing, device."""

import pytest

from repro.gpusim.atomics import AtomicCounters, cas_microbenchmark_time
from repro.gpusim.cache import SectorCache
from repro.gpusim.device import Device
from repro.gpusim.memory import AnalyticResidency, MemorySystem, _lines, _txns
from repro.gpusim.spec import A100, GPUSpec
from repro.gpusim.timing import compute_breakdown, schedule_makespan
from repro.gpusim.trace import Access, Buffer, Task


class TestSectorCache:
    def test_hit_after_miss(self):
        c = SectorCache(8192, 2048)
        r1 = c.access(1, 0, 2048, write=False)
        assert r1.miss_bytes == 2048 and r1.hit_bytes == 0
        r2 = c.access(1, 0, 2048, write=False)
        assert r2.hit_bytes == 2048

    def test_lru_eviction_order(self):
        c = SectorCache(4096, 2048)  # 2 sectors
        c.access(1, 0, 2048, write=True)
        c.access(1, 2048, 2048, write=False)
        c.access(1, 0, 1, write=False)       # refresh sector 0
        c.access(1, 4096, 2048, write=False)  # evicts sector 1 (LRU)
        assert c.access(1, 0, 1, write=False).hit_bytes == 1
        assert c.access(1, 2048, 1, write=False).miss_bytes == 1

    def test_dirty_eviction_accounting(self):
        c = SectorCache(2048, 2048)
        c.access(1, 0, 512, write=True)
        c.access(1, 2048, 2048, write=False)  # evicts dirty sector
        assert c.drain_evicted_dirty() == 512

    def test_flush_and_discard(self):
        c = SectorCache(8192, 2048)
        c.access(1, 0, 100, write=True)
        c.access(2, 0, 300, write=True)
        assert c.discard(1) == 1
        assert c.flush() == 300

    def test_span_accounting(self):
        c = SectorCache(1 << 20, 2048)
        r = c.access(1, 1000, 3000, write=False)  # spans 2 sectors
        assert r.miss_bytes == 3000

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SectorCache(100, 2048)


class TestAnalyticResidency:
    def test_small_buffer_hits_after_write(self):
        a = AnalyticResidency(1 << 20)
        buf = Buffer.new("b", 1 << 16)
        spilled = a.write(buf, 1 << 16)
        assert spilled == 0
        hit, miss, spilled = a.read(buf, 1 << 16)
        assert miss == 0 and hit == 1 << 16 and spilled == 0

    def test_oversized_buffer_streams(self):
        a = AnalyticResidency(1 << 20)
        buf = Buffer.new("big", 1 << 22)
        assert a.write(buf, 1 << 22) == 1 << 22  # all spilled
        hit, miss, spilled = a.read(buf, 1 << 22)
        assert hit == 0 and miss == 1 << 22 and spilled == 0

    def test_lru_between_buffers(self):
        a = AnalyticResidency(1000)
        b1, b2 = Buffer.new("x", 800), Buffer.new("y", 800)
        a.write(b1, 800)
        a.write(b2, 800)  # evicts b1 entirely
        hit, _, _ = a.read(b1, 800)
        assert hit == 0

    def test_discard_drops_dirty(self):
        a = AnalyticResidency(1 << 20)
        buf = Buffer.new("t", 1024)
        a.write(buf, 1024)
        a.discard(buf.buffer_id)
        assert a.flush({}) == 0


class TestMemorySystem:
    def test_blocked_reuse_counts(self):
        ms = MemorySystem(A100)
        buf = ms.allocate("bricks", 1 << 20)
        ms.begin_task()
        ms.process(Access(buf, 0, 65536, write=False))
        first = ms.counters.dram_read_txns
        assert first == 65536 // 32
        ms.begin_task()
        ms.process(Access(buf, 0, 65536, write=False))
        assert ms.counters.dram_read_txns == first  # L2 hit second time

    def test_write_through_l1(self):
        ms = MemorySystem(A100)
        buf = ms.allocate("b", 4096)
        ms.process(Access(buf, 0, 4096, write=True))
        assert ms.counters.l2_txns == 4096 // 32

    def test_pinned_weights_single_dram_fetch(self):
        ms = MemorySystem(A100)
        w = ms.allocate("w", 8192)
        ms.pin(w)
        for _ in range(5):
            ms.process(Access(w, 0, 8192, write=False))
        assert ms.counters.dram_read_txns == 8192 // 32
        assert ms.counters.l2_txns == 5 * 8192 // 32
        ms.unpin(w)
        ms.process(Access(w, 0, 8192, write=False))
        assert ms.counters.dram_read_txns > 8192 // 32

    def test_on_chip_counts_l1_only(self):
        ms = MemorySystem(A100)
        buf = ms.allocate("scratch", 4096, transient=True)
        ms.process(Access(buf, 0, 4096, write=True, on_chip=True))
        assert ms.counters.l1_txns == 4096 // 32
        assert ms.counters.l2_txns == 0 and ms.counters.dram_txns == 0

    def test_assume_l2_no_dram(self):
        ms = MemorySystem(A100)
        buf = ms.allocate("m", 4096)
        ms.process(Access(buf, 0, 4096, write=False, assume_l2=True))
        assert ms.counters.dram_txns == 0
        assert ms.counters.l2_txns == 4096 // 32

    def test_transient_flush_skipped(self):
        ms = MemorySystem(A100)
        t = ms.allocate("t", 4096, transient=True)
        p = ms.allocate("p", 4096)
        ms.process(Access(t, 0, 4096, write=True))
        ms.process(Access(p, 0, 4096, write=True))
        ms.flush()
        assert ms.counters.dram_write_txns == 4096 // 32  # only persistent

    def test_strided_read_l1_overfetch(self):
        ms = MemorySystem(A100)
        buf = ms.allocate("act", 1 << 20)
        # 64 rows of 50 bytes, stride 256: each row touches 2-3 lines.
        a = Access(buf, 3, 50, write=False, reps=((64, 256),))
        ms.process(a)
        assert ms.counters.l1_txns >= 64 * 2

    def test_dense_big_write_streams(self):
        ms = MemorySystem(A100)
        big = ms.allocate("big", 2 * A100.l2_bytes)
        ms.process(Access(big, 0, big.nbytes, write=True, dense=True))
        assert ms.counters.dram_write_txns == big.nbytes // 32


class TestTiming:
    def test_makespan_greedy(self):
        spec = GPUSpec(num_sms=2)
        assert schedule_makespan(spec, [1.0, 1.0, 1.0]) == 2.0
        assert schedule_makespan(spec, [3.0, 1.0, 1.0]) == 3.0

    def test_breakdown_identities(self):
        from repro.gpusim.memory import MemoryCounters

        spec = A100
        tasks = [Task("t", flops=1e6) for _ in range(10)]
        mem = MemoryCounters(l1_txns=100, l2_txns=80, dram_read_txns=50, dram_write_txns=20)
        atomics = AtomicCounters(compulsory=100, conflict=30)
        bd = compute_breakdown(spec, tasks, mem, atomics, sync_count=2)
        assert bd.total == pytest.approx(bd.idle + bd.dram)
        assert bd.total == pytest.approx(
            bd.other + bd.compute + bd.atomics_compulsory + bd.atomics_conflict
        )
        assert bd.idle >= 0 and bd.other >= 0

    def test_task_time_calls(self):
        assert A100.task_time(0, calls=3) == pytest.approx(3 * A100.call_overhead_s)


class TestDevice:
    def test_submit_and_finish(self):
        dev = Device(A100)
        buf = dev.allocate("x", 4096)
        t = Task("t", flops=1000)
        t.read(buf, 0, 4096)
        t.write(buf, 0, 4096)
        t.atomics_compulsory = 2
        dev.submit(t)
        dev.synchronize()
        m = dev.finish()
        assert m.num_tasks == 1
        assert m.atomics.compulsory == 2
        assert m.total_time > 0

    def test_atomic_microbenchmark_matches_paper(self):
        _, per_op = cas_microbenchmark_time(A100)
        assert per_op * 1e9 == pytest.approx(87.45, rel=1e-6)


class TestLineArithmetic:
    """Direct unit tests for the 32 B line/transaction helpers, including the
    unaligned and zero-length edge cases every counter rests on."""

    def test_zero_and_negative_length(self):
        assert _lines(0, 0, 32) == 0
        assert _lines(100, -4, 32) == 0
        assert _txns(0, 32) == 0
        assert _txns(-4, 32) == 0

    def test_aligned_exact(self):
        assert _lines(0, 32, 32) == 1
        assert _lines(64, 64, 32) == 2
        assert _txns(32, 32) == 1
        assert _txns(64, 32) == 2

    def test_unaligned_straddle(self):
        # 2 bytes crossing a line boundary touch 2 lines but 1 transaction's
        # worth of data -- the alignment-overfetch asymmetry.
        assert _lines(31, 2, 32) == 2
        assert _txns(2, 32) == 1

    def test_single_byte(self):
        assert _lines(0, 1, 32) == 1
        assert _lines(31, 1, 32) == 1
        assert _lines(32, 1, 32) == 1
        assert _txns(1, 32) == 1

    def test_unaligned_within_one_line(self):
        assert _lines(5, 20, 32) == 1

    def test_txns_is_ceil_div(self):
        for nbytes in (1, 31, 32, 33, 63, 64, 65, 1000):
            assert _txns(nbytes, 32) == -(-nbytes // 32)

    def test_lines_bounds_txns(self):
        # Lines touched >= transactions needed, and never by more than one.
        for offset in range(0, 40):
            for nbytes in range(1, 100):
                lines = _lines(offset, nbytes, 32)
                txns = _txns(nbytes, 32)
                assert txns <= lines <= txns + 1


class TestAccessValidation:
    def test_bounds(self):
        buf = Buffer.new("b", 100)
        with pytest.raises(ValueError):
            Access(buf, 90, 20)

    def test_reps_span_bounds(self):
        buf = Buffer.new("b", 1000)
        with pytest.raises(ValueError):
            Access(buf, 0, 100, reps=((5, 300),))  # span 1300 > 1000
        a = Access(buf, 0, 100, reps=((4, 300),))
        assert a.segments == 4 and a.total_bytes == 400 and a.span == 1000
