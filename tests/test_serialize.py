"""Graph serialization round-trip tests."""

import json

import numpy as np
import pytest

from repro.core.reference import ReferenceExecutor
from repro.errors import GraphError
from repro.graph.serialize import graph_from_dict, graph_to_dict, load_graph, save_graph
from repro.models import build

from testlib import input_for, residual_graph, small_chain_graph


class TestDictRoundtrip:
    @pytest.mark.parametrize("make", [small_chain_graph, residual_graph])
    def test_structure_preserved(self, make):
        g = make()
        g2 = graph_from_dict(graph_to_dict(g))
        assert len(g2) == len(g)
        for a, b in zip(g.nodes, g2.nodes):
            assert a.name == b.name and a.op == b.op and a.inputs == b.inputs
        assert [n.name for n in g2.output_nodes] == [n.name for n in g.output_nodes]

    def test_json_serializable(self):
        g = small_chain_graph()
        text = json.dumps(graph_to_dict(g))
        g2 = graph_from_dict(json.loads(text))
        assert len(g2) == len(g)

    def test_model_zoo_roundtrip(self):
        for name in ("resnet50", "deepcam", "inception_v4"):
            g = build(name, reduced=True)
            g2 = graph_from_dict(graph_to_dict(g))
            assert len(g2) == len(g)

    def test_bad_format_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format": 99, "name": "x", "nodes": [], "outputs": []})

    def test_unknown_op_rejected(self):
        d = graph_to_dict(small_chain_graph())
        d["nodes"][1]["op"]["kind"] = "FancyOp"
        with pytest.raises(GraphError):
            graph_from_dict(d)


class TestFileRoundtrip:
    def test_save_load_with_weights(self, tmp_path):
        g = small_chain_graph()
        g.init_weights(seed=5)
        x = input_for(g)
        expected = ReferenceExecutor(g).run(x)

        path = tmp_path / "model.json"
        save_graph(g, path)
        assert path.exists() and path.with_suffix(".json.npz").exists()

        loaded = load_graph(path)
        got = ReferenceExecutor(loaded).run(x)
        for k in expected:
            np.testing.assert_array_equal(got[k], expected[k])

    def test_save_without_weights(self, tmp_path):
        g = small_chain_graph()
        path = tmp_path / "structure.json"
        save_graph(g, path, weights=False)
        loaded = load_graph(path)
        assert not loaded.node("c1/conv").weights
        # Fresh deterministic weights still make it runnable.
        ReferenceExecutor(loaded).run(input_for(loaded))

    def test_stencil_fixed_weights_roundtrip(self, tmp_path):
        from repro.stencil import build_heat_graph, reference_heat

        g = build_heat_graph(3, 16)
        path = tmp_path / "heat.json"
        save_graph(g, path)
        loaded = load_graph(path)
        u0 = np.random.default_rng(0).standard_normal((16, 16)).astype(np.float32)
        out = ReferenceExecutor(loaded).run(u0[None, None])
        np.testing.assert_allclose(list(out.values())[0][0, 0], reference_heat(u0, 3), atol=1e-5)
