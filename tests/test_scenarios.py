"""Scenario pack: seeded replay determinism, conformance, quota isolation.

The replay test is the serving analogue of the engine's bit-identity
contract: a scenario is a pure function of ``(name, seed, knobs)``, so two
runs must produce byte-identical serve manifests (compared via the
volatile-field-stripped fingerprint).  Everything here runs on the
virtual-time loop in profile mode, so wall time stays in seconds.
"""

from repro.serve import SCENARIOS, run_scenario
from repro.serve.scenarios import manifest_fingerprint


def test_pack_covers_required_scenarios():
    for name in ("diurnal", "burst", "heavy_tail", "straggler", "multitenant"):
        assert name in SCENARIOS, f"scenario pack missing {name!r}"
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.objectives, f"{name}: no conformance objectives"
        assert scenario.description


def test_manifest_fingerprint_ignores_volatile_fields():
    base = {"model": "m", "metrics": {"p99": 1.25}, "created": "now",
            "git_sha": "abc123"}
    same = {"model": "m", "metrics": {"p99": 1.25}, "created": "later",
            "git_sha": "def456"}
    different = {"model": "m", "metrics": {"p99": 1.26}, "created": "now",
                 "git_sha": "abc123"}
    assert manifest_fingerprint(base) == manifest_fingerprint(same)
    assert manifest_fingerprint(base) != manifest_fingerprint(different)


def test_seeded_replay_is_bit_identical():
    first = run_scenario("diurnal", seed=7, requests=80)
    second = run_scenario("diurnal", seed=7, requests=80)
    assert first.fingerprint == second.fingerprint
    assert first.summary() == second.summary()
    assert first.completed + first.shed == 80


def test_different_seed_changes_the_run():
    a = run_scenario("heavy_tail", seed=1, requests=60)
    b = run_scenario("heavy_tail", seed=2, requests=60)
    assert a.fingerprint != b.fingerprint


def test_batching_policy_is_part_of_the_fingerprint_surface():
    edf = run_scenario("diurnal", seed=3, requests=60)
    head = run_scenario("diurnal", seed=3, requests=60, batching="head")
    assert edf.batching == "edf" and head.batching == "head"
    # Same arrivals either way; policy only reorders service.
    assert edf.completed + edf.shed == head.completed + head.shed == 60


def test_burst_scenario_scales_up():
    report = run_scenario("burst", seed=0, requests=160)
    auto = report.stats["autoscaler"]
    assert auto["enabled"]
    assert auto["scale_ups"] >= 1
    assert report.stats["devices"]["current"] >= SCENARIOS["burst"].devices
    directions = {e["direction"] for e in auto["events"]}
    assert "up" in directions


def test_multitenant_quota_isolation():
    report = run_scenario("multitenant", seed=0, requests=120)
    tenants = report.stats["tenants"]
    assert tenants["greedy"]["shed"] > 0, "greedy tenant never hit its quota"
    assert tenants["paying"]["shed"] == 0, "quota shed leaked onto paying tenant"
    assert report.shed_by_reason.get("quota", 0) == tenants["greedy"]["shed"]


def test_scenario_verify_bit_identity_under_edf():
    report = run_scenario("diurnal", seed=0, requests=48, verify=4)
    assert report.verified >= 1


def test_multitenant_objectives_hold_at_default_scale():
    # One full-scale conformance sample in-suite; the CI scenario matrix
    # runs the whole pack x both batching policies at default scale.
    report = run_scenario("multitenant", seed=0)
    assert report.check() == [], report.render()


def test_report_render_and_check_shape():
    report = run_scenario("straggler", seed=0, requests=60)
    text = report.render()
    assert "straggler" in text and "fingerprint" in text
    summary = report.summary()
    assert summary["requests"] == 60
    assert isinstance(report.check(), list)
