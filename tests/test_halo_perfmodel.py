"""Halo static analysis and the compile-time performance models."""

import pytest

from repro.core.halo import chain_padded_sizes, padding_growth, required_regions
from repro.core.perfmodel import (
    DEFAULT_CONFIG,
    PerfModelConfig,
    choose_brick_size,
    choose_strategy,
    parallelism,
)
from repro.core.plan import Strategy
from repro.graph.builder import GraphBuilder
from repro.graph.regions import Region
from repro.graph.tensorspec import TensorSpec
from repro.graph.traversal import subgraph_view

from testlib import residual_graph


def conv_chain(n_convs: int, size: int = 32, k: int = 3):
    b = GraphBuilder("chain", TensorSpec(1, 4, (size, size)))
    for i in range(n_convs):
        b.conv(4, k, padding=(k - 1) // 2, bias=False, name=f"conv{i}")
    return b.finish()


class TestRequiredRegions:
    def test_fig4_telescoping(self):
        """Paper Fig. 4: brick B needs B+2p after one conv, B+4p after two."""
        g = conv_chain(2)
        view = subgraph_view(g, [1, 2])
        out = Region.from_bounds([8, 8], [16, 16])
        req = required_regions(view, exit_id=2, out_region=out)
        assert req[2].shape == (8, 8)
        assert req[1].shape == (10, 10)
        assert req[0].shape == (12, 12)

    def test_branch_hull(self):
        """A skip connection takes the hull of both consumers' needs."""
        g = residual_graph()
        ids = [g.node(n).node_id for n in ("b1/conv1", "b1/bn1", "b1/relu1", "b1/conv2", "b1/bn2", "b1/add")]
        view = subgraph_view(g, ids)
        add_id = g.node("b1/add").node_id
        out = Region.from_bounds([8, 8], [12, 12])
        req = required_regions(view, add_id, out)
        stem_id = g.node("stem/relu").node_id
        # Two 3x3 convs on the residual path: entry needs out + 2 halo each
        # side; the identity path alone would need only `out`.
        assert req[stem_id].shape == (8, 8)

    def test_exit_must_be_member(self):
        g = conv_chain(2)
        view = subgraph_view(g, [1])
        with pytest.raises(Exception):
            required_regions(view, 2, Region.from_bounds([0, 0], [4, 4]))


class TestPaddingGrowth:
    def test_pointwise_only_is_zero(self):
        b = GraphBuilder("pw", TensorSpec(1, 4, (16, 16)))
        b.relu(name="r1")
        b.batchnorm(name="bn")
        g = b.finish()
        view = subgraph_view(g, [1, 2])
        assert padding_growth(view, None, (4, 4)) == pytest.approx(0.0)

    def test_growth_increases_with_depth(self):
        deltas = []
        for n in (1, 2, 4):
            g = conv_chain(n)
            view = subgraph_view(g, list(range(1, n + 1)))
            deltas.append(padding_growth(view, None, (4, 4)))
        assert deltas[0] < deltas[1] < deltas[2]

    def test_growth_decreases_with_brick_size(self):
        g = conv_chain(2)
        view = subgraph_view(g, [1, 2])
        d4 = padding_growth(view, None, (4, 4))
        d8 = padding_growth(view, None, (8, 8))
        d16 = padding_growth(view, None, (16, 16))
        assert d4 > d8 > d16

    def test_strided_subgraph_can_be_negative(self):
        """Stride-2 1x1 convs read only a quarter of the input."""
        b = GraphBuilder("s", TensorSpec(1, 4, (16, 16)))
        b.conv(4, 1, stride=2, bias=False, name="c")
        g = b.finish()
        view = subgraph_view(g, [1])
        assert padding_growth(view, None, (4, 4)) < 0

    def test_chain_padded_sizes_reports_fig4(self):
        g = conv_chain(2, size=64)
        view = subgraph_view(g, [1, 2])
        sizes = dict(chain_padded_sizes(view, 2, (8, 8)))
        assert sizes["conv1"] == (8, 8)
        assert sizes["conv0"] == (10, 10)


class TestBrickSizeModel:
    def test_paper_112_cubed_picks_8(self):
        d = choose_brick_size((112, 112, 112), kernel_extent=3)
        assert d.brick == 8 and not d.fallback

    def test_paper_224_cubed_picks_16(self):
        d = choose_brick_size((224, 224, 224), kernel_extent=3)
        assert d.brick == 16 and not d.fallback

    def test_2d_picks_smallest_candidate(self):
        d = choose_brick_size((56, 56), kernel_extent=3)
        assert d.brick == 4

    def test_rho_must_not_exceed_tau(self):
        d = choose_brick_size((112, 112, 112))
        assert d.rho <= DEFAULT_CONFIG.tau

    def test_tiny_layer_falls_back(self):
        d = choose_brick_size((7, 7), kernel_extent=3)
        assert d.fallback

    def test_kernel_constraint_excludes_small_bricks(self):
        # Effective 9-wide (dilated) kernels need at least 16-bricks.
        d = choose_brick_size((64, 64), kernel_extent=9)
        assert d.brick >= 16

    def test_parallelism_formula(self):
        assert parallelism((16, 16), 4) == 16.0


class TestStrategyModel:
    def test_threshold(self):
        assert choose_strategy(0.10) is Strategy.PADDED
        assert choose_strategy(0.20) is Strategy.MEMOIZED
        assert choose_strategy(0.15) is Strategy.PADDED  # strictly greater

    def test_custom_threshold(self):
        cfg = PerfModelConfig(delta_threshold=0.5)
        assert choose_strategy(0.3, cfg) is Strategy.PADDED
