"""Model zoo tests: all seven networks build, shape-check, and (reduced)
run identically under the reference executor, BrickDL and the baseline."""


import numpy as np
import pytest

from repro.baselines import CudnnBaseline
from repro.core import BrickDLEngine, ReferenceExecutor
from repro.core.plan import Strategy
from repro.errors import ReproError
from repro.models import MODELS, build

from testlib import input_for

ALL = sorted(MODELS)


class TestConstruction:
    @pytest.mark.parametrize("name", ALL)
    def test_full_scale_builds(self, name):
        g = build(name)
        g.validate()
        assert len(g) > 20

    @pytest.mark.parametrize("name", ALL)
    def test_reduced_builds(self, name):
        g = build(name, reduced=True)
        g.validate()

    def test_unknown_model(self):
        with pytest.raises(ReproError):
            build("alexnet")

    def test_flop_sanity_full_scale(self):
        """Known ballpark figures (2x MACs) for the classic models."""
        assert 25e9 < build("vgg16").total_flops() < 40e9
        assert 6e9 < build("resnet50").total_flops() < 11e9
        assert 10e9 < build("darknet53").total_flops() < 20e9

    def test_classifier_outputs(self):
        for name in ("vgg16", "resnet50", "darknet53", "drn26", "inception_v4", "resnet3d34"):
            g = build(name, reduced=True)
            out = g.output_nodes[0]
            assert out.spec.spatial == ()  # class vector

    def test_deepcam_is_dense_prediction(self):
        g = build("deepcam", reduced=True)
        out = g.output_nodes[0]
        inp = g.input_nodes[0]
        assert out.spec.spatial == inp.spec.spatial  # per-pixel map

    def test_resnet50_has_projection_and_identity_skips(self):
        g = build("resnet50", reduced=True)
        names = [n.name for n in g.nodes]
        assert "stage1/block1/proj" in names
        assert "stage1/block2/add" in names and "stage1/block2/proj" not in names

    def test_drn_has_dilated_convs(self):
        g = build("drn26", reduced=True)
        dilated = [n for n in g.nodes if getattr(n.op, "dilation", None) and max(n.op.dilation) > 1]
        assert dilated

    def test_inception_has_concats(self):
        g = build("inception_v4", reduced=True)
        assert any(n.op.kind == "concat" for n in g.nodes)

    def test_deepcam_has_deconvs(self):
        g = build("deepcam", reduced=True)
        assert any(n.op.kind == "convtranspose" for n in g.nodes)

    def test_resnet3d_is_3d(self):
        g = build("resnet3d34", reduced=True)
        assert g.input_nodes[0].spec.spatial_ndim == 3


@pytest.mark.parametrize("name", ALL)
class TestFunctionalEquivalence:
    def test_brickdl_matches_reference(self, name):
        g = build(name, reduced=True)
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(build(name, reduced=True)).run(x)
        for key, expected in ref.items():
            np.testing.assert_allclose(res.outputs[key], expected, atol=2e-3, rtol=1e-2)

    def test_cudnn_baseline_matches_reference(self, name):
        g = build(name, reduced=True)
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = CudnnBaseline(build(name, reduced=True)).run(x)
        for key, expected in ref.items():
            np.testing.assert_allclose(res.outputs[key], expected, atol=2e-3, rtol=1e-2)


class TestForcedStrategies:
    """The merged strategies must stay correct on branchy reduced models."""

    @pytest.mark.parametrize("name", ["resnet50", "inception_v4", "deepcam"])
    @pytest.mark.parametrize("strategy", [Strategy.PADDED, Strategy.MEMOIZED])
    def test_forced(self, name, strategy):
        g = build(name, reduced=True)
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(build(name, reduced=True), strategy_override=strategy).run(x)
        for key, expected in ref.items():
            np.testing.assert_allclose(res.outputs[key], expected, atol=2e-3, rtol=1e-2)
