"""The rewrite framework and its translation-validation pass.

Covers the seed rules' behavior (including the bit-identity contract the
FusedOp design buys), the runner, the rebatch weight-sharing regression,
one injected-unsound mutant per seed rule that the validator must provably
reject, the resnet50 acceptance scenario (node count down, outputs
bit-identical, manifests recorded with the DRAM-traffic delta), and a
hypothesis property: random rule sequences on the random-DAG corpus keep
reference outputs bit-identical and survive serialize round-trips.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import validate_rewrite
from repro.core.reference import ReferenceExecutor
from repro.errors import ReproError, RewriteError
from repro.graph.builder import GraphBuilder
from repro.graph.ops import Conv, FusedOp
from repro.graph.serialize import graph_from_dict, graph_to_dict, load_graph, save_graph
from repro.graph.tensorspec import TensorSpec
from repro.graph.transforms import rebatch_graph
from repro.rewrite import (
    FixedPoint,
    FoldConvBatchNorm,
    FusePointwiseChains,
    LayoutAwareCSE,
    Once,
    PruneDeadNodes,
    PruneIdentityOps,
    RebatchRule,
    RemovedNode,
    Rewrite,
    Rule,
    RuleBatch,
    RuleRunner,
    batches_from_names,
    default_batches,
)
from repro.rewrite.rules import RULES, _rebuild
from testlib import input_for, random_dag, residual_graph, small_chain_graph


def outputs_of(graph, feeds):
    return ReferenceExecutor(graph).run(feeds)


def assert_bit_identical(graph_a, graph_b, seed=0):
    feeds = {n.name: np.random.default_rng(seed).standard_normal(n.spec.shape)
             .astype(n.spec.dtype) for n in graph_a.input_nodes}
    out_a = outputs_of(graph_a, feeds)
    out_b = outputs_of(graph_b, feeds)
    assert out_a.keys() == out_b.keys()
    for name in out_a:
        assert np.array_equal(out_a[name], out_b[name]), name


# -- seed rules ---------------------------------------------------------------
class TestSeedRules:
    def test_fold_conv_bn_builds_fused_host(self):
        g = small_chain_graph()
        g.init_weights()
        rw = FoldConvBatchNorm().apply(g)
        assert rw is not None
        assert rw.graph is not g and len(rw.graph) < len(g)
        hosts = [n for n in rw.graph.nodes if isinstance(n.op, FusedOp)]
        assert hosts and all(isinstance(h.op.primary, Conv) for h in hosts)
        # The host keeps the BN node's name; the conv is declared fused into it.
        for removed in rw.removed:
            assert removed.reason == "fused"
            assert removed.into in rw.fused
        assert_bit_identical(g, rw.graph)

    def test_fold_iterates_to_absorb_bn_chains(self):
        # conv -> bn -> bn: two fixed-point rounds fold both into one host.
        b = GraphBuilder("chain", TensorSpec(1, 3, (8, 8)))
        b.conv(4, 3, padding=1, name="conv")
        b.batchnorm(name="bn_a")
        b.batchnorm(name="bn_b")
        g = b.graph
        g.mark_output(b.current)
        g.init_weights()
        report = RuleRunner((RuleBatch("fuse", FixedPoint(4), (FoldConvBatchNorm(),)),),
                            validate="full").run(g)
        assert report.ok and report.rules_fired() == {"fold-conv-bn": 2}
        host = report.graph.node("bn_b")
        assert [s.kind for s in host.op.stages] == ["conv", "batchnorm", "batchnorm"]
        assert_bit_identical(g, report.graph)

    def test_fuse_pointwise_chain(self):
        # pool -> bn -> relu: the bn+relu run fuses, pool stays primary-free.
        b = GraphBuilder("pw", TensorSpec(1, 4, (8, 8)))
        b.maxpool(2, name="pool")
        b.batchnorm(name="bn")
        b.relu(name="relu")
        g = b.graph
        g.mark_output(b.current)
        g.init_weights()
        rw = FusePointwiseChains().apply(g)
        assert rw is not None and rw.fused == {"relu": ("bn", "relu")}
        host = rw.graph.node("relu")
        assert isinstance(host.op, FusedOp)
        assert [s.kind for s in host.op.stages] == ["batchnorm", "activation"]
        assert_bit_identical(g, rw.graph)

    def test_fuse_pointwise_respects_fanout_and_outputs(self):
        # bn has two consumers -> no sole-consumer run of length >= 2.
        b = GraphBuilder("fan", TensorSpec(1, 4, (8, 8)))
        bn = b.batchnorm(name="bn")
        r1 = b.relu(src=bn, name="r1")
        r2 = b.relu(src=bn, name="r2")
        g = b.graph
        out = b.add(r1, r2, name="out")
        g.mark_output(out)
        g.init_weights()
        assert FusePointwiseChains().apply(g) is None

    def test_prune_dead_nodes(self):
        b = GraphBuilder("dead", TensorSpec(1, 3, (8, 8)))
        live = b.conv(4, 3, padding=1, name="live")
        b.relu(src=live, name="dead_a")
        b.batchnorm(src=b.graph.node("dead_a"), name="dead_b")
        g = b.graph
        g.mark_output(live)
        rw = PruneDeadNodes().apply(g)
        assert rw is not None
        assert {r.name for r in rw.removed} == {"dead_a", "dead_b"}
        assert all(r.reason == "dead" for r in rw.removed)
        assert PruneDeadNodes().apply(rw.graph) is None

    def test_prune_identity_ops(self):
        b = GraphBuilder("ident", TensorSpec(1, 4, (8, 8)))
        b.conv(4, 3, padding=1, name="conv")
        b.maxpool(1, name="noop_pool")
        bn = b.batchnorm(name="noop_bn")
        b.relu(name="out")
        g = b.graph
        g.mark_output(b.current)
        g.init_weights()
        bn.weights["scale"][:] = 1.0
        bn.weights["shift"][:] = 0.0
        rw = PruneIdentityOps().apply(g)
        assert rw is not None
        assert {r.name for r in rw.removed} == {"noop_pool", "noop_bn"}
        report = validate_rewrite(g, rw, PruneIdentityOps(), differential=True)
        assert report.ok, [d.render() for d in report.errors]
        assert_bit_identical(g, rw.graph)

    def test_identity_rule_leaves_real_ops_alone(self):
        g = small_chain_graph()
        g.init_weights()  # random scale/shift: nothing is provably identity
        assert PruneIdentityOps().apply(g) is None

    def test_layout_aware_cse_merges_twins(self):
        b = GraphBuilder("cse", TensorSpec(1, 3, (8, 8)))
        src = b.current
        c1 = b.conv(4, 3, padding=1, src=src, name="twin_a")
        c2 = b.conv(4, 3, padding=1, src=src, name="twin_b")
        g = b.graph
        out = b.add(c1, c2, name="out")
        g.mark_output(out)
        g.init_weights()
        # Same op + inputs but different weights: must NOT merge.
        assert LayoutAwareCSE().apply(g) is None
        g.node("twin_b").weights = dict(g.node("twin_a").weights)
        rw = LayoutAwareCSE().apply(g)
        assert rw is not None
        assert rw.removed == (RemovedNode("twin_b", "merged", into="twin_a"),)
        report = validate_rewrite(g, rw, LayoutAwareCSE(), differential=True)
        assert report.ok, [d.render() for d in report.errors]
        assert_bit_identical(g, rw.graph)

    def test_rules_registry_covers_seed_rules(self):
        assert set(RULES) == {"fold-conv-bn", "fuse-pointwise", "prune-dead",
                              "prune-identity", "cse"}
        with pytest.raises(ReproError, match="unknown rewrite rule"):
            batches_from_names(["definitely-not-a-rule"])


# -- rebatch: the ported production rule --------------------------------------
class TestRebatchRule:
    def test_shared_weight_identity_regression(self):
        """The audited clone: fresh dicts per graph, *same* arrays."""
        g = small_chain_graph()
        g.init_weights()
        batched = rebatch_graph(g, 4)
        for node in g.nodes:
            if not node.weights:
                continue
            twin = batched.node(node.name)
            assert twin.weights is not node.weights  # the fixed bug: dict copied
            for key, array in node.weights.items():
                assert twin.weights[key] is array  # ...but arrays shared

    def test_noop_returns_none_and_wrapper_returns_same_graph(self):
        g = small_chain_graph()
        assert RebatchRule(1).apply(g) is None
        assert rebatch_graph(g, 1) is g
        with pytest.raises(ReproError):
            RebatchRule(0)

    def test_rebatch_validates_including_per_sample_differential(self):
        g = small_chain_graph(size=16)
        g.init_weights()
        rw = RebatchRule(3).apply(g)
        assert rw is not None and rw.batch == 3
        report = validate_rewrite(g, rw, RebatchRule(3), differential=True)
        assert report.ok, [d.render() for d in report.errors]
        assert all(n.spec.batch == 3 for n in rw.graph.input_nodes)


# -- the runner ---------------------------------------------------------------
class TestRuleRunner:
    def test_default_pipeline_on_residual_graph(self):
        g = residual_graph()
        g.init_weights()
        report = RuleRunner(default_batches(), validate="full").run(g)
        assert report.ok, report.summary()
        assert report.nodes_after < report.nodes_before
        assert report.rules_fired().get("fold-conv-bn", 0) >= 1
        assert_bit_identical(g, report.graph)
        # Manifest block is JSON-shaped and self-consistent.
        doc = report.manifest_dict()
        assert doc["validated"] == "full" and doc["ok"]
        assert doc["nodes_after"] == len(report.graph)
        assert len(doc["steps"]) == len(report.steps)

    def test_runner_rejects_bad_validate_level(self):
        with pytest.raises(ReproError, match="validate"):
            RuleRunner(validate="paranoid")

    def test_engine_compile_optimize(self):
        from repro.core.engine import BrickDLEngine

        g = small_chain_graph()
        engine = BrickDLEngine(g)
        plan = engine.compile(optimize=True)
        assert engine.rewrite_report is not None and engine.rewrite_report.ok
        assert len(engine.graph) < len(g)
        assert plan.graph is engine.graph
        x = input_for(g)
        merged = engine.run(x, functional=True, plan=plan).outputs
        ref = ReferenceExecutor(g).run(x)
        for name in ref:
            np.testing.assert_allclose(merged[name], ref[name], atol=1e-4, rtol=1e-4)

    def test_engine_raises_on_unsound_rule(self):
        from repro.core.engine import BrickDLEngine

        class DropOutput(Rule):
            name = "drop-output"

            def apply(self, graph):
                bn = graph.node("c2/bn")
                return Rewrite(self.name, _rebuild(
                    graph, forward={bn.node_id: bn.inputs[0]}))

        g = small_chain_graph()
        g.init_weights()
        engine = BrickDLEngine(g)
        with pytest.raises(RewriteError, match="translation validation"):
            engine.compile(optimize=True,
                           rules=(RuleBatch("bad", Once(), (DropOutput(),)),))
        assert engine.graph is g  # the unsound rewrite was not adopted


# -- injected-unsound mutants: one per seed rule ------------------------------
def _mutant_graph():
    g = residual_graph()
    g.init_weights()
    return g


def _codes(report):
    return {d.code for d in report.errors}


class TestMutantsAreRejected:
    def test_dead_mutant_dropping_live_node(self):
        # "prune-dead" mutant: declares a live BN dead and rewires around it.
        g = _mutant_graph()
        node = g.node("b1/bn1")

        class BadDead(PruneDeadNodes):
            def apply(self, graph):
                return Rewrite(self.name,
                               _rebuild(graph, forward={node.node_id: node.inputs[0]}),
                               removed=(RemovedNode(node.name, "dead"),))

        report = validate_rewrite(g, BadDead().apply(g), BadDead(), differential=True)
        assert not report.ok
        assert "rewrite.live-node-dropped" in _codes(report)
        assert "rewrite.differential" in _codes(report)

    def test_identity_mutant_removing_effectful_bn(self):
        # "prune-identity" mutant: removes a BN whose scale/shift are random.
        g = _mutant_graph()
        node = g.node("b1/bn2")

        class BadIdentity(PruneIdentityOps):
            def apply(self, graph):
                return Rewrite(
                    self.name,
                    _rebuild(graph, forward={node.node_id: node.inputs[0]}),
                    removed=(RemovedNode(node.name, "identity",
                                         into=graph.node(node.inputs[0]).name),))

        report = validate_rewrite(g, BadIdentity().apply(g), BadIdentity(),
                                  differential=True)
        assert not report.ok
        assert "rewrite.not-identity" in _codes(report)

    def test_cse_mutant_merging_nontwins(self):
        # "cse" mutant: merges the two convs of block 1, whose weights differ.
        g = _mutant_graph()
        a = g.node("b1/conv1")
        victim = g.node("b1/conv2")

        class BadCSE(LayoutAwareCSE):
            def apply(self, graph):
                return Rewrite(
                    self.name,
                    _rebuild(graph, forward={victim.node_id: a.node_id}),
                    removed=(RemovedNode(victim.name, "merged", into=a.name),))

        report = validate_rewrite(g, BadCSE().apply(g), BadCSE(), differential=True)
        assert not report.ok
        assert "rewrite.merge-mismatch" in _codes(report)

    def test_fold_mutant_corrupting_fused_weights(self):
        # "fold-conv-bn" mutant: the fusion is structurally right but the
        # host's epilogue weights are zeroed -- numerically a different model.
        g = _mutant_graph()

        class BadFold(FoldConvBatchNorm):
            def apply(self, graph):
                rw = super().apply(graph)
                host = rw.graph.node(next(iter(rw.fused)))
                for key in host.weights:
                    if key.startswith("fused"):
                        host.weights[key] = np.zeros_like(host.weights[key])
                return rw

        report = validate_rewrite(g, BadFold().apply(g), BadFold(), differential=True)
        assert not report.ok
        assert "rewrite.fused-weights" in _codes(report)
        assert "rewrite.differential" in _codes(report)

    def test_chain_mutant_reordering_stages(self):
        # "fuse-pointwise" mutant: fuses bn -> relu but executes relu -> bn.
        b = GraphBuilder("pw", TensorSpec(1, 4, (8, 8)))
        b.maxpool(2, name="pool")
        b.batchnorm(name="bn")
        b.relu(name="relu")
        g = b.graph
        g.mark_output(b.current)
        g.init_weights()

        class BadChain(FusePointwiseChains):
            def apply(self, graph):
                rw = super().apply(graph)
                host = rw.graph.node("relu")
                flipped = FusedOp(host.op.epilogue[0], (host.op.primary,))
                bn_weights = dict(host.weights)  # bn was stage 0: unprefixed
                host.op = flipped
                host.weights = flipped.join_weights([{}, bn_weights])
                return rw

        rw = BadChain().apply(g)
        report = validate_rewrite(g, rw, BadChain(), differential=True)
        assert not report.ok
        assert "rewrite.fused-chain" in _codes(report)

    def test_rebatch_mutant_copying_weights(self):
        # "rebatch" mutant: value-equal weight *copies* instead of shared
        # arrays -- silently doubles memory and voids the serving-layer
        # bit-identity argument, so the obligation is checked by identity.
        g = _mutant_graph()

        class BadRebatch(RebatchRule):
            def apply(self, graph):
                rw = super().apply(graph)
                for node in rw.graph.nodes:
                    node.weights = {k: v.copy() for k, v in node.weights.items()}
                return rw

        rw = BadRebatch(2).apply(g)
        report = validate_rewrite(g, rw, BadRebatch(2))
        assert not report.ok
        assert "rewrite.weights-not-shared" in _codes(report)
        # The honest rule passes the same check.
        good = RebatchRule(2).apply(g)
        assert validate_rewrite(g, good, RebatchRule(2)).ok


# -- serialization ------------------------------------------------------------
class TestFusedOpSerialization:
    def test_fused_graph_roundtrips_with_weights(self, tmp_path):
        g = small_chain_graph()
        g.init_weights()
        report = RuleRunner(default_batches(), validate="static").run(g)
        assert any(isinstance(n.op, FusedOp) for n in report.graph.nodes)
        path = tmp_path / "fused.json"
        save_graph(report.graph, path)
        loaded = load_graph(path)
        assert_bit_identical(report.graph, loaded)
        # Structure-only round-trip too (what the linter checks).
        rebuilt = graph_from_dict(graph_to_dict(report.graph))
        assert [n.op for n in rebuilt.nodes] == [n.op for n in report.graph.nodes]


# -- acceptance: resnet50 -----------------------------------------------------
class TestResnet50Acceptance:
    def test_fold_reduces_nodes_bit_identically_with_manifest_delta(self, tmp_path):
        from repro.bench.harness import record_bench_manifest

        from repro.models import zoo

        g = zoo.build("resnet50", reduced=True)
        report = RuleRunner(default_batches(), validate="full").run(g)
        assert report.ok, report.summary()
        assert report.nodes_after < report.nodes_before  # conv+BN folds
        assert report.rules_fired().get("fold-conv-bn", 0) >= 1
        # Bit-identical outputs (independently of the validator's own run).
        assert_bit_identical(g, report.graph)

        base, _ = record_bench_manifest("resnet50", out_dir=tmp_path,
                                        reduced=True, label="base")
        opt, _ = record_bench_manifest("resnet50", out_dir=tmp_path,
                                       reduced=True, label="rewritten",
                                       optimize=True)
        assert opt.rewrite and opt.rewrite["ok"]
        assert opt.rewrite["nodes_after"] < opt.rewrite["nodes_before"]
        # The recorded DRAM-traffic delta: fusion must never add traffic (at
        # reduced scale the fallback already groups conv+pointwise, so the
        # delta is ~0; the win shows up in task count and total time).
        delta = opt.metrics["memory"]["dram_txns"] - base.metrics["memory"]["dram_txns"]
        assert delta <= 0
        assert opt.metrics["num_tasks"] < base.metrics["num_tasks"]
        assert opt.metrics["time"]["total"] <= base.metrics["time"]["total"]
        assert not base.rewrite  # unoptimized manifest records no rewrite


# -- property: random rule sequences on the random-DAG corpus -----------------
RULE_NAMES = sorted(RULES)


class TestRewriteProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag(),
           st.lists(st.sampled_from(RULE_NAMES), min_size=1, max_size=6))
    def test_random_rule_sequences_are_sound(self, graph, names):
        graph.init_weights()
        feeds = {n.name: np.random.default_rng(0).standard_normal(n.spec.shape)
                 .astype(n.spec.dtype) for n in graph.input_nodes}
        before = outputs_of(graph, feeds)
        batches = (RuleBatch("random", Once(),
                             tuple(RULES[name]() for name in names)),)
        report = RuleRunner(batches, validate="full").run(graph)
        assert report.ok, report.summary()
        after = outputs_of(report.graph, feeds)
        for name in before:
            assert np.array_equal(before[name], after[name]), name
        # Serialize round-trip stability of the rewritten graph.
        rebuilt = graph_from_dict(graph_to_dict(report.graph))
        for node, twin in zip(report.graph.nodes, rebuilt.nodes):
            assert node.name == twin.name and node.op == twin.op
            twin.weights = dict(node.weights)
        for name in before:
            assert np.array_equal(before[name],
                                  outputs_of(rebuilt, feeds)[name]), name
