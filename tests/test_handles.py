"""Tensor handle tests: access emission geometry and mode guards."""

import numpy as np
import pytest

from repro.core.handles import BrickedHandle, DenseHandle
from repro.errors import ExecutionError
from repro.graph.regions import Region
from repro.graph.tensorspec import TensorSpec
from repro.gpusim.trace import Buffer, Task


def dense_handle(functional=True, spatial=(8, 12), c=2):
    spec = TensorSpec(1, c, spatial)
    buf = Buffer.new("d", spec.nbytes)
    data = np.arange(spec.num_elements, dtype=np.float32).reshape(spec.shape) if functional else None
    return DenseHandle(spec, buf, data)


def bricked_handle(functional=True, spatial=(8, 12), c=2, brick=(4, 4)):
    spec = TensorSpec(1, c, spatial)
    import math

    grid_bricks = math.prod(-(-e // b) for e, b in zip(spatial, brick))
    buf = Buffer.new("b", grid_bricks * c * math.prod(brick) * 4)
    return BrickedHandle.create(spec, brick, buf, functional)


class TestDenseHandle:
    def test_region_access_geometry(self):
        h = dense_handle()
        task = Task("t")
        h.emit_region_read(task, 0, Region.from_bounds([2, 3], [5, 9]))
        (a,) = task.accesses
        assert a.nbytes == 6 * 4                       # 6-wide row segment
        assert a.reps == ((2, 8 * 12 * 4), (3, 12 * 4))  # channels x rows
        assert a.offset == (2 * 12 + 3) * 4
        assert a.dense

    def test_region_clip(self):
        h = dense_handle()
        task = Task("t")
        h.emit_region_read(task, 0, Region.from_bounds([-2, -2], [3, 3]))
        (a,) = task.accesses
        assert a.offset == 0
        assert a.segments == 2 * 3

    def test_empty_region_emits_nothing(self):
        h = dense_handle()
        task = Task("t")
        h.emit_region_read(task, 0, Region.from_bounds([10, 0], [9, 4]))
        assert not task.accesses

    def test_gather_matches_data(self):
        h = dense_handle()
        patch = h.gather(0, Region.from_bounds([1, 2], [4, 6]))
        np.testing.assert_array_equal(patch, h.data[0][:, 1:4, 2:6])

    def test_gather_fill_outside(self):
        h = dense_handle()
        patch = h.gather(0, Region.from_bounds([-1, 0], [1, 2]), fill=-7.0)
        assert (patch[:, 0, :] == -7.0).all()

    def test_profile_mode_guard(self):
        h = dense_handle(functional=False)
        with pytest.raises(ExecutionError):
            h.require_data()


class TestBrickedHandle:
    def test_brick_offsets_contiguous(self):
        h = bricked_handle()
        n = h.brick_nbytes
        assert h.brick_offset(0, (0, 0)) == 0
        assert h.brick_offset(0, (0, 1)) == n
        assert h.brick_offset(0, (1, 0)) == 3 * n  # grid is 2x3

    def test_region_read_counts_bricks(self):
        h = bricked_handle()
        task = Task("t")
        count = h.emit_region_read(task, 0, Region.from_bounds([3, 3], [5, 5]))
        assert count == 4  # straddles a 2x2 brick neighborhood
        assert all(a.nbytes == h.brick_nbytes for a in task.accesses)

    def test_brick_write(self):
        h = bricked_handle()
        task = Task("t")
        h.emit_brick_write(task, 0, (1, 2))
        (a,) = task.accesses
        assert a.write and a.offset == h.brick_offset(0, (1, 2))

    def test_profile_mode_has_no_data(self):
        h = bricked_handle(functional=False)
        assert h.data is None
        with pytest.raises(ExecutionError):
            h.gather(0, Region.from_bounds([0, 0], [2, 2]))

    def test_profile_physical_is_identity(self):
        h = bricked_handle(functional=False)
        assert h.physical((1, 2)) == 1 * 3 + 2

    def test_bricks_enumerates_grid(self):
        h = bricked_handle()
        assert len(list(h.bricks())) == h.grid.num_bricks
