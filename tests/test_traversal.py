"""Traversal, subgraph views and subgraph materialization."""

import numpy as np
import pytest

from repro.core import ReferenceExecutor
from repro.errors import GraphError
from repro.graph.traversal import (
    materialize_subgraph,
    reverse_order,
    subgraph_view,
    topological_order,
)

from testlib import input_for, residual_graph, small_chain_graph


class TestOrders:
    def test_topological(self):
        g = small_chain_graph()
        order = topological_order(g)
        seen = set()
        for node in order:
            assert all(i in seen for i in node.inputs)
            seen.add(node.node_id)

    def test_reverse(self):
        g = small_chain_graph()
        assert reverse_order(g) == list(reversed(topological_order(g)))


class TestSubgraphView:
    def test_entries_and_exits(self):
        g = residual_graph()
        ids = [g.node(n).node_id for n in ("b1/conv1", "b1/bn1", "b1/relu1", "b1/conv2", "b1/bn2", "b1/add")]
        view = subgraph_view(g, ids)
        entry_names = {g.node(i).name for i in view.entry_ids}
        # The add's skip input and conv1's input are both the stem output.
        assert entry_names == {"stem/relu"}
        assert [g.node(i).name for i in view.exit_ids] == ["b1/add"]

    def test_depth(self):
        g = small_chain_graph()
        ids = [g.node(n).node_id for n in ("c1/conv", "c1/bn", "c1/relu")]
        assert subgraph_view(g, ids).depth == 3

    def test_contains(self):
        g = small_chain_graph()
        view = subgraph_view(g, [1, 2])
        assert 1 in view and 5 not in view

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            subgraph_view(small_chain_graph(), [])


class TestMaterialize:
    def test_standalone_equivalence(self):
        """A materialized subgraph computes the same values as in-situ."""
        g = residual_graph()
        g.init_weights()
        x = input_for(g)
        full = ReferenceExecutor(g).run_all(x)

        ids = [g.node(n).node_id for n in ("b1/conv1", "b1/bn1", "b1/relu1", "b1/conv2", "b1/bn2", "b1/add")]
        view = subgraph_view(g, ids)
        sub = materialize_subgraph(view)
        # Copy weights from the parent so numerics match.
        for nid in view.node_ids:
            sub.node(g.node(nid).name).weights = g.node(nid).weights
        feeds = {f"in/{g.node(i).name}": full[g.node(i).name] for i in view.entry_ids}
        out = ReferenceExecutor(sub).run(feeds)
        np.testing.assert_allclose(out["b1/add"], full["b1/add"], rtol=1e-5, atol=1e-5)

    def test_multi_exit(self):
        g = residual_graph()
        ids = [g.node("b2/conv1").node_id, g.node("b2/bn1").node_id]
        view = subgraph_view(g, ids)
        sub = materialize_subgraph(view)
        assert len(sub.output_nodes) == len(view.exit_ids)
