"""Shared graph-building helpers for the test suite."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec


def small_chain_graph(size: int = 48, channels: int = 3, name: str = "chain"):
    """conv-bn-relu x2 + pool + strided conv + head: exercises every basic
    op class and produces at least one merged subgraph at 48x48."""
    b = GraphBuilder(name, TensorSpec(1, channels, (size, size)))
    b.conv_bn_relu(8, 3, prefix="c1")
    b.conv_bn_relu(8, 3, prefix="c2")
    b.maxpool(2, name="pool")
    b.conv_bn_relu(16, 3, stride=2, prefix="c3")
    b.classifier(10)
    return b.graph


def residual_graph(size: int = 32, name: str = "residual"):
    """A two-block residual graph (identity + projection skips)."""
    b = GraphBuilder(name, TensorSpec(1, 4, (size, size)))
    b.conv_bn_relu(8, 3, prefix="stem")
    identity = b.current
    b.conv(8, 3, padding=1, bias=False, name="b1/conv1")
    b.batchnorm(name="b1/bn1")
    b.relu(name="b1/relu1")
    x = b.conv(8, 3, padding=1, bias=False, name="b1/conv2")
    x = b.batchnorm(name="b1/bn2")
    x = b.add(x, identity, name="b1/add")
    b.relu(src=x, name="b1/out")
    identity2 = b.current
    x = b.conv(16, 3, stride=2, padding=1, bias=False, name="b2/conv1")
    x = b.batchnorm(name="b2/bn1")
    x = b.relu(name="b2/relu1")
    x = b.conv(16, 3, padding=1, bias=False, name="b2/conv2")
    x = b.batchnorm(name="b2/bn2")
    skip = b.conv(16, 1, stride=2, bias=False, src=identity2, name="b2/proj")
    x = b.add(x, skip, name="b2/add")
    b.relu(src=x, name="b2/out")
    b.classifier(10)
    return b.graph


def input_for(graph, seed: int = 0) -> np.ndarray:
    spec = graph.input_nodes[0].spec
    return np.random.default_rng(seed).standard_normal(spec.shape).astype(np.float32)


@st.composite
def random_dag(draw):
    """A random small DAG mixing convs, pointwise ops, adds and concats.

    The corpus behind the property tests: merged-vs-naive equivalence in
    test_export_and_random_dags.py and rewrite soundness in test_rewrite.py.
    """
    size = draw(st.sampled_from([16, 24]))
    b = GraphBuilder("dag", TensorSpec(1, 4, (size, size)))
    frontier = [b.current]
    n_ops = draw(st.integers(2, 7))
    for i in range(n_ops):
        kind = draw(st.sampled_from(["conv", "relu", "bn", "add", "concat", "branch"]))
        src = frontier[draw(st.integers(0, len(frontier) - 1))]
        try:
            if kind == "conv":
                node = b.conv(4, 3, padding=1, src=src, name=f"n{i}")
            elif kind == "relu":
                node = b.relu(src=src, name=f"n{i}")
            elif kind == "bn":
                node = b.batchnorm(src=src, name=f"n{i}")
            elif kind == "add":
                other = frontier[draw(st.integers(0, len(frontier) - 1))]
                if other.spec != src.spec:
                    continue
                node = b.add(src, other, name=f"n{i}")
            elif kind == "concat":
                other = frontier[draw(st.integers(0, len(frontier) - 1))]
                if other.spec.spatial != src.spec.spatial:
                    continue
                node = b.concat([src, other], name=f"n{i}")
                node = b.conv(4, 1, src=node, name=f"n{i}proj")  # re-normalize channels
            else:  # branch: add a parallel conv off src
                node = b.conv(4, 3, padding=1, src=src, name=f"n{i}")
            frontier.append(node)
        except Exception:
            continue
    # Join the frontier into a single output so everything is live.
    out = frontier[-1]
    for other in frontier[:-1]:
        if other.spec == out.spec:
            out = b.add(out, other, name=f"join{other.node_id}")
    return b.finish(output=out)
