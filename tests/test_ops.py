"""Shape inference, flop counts and classification of every operator."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graph.ops import (
    Activation,
    Add,
    BatchNorm,
    Bias,
    Concat,
    Conv,
    ConvTranspose,
    Dense,
    Flatten,
    GlobalAvgPool,
    InputOp,
    Pool,
    Softmax,
    normalize_tuple,
)
from repro.graph.tensorspec import TensorSpec


def spec2d(c=8, h=16, w=16, n=1):
    return TensorSpec(n, c, (h, w))


class TestConv:
    def test_same_padding_shape(self):
        op = Conv(out_channels=16, kernel=(3, 3), padding=1)
        out = op.infer([spec2d()])
        assert out.shape == (1, 16, 16, 16)

    def test_strided_dilated(self):
        op = Conv(out_channels=4, kernel=(3, 3), stride=2, padding=2, dilation=2)
        out = op.infer([spec2d(h=17, w=17)])
        # (17 + 4 - 5)//2 + 1 = 9
        assert out.spatial == (9, 9)

    def test_3d(self):
        op = Conv(out_channels=4, kernel=(3, 3, 3), padding=1)
        out = op.infer([TensorSpec(1, 2, (8, 9, 10))])
        assert out.spatial == (8, 9, 10)

    def test_depthwise_groups(self):
        op = Conv(out_channels=8, kernel=(3, 3), padding=1, groups=8)
        out = op.infer([spec2d(c=8)])
        assert out.channels == 8
        w = op.init_weights([spec2d(c=8)], np.random.default_rng(0))
        assert w["weight"].shape == (8, 1, 3, 3)

    def test_group_mismatch(self):
        with pytest.raises(ShapeError):
            Conv(out_channels=8, kernel=(3, 3), groups=3).infer([spec2d(c=8)])

    def test_rank_mismatch(self):
        with pytest.raises(ShapeError):
            Conv(out_channels=8, kernel=(3, 3, 3)).infer([spec2d()])

    def test_flops(self):
        op = Conv(out_channels=16, kernel=(3, 3), padding=1)
        assert op.flops_per_element([spec2d(c=8)]) == 2 * 8 * 9

    def test_classification(self):
        op = Conv(out_channels=16, kernel=(3, 3))
        assert op.is_local and not op.is_global and not op.is_pointwise


class TestConvTranspose:
    def test_shape(self):
        op = ConvTranspose(out_channels=8, kernel=(4, 4), stride=2, padding=1)
        out = op.infer([spec2d(h=10, w=12)])
        assert out.spatial == (20, 24)

    def test_weights_layout(self):
        op = ConvTranspose(out_channels=8, kernel=(4, 4), stride=2, padding=1)
        w = op.init_weights([spec2d(c=6)], np.random.default_rng(0))
        assert w["weight"].shape == (6, 8, 4, 4)


class TestPool:
    def test_max_default_stride(self):
        op = Pool(kernel=(2, 2))
        assert op.infer([spec2d()]).spatial == (8, 8)
        assert op.is_reduction

    def test_padded_pool(self):
        op = Pool(kernel=(3, 3), stride=2, padding=1)
        assert op.infer([spec2d()]).spatial == (8, 8)

    def test_bad_mode(self):
        with pytest.raises(ShapeError):
            Pool(kernel=(2, 2), mode="median")


class TestPointwise:
    def test_activation_preserves_spec(self):
        s = spec2d()
        assert Activation("relu").infer([s]) == s
        assert Activation("relu").is_pointwise

    def test_unknown_activation(self):
        with pytest.raises(ShapeError):
            Activation("gelu")

    def test_batchnorm_weights(self):
        w = BatchNorm().init_weights([spec2d(c=5)], np.random.default_rng(0))
        assert w["scale"].shape == (5,) and w["shift"].shape == (5,)

    def test_bias(self):
        assert Bias().infer([spec2d()]) == spec2d()

    def test_add_shape_check(self):
        with pytest.raises(ShapeError):
            Add().infer([spec2d(c=4), spec2d(c=8)])
        assert Add().infer([spec2d(), spec2d()]) == spec2d()

    def test_softmax(self):
        assert Softmax().infer([spec2d()]) == spec2d()
        assert Softmax().is_pointwise


class TestConcat:
    def test_channel_concat(self):
        op = Concat(num_inputs=3)
        out = op.infer([spec2d(c=2), spec2d(c=3), spec2d(c=5)])
        assert out.channels == 10

    def test_spatial_mismatch(self):
        with pytest.raises(ShapeError):
            Concat(num_inputs=2).infer([spec2d(h=8), spec2d(h=9)])

    def test_arity(self):
        with pytest.raises(ShapeError):
            Concat(num_inputs=3).infer([spec2d(), spec2d()])


class TestHeads:
    def test_global_avg_pool(self):
        op = GlobalAvgPool()
        out = op.infer([spec2d(c=7)])
        assert out.spatial == (1, 1) and out.channels == 7
        assert op.is_global and op.is_reduction

    def test_flatten_dense(self):
        flat = Flatten().infer([spec2d(c=4, h=2, w=3)])
        assert flat.channels == 24 and flat.spatial == ()
        out = Dense(out_features=10).infer([flat])
        assert out.channels == 10

    def test_dense_requires_flat(self):
        with pytest.raises(ShapeError):
            Dense(out_features=10).infer([spec2d()])


class TestMisc:
    def test_input_op(self):
        s = spec2d()
        assert InputOp(s).infer([]) == s
        with pytest.raises(ShapeError):
            InputOp(s).infer([s])

    def test_normalize_tuple(self):
        assert normalize_tuple(3, 2, "x") == (3, 3)
        assert normalize_tuple((1, 2), 2, "x") == (1, 2)
        with pytest.raises(ShapeError):
            normalize_tuple((1, 2, 3), 2, "x")

    def test_weight_bytes_matches_init(self):
        op = Conv(out_channels=16, kernel=(3, 3), bias=True)
        specs = [spec2d(c=8)]
        ws = op.init_weights(specs, np.random.default_rng(0))
        assert op.weight_bytes(specs) == sum(w.nbytes for w in ws.values())


class TestWeightShapes:
    """`weight_shapes` is the analytic twin of `init_weights`: profile mode
    sizes weight buffers from it without materializing RNG arrays, so the
    two must agree shape-for-shape (and hence byte-for-byte)."""

    CASES = [
        (Conv(out_channels=16, kernel=(3, 3), bias=True), [None]),
        (Conv(out_channels=16, kernel=(3, 3), bias=False), [None]),
        (Conv(out_channels=16, kernel=(3, 3), groups=8), [None]),
        (ConvTranspose(out_channels=12, kernel=(2, 2), stride=2, bias=True), [None]),
        (BatchNorm(), [None]),
        (Bias(), [None]),
        (Activation("relu"), [None]),
        (Add(), [None, None]),
        (Pool(kernel=(2, 2), stride=2, mode="max"), [None]),
    ]

    def test_shapes_match_init_weights(self):
        rng = np.random.default_rng(0)
        for op, slots in self.CASES:
            specs = [spec2d(c=8) for _ in slots]
            shapes = op.weight_shapes(specs)
            weights = op.init_weights(specs, rng)
            assert set(shapes) == set(weights), op
            for name, shape in shapes.items():
                assert weights[name].shape == shape, (op, name)
            assert op.weight_bytes(specs) == sum(w.nbytes for w in weights.values())

    def test_dense_shapes_match(self):
        op = Dense(out_features=10, bias=True)
        specs = [TensorSpec(1, 64, ())]
        shapes = op.weight_shapes(specs)
        weights = op.init_weights(specs, np.random.default_rng(1))
        assert {k: v.shape for k, v in weights.items()} == shapes

    def test_zoo_graphs_agree(self):
        from repro.models import zoo

        for model in ("mobilenet_v1", "resnet50"):
            graph = zoo.build(model, reduced=True)
            rng = np.random.default_rng(0)
            for node in graph.nodes:
                specs = [graph.node(i).spec for i in node.inputs]
                shapes = node.op.weight_shapes(specs)
                weights = node.op.init_weights(specs, rng)
                assert {k: v.shape for k, v in weights.items()} == shapes, node.name
