"""Brick, BrickMap, BrickInfo and BrickedTensor tests (paper Fig. 6)."""

import numpy as np
import pytest

from repro.core.brick import Brick, BrickInfo, BrickMap, neighbor_offsets
from repro.core.bricked import BrickedTensor, BrickGrid
from repro.errors import LayoutError
from repro.graph.regions import Region


class TestBrickMap:
    def test_identity_roundtrip(self):
        bm = BrickMap((3, 4))
        for flat in range(12):
            pos = bm.unflatten(flat)
            assert bm.flatten(pos) == flat
            assert bm.logical(bm.physical(pos)) == pos

    def test_permuted_roundtrip(self):
        rng = np.random.default_rng(0)
        perm = rng.permutation(12)
        bm = BrickMap((3, 4), perm)
        for pos, phys in bm:
            assert bm.logical(phys) == pos

    def test_bad_permutation(self):
        with pytest.raises(LayoutError):
            BrickMap((2, 2), [0, 0, 1, 2])

    def test_out_of_grid(self):
        with pytest.raises(LayoutError):
            BrickMap((2, 2)).physical((2, 0))


class TestBrickInfo:
    def test_fig6_neighbor_structure(self):
        """A 4x4 grid: the brick at (1,1) has 8 neighbors (Fig. 6(c))."""
        bm = BrickMap((4, 4))
        info = BrickInfo(bm)
        phys = bm.physical((1, 1))
        neighbors = info.neighbors(phys)
        assert len(neighbors) == 8
        assert neighbors[(-1, -1)] == bm.physical((0, 0))
        assert neighbors[(1, 1)] == bm.physical((2, 2))

    def test_corner_has_three(self):
        info = BrickInfo(BrickMap((4, 4)))
        assert len(info.neighbors(0)) == 3

    def test_unknown_direction(self):
        info = BrickInfo(BrickMap((2, 2)))
        with pytest.raises(LayoutError):
            info.neighbor(0, (2, 0))

    def test_offsets_3d(self):
        assert len(neighbor_offsets(3)) == 26


class TestBrickGrid:
    def test_grid_shape_with_remainder(self):
        g = BrickGrid((13, 17), (4, 4))
        assert g.grid_shape == (4, 5)
        assert g.num_bricks == 20

    def test_brick_region_clipped(self):
        g = BrickGrid((13, 17), (4, 4))
        r = g.brick_region((3, 4), clipped=True)
        assert r.shape == (1, 1)

    def test_bricks_overlapping_clips_to_map(self):
        g = BrickGrid((8, 8), (4, 4))
        over = list(g.bricks_overlapping(Region.from_bounds([-3, 5], [2, 12])))
        assert over == [(0, 1)]


class TestBrickedTensor:
    def test_roundtrip_2d(self, rng):
        x = rng.standard_normal((2, 3, 13, 17)).astype(np.float32)
        bt = BrickedTensor.from_dense(x, (4, 4))
        np.testing.assert_array_equal(bt.to_dense(), x)

    def test_roundtrip_3d(self, rng):
        x = rng.standard_normal((1, 2, 9, 6, 7)).astype(np.float32)
        bt = BrickedTensor.from_dense(x, (4, 4, 4))
        np.testing.assert_array_equal(bt.to_dense(), x)

    def test_roundtrip_permuted_map(self, rng):
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        base = BrickedTensor.from_dense(x, (4, 4))
        perm = np.random.default_rng(7).permutation(base.grid.num_bricks)
        bt = BrickedTensor.from_dense(x, (4, 4), BrickMap(base.grid.grid_shape, perm))
        np.testing.assert_array_equal(bt.to_dense(), x)

    def test_brick_contiguous_bytes(self, rng):
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        bt = BrickedTensor.from_dense(x, (4, 4))
        assert bt.brick_nbytes == 3 * 16 * 4
        assert bt.storage[0, 0].flags["C_CONTIGUOUS"]

    def test_brick_access_interface(self, rng):
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        bt = BrickedTensor.from_dense(x, (4, 4))
        brick = bt.brick(0, (1, 1))
        np.testing.assert_array_equal(brick[(2, 3)], x[0, :, 6, 7])

    def test_gather_with_halo_and_fill(self, rng):
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        bt = BrickedTensor.from_dense(x, (4, 4))
        patch = bt.gather_region(0, Region.from_bounds([-1, 6], [3, 10]), fill=0.0)
        assert patch.shape == (2, 4, 4)
        assert (patch[:, 0, :] == 0).all()          # above the map
        assert (patch[:, :, 2:] == 0).all()         # right of the map
        np.testing.assert_array_equal(patch[:, 1:, :2], x[0, :, 0:3, 6:8])

    def test_scatter_then_gather(self, rng):
        bt = BrickedTensor.from_dense(np.zeros((1, 2, 8, 8), np.float32), (4, 4))
        vals = rng.standard_normal((2, 3, 5)).astype(np.float32)
        region = Region.from_bounds([2, 1], [5, 6])
        bt.scatter_region(0, region, vals)
        np.testing.assert_array_equal(bt.gather_region(0, region), vals)

    def test_scatter_shape_check(self):
        bt = BrickedTensor.from_dense(np.zeros((1, 2, 8, 8), np.float32), (4, 4))
        with pytest.raises(LayoutError):
            bt.scatter_region(0, Region.from_bounds([0, 0], [2, 2]), np.zeros((2, 3, 3), np.float32))

    def test_rank_mismatch(self):
        with pytest.raises(LayoutError):
            BrickedTensor.from_dense(np.zeros((1, 2, 8, 8), np.float32), (4, 4, 4))

    def test_byte_offset_layout(self, rng):
        x = rng.standard_normal((2, 2, 8, 8)).astype(np.float32)
        bt = BrickedTensor.from_dense(x, (4, 4))
        # Batches are the outermost stride; bricks contiguous within.
        assert bt.byte_offset(1, 0) == bt.grid.num_bricks * bt.brick_nbytes
        assert bt.byte_offset(0, 2) == 2 * bt.brick_nbytes
