"""Every example script must run end-to-end (they double as integration
tests of the public API)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "resnet50_inference", "deepcam_segmentation",
            "microbenchmark_tour", "custom_model"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    args = [sys.executable, str(script)]
    if script.stem == "resnet50_inference":
        args.append("96")  # keep the integration run quick
    proc = subprocess.run(args, capture_output=True, text=True, timeout=420)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
