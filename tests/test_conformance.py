"""Differential conformance corpus: every executor vs the reference.

Hypothesis generates small random DAGs of *local* (mergeable) ops and runs
each through all four execution paths -- the padded, memoized, and
wavefront merged executors plus the distributed halo-exchange runner --
asserting element-wise agreement with the naive
:class:`~repro.core.reference.ReferenceExecutor`.

Agreement is element-wise at a tight float32 tolerance: the merged
executors tile convolutions into bricks (and the distributed runner into
row slabs), and BLAS GEMM results are shape-dependent at the ulp level, so
bit-identity across *tilings* is not a contract here (batched-vs-single-shot
on the same plan is -- ``tests/test_serve.py`` covers that one bitwise).

On a mismatch the failing graph (with its weights) is serialized to
``_conformance_failures/`` so the case can be replayed with
:func:`~repro.graph.serialize.load_graph` without re-running hypothesis.
"""

import pathlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.distributed.engine import DistributedRunner
from repro.graph.builder import GraphBuilder
from repro.graph.serialize import save_graph
from repro.graph.tensorspec import TensorSpec

FAILURE_DIR = pathlib.Path(__file__).parent / "_conformance_failures"

# The distributed runner refuses global ops (dense heads, global pooling),
# so the corpus is local-op DAGs: convs, pointwise ops, joins, branches.
NUM_RANKS = 2


@st.composite
def local_dag(draw):
    """A random small DAG of local ops, valid for every executor."""
    size = draw(st.sampled_from([16, 24]))
    b = GraphBuilder("conformance", TensorSpec(1, 4, (size, size)))
    frontier = [b.current]
    n_ops = draw(st.integers(2, 7))
    for i in range(n_ops):
        kind = draw(st.sampled_from(
            ["conv", "relu", "bn", "add", "concat", "branch"]))
        src = frontier[draw(st.integers(0, len(frontier) - 1))]
        try:
            if kind == "conv":
                node = b.conv(4, 3, padding=1, src=src, name=f"n{i}")
            elif kind == "relu":
                node = b.relu(src=src, name=f"n{i}")
            elif kind == "bn":
                node = b.batchnorm(src=src, name=f"n{i}")
            elif kind == "add":
                other = frontier[draw(st.integers(0, len(frontier) - 1))]
                if other.spec != src.spec:
                    continue
                node = b.add(src, other, name=f"n{i}")
            elif kind == "concat":
                other = frontier[draw(st.integers(0, len(frontier) - 1))]
                if other.spec.spatial != src.spec.spatial:
                    continue
                node = b.concat([src, other], name=f"n{i}")
                node = b.conv(4, 1, src=node, name=f"n{i}proj")
            else:  # branch: a parallel conv off src
                node = b.conv(4, 3, padding=1, src=src, name=f"n{i}")
            frontier.append(node)
        except Exception:
            continue
    out = frontier[-1]
    for other in frontier[:-1]:
        if other.spec == out.spec:
            out = b.add(out, other, name=f"join{other.node_id}")
    return b.finish(output=out)


def _run_executor(name: str, graph, x):
    if name == "distributed":
        return DistributedRunner(graph, num_ranks=NUM_RANKS).run(x).outputs
    strategy = {"padded": Strategy.PADDED, "memoized": Strategy.MEMOIZED,
                "wavefront": Strategy.WAVEFRONT}[name]
    engine = BrickDLEngine(graph, strategy_override=strategy,
                           brick_override=4, layer_schedule=(4,))
    return engine.run(x, functional=True).outputs


def _dump_failure(graph, executor: str) -> pathlib.Path:
    """Serialize the failing graph (with weights) for offline replay."""
    FAILURE_DIR.mkdir(exist_ok=True)
    path = FAILURE_DIR / f"{executor}_{abs(hash(tuple(n.name for n in graph.nodes))):x}.json"
    save_graph(graph, path, weights=True)
    return path


def _assert_conformant(graph, executor: str) -> None:
    graph.init_weights()
    x = np.random.default_rng(0).standard_normal(
        graph.input_nodes[0].spec.shape).astype(np.float32)
    want = ReferenceExecutor(graph).run(x)
    got = _run_executor(executor, graph, x)
    try:
        assert set(got) == set(want)
        for name in want:
            np.testing.assert_allclose(got[name], want[name],
                                       atol=1e-4, rtol=1e-4)
    except AssertionError as exc:
        path = _dump_failure(graph, executor)
        raise AssertionError(
            f"{executor} executor diverged from reference; failing graph "
            f"saved to {path} (replay with repro.graph.serialize.load_graph)"
        ) from exc


# 4 executors x 15 examples = 60 generated graphs, over the ISSUE's >= 50
# corpus floor.
@pytest.mark.parametrize("executor",
                         ["padded", "memoized", "wavefront", "distributed"])
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(graph=local_dag())
def test_executor_conforms_to_reference(executor, graph):
    _assert_conformant(graph, executor)


def test_corpus_size_meets_floor():
    """The parametrized corpus covers >= 50 (graph, executor) cases."""
    executors = 4
    max_examples = 15
    assert executors * max_examples >= 50


def test_failure_dump_roundtrips(tmp_path, monkeypatch):
    """The repro file a mismatch would leave behind actually replays."""
    from repro.graph.serialize import load_graph

    monkeypatch.setitem(globals(), "FAILURE_DIR", tmp_path)
    b = GraphBuilder("dump", TensorSpec(1, 4, (16, 16)))
    b.conv(4, 3, padding=1, name="c")
    b.relu(name="r")
    graph = b.finish()
    graph.init_weights()
    path = _dump_failure(graph, "padded")
    loaded = load_graph(path)
    x = np.random.default_rng(0).standard_normal(
        graph.input_nodes[0].spec.shape).astype(np.float32)
    want = ReferenceExecutor(graph).run(x)
    got = ReferenceExecutor(loaded).run(x)
    for name in want:
        assert np.array_equal(got[name], want[name])
