"""Tests for the execution sanitizer suite (repro.sanitize).

Covers the three detectors at unit level (shadow memory intervals, vector
clocks / happens-before, numeric screening), clean-run guarantees across all
execution strategies, and -- the load-bearing part -- seeded-mutant tests
proving each detector actually fires on the failure it exists for:

* stripping the memoized protocol's acquire edges (a lost dependency edge)
  trips the race detector;
* skipping one halo brick write trips shadow memory as an uninitialized read;
* a NaN-poisoned kernel is attributed to the correct (node, brick).
"""

import numpy as np
import pytest

from repro.core.engine import BrickDLEngine
from repro.core.handles import BrickedHandle
from repro.core.memoized import MemoizedBrickExecutor
from repro.core.plan import Strategy
from repro.errors import ExecutionError
from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec
from repro.gpusim.device import Device
from repro.gpusim.trace import Access, Task, brick_token, buffer_token
from repro.sanitize import (
    BufferShadow,
    ExecutionSanitizer,
    HBState,
    NumericSanitizer,
    ShadowMemory,
    VectorClock,
    WriteRecord,
)

from testlib import input_for, small_chain_graph


def conv_chain(size=16, c=4, layers=2):
    b = GraphBuilder("san", TensorSpec(1, c, (size, size)))
    for i in range(layers):
        b.conv(c, 3, padding=1, bias=False, name=f"conv{i}")
    return b.finish()


def sanitized_run(graph, strategy=None, brick=4, strict=False):
    engine = BrickDLEngine(graph, strategy_override=strategy,
                           brick_override=brick, sanitize=True, strict=strict)
    return engine.run(input_for(graph))


def raw_access(buffer, offset, nbytes, write=False):
    """Build an Access bypassing __post_init__ bounds validation, the way a
    corrupted replay or a hand-built trace could."""
    a = Access.__new__(Access)
    for k, v in (("buffer", buffer), ("offset", offset), ("nbytes", nbytes),
                 ("write", write), ("reps", ()), ("dense", False),
                 ("on_chip", False), ("assume_l2", False)):
        object.__setattr__(a, k, v)
    return a


W1 = WriteRecord(seq=0, lane=0, epoch=1, label="w1")
W2 = WriteRecord(seq=1, lane=1, epoch=1, label="w2")


class TestBufferShadow:
    def test_uncovered_gaps(self):
        sh = BufferShadow(0, "b", 100, preinitialized=False)
        sh.record_write(10, 20, W1)
        assert sh.uncovered(0, 30) == [(0, 10), (20, 30)]
        assert sh.uncovered(12, 18) == []
        assert sh.overlapping(5, 15) == [(10, 15, W1)]

    def test_overwrite_preserves_tails(self):
        sh = BufferShadow(0, "b", 100, preinitialized=False)
        sh.record_write(0, 40, W1)
        sh.record_write(10, 20, W2)
        assert sh.overlapping(0, 40) == [(0, 10, W1), (10, 20, W2), (20, 40, W1)]
        assert sh.written_bytes == 40

    def test_adjacent_same_writer_merges(self):
        sh = BufferShadow(0, "b", 100, preinitialized=False)
        sh.record_write(0, 10, W1)
        sh.record_write(10, 20, W1)
        assert len(sh.starts) == 1
        assert sh.written_bytes == 20

    def test_preinitialized_needs_no_writer(self):
        sh = BufferShadow(0, "b", 100, preinitialized=True)
        assert sh.uncovered(0, 100) == []

    def test_registration_policy(self):
        from repro.gpusim.trace import Buffer

        mem = ShadowMemory()
        assert mem.register(Buffer.new("weights", 64)).preinitialized
        assert not mem.register(Buffer.new("scratch", 64, transient=True)).preinitialized
        mem.saw_task = True
        assert not mem.register(Buffer.new("mid-run", 64)).preinitialized


class TestVectorClocks:
    def test_tick_join_dominates(self):
        a = VectorClock()
        e = a.tick(0)
        assert a.dominates(0, e) and not a.dominates(1, 1)
        b = VectorClock()
        b.tick(1)
        a.join(b)
        assert a.dominates(1, 1)

    def test_release_acquire_orders_tasks(self):
        hb = HBState()
        c1 = hb.begin_task(0, [])
        e1 = c1.get(0)
        hb.release(("t",), c1)
        c2 = hb.begin_task(1, [("t",)])
        assert c2.dominates(0, e1)
        c3 = hb.begin_task(2, [])  # no acquire: unordered
        assert not c3.dominates(0, e1)

    def test_barrier_orders_all_lanes(self):
        hb = HBState()
        e0 = hb.begin_task(0, []).get(0)
        e1 = hb.begin_task(1, []).get(1)
        hb.barrier()
        c = hb.begin_task(2, [])
        assert c.dominates(0, e0) and c.dominates(1, e1)

    def test_missing_acquire_is_tracked(self):
        hb = HBState()
        hb.begin_task(0, [("never-released",)])
        assert ("never-released",) in hb.missing_acquires


class TestAccessIntervals:
    def test_contiguous(self):
        from repro.gpusim.trace import Buffer

        buf = Buffer.new("x", 1024)
        ivs, exact = Access(buf, 8, 16).byte_intervals()
        assert exact and ivs == [(8, 24)]

    def test_strided_exact(self):
        from repro.gpusim.trace import Buffer

        buf = Buffer.new("x", 1024)
        ivs, exact = Access(buf, 0, 4, reps=((3, 10),)).byte_intervals()
        assert exact and ivs == [(0, 4), (10, 14), (20, 24)]

    def test_touching_segments_merge(self):
        from repro.gpusim.trace import Buffer

        buf = Buffer.new("x", 1024)
        ivs, exact = Access(buf, 0, 8, reps=((4, 8),)).byte_intervals()
        assert exact and ivs == [(0, 32)]

    def test_hull_fallback_is_flagged(self):
        from repro.gpusim.trace import Buffer

        buf = Buffer.new("x", 1 << 20)
        a = Access(buf, 0, 1, reps=((64, 16), (64, 1024)))
        ivs, exact = a.byte_intervals(max_segments=16)
        assert not exact and ivs == [(0, a.span)]


class TestCleanRuns:
    @pytest.mark.parametrize("strategy", [None, Strategy.PADDED,
                                          Strategy.MEMOIZED, Strategy.WAVEFRONT])
    def test_small_chain_is_clean(self, strategy):
        res = sanitized_run(small_chain_graph(size=32), strategy)
        report = res.sanitizer_report
        assert report is not None and report.ok, report.summary()

    def test_profile_mode_is_clean(self):
        engine = BrickDLEngine(conv_chain(), strategy_override=Strategy.MEMOIZED,
                               brick_override=4, sanitize=True)
        res = engine.run(inputs=None, functional=False)
        assert res.sanitizer_report.ok, res.sanitizer_report.summary()

    def test_report_absent_without_flag(self):
        engine = BrickDLEngine(conv_chain(), brick_override=4)
        assert engine.run(input_for(engine.graph)).sanitizer_report is None


class TestMutants:
    def test_dropped_dependency_edge_trips_race_detector(self, monkeypatch):
        g = conv_chain(16, 4, 2)
        assert sanitized_run(conv_chain(16, 4, 2), Strategy.MEMOIZED).sanitizer_report.ok

        orig = MemoizedBrickExecutor._stamp_sync

        def no_acquires(self, task, frame, own_offset):
            orig(self, task, frame, own_offset)
            task.acquires.clear()  # the schedule stays correct; only HB edges go

        monkeypatch.setattr(MemoizedBrickExecutor, "_stamp_sync", no_acquires)
        report = sanitized_run(g, Strategy.MEMOIZED).sanitizer_report
        races = report.by_code("sanitize.race-read")
        assert races, report.summary()
        assert not report.ok
        assert any("memo/" in d.detail["writer"] for d in races)

    def test_skipped_halo_write_trips_shadow_memory(self, monkeypatch):
        g = conv_chain(16, 4, 2)
        orig = BrickedHandle.emit_brick_write

        def skipping(self, task, batch, gpos):
            if self.buffer.name == "conv0/memo" and gpos == (0, 0):
                return  # the halo brick everyone's (0, 0)-corner reads
            orig(self, task, batch, gpos)

        monkeypatch.setattr(BrickedHandle, "emit_brick_write", skipping)
        report = sanitized_run(g, Strategy.MEMOIZED).sanitizer_report
        uninit = report.by_code("sanitize.uninit-read")
        assert uninit, report.summary()
        assert any(d.detail["buffer"] == "conv0/memo" for d in uninit)

    def test_nan_kernel_attributed_to_node_and_brick(self):
        g = conv_chain(16, 4, 2)
        g.init_weights()  # idempotent: the engine will not re-randomize
        poisoned = g.node("conv1")
        for w in poisoned.weights.values():
            w[...] = np.nan
        res = sanitized_run(g, Strategy.MEMOIZED)
        report = res.sanitizer_report
        nans = report.by_code("sanitize.numeric-nan")
        assert len(nans) == 1, report.summary()
        d = nans[0]
        assert d.node_id == poisoned.node_id
        first = next(r for r in res.trace.records if r.node_id == poisoned.node_id)
        assert d.detail["brick"] == first.brick

    def test_derived_nan_demoted_to_info(self):
        g = conv_chain(16, 4, 3)
        g.init_weights()
        first = g.node("conv0")
        for w in first.weights.values():
            w[...] = np.nan
        report = sanitized_run(g, Strategy.MEMOIZED).sanitizer_report
        errors = report.by_code("sanitize.numeric-nan")
        assert [d.node_id for d in errors] == [first.node_id]
        derived = report.by_code("sanitize.numeric-derived")
        assert {d.node_id for d in derived} == {g.node("conv1").node_id,
                                               g.node("conv2").node_id}

    def test_strict_mode_raises_on_sanitizer_error(self, monkeypatch):
        orig = BrickedHandle.emit_brick_write

        def skipping(self, task, batch, gpos):
            if self.buffer.name == "conv0/memo" and gpos == (0, 0):
                return
            orig(self, task, batch, gpos)

        monkeypatch.setattr(BrickedHandle, "emit_brick_write", skipping)
        with pytest.raises(ExecutionError, match="sanitizer"):
            sanitized_run(conv_chain(16, 4, 2), Strategy.MEMOIZED, strict=True)


class TestObserverLevel:
    def test_use_after_discard(self):
        dev = Device()
        san = dev.attach(ExecutionSanitizer())
        buf = dev.allocate("x", 128, transient=True)
        t = Task("writer")
        t.write(buf, 0, 128)
        dev.submit(t)
        dev.discard(buf)
        t2 = Task("reader")
        t2.read(buf, 0, 64)
        dev.submit(t2)
        diags = san.report().by_code("sanitize.use-after-discard")
        assert diags and "reader" in diags[0].message

    def test_out_of_bounds_access(self):
        dev = Device()
        san = dev.attach(ExecutionSanitizer())
        buf = dev.allocate("x", 64, transient=True)
        t = Task("oob")
        t.accesses.append(raw_access(buf, 32, 64, write=True))
        dev.submit(t)
        assert san.report().by_code("sanitize.oob-access")

    def test_unordered_waw(self):
        dev = Device()
        san = dev.attach(ExecutionSanitizer())
        buf = dev.allocate("x", 64, transient=True)
        t1 = Task("w1", worker=0)
        t1.write(buf, 0, 64)
        dev.submit(t1)
        t2 = Task("w2", worker=1)
        t2.write(buf, 0, 64)
        dev.submit(t2)
        assert san.report().by_code("sanitize.race-write")

    def test_release_acquire_suppresses_race(self):
        dev = Device()
        san = dev.attach(ExecutionSanitizer())
        buf = dev.allocate("x", 64, transient=True)
        t1 = Task("producer", worker=0)
        t1.write(buf, 0, 64)
        t1.release(buffer_token(buf))
        dev.submit(t1)
        t2 = Task("consumer", worker=1)
        t2.read(buf, 0, 64)
        t2.acquire(buffer_token(buf))
        dev.submit(t2)
        assert san.report().ok

    def test_brick_token_identity(self):
        from repro.gpusim.trace import Buffer

        buf = Buffer.new("b", 1024)
        assert brick_token(buf, 0) != brick_token(buf, 512)
        assert brick_token(buf, 0) != buffer_token(buf)

    def test_diagnostic_cap_suppresses(self):
        dev = Device()
        san = dev.attach(ExecutionSanitizer(max_per_code=3))
        buf = dev.allocate("x", 1024, transient=True)
        for i in range(6):
            t = Task(f"r{i}")
            t.read(buf, i * 64, 64)
            dev.submit(t)
        report = san.report()
        assert len(report.by_code("sanitize.uninit-read")) == 3
        assert report.by_code("sanitize.uninit-read.suppressed")
        assert san.counts["sanitize.uninit-read"] == 6

    def test_numeric_screen_counts(self):
        num = NumericSanitizer()
        arr = np.zeros(8, dtype=np.float32)
        arr[0] = np.nan
        arr[1] = np.inf
        arr[2] = np.float32(1e-42)  # denormal
        num.screen(None, 7, arr, subgraph_index=None)
        kinds = {f.kind: f.count for f in num.findings.values()}
        assert kinds == {"nan": 1, "inf": 1, "denormal": 1}
        diags = num.diagnostics()
        severities = {d.code: str(d.severity) for d in diags}
        assert severities["sanitize.numeric-nan"] == "error"
        assert severities["sanitize.numeric-denormal"] == "warning"
