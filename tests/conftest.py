"""Pytest fixtures for the test suite (helpers live in testlib.py).

Also provides a minimal fallback for the ``timeout`` ini option when the
``pytest-timeout`` plugin is not installed (the dev container has no
network access for installs): each test runs under a SIGALRM watchdog that
fails it with a timeout message after the budget elapses.  When the real
plugin is present it owns the option and the fallback stands down.
"""

import signal

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


# ---------------------------------------------------------------------------
# pytest-timeout fallback (SIGALRM watchdog)
# ---------------------------------------------------------------------------

def _has_timeout_plugin(config) -> bool:
    return config.pluginmanager.hasplugin("timeout")


def pytest_addoption(parser):
    # The real plugin registers this ini option itself; only claim it when
    # the plugin is absent so the fallback can read it.
    try:
        parser.addini("timeout", "per-test timeout in seconds (fallback shim)",
                      default=None)
    except ValueError:
        pass  # already registered by pytest-timeout


def _budget_s(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker and marker.args:
        return float(marker.args[0])
    value = item.config.getini("timeout")
    try:
        return float(value) if value else 0.0
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    budget = 0.0 if _has_timeout_plugin(item.config) else _budget_s(item)
    use_alarm = (budget > 0 and hasattr(signal, "SIGALRM")
                 and signal.getsignal(signal.SIGALRM) in
                 (signal.SIG_DFL, signal.SIG_IGN, signal.default_int_handler))

    def _expired(signum, frame):
        pytest.fail(f"test exceeded the {budget:.0f}s timeout "
                    f"(conftest SIGALRM fallback)", pytrace=False)

    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(int(budget))
    try:
        yield
    finally:
        if use_alarm:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test timeout (pytest-timeout or the "
        "conftest SIGALRM fallback)")
