"""Pytest fixtures for the test suite (helpers live in testlib.py)."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
