"""Result export tests and property-based random-DAG equivalence."""

import csv
import io
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import figures
from repro.bench.export import figure_to_csv, figure_to_json, write_figure
from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec


@pytest.fixture(scope="module")
def small_figure():
    return figures.fig11_brick_size(scale="small", bricks=(8,))


class TestExport:
    def test_csv_structure(self, small_figure):
        text = figure_to_csv(small_figure)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "group" and "total" in rows[0]
        assert len(rows) == 1 + sum(len(r) for r in small_figure.groups.values())

    def test_json_roundtrip(self, small_figure):
        payload = json.loads(figure_to_json(small_figure))
        assert payload["name"] == small_figure.name
        group = next(iter(payload["groups"].values()))
        assert group[0]["label"] == "cudnn"

    def test_write_files(self, small_figure, tmp_path):
        c = write_figure(small_figure, tmp_path / "fig.csv")
        j = write_figure(small_figure, tmp_path / "fig.json")
        assert c.exists() and j.exists()
        with pytest.raises(ValueError):
            write_figure(small_figure, tmp_path / "fig.xlsx")


@st.composite
def random_dag(draw):
    """A random small DAG mixing convs, pointwise ops, adds and concats."""
    size = draw(st.sampled_from([16, 24]))
    b = GraphBuilder("dag", TensorSpec(1, 4, (size, size)))
    frontier = [b.current]
    n_ops = draw(st.integers(2, 7))
    for i in range(n_ops):
        kind = draw(st.sampled_from(["conv", "relu", "bn", "add", "concat", "branch"]))
        src = frontier[draw(st.integers(0, len(frontier) - 1))]
        try:
            if kind == "conv":
                node = b.conv(4, 3, padding=1, src=src, name=f"n{i}")
            elif kind == "relu":
                node = b.relu(src=src, name=f"n{i}")
            elif kind == "bn":
                node = b.batchnorm(src=src, name=f"n{i}")
            elif kind == "add":
                other = frontier[draw(st.integers(0, len(frontier) - 1))]
                if other.spec != src.spec:
                    continue
                node = b.add(src, other, name=f"n{i}")
            elif kind == "concat":
                other = frontier[draw(st.integers(0, len(frontier) - 1))]
                if other.spec.spatial != src.spec.spatial:
                    continue
                node = b.concat([src, other], name=f"n{i}")
                node = b.conv(4, 1, src=node, name=f"n{i}proj")  # re-normalize channels
            else:  # branch: add a parallel conv off src
                node = b.conv(4, 3, padding=1, src=src, name=f"n{i}")
            frontier.append(node)
        except Exception:
            continue
    # Join the frontier into a single output so everything is live.
    out = frontier[-1]
    for other in frontier[:-1]:
        if other.spec == out.spec:
            out = b.add(out, other, name=f"join{other.node_id}")
    return b.finish(output=out)


class TestRandomDagEquivalence:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag(), st.sampled_from([Strategy.PADDED, Strategy.MEMOIZED]))
    def test_merged_equals_naive_on_dags(self, graph, strategy):
        graph.init_weights()
        x = np.random.default_rng(0).standard_normal(graph.input_nodes[0].spec.shape).astype(np.float32)
        ref = ReferenceExecutor(graph).run(x)
        res = BrickDLEngine(graph, strategy_override=strategy, brick_override=4,
                            layer_schedule=(4,)).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag())
    def test_transforms_preserve_random_dags(self, graph):
        from repro.graph.transforms import optimize

        graph.init_weights()
        x = np.random.default_rng(1).standard_normal(graph.input_nodes[0].spec.shape).astype(np.float32)
        before = ReferenceExecutor(graph).run(x)
        opt = optimize(graph)
        after = ReferenceExecutor(opt).run(x)
        for k in before:
            np.testing.assert_allclose(after[k], before[k], atol=1e-4, rtol=1e-4)
