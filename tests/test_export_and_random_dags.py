"""Result export tests and property-based random-DAG equivalence."""

import csv
import io
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import figures
from repro.bench.export import figure_to_csv, figure_to_json, write_figure
from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor


@pytest.fixture(scope="module")
def small_figure():
    return figures.fig11_brick_size(scale="small", bricks=(8,))


class TestExport:
    def test_csv_structure(self, small_figure):
        text = figure_to_csv(small_figure)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "group" and "total" in rows[0]
        assert len(rows) == 1 + sum(len(r) for r in small_figure.groups.values())

    def test_json_roundtrip(self, small_figure):
        payload = json.loads(figure_to_json(small_figure))
        assert payload["name"] == small_figure.name
        group = next(iter(payload["groups"].values()))
        assert group[0]["label"] == "cudnn"

    def test_write_files(self, small_figure, tmp_path):
        c = write_figure(small_figure, tmp_path / "fig.csv")
        j = write_figure(small_figure, tmp_path / "fig.json")
        assert c.exists() and j.exists()
        with pytest.raises(ValueError):
            write_figure(small_figure, tmp_path / "fig.xlsx")


# The random-DAG corpus is shared with the rewrite property tests.
from testlib import random_dag  # noqa: E402


class TestRandomDagEquivalence:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag(), st.sampled_from([Strategy.PADDED, Strategy.MEMOIZED]))
    def test_merged_equals_naive_on_dags(self, graph, strategy):
        graph.init_weights()
        x = np.random.default_rng(0).standard_normal(graph.input_nodes[0].spec.shape).astype(np.float32)
        ref = ReferenceExecutor(graph).run(x)
        res = BrickDLEngine(graph, strategy_override=strategy, brick_override=4,
                            layer_schedule=(4,)).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(random_dag())
    def test_transforms_preserve_random_dags(self, graph):
        from repro.graph.transforms import optimize

        graph.init_weights()
        x = np.random.default_rng(1).standard_normal(graph.input_nodes[0].spec.shape).astype(np.float32)
        before = ReferenceExecutor(graph).run(x)
        opt = optimize(graph)
        after = ReferenceExecutor(opt).run(x)
        for k in before:
            np.testing.assert_allclose(after[k], before[k], atol=1e-4, rtol=1e-4)
