"""Metrics subsystem: registry, attribution, manifests, diff gate, exporters."""

import json

import pytest

from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.gpusim.device import Device
from repro.gpusim.spec import A100
from repro.metrics import (
    COMPONENTS,
    CounterTrackSampler,
    DEFAULT_TOLERANCES,
    MetricsRegistry,
    RunManifest,
    attribute_run,
    attribute_subgraphs,
    diff_manifests,
    manifest_from_result,
    metrics_csv,
    plan_digest,
    prometheus_textfile,
)
from repro.distributed.comm import CommModel

from testlib import small_chain_graph


def run_graph(graph, strategy=None, brick=None, device=None):
    engine = BrickDLEngine(graph, strategy_override=strategy, brick_override=brick)
    plan = engine.compile()
    device = device or Device(A100)
    result = engine.run(inputs=None, functional=False, device=device, plan=plan)
    return result, plan


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.inc("txns", 3)
        reg.inc("txns", 2)
        reg.gauge("level").set(7)
        reg.histogram("sizes").observe(100.0)
        assert reg.total("txns") == 5
        assert reg.total("level") == 7
        assert reg.histogram("sizes").count == 1
        with pytest.raises(ValueError):
            reg.counter("txns").inc(-1)

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_label_scopes_nest_and_pop(self):
        reg = MetricsRegistry()
        reg.set_base(model="m")
        with reg.label_scope(strategy="padded", subgraph=0):
            with reg.label_scope(subgraph=1):
                reg.inc("txns", node=5)
        reg.inc("txns", 10)
        series = reg.series("txns")
        assert (("model", "m"), ("strategy", "padded"), ("subgraph", "1"),
                ("node", "5")) in series
        # After the scopes pop, only the base label applies.
        assert series[(("model", "m"),)] == 10

    def test_hierarchy_keys_lead_label_ordering(self):
        reg = MetricsRegistry()
        reg.inc("x", node=1, model="m", zz="later", strategy="s")
        (labels,) = reg.series("x")
        assert [k for k, _ in labels] == ["model", "strategy", "node", "zz"]

    def test_total_rolls_up_label_subsets(self):
        reg = MetricsRegistry()
        with reg.label_scope(subgraph=0):
            reg.inc("txns", 2, node=1)
            reg.inc("txns", 3, node=2)
        with reg.label_scope(subgraph=1):
            reg.inc("txns", 5, node=1)
        assert reg.total("txns") == 10
        assert reg.total("txns", subgraph=0) == 5
        assert reg.total("txns", node=1) == 7
        assert reg.total("txns", subgraph=1, node=1) == 5

    def test_context_token_tracks_label_changes(self):
        reg = MetricsRegistry()
        t0 = reg.context_token
        with reg.label_scope(subgraph=0):
            assert reg.context_token != t0
            inner = reg.context_token
        assert reg.context_token != inner
        reg.set_base(model="m")
        assert reg.context_token > t0

    def test_as_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.set_base(model="m")
        with reg.label_scope(strategy="padded"):
            reg.inc("txns", 4, node=3)
        reg.gauge("level").set(2.5)
        reg.histogram("sizes").observe(33.0)
        clone = MetricsRegistry.from_dict(json.loads(json.dumps(reg.as_dict())))
        assert clone.as_dict() == reg.as_dict()
        assert clone.total("txns", node=3) == 4


# ---------------------------------------------------------------------------
# Device / executor instrumentation
# ---------------------------------------------------------------------------

class TestInstrumentation:
    def test_registry_reconciles_with_run_metrics(self):
        result, _ = run_graph(small_chain_graph(size=48))
        reg = result.registry
        m = result.metrics
        assert reg is not None
        assert reg.total("tasks") == m.num_tasks
        assert reg.total("flops") == pytest.approx(m.total_flops)
        # Reads happen only inside tasks, so node-level series must sum to
        # the run total exactly; writes gain the end-of-run flush on top.
        assert reg.total("dram_read_txns") == m.memory.dram_read_txns
        assert reg.total("dram_write_txns") <= m.memory.dram_write_txns
        assert reg.total("l2_txns") == m.memory.l2_txns

    def test_labels_carry_model_strategy_subgraph(self):
        result, plan = run_graph(small_chain_graph(size=48),
                                 strategy=Strategy.PADDED)
        series = result.registry.series("tasks")
        labels = {dict(k).get("model") for k in series}
        assert labels == {"chain"}
        strategies = {dict(k).get("strategy") for k in series}
        assert "padded" in strategies
        merged = [s.index for s in plan.subgraphs if s.is_merged]
        per_sub = sum(result.registry.total("tasks", subgraph=i) for i in merged)
        assert per_sub == sum(result.registry.total("tasks", subgraph=s.index)
                              for s in plan.subgraphs if s.is_merged)

    def test_memoized_records_memo_counters(self):
        result, _ = run_graph(small_chain_graph(size=48),
                              strategy=Strategy.MEMOIZED)
        reg = result.registry
        assert reg.total("memo_bricks_computed") > 0
        assert reg.total("memo_table_visits") > 0
        assert reg.total("memo_cas_retries") >= 0

    def test_cache_stats_exported_as_gauges(self):
        result, _ = run_graph(small_chain_graph(size=48))
        reg = result.registry
        assert reg.total("cache_hit_bytes") >= 0
        assert reg.total("cache_miss_bytes") > 0

    def test_comm_model_records_halo_metrics(self):
        reg = MetricsRegistry()
        comm = CommModel(registry=reg)
        comm.exchange_step([1000, 2000])
        comm.exchange_step([])
        assert reg.total("halo_exchange_steps") == 2
        assert reg.total("halo_exchange_messages") == 2
        assert reg.total("halo_exchange_bytes") == 3000
        assert reg.histogram("halo_message_bytes").count == 2


# ---------------------------------------------------------------------------
# Bottleneck attribution
# ---------------------------------------------------------------------------

class TestAttribution:
    def test_components_and_shares_cover_the_model(self):
        result, _ = run_graph(small_chain_graph(size=48))
        report = attribute_run(result.metrics, A100, label="chain")
        assert report.bound in COMPONENTS
        assert set(report.components) == set(COMPONENTS)
        assert report.total_s == pytest.approx(result.metrics.total_time)
        assert all(v >= 0 for v in report.shares.values())
        assert report.speedup_ceiling >= 1.0
        assert "bound" in report.describe()

    def test_roofline_position_is_consistent(self):
        result, _ = run_graph(small_chain_graph(size=48))
        roof = attribute_run(result.metrics, A100).roofline
        assert roof.peak_flops == A100.num_sms * A100.sm_flops
        assert roof.memory_bw == A100.txn_rate * A100.transaction_bytes
        assert roof.ridge_intensity == pytest.approx(roof.peak_flops / roof.memory_bw)
        assert roof.attainable_flops <= roof.peak_flops
        assert roof.memory_bound == (roof.arithmetic_intensity < roof.ridge_intensity)

    def test_memoized_is_atomic_heavier_than_padded(self):
        # The paper's central strategy tradeoff, visible in the attribution:
        # memoization pays atomic CAS traffic that padding never issues.
        graph = small_chain_graph(size=48)
        padded, _ = run_graph(small_chain_graph(size=48), strategy=Strategy.PADDED)
        memo, _ = run_graph(graph, strategy=Strategy.MEMOIZED)
        rp = attribute_run(padded.metrics, A100, label="padded")
        rm = attribute_run(memo.metrics, A100, label="memoized")
        assert rm.components["atomic"] > rp.components["atomic"]
        assert rm.shares["atomic"] > rp.shares["atomic"]

    def test_per_subgraph_attribution_aligns_with_plan(self):
        result, plan = run_graph(small_chain_graph(size=48))
        reports = attribute_subgraphs(result.per_subgraph, A100, plan)
        assert len(reports) == len(plan.subgraphs)
        for sub, report in zip(plan.subgraphs, reports):
            assert sub.strategy.value in report.label
            assert report.bound in COMPONENTS


# ---------------------------------------------------------------------------
# Run manifests
# ---------------------------------------------------------------------------

class TestManifest:
    def test_round_trip(self, tmp_path):
        result, _ = run_graph(small_chain_graph(size=48))
        manifest = manifest_from_result("chain", result, A100,
                                        label="padded", scale="test")
        path = manifest.save(tmp_path / "BENCH_chain.json")
        loaded = RunManifest.load(path)
        assert loaded.as_dict() == manifest.as_dict()
        assert loaded.metrics["num_tasks"] == result.metrics.num_tasks
        assert loaded.plan["digest"] == plan_digest(result.plan)
        assert loaded.bottleneck["run"]["bound"] in COMPONENTS
        assert "chain" in loaded.summary()

    def test_plan_digest_is_stable_and_decision_sensitive(self):
        graph = small_chain_graph(size=48)
        plan_a = BrickDLEngine(graph, strategy_override=Strategy.PADDED).compile()
        plan_b = BrickDLEngine(small_chain_graph(size=48),
                               strategy_override=Strategy.PADDED).compile()
        plan_c = BrickDLEngine(small_chain_graph(size=48),
                               strategy_override=Strategy.MEMOIZED).compile()
        assert plan_digest(plan_a) == plan_digest(plan_b)
        assert plan_digest(plan_a) != plan_digest(plan_c)

    def test_newer_version_rejected(self):
        with pytest.raises(ValueError):
            RunManifest.from_dict({"version": 999, "model": "x"})


# ---------------------------------------------------------------------------
# Manifest diff: the perf gate
# ---------------------------------------------------------------------------

def _manifest(tmp_path, name, scale_txns=1.0):
    result, _ = run_graph(small_chain_graph(size=48), strategy=Strategy.PADDED)
    manifest = manifest_from_result("chain", result, A100, label="padded")
    if scale_txns != 1.0:
        mem = manifest.metrics["memory"]
        for key in ("dram_txns", "dram_read_txns"):
            mem[key] = int(mem[key] * scale_txns)
    return manifest.save(tmp_path / name)


class TestDiff:
    def test_identical_manifests_are_ok(self, tmp_path):
        base = _manifest(tmp_path, "base.json")
        report = diff_manifests(RunManifest.load(base), RunManifest.load(base))
        assert report.ok
        assert not report.regressions

    def test_seeded_dram_regression_fails(self, tmp_path):
        base = RunManifest.load(_manifest(tmp_path, "base.json"))
        worse = RunManifest.load(_manifest(tmp_path, "worse.json", scale_txns=1.10))
        report = diff_manifests(base, worse)
        assert not report.ok
        assert any(d.name == "memory.dram_txns" for d in report.regressions)
        assert "REGRESSION" in report.render()

    def test_within_tolerance_passes(self, tmp_path):
        base = RunManifest.load(_manifest(tmp_path, "base.json"))
        drift = RunManifest.load(_manifest(tmp_path, "drift.json", scale_txns=1.03))
        assert diff_manifests(base, drift).ok

    def test_improvement_reported_not_fatal(self, tmp_path):
        base = RunManifest.load(_manifest(tmp_path, "base.json"))
        better = RunManifest.load(_manifest(tmp_path, "better.json", scale_txns=0.5))
        report = diff_manifests(base, better)
        assert report.ok
        assert report.improvements

    def test_untracked_metric_never_gates(self, tmp_path):
        base = RunManifest.load(_manifest(tmp_path, "base.json"))
        new = RunManifest.load(_manifest(tmp_path, "new.json"))
        new.metrics["experimental"] = base.metrics.get("experimental", 0) + 999
        base.metrics["experimental"] = 1
        assert "experimental" not in DEFAULT_TOLERANCES
        assert diff_manifests(base, new).ok

    def test_tolerance_override_tightens_the_gate(self, tmp_path):
        base = RunManifest.load(_manifest(tmp_path, "base.json"))
        drift = RunManifest.load(_manifest(tmp_path, "drift.json", scale_txns=1.03))
        report = diff_manifests(base, drift, tolerances={"memory.dram_txns": 0.0})
        assert not report.ok

    def test_context_mismatch_warns_not_fails(self, tmp_path):
        base = RunManifest.load(_manifest(tmp_path, "base.json"))
        other = RunManifest.load(_manifest(tmp_path, "other.json"))
        other.model = "different"
        other.spec = dict(other.spec, num_sms=1)
        report = diff_manifests(base, other)
        assert report.ok
        assert any("model mismatch" in w for w in report.warnings)
        assert any("spec constants differ" in w for w in report.warnings)

    def test_cli_diff_exit_codes(self, tmp_path):
        from repro.cli import main

        base = _manifest(tmp_path, "base.json")
        worse = _manifest(tmp_path, "worse.json", scale_txns=1.12)
        assert main(["metrics", "diff", str(base), str(base)]) == 0
        assert main(["metrics", "diff", str(base), str(worse)]) == 1
        # Loosening the tolerance lets the same delta through.
        assert main(["metrics", "diff", str(base), str(worse),
                     "--tolerance", "memory.dram_txns=0.5",
                     "--tolerance", "memory.dram_read_txns=0.5"]) == 0
        assert main(["metrics", "diff", str(base), str(worse),
                     "--tolerance", "bogus"]) == 2


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

class TestExporters:
    def test_prometheus_textfile_format(self):
        reg = MetricsRegistry()
        reg.set_base(model="m")
        reg.inc("dram_txns", 4, node=1)
        reg.histogram("sizes", buckets=(10.0, 100.0)).observe(50.0)
        text = prometheus_textfile(reg)
        assert '# TYPE repro_dram_txns counter' in text
        assert 'repro_dram_txns{model="m",node="1"} 4' in text
        assert 'repro_sizes_bucket{model="m",le="100"} 1' in text
        assert 'repro_sizes_bucket{model="m",le="+Inf"} 1' in text
        assert 'repro_sizes_count{model="m"} 1' in text

    def test_csv_has_hierarchy_columns(self):
        reg = MetricsRegistry()
        with reg.label_scope(strategy="padded", subgraph=2):
            reg.inc("txns", 7, node=3)
        text = metrics_csv(reg)
        header, row = text.strip().splitlines()
        assert header.startswith("name,kind,model,strategy,brick,subgraph,node")
        assert "txns,counter,,padded,,2,3,7" in row

    def test_counter_tracks_layer_onto_chrome_trace(self):
        from repro.profiling import TraceCollector
        from repro.profiling.export import chrome_trace

        device = Device(A100)
        sampler = device.attach(CounterTrackSampler())
        collector = device.attach(TraceCollector())
        run_graph(small_chain_graph(size=48), device=device)
        assert sampler.tracks
        assert any(samples for samples in sampler.tracks.values())
        doc = chrome_trace(collector, counter_tracks=sampler.tracks)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "C"}
        assert "L2 miss bytes" in names
        layered = [e for e in doc["traceEvents"]
                   if e["ph"] == "C" and e["name"] == "L2 miss bytes"]
        assert all("value" in e["args"] for e in layered)
        # Samples are deduplicated: values change monotonically over time.
        values = [e["args"]["value"] for e in layered]
        assert values == sorted(values)

# ---------------------------------------------------------------------------
# Histogram quantile edge cases
# ---------------------------------------------------------------------------

class TestHistogramEdges:
    def _hist(self, *values, buckets=(1.0, 10.0, 100.0)):
        from repro.metrics.registry import Histogram

        hist = Histogram(buckets=buckets)
        for value in values:
            hist.observe(value)
        return hist

    def test_empty_histogram_reports_zero_not_nan(self):
        hist = self._hist()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.01)

    def test_single_observation_is_exact_at_every_quantile(self):
        hist = self._hist(7.25)
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 7.25

    def test_single_bucket_mass_repeated_value_is_exact(self):
        # 50 identical values all land in one bucket; interpolation across
        # the bucket must not smear the estimate.
        hist = self._hist(*([42.0] * 50), buckets=(10.0, 100.0))
        assert hist.quantile(0.5) == 42.0
        assert hist.quantile(0.99) == 42.0

    def test_p99_on_low_count_window_stays_inside_observed_range(self):
        hist = self._hist(2.0, 3.0, 4.0)   # p99 of 3 samples
        assert hist.quantile(0.99) <= 4.0
        assert hist.quantile(0.01) >= 2.0
        assert hist.quantile(1.0) == 4.0
        assert hist.quantile(0.0) == 2.0

    def test_overflow_bucket_reports_true_maximum(self):
        hist = self._hist(5.0, 250.0, 900.0)   # two past the top edge (100)
        assert hist.quantile(0.99) == 900.0    # not the 100.0 edge
        assert hist.quantile(1.0) == 900.0

    def test_merge_doc_folds_counts_sum_and_extremes(self):
        from repro.metrics.registry import Histogram

        a = self._hist(0.5, 20.0)
        b = self._hist(200.0)
        doc = {"counts": list(b.counts), "sum": b.sum, "count": b.count,
               "min": b.minimum, "max": b.maximum}
        a.merge_doc(doc)
        assert a.count == 3 and a.sum == pytest.approx(220.5)
        assert a.minimum == 0.5 and a.maximum == 200.0
        assert a.quantile(1.0) == 200.0
        empty = Histogram(buckets=(1.0,))
        with pytest.raises(ValueError, match="bucket mismatch"):
            empty.merge_doc(doc)

    def test_extremes_survive_registry_roundtrip(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 10.0)).observe(0.25)
        reg.histogram("lat", buckets=(1.0, 10.0)).observe(64.0)
        (sample,) = [s for s in reg.samples() if s.name == "lat"]
        assert sample.histogram["min"] == 0.25
        assert sample.histogram["max"] == 64.0
        clone = MetricsRegistry.from_dict(json.loads(json.dumps(reg.as_dict())))
        assert clone.histogram("lat", buckets=(1.0, 10.0)).quantile(1.0) == 64.0
        # Empty histograms serialize without min/max keys.
        reg2 = MetricsRegistry()
        reg2.histogram("idle", buckets=(1.0,))
        (idle,) = [s for s in reg2.samples() if s.name == "idle"]
        assert "min" not in idle.histogram and "max" not in idle.histogram
