"""BrickDL engine tests: compilation decisions and end-to-end execution."""

import numpy as np
import pytest

from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.errors import ExecutionError
from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec
from repro.gpusim.device import Device
from repro.gpusim.spec import A100

from testlib import input_for, residual_graph, small_chain_graph


class TestCompile:
    def test_plan_covers_graph(self):
        g = small_chain_graph()
        plan = BrickDLEngine(g).compile()
        ids = [i for s in plan.subgraphs for i in s.subgraph.node_ids]
        assert sorted(ids) == [n.node_id for n in g.nodes if not n.is_input]

    def test_global_ops_use_cudnn(self):
        g = small_chain_graph()
        plan = BrickDLEngine(g).compile()
        for s in plan.subgraphs:
            if any(g.node(i).op.is_global for i in s.subgraph.node_ids):
                assert s.strategy is Strategy.CUDNN

    def test_tiny_layers_fall_back(self):
        g = small_chain_graph(size=24)  # post-pool layers are tiny
        plan = BrickDLEngine(g).compile()
        assert all(s.strategy is Strategy.CUDNN for s in plan.subgraphs)

    def test_large_image_gets_merged_subgraphs(self):
        g = small_chain_graph(size=48)
        plan = BrickDLEngine(g).compile()
        assert plan.merged_count >= 1

    def test_strategy_override(self):
        g = small_chain_graph(size=48)
        plan = BrickDLEngine(g, strategy_override=Strategy.PADDED).compile()
        for s in plan.subgraphs:
            assert s.strategy in (Strategy.PADDED, Strategy.CUDNN)

    def test_brick_override(self):
        g = small_chain_graph(size=64)
        plan = BrickDLEngine(g, brick_override=8).compile()
        merged = [s for s in plan.subgraphs if s.is_merged]
        assert merged and all(max(s.brick_shape) == 8 for s in merged)

    def test_plan_summary_renders(self):
        plan = BrickDLEngine(small_chain_graph(size=48)).compile()
        text = plan.summary()
        assert "subgraph" in text and "ExecutionPlan" in text


class TestRun:
    @pytest.mark.parametrize("strategy", [None, Strategy.PADDED, Strategy.MEMOIZED])
    def test_matches_reference_chain(self, strategy):
        g = small_chain_graph(size=48)
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(small_chain_graph(size=48), strategy_override=strategy).run(x)
        for name, expected in ref.items():
            np.testing.assert_allclose(res.outputs[name], expected, atol=1e-4, rtol=1e-3)

    @pytest.mark.parametrize("strategy", [Strategy.PADDED, Strategy.MEMOIZED])
    def test_matches_reference_residual(self, strategy):
        g = residual_graph(size=32)
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(residual_graph(size=32), strategy_override=strategy).run(x)
        for name, expected in ref.items():
            np.testing.assert_allclose(res.outputs[name], expected, atol=1e-4, rtol=1e-3)

    def test_profile_mode_needs_no_inputs(self):
        g = small_chain_graph(size=48)
        res = BrickDLEngine(g).run(inputs=None, functional=False)
        assert res.outputs is None
        assert res.metrics.num_tasks > 0
        assert res.metrics.total_time > 0

    def test_profile_and_functional_same_traffic(self):
        g1 = small_chain_graph(size=48)
        r1 = BrickDLEngine(g1).run(inputs=None, functional=False)
        g2 = small_chain_graph(size=48)
        r2 = BrickDLEngine(g2).run(input_for(g2), functional=True)
        assert r1.metrics.memory.dram_txns == r2.metrics.memory.dram_txns
        assert r1.metrics.num_tasks == r2.metrics.num_tasks

    def test_functional_requires_inputs(self):
        g = small_chain_graph(size=48)
        with pytest.raises(ExecutionError):
            BrickDLEngine(g).run(inputs=None, functional=True)

    def test_input_shape_checked(self):
        g = small_chain_graph(size=48)
        with pytest.raises(ExecutionError):
            BrickDLEngine(g).run(np.zeros((1, 3, 8, 8), np.float32))

    def test_layer_schedule_forces_merges(self):
        b = GraphBuilder("p", TensorSpec(1, 4, (32, 32)))
        for i in range(4):
            b.conv(4, 3, padding=0, bias=False, name=f"conv{i}")
        g = b.finish()
        eng = BrickDLEngine(g, strategy_override=Strategy.PADDED, brick_override=4,
                            layer_schedule=(2, 2))
        plan = eng.compile()
        assert [len(s.subgraph) for s in plan.subgraphs] == [2, 2]
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = eng.run(x)
        for name, expected in ref.items():
            np.testing.assert_allclose(res.outputs[name], expected, atol=1e-4, rtol=1e-3)

    def test_memoized_emits_atomics_padded_does_not(self):
        g = small_chain_graph(size=48)
        rm = BrickDLEngine(g, strategy_override=Strategy.MEMOIZED).run(
            inputs=None, functional=False)
        rp = BrickDLEngine(small_chain_graph(size=48), strategy_override=Strategy.PADDED).run(
            inputs=None, functional=False)
        assert rm.metrics.atomics.compulsory > 0
        assert rp.metrics.atomics.compulsory == 0

    def test_external_device_reused(self):
        g = small_chain_graph(size=48)
        dev = Device(A100)
        res = BrickDLEngine(g).run(inputs=None, functional=False, device=dev)
        assert res.metrics.num_tasks == len(dev.tasks)


class TestAttribution:
    def test_per_subgraph_covers_totals(self):
        from testlib import small_chain_graph

        g = small_chain_graph(size=64)
        res = BrickDLEngine(g).run(inputs=None, functional=False)
        assert len(res.per_subgraph) == len(res.plan.subgraphs)
        assert sum(d["num_tasks"] for d in res.per_subgraph) == res.metrics.num_tasks
        assert sum(d["flops"] for d in res.per_subgraph) == pytest.approx(res.metrics.total_flops)
        # Counter growth is attributed without double counting (flush-time
        # write-backs land after the last snapshot, so <= total).
        assert sum(d["dram_txns"] for d in res.per_subgraph) <= res.metrics.memory.dram_txns

    def test_attribution_table_renders(self):
        from testlib import small_chain_graph

        g = small_chain_graph(size=64)
        res = BrickDLEngine(g).run(inputs=None, functional=False)
        table = res.attribution_table()
        assert "per-subgraph attribution" in table and "memoized" in table

    def test_cli_per_subgraph(self, capsys):
        from repro.cli import main

        assert main(["run", "vgg16", "--reduced", "--per-subgraph"]) == 0
        assert "attribution" in capsys.readouterr().out
