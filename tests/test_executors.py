"""Padded- and memoized-brick executor tests: numerical equivalence with the
reference executor, protocol invariants, and emitted-metric sanity."""

import numpy as np
import pytest

from repro.core.bricked import BrickedTensor
from repro.core.handles import BrickedHandle
from repro.core.memoized import MemoizedBrickExecutor, _COMPLETE
from repro.core.padded import PaddedBrickExecutor
from repro.core.reference import ReferenceExecutor
from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec
from repro.graph.traversal import subgraph_view
from repro.gpusim.device import Device
from repro.gpusim.spec import A100, GPUSpec

from testlib import input_for


def build_subgraph_fixture(make_graph, member_names, brick=(4, 4), seed=0):
    """Run the reference on the full graph; set up a merged executor over the
    named members with entries fed from reference activations."""
    g = make_graph()
    g.init_weights()
    x = input_for(g, seed)
    refs = ReferenceExecutor(g).run_all(x)
    ids = [g.node(n).node_id for n in member_names]
    view = subgraph_view(g, ids)
    device = Device(A100)
    entries = {}
    for eid in view.entry_ids:
        node = g.node(eid)
        bt = BrickedTensor.from_dense(refs[node.name], brick)
        buf = device.allocate(node.name, bt.nbytes)
        entries[eid] = BrickedHandle(spec=node.spec, grid=bt.grid, buffer=buf, data=bt)
    weight_buffers = {}
    for nid in ids:
        node = g.node(nid)
        nbytes = sum(w.nbytes for w in node.weights.values())
        if nbytes:
            weight_buffers[nid] = device.allocate(f"{node.name}/w", nbytes)
    return g, view, device, entries, weight_buffers, refs


def two_conv():
    b = GraphBuilder("g", TensorSpec(1, 3, (24, 24)))
    b.conv(6, 3, padding=1, name="conv1")
    b.relu(name="relu1")
    b.conv(6, 3, padding=1, name="conv2")
    return b.finish()


def branchy():
    b = GraphBuilder("g", TensorSpec(1, 4, (16, 16)))
    root = b.conv(4, 3, padding=1, name="root")
    left = b.conv(4, 3, padding=1, src=root, name="left")
    right = b.conv(4, 1, src=root, name="right")
    out = b.add(left, right, name="join")
    b.relu(src=out, name="out")
    return b.finish()


def strided_pool():
    b = GraphBuilder("g", TensorSpec(1, 3, (24, 24)))
    b.conv(4, 3, stride=2, padding=1, name="conv")
    b.batchnorm(name="bn")
    b.maxpool(2, name="pool")
    return b.finish()


CASES = [
    (two_conv, ("conv1", "relu1", "conv2"), "conv2"),
    (branchy, ("root", "left", "right", "join", "out"), "out"),
    (strided_pool, ("conv", "bn", "pool"), "pool"),
]


@pytest.mark.parametrize("make_graph,members,out_name", CASES)
class TestEquivalence:
    def test_padded_matches_reference(self, make_graph, members, out_name):
        g, view, device, entries, wb, refs = build_subgraph_fixture(make_graph, members)
        ex = PaddedBrickExecutor(
            subgraph=view, brick_shape=(4, 4), device=device,
            entries=entries, weight_buffers=wb, functional=True,
        )
        exits = ex.run()
        out_id = g.node(out_name).node_id
        np.testing.assert_allclose(
            exits[out_id].data.to_dense(), refs[out_name], atol=1e-4, rtol=1e-4
        )

    def test_memoized_matches_reference(self, make_graph, members, out_name):
        g, view, device, entries, wb, refs = build_subgraph_fixture(make_graph, members)
        ex = MemoizedBrickExecutor(view, (4, 4), device, entries, wb, functional=True)
        exits = ex.run()
        out_id = g.node(out_name).node_id
        np.testing.assert_allclose(
            exits[out_id].data.to_dense(), refs[out_name], atol=1e-4, rtol=1e-4
        )


class TestMemoizedProtocol:
    def _run(self, workers=None):
        g, view, device, entries, wb, refs = build_subgraph_fixture(two_conv, ("conv1", "relu1", "conv2"))
        if workers:
            device = Device(GPUSpec(num_sms=workers))
            # re-register buffers on the new device (geometry only matters)
        ex = MemoizedBrickExecutor(view, (4, 4), device, entries, wb, functional=True)
        ex.run()
        return ex

    def test_all_bricks_complete(self):
        ex = self._run()
        for nid, states in ex.states.items():
            assert all(s == _COMPLETE for s in states), f"node {nid} left incomplete bricks"

    def test_exactly_once_compute(self):
        """Total submitted tasks == total bricks across member nodes."""
        ex = self._run()
        total_bricks = sum(
            h.grid.num_bricks * h.spec.batch for h in ex.memo.values()
        )
        assert len(ex.device.tasks) == total_bricks

    def test_compulsory_atomics_two_per_brick(self):
        ex = self._run()
        metrics = ex.device.finish()
        assert metrics.atomics.compulsory == 2 * len(ex.device.tasks)

    def test_visits_at_least_deps(self):
        ex = self._run()
        assert ex.total_visits >= len(ex.device.tasks)


class TestPaddedMetrics:
    def test_one_task_per_exit_brick(self):
        g, view, device, entries, wb, refs = build_subgraph_fixture(two_conv, ("conv1", "relu1", "conv2"))
        ex = PaddedBrickExecutor(subgraph=view, brick_shape=(4, 4), device=device,
                                 entries=entries, weight_buffers=wb, functional=True)
        exits = ex.run()
        out_id = g.node("conv2").node_id
        assert len(device.tasks) == exits[out_id].grid.num_bricks

    def test_no_atomics(self):
        g, view, device, entries, wb, refs = build_subgraph_fixture(two_conv, ("conv1", "relu1", "conv2"))
        PaddedBrickExecutor(subgraph=view, brick_shape=(4, 4), device=device,
                            entries=entries, weight_buffers=wb, functional=True).run()
        assert device.finish().atomics.total == 0

    def test_halo_shows_as_l1_overfetch(self):
        """Padded reads more L1 bytes than memoized for the same subgraph."""
        g1, v1, d1, e1, w1, _ = build_subgraph_fixture(two_conv, ("conv1", "relu1", "conv2"))
        PaddedBrickExecutor(subgraph=v1, brick_shape=(4, 4), device=d1,
                            entries=e1, weight_buffers=w1, functional=True).run()
        g2, v2, d2, e2, w2, _ = build_subgraph_fixture(two_conv, ("conv1", "relu1", "conv2"))
        MemoizedBrickExecutor(v2, (4, 4), d2, e2, w2, functional=True).run()
        assert d1.finish().memory.l1_txns > 0
        assert d2.finish().memory.l1_txns > 0
