"""Distributed (spatial model parallel) execution tests."""

import numpy as np
import pytest

from repro.core.reference import ReferenceExecutor
from repro.distributed import CommModel, DistributedRunner
from repro.errors import ExecutionError
from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec
from repro.stencil import build_heat_graph, build_vcycle_graph, reference_heat, reference_vcycle

from testlib import input_for


def conv_trunk(size=24):
    b = GraphBuilder("trunk", TensorSpec(1, 3, (size, size)))
    b.conv_bn_relu(8, 3, prefix="c1")
    b.conv_bn_relu(8, 3, prefix="c2")
    b.conv(8, 3, stride=2, padding=1, name="down")
    b.conv_bn_relu(8, 3, prefix="c3")
    return b.finish()


class TestEquivalence:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_conv_trunk(self, ranks):
        g = conv_trunk()
        g.init_weights()
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = DistributedRunner(conv_trunk(), num_ranks=ranks).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-4, rtol=1e-4)

    @pytest.mark.parametrize("ranks", [2, 4])
    def test_heat_chain(self, ranks):
        u0 = np.random.default_rng(0).standard_normal((32, 32)).astype(np.float32)
        res = DistributedRunner(build_heat_graph(6, 32), num_ranks=ranks).run(u0[None, None])
        out = list(res.outputs.values())[0][0, 0]
        np.testing.assert_allclose(out, reference_heat(u0, 6), atol=1e-5)

    def test_multigrid_vcycle(self):
        """A branchy graph with restriction and prolongation still splits."""
        n = 32
        rng = np.random.default_rng(1)
        f = rng.standard_normal((n, n)).astype(np.float32)
        u0 = np.zeros((n, n), np.float32)
        res = DistributedRunner(build_vcycle_graph(n), num_ranks=4).run(np.stack([u0, f])[None])
        np.testing.assert_allclose(res.outputs["u_out"][0, 0], reference_vcycle(u0, f), atol=1e-4)

    def test_uneven_partition(self):
        """Extents not divisible by ranks still reassemble exactly."""
        g = conv_trunk(size=26)
        g.init_weights()
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = DistributedRunner(conv_trunk(size=26), num_ranks=4).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-4, rtol=1e-4)


class TestValidation:
    def test_global_ops_rejected(self):
        from testlib import small_chain_graph

        with pytest.raises(ExecutionError, match="global"):
            DistributedRunner(small_chain_graph(), num_ranks=2)

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ExecutionError, match="extent"):
            DistributedRunner(conv_trunk(size=24), num_ranks=16)  # 12-row layer

    def test_functional_needs_input(self):
        with pytest.raises(ExecutionError):
            DistributedRunner(conv_trunk(), num_ranks=2).run(None, functional=True)


class TestCommunication:
    def test_single_rank_no_comm(self):
        u0 = np.zeros((16, 16), np.float32)
        res = DistributedRunner(build_heat_graph(2, 16), num_ranks=1).run(u0[None, None])
        assert res.comm.messages == 0 and res.comm.bytes == 0

    def test_deeper_merges_fewer_messages_same_volume(self):
        u0 = np.random.default_rng(0).standard_normal((32, 32)).astype(np.float32)
        results = {}
        for sched in ((1,), (3,), (6,)):
            r = DistributedRunner(build_heat_graph(6, 32), num_ranks=4, layer_schedule=sched)
            results[sched] = r.run(u0[None, None])
        # Message count scales with exchange steps (one per subgraph)...
        assert results[(1,)].comm.messages > results[(3,)].comm.messages > results[(6,)].comm.messages
        # ...while total halo volume is the telescoped same.
        assert results[(1,)].comm.bytes == results[(6,)].comm.bytes
        # Latency-dominated comm time drops with merging.
        assert results[(6,)].comm.time_s < results[(1,)].comm.time_s

    def test_redundant_compute_grows_with_depth(self):
        u0 = np.random.default_rng(0).standard_normal((32, 32)).astype(np.float32)
        shallow = DistributedRunner(build_heat_graph(6, 32), num_ranks=4, layer_schedule=(1,)).run(u0[None, None])
        deep = DistributedRunner(build_heat_graph(6, 32), num_ranks=4, layer_schedule=(6,)).run(u0[None, None])
        assert sum(deep.per_rank_flops) > sum(shallow.per_rank_flops)

    def test_comm_model_costing(self):
        m = CommModel(latency_s=1e-6, bandwidth=1e9)
        t = m.exchange_step([1000, 2000])
        assert t == pytest.approx(1e-6 + 2000 / 1e9)
        assert m.counters.messages == 2 and m.counters.bytes == 3000

    def test_result_accounting(self):
        u0 = np.random.default_rng(0).standard_normal((32, 32)).astype(np.float32)
        res = DistributedRunner(build_heat_graph(4, 32), num_ranks=2).run(u0[None, None])
        assert res.total_time_s == pytest.approx(res.compute_time_s + res.comm.time_s)
        assert res.load_imbalance >= 0
        assert len(res.per_rank_flops) == 2
