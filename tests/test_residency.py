"""AnalyticResidency dirty-byte conservation and sim-path equivalence.

Mirrors ``test_cache_counters.py`` for the *analytic* residency model: every
byte that acquires a write-back obligation must leave through exactly one of
spilled (LRU overflow), flushed (end-of-run write-back), or discarded
(transient data dropped on-device) -- or still be dirty-resident.

Also pins three accounting fixes:

* ``read`` must plumb the dirty bytes its insertions spill into the DRAM
  write counter (previously the spill return of ``_insert`` was dropped);
* ``total()`` is a running sum, kept consistent through every operation
  (previously an O(n) recomputation per eviction-loop iteration);
* blocked reads and writes charge the same offset-aware ``_lines`` for a
  full-range transfer (previously reads used alignment-blind ``_txns``).

The equivalence classes at the bottom assert the scalar oracle and the
vectorized batch path produce bit-identical counters.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gpusim.device import Device
from repro.gpusim.memory import AnalyticResidency, MemorySystem, _lines, _txns
from repro.gpusim.spec import A100
from repro.gpusim.trace import Buffer, Task

CAP = 4096


def make_buffer(name: str, nbytes: int, transient: bool = False) -> Buffer:
    return Buffer.new(name, nbytes, transient)


def conserved(ar: AnalyticResidency) -> bool:
    s = ar.stats()
    return s["written_dirty_bytes"] == (
        s["spilled_dirty_bytes"] + s["flushed_dirty_bytes"]
        + s["discarded_dirty_bytes"] + s["dirty_resident_bytes"])


class TestDirtyByteConservation:
    def test_write_then_flush(self):
        ar = AnalyticResidency(CAP)
        buf = make_buffer("a", 1024)
        ar.write(buf, 1024)
        assert ar.dirty_resident() == 1024
        assert ar.flush({}) == 1024
        assert ar.dirty_resident() == 0
        assert conserved(ar)

    def test_transient_flush_discards(self):
        ar = AnalyticResidency(CAP)
        buf = make_buffer("t", 1024, transient=True)
        ar.write(buf, 1024)
        assert ar.flush({buf.buffer_id: buf}) == 0
        assert ar.discarded_dirty_bytes == 1024
        assert conserved(ar)

    def test_streaming_write_spills_everything(self):
        ar = AnalyticResidency(CAP)
        big = make_buffer("big", 2 * CAP)
        assert ar.write(big, 2 * CAP) == 2 * CAP
        assert ar.spilled_dirty_bytes == 2 * CAP
        assert ar.total() == 0  # streaming writes keep nothing resident
        assert conserved(ar)

    def test_eviction_spills_dirty(self):
        ar = AnalyticResidency(CAP)
        a = make_buffer("a", CAP)
        b = make_buffer("b", CAP)
        ar.write(a, CAP)
        spilled = ar.write(b, CAP)  # b's insert evicts dirty a
        assert spilled == CAP
        assert conserved(ar)

    def test_discard_accounts_dirty(self):
        ar = AnalyticResidency(CAP)
        buf = make_buffer("a", 512)
        ar.write(buf, 512)
        ar.discard(buf.buffer_id)
        assert ar.discarded_dirty_bytes == 512
        assert ar.total() == 0
        assert conserved(ar)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(
        st.sampled_from(["read", "write", "discard", "flush"]),
        st.integers(0, 3),          # which buffer
        st.integers(1, CAP // 2),   # touched bytes
    ), min_size=1, max_size=60))
    def test_random_sequences_conserve(self, ops):
        ar = AnalyticResidency(CAP)
        # A mix of fitting, oversized, and transient buffers.
        bufs = [make_buffer("f0", CAP // 2), make_buffer("f1", CAP),
                make_buffer("big", 3 * CAP), make_buffer("t", CAP // 4, transient=True)]
        by_id = {b.buffer_id: b for b in bufs}
        for op, which, nbytes in ops:
            buf = bufs[which]
            if op == "read":
                hit, miss, spilled = ar.read(buf, min(nbytes, buf.nbytes))
                assert hit + miss == min(nbytes, buf.nbytes)
                assert spilled >= 0
            elif op == "write":
                ar.write(buf, min(nbytes, buf.nbytes))
            elif op == "discard":
                ar.discard(buf.buffer_id)
            else:
                ar.flush(by_id)
            # The ledger balances and the running resident total matches an
            # O(n) recount after *every* operation.
            assert conserved(ar)
            assert ar.total() == sum(e[0] for e in ar._entries.values())
            assert ar.total() <= ar.capacity or len(ar._entries) == 1


class TestReadSpillPlumbing:
    """Regression: dirty bytes evicted by a *read* insertion must surface."""

    def test_read_returns_spilled_dirty(self):
        ar = AnalyticResidency(CAP)
        dirty = make_buffer("dirty", CAP)
        clean = make_buffer("clean", CAP)
        ar.write(dirty, CAP)
        hit, miss, spilled = ar.read(clean, CAP)
        assert (hit, miss) == (0, CAP)
        assert spilled == CAP          # previously silently dropped
        assert conserved(ar)

    def test_dense_read_spill_reaches_dram_write_counter(self):
        ms = MemorySystem(A100)
        cap = ms.analytic.capacity
        dirty = ms.allocate("dirty", cap)
        clean = ms.allocate("clean", cap)
        task = Task(label="t")
        task.write(dirty, 0, cap, dense=True)
        task.read(clean, 0, cap, dense=True)
        for a in task.accesses:
            ms.process(a)
        # The read's insertion evicted `dirty`; its write-back must be in
        # the DRAM write counter already (not deferred to flush).
        assert ms.counters.dram_write_txns >= _txns(cap, ms.line)


class TestOffsetAwareCharging:
    """Regression: blocked reads and writes charge the same offset-aware
    line count for the same byte range."""

    def test_full_miss_read_matches_write_charge(self):
        offset, nbytes = 16, 96   # straddles an extra 32 B line
        expect = _lines(offset, nbytes, A100.transaction_bytes)
        assert expect == _txns(nbytes, A100.transaction_bytes) + 1

        ms_w = MemorySystem(A100)
        buf_w = ms_w.allocate("b", 4096)
        task = Task(label="w")
        task.write(buf_w, offset, nbytes)
        ms_w.process(task.accesses[0])

        ms_r = MemorySystem(A100)
        buf_r = ms_r.allocate("b", 4096)
        task = Task(label="r")
        task.read(buf_r, offset, nbytes)
        ms_r.process(task.accesses[0])

        assert ms_w.counters.l2_txns == expect
        assert ms_r.counters.l2_txns == expect          # full L1 miss
        assert ms_r.counters.dram_read_txns == expect   # full L2 miss


def _counters(result):
    m = result.metrics
    return (m.memory.l1_txns, m.memory.l2_txns, m.memory.dram_read_txns,
            m.memory.dram_write_txns, m.num_tasks, m.total_flops,
            m.atomics.compulsory, m.atomics.conflict, m.time.total)


def _run(graph_fn, strategy, sim_path):
    from repro.core.engine import BrickDLEngine

    engine = BrickDLEngine(graph_fn(), strategy_override=strategy)
    plan = engine.compile()
    device = Device(engine.spec, sim_path=sim_path)
    return engine.run(inputs=None, functional=False, device=device, plan=plan)


def chain_graph():
    from repro.graph.builder import GraphBuilder
    from repro.graph.tensorspec import TensorSpec

    b = GraphBuilder("chain", TensorSpec(1, 16, (32, 32)))
    for i in range(4):
        b.conv(16, 3, padding=1, bias=False, name=f"conv{i}")
    return b.finish()


def branchy_graph():
    from repro.models import zoo

    return zoo.build("mobilenet_v1", reduced=True)


class TestSimPathEquivalence:
    """The scalar oracle and the vectorized batch path are counter-identical
    (the distributed runner is analytic and has no memory system, so the
    three device-backed executors are the complete surface)."""

    @pytest.mark.parametrize("strategy", ["padded", "memoized", "wavefront"])
    def test_chain_all_executors(self, strategy):
        from repro.core.plan import Strategy

        s = Strategy(strategy)
        scalar = _run(chain_graph, s, "scalar")
        vector = _run(chain_graph, s, "vectorized")
        assert _counters(scalar) == _counters(vector)

    def test_model_zoo_planned(self):
        scalar = _run(branchy_graph, None, "scalar")
        vector = _run(branchy_graph, None, "vectorized")
        assert _counters(scalar) == _counters(vector)

    def test_env_var_selects_path(self, monkeypatch):
        from repro.gpusim.simpath import SCALAR, VECTORIZED, active_path

        monkeypatch.delenv("REPRO_SIM_PATH", raising=False)
        assert active_path() == VECTORIZED
        monkeypatch.setenv("REPRO_SIM_PATH", "scalar")
        assert active_path() == SCALAR
        monkeypatch.setenv("REPRO_SIM_PATH", "nonsense")
        with pytest.raises(ValueError):
            active_path()
