"""Empirical plan tuner: measured winners, agreement stats, plan rewrite."""

import pytest

from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.tuner import (
    MERGED_STRATEGIES,
    TunedChoice,
    TuningReport,
    tune_plan,
)
from repro.gpusim.device import Device
from repro.gpusim.spec import A100

from testlib import small_chain_graph


def _choice(strategy=Strategy.PADDED, brick=32, time=1.0,
            model_strategy=Strategy.PADDED, model_brick=32, model_time=1.0,
            index=0):
    return TunedChoice(index=index, strategy=strategy, brick=brick, time=time,
                       model_strategy=model_strategy, model_brick=model_brick,
                       model_time=model_time)


# ---------------------------------------------------------------------------
# TunedChoice / TuningReport accounting
# ---------------------------------------------------------------------------

def test_tuned_choice_agreement_flags():
    agree = _choice()
    assert agree.model_agrees_strategy and agree.model_agrees_brick
    differs = _choice(strategy=Strategy.WAVEFRONT, brick=16)
    assert not differs.model_agrees_strategy
    assert not differs.model_agrees_brick


def test_gain_over_model_sign_convention():
    # Tuned faster than the model's pick -> positive fractional gain.
    faster = _choice(time=0.75, model_time=1.0)
    assert faster.gain_over_model == pytest.approx(0.25)
    # The model's own configuration is never beaten by itself: zero gain.
    same = _choice(time=1.0, model_time=1.0)
    assert same.gain_over_model == pytest.approx(0.0)
    # Degenerate model time guards against division by zero.
    assert _choice(time=1.0, model_time=0.0).gain_over_model == 0.0


def test_tuning_report_agreement_ratios():
    report = TuningReport(choices=[
        _choice(index=0),                                    # both agree
        _choice(index=1, strategy=Strategy.MEMOIZED),        # strategy differs
        _choice(index=2, brick=8),                           # brick differs
        _choice(index=3, strategy=Strategy.WAVEFRONT, brick=8),  # neither
    ])
    assert report.strategy_agreement == pytest.approx(0.5)
    assert report.brick_agreement == pytest.approx(0.5)


def test_tuning_report_empty_is_full_agreement():
    report = TuningReport()
    assert report.strategy_agreement == 1.0
    assert report.brick_agreement == 1.0
    assert "Tuned 0 subgraphs" in report.summary()


def test_tuning_report_summary_marks_disagreements():
    report = TuningReport(choices=[
        _choice(index=0),
        _choice(index=1, strategy=Strategy.WAVEFRONT, time=0.5),
    ])
    summary = report.summary()
    assert "[=] subgraph 0" in summary
    assert "[!] subgraph 1" in summary
    assert "+50.0%" in summary  # tuning gain rendered with its sign


# ---------------------------------------------------------------------------
# tune_plan end-to-end
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tuned():
    graph = small_chain_graph(name="tuner_chain")
    plan, report = tune_plan(graph, bricks=(16, 32))
    return graph, plan, report


def test_tune_plan_covers_every_merged_subgraph(tuned):
    graph, plan, report = tuned
    base_plan = BrickDLEngine(graph).compile()
    merged = [s for s in base_plan.subgraphs if s.is_merged]
    assert merged, "fixture graph must produce merged subgraphs"
    assert len(report.choices) == len(merged)
    assert {c.index for c in report.choices} == {s.index for s in merged}
    # Unmerged subgraphs pass through untouched.
    assert len(plan.subgraphs) == len(base_plan.subgraphs)
    for before, after in zip(base_plan.subgraphs, plan.subgraphs):
        if not before.is_merged:
            assert after.strategy is before.strategy
            assert after.subgraph.node_ids == before.subgraph.node_ids
            assert after.reason == before.reason


def test_tune_plan_never_picks_a_slower_winner(tuned):
    _, _, report = tuned
    for choice in report.choices:
        assert choice.strategy in MERGED_STRATEGIES
        assert choice.time > 0
        # The measured winner is at least as fast as the static model's
        # configuration, so the tuning gain is never negative.
        assert choice.time <= choice.model_time
        assert choice.gain_over_model >= 0.0


def test_tune_plan_rewrites_subgraph_plans(tuned):
    graph, plan, report = tuned
    by_index = {c.index: c for c in report.choices}
    for sub in plan.subgraphs:
        choice = by_index.get(sub.index)
        if choice is None:
            continue
        assert sub.strategy is choice.strategy
        # Brick shape is the tuned brick clamped to the exit extent.
        exit_spec = graph.node(sub.subgraph.exit_ids[-1]).spec
        assert sub.brick_shape == tuple(
            min(choice.brick, e) for e in exit_spec.spatial)
        assert "tuned" in sub.reason


def test_tuned_plan_executes(tuned):
    graph, plan, _ = tuned
    engine = BrickDLEngine(graph)
    result = engine.run(inputs=None, functional=False,
                        device=Device(A100), plan=plan)
    assert result.metrics.total_time > 0


def test_tune_plan_respects_strategy_restriction():
    graph = small_chain_graph(name="tuner_restricted")
    _, report = tune_plan(graph, bricks=(32,), strategies=(Strategy.PADDED,))
    for choice in report.choices:
        # Only the model's own pick or PADDED can win under the restriction.
        assert choice.strategy in (Strategy.PADDED, choice.model_strategy)
