"""Tests for the section-6 extension features: wavefront execution, the
empirical tuner, Morton brick ordering, the profiler report, and the CLI."""

import numpy as np
import pytest

from repro.bench.proxies import conv_chain_3d
from repro.core.brick import morton_map, morton_permutation
from repro.core.bricked import BrickedTensor
from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.core.tuner import tune_plan
from repro.core.wavefront import WavefrontBrickExecutor, is_chain_subgraph, skew_factor
from repro.errors import ExecutionError
from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec
from repro.graph.traversal import subgraph_view

from testlib import input_for, residual_graph, small_chain_graph


def chain_2d(layers=3, size=24, c=4):
    b = GraphBuilder("chain", TensorSpec(1, c, (size, size)))
    for i in range(layers):
        b.conv(c, 3, padding=1, bias=False, name=f"conv{i}")
    return b.finish()


class TestWavefront:
    def test_chain_detection(self):
        g = chain_2d()
        assert is_chain_subgraph(subgraph_view(g, [1, 2, 3]))
        r = residual_graph()
        # A skip whose source is an *entry* is still a chain (always ready)...
        ids = [r.node(n).node_id for n in ("b1/conv1", "b1/bn1", "b1/relu1", "b1/conv2", "b1/bn2", "b1/add")]
        assert is_chain_subgraph(subgraph_view(r, ids))
        # ...but including the skip source makes it a genuine branch.
        ids = [r.node("stem/relu").node_id] + ids
        assert not is_chain_subgraph(subgraph_view(r, ids))

    def test_skew_factor_covers_halo(self):
        g = chain_2d()
        view = subgraph_view(g, [1, 2, 3])
        assert skew_factor(view, (4, 4)) >= 2  # 3x3 conv reaches 1 brick

    def test_pointwise_chain_skew_is_one(self):
        b = GraphBuilder("pw", TensorSpec(1, 2, (16, 16)))
        b.relu(name="r")
        b.batchnorm(name="bn")
        g = b.finish()
        view = subgraph_view(g, [1, 2])
        assert skew_factor(view, (4, 4)) == 1

    @pytest.mark.parametrize("make,sched", [
        (lambda: chain_2d(3, 24), (3,)),
        (lambda: conv_chain_3d(2, 12, channels=4, in_channels=2), (2,)),
    ])
    def test_matches_reference(self, make, sched):
        g = make()
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(make(), strategy_override=Strategy.WAVEFRONT,
                            brick_override=4, layer_schedule=sched).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)

    def test_no_atomics_exactly_once(self):
        g = chain_2d(3, 24)
        res = BrickDLEngine(g, strategy_override=Strategy.WAVEFRONT,
                            brick_override=4, layer_schedule=(3,)).run(
                            inputs=None, functional=False)
        assert res.metrics.atomics.total == 0

    def test_branch_falls_back_to_memoized(self):
        """Forcing wavefront on a branchy graph must still be correct."""
        g = residual_graph()
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(residual_graph(), strategy_override=Strategy.WAVEFRONT).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)

    def test_executor_rejects_branches_directly(self):
        r = residual_graph()
        ids = [r.node(n).node_id for n in ("stem/relu", "b1/conv1", "b1/bn1", "b1/relu1",
                                           "b1/conv2", "b1/bn2", "b1/add")]
        view = subgraph_view(r, ids)
        from repro.gpusim.device import Device

        with pytest.raises(ExecutionError):
            WavefrontBrickExecutor(subgraph=view, brick_shape=(4, 4), device=Device(),
                                   entries={}, weight_buffers={}, functional=False)

    def test_wave_count(self):
        g = chain_2d(2, 16)
        from repro.bench.harness import run_brickdl

        row, plan = run_brickdl(g, strategy=Strategy.WAVEFRONT, brick=4, layer_schedule=(2,))
        # 4x4 grid x 2 layers, plus the output from-bricks materialization.
        assert row.num_tasks == 2 * 16 + 1


class TestTuner:
    def test_tuned_plan_executes_correctly(self):
        g = small_chain_graph(size=48)
        plan, report = tune_plan(g, bricks=(4, 8))
        assert report.choices, "nothing was tuned"
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(g).run(x, plan=plan)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)

    def test_tuned_never_worse_than_model(self):
        g = small_chain_graph(size=48)
        _, report = tune_plan(g, bricks=(4, 8))
        for c in report.choices:
            assert c.time <= c.model_time + 1e-12

    def test_report_summary(self):
        g = small_chain_graph(size=48)
        _, report = tune_plan(g, bricks=(4,))
        text = report.summary()
        assert "agreement" in text and "subgraph" in text
        assert 0.0 <= report.strategy_agreement <= 1.0


class TestMortonOrder:
    def test_permutation_is_bijection(self):
        perm = morton_permutation((4, 6))
        assert sorted(perm) == list(range(24))

    def test_z_order_quads(self):
        bm = morton_map((4, 4))
        assert sorted(bm.physical(p) for p in [(0, 0), (0, 1), (1, 0), (1, 1)]) == [0, 1, 2, 3]
        assert sorted(bm.physical(p) for p in [(2, 2), (2, 3), (3, 2), (3, 3)]) == [12, 13, 14, 15]

    def test_roundtrip_through_bricked_tensor(self):
        x = np.random.default_rng(0).standard_normal((1, 3, 16, 16)).astype(np.float32)
        bt = BrickedTensor.from_dense(x, (4, 4), morton_map((4, 4)))
        np.testing.assert_array_equal(bt.to_dense(), x)

    def test_3d(self):
        perm = morton_permutation((2, 2, 2))
        assert sorted(perm) == list(range(8))

    def test_non_power_of_two(self):
        bm = morton_map((3, 5))
        assert bm.num_bricks == 15
        for pos, phys in bm:
            assert bm.logical(phys) == pos


class TestReportAndCli:
    def test_profile_report_fields(self):
        from repro.gpusim.report import profile_report
        from repro.gpusim.spec import A100

        res = BrickDLEngine(small_chain_graph(size=48)).run(inputs=None, functional=False)
        text = profile_report(res.metrics, A100, title="test")
        for needle in ("DRAM", "L2", "atomic", "compute", "total"):
            assert needle in text

    def test_cli_microbench(self, capsys):
        from repro.cli import main

        assert main(["microbench"]) == 0
        out = capsys.readouterr().out
        assert "87.45" in out and "6.7" in out

    def test_cli_plan(self, capsys):
        from repro.cli import main

        assert main(["plan", "vgg16", "--reduced"]) == 0
        assert "ExecutionPlan" in capsys.readouterr().out

    def test_cli_run(self, capsys):
        from repro.cli import main

        assert main(["run", "vgg16", "--reduced"]) == 0
        assert "profile" in capsys.readouterr().out

    def test_cli_bad_figure(self, capsys):
        from repro.cli import main

        assert main(["fig", "3"]) == 2
