"""Visualization, GPU presets, batch support, and failure-injection tests."""

import numpy as np
import pytest

from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.graph.visualize import ascii_plan, to_dot
from repro.gpusim.spec import A100, A100_SMALL_L2, GENERIC_16SM, MI100, GPUSpec

from testlib import input_for, residual_graph, small_chain_graph


class TestVisualize:
    def test_dot_structure(self):
        g = small_chain_graph()
        dot = to_dot(g)
        assert dot.startswith("digraph")
        assert dot.count("->") == sum(len(n.inputs) for n in g.nodes)
        for node in g.nodes:
            assert node.name in dot

    def test_dot_with_plan_colors_merged(self):
        g = small_chain_graph(size=48)
        plan = BrickDLEngine(g).compile()
        dot = to_dot(g, plan)
        assert "#a6cee3" in dot or "#b2df8a" in dot  # at least one merged color

    def test_ascii_plan(self):
        g = small_chain_graph(size=48)
        plan = BrickDLEngine(g).compile()
        text = ascii_plan(g, plan)
        assert "subgraph 0" in text
        for node in g.nodes:
            if not node.is_input:
                assert node.name in text


class TestSpecs:
    def test_presets_distinct(self):
        assert MI100.l2_bytes < A100.l2_bytes
        assert MI100.num_sms != A100.num_sms
        assert A100_SMALL_L2.l2_bytes == 10 * 1024 * 1024
        assert GENERIC_16SM.num_sms == 16

    def test_with_l2_naming(self):
        s = A100.with_l2(20 * 1024 * 1024)
        assert "20MB" in s.name and s.l2_bytes == 20 * 1024 * 1024

    def test_engine_runs_on_other_specs(self):
        for spec in (MI100, GENERIC_16SM, A100_SMALL_L2):
            g = small_chain_graph(size=48)
            res = BrickDLEngine(g, spec=spec).run(inputs=None, functional=False)
            assert res.metrics.total_time > 0

    def test_smaller_l2_more_dram(self):
        """Layer-by-layer execution re-reads activations: with a tiny L2
        they stream from DRAM instead of hitting cache."""
        from repro.baselines import CudnnBaseline

        g1 = small_chain_graph(size=64)
        big = CudnnBaseline(g1, spec=A100).run(functional=False)
        g2 = small_chain_graph(size=64)
        tiny = CudnnBaseline(g2, spec=A100.with_l2(128 * 1024)).run(functional=False)
        assert tiny.metrics.memory.dram_txns > big.metrics.memory.dram_txns


class TestBatchSupport:
    @pytest.mark.parametrize("strategy", [Strategy.PADDED, Strategy.MEMOIZED])
    def test_batch_two_matches_reference(self, strategy):
        from repro.graph.builder import GraphBuilder
        from repro.graph.tensorspec import TensorSpec

        def make():
            b = GraphBuilder("b2", TensorSpec(2, 3, (24, 24)))
            b.conv_bn_relu(4, 3, prefix="c1")
            b.conv(4, 3, padding=1, name="c2")
            return b.finish()

        g = make()
        g.init_weights()
        x = np.random.default_rng(0).standard_normal((2, 3, 24, 24)).astype(np.float32)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(make(), strategy_override=strategy, brick_override=4,
                            layer_schedule=(4,)).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)

    def test_batch_samples_independent(self):
        """Each batch sample's result is independent of the others."""
        from repro.graph.builder import GraphBuilder
        from repro.graph.tensorspec import TensorSpec

        def make(batch):
            b = GraphBuilder("bi", TensorSpec(batch, 2, (16, 16)))
            b.conv(4, 3, padding=1, name="c")
            return b.finish()

        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 2, 16, 16)).astype(np.float32)
        g2 = make(2)
        g2.init_weights(seed=9)
        both = ReferenceExecutor(g2).run(x)["c"]
        g1 = make(1)
        g1.init_weights(seed=9)
        single = ReferenceExecutor(g1).run(x[:1])["c"]
        np.testing.assert_allclose(both[:1], single, atol=1e-5)


class TestFailureInjection:
    def test_memoized_single_worker(self):
        """A one-SM device serializes everything but stays correct."""
        g = small_chain_graph(size=48)
        g.init_weights()
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        one_sm = GPUSpec(num_sms=1)
        res = BrickDLEngine(small_chain_graph(size=48), spec=one_sm,
                            strategy_override=Strategy.MEMOIZED).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)

    def test_brick_bigger_than_layer(self):
        """Brick sizes exceeding activation extents are clipped, not fatal."""
        g = small_chain_graph(size=48)
        g.init_weights()
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(small_chain_graph(size=48), strategy_override=Strategy.PADDED,
                            brick_override=64).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)

    def test_residual_with_forced_wavefront_everywhere(self):
        """Wavefront on branchy subgraphs silently falls back yet stays exact."""
        g = residual_graph()
        g.init_weights()
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = BrickDLEngine(residual_graph(), strategy_override=Strategy.WAVEFRONT,
                            brick_override=4).run(x)
        for k in ref:
            np.testing.assert_allclose(res.outputs[k], ref[k], atol=1e-3, rtol=1e-3)

    def test_deep_variants_build_and_plan(self):
        from repro.models import build

        for name in ("resnet101", "vgg19"):
            g = build(name, reduced=True)
            plan = BrickDLEngine(g).compile()
            assert len(plan.subgraphs) > 0
