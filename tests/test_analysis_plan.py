"""Plan verifier property tests (repro.analysis.plan_verify).

Every zoo model's compiled plan must satisfy the §3.3 invariants the
verifier independently re-derives; seeded tampering of a valid plan must be
flagged with the right diagnostic code.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import verify_plan
from repro.core.engine import BrickDLEngine
from repro.core.partition import memo_state_bytes, merged_footprint_bytes
from repro.core.plan import ExecutionPlan, Strategy
from repro.graph.traversal import subgraph_view
from repro.models import MODELS, build

ALL = sorted(MODELS)
# Branchy topologies where convexity is actually at risk: ResNet skip
# connections and Inception branches.
RISKY = ["resnet50", "inception_v4", "resnet101", "deepcam"]


def _compiled(name, **kwargs):
    graph = build(name, reduced=True)
    engine = BrickDLEngine(graph, **kwargs)
    return engine, engine.compile()


def _downstream(graph, roots):
    seen, frontier = set(roots), list(roots)
    while frontier:
        for c in graph.consumers(frontier.pop()):
            if c not in seen:
                seen.add(c)
                frontier.append(c)
    return seen


def _upstream(graph, roots):
    seen, frontier = set(roots), list(roots)
    while frontier:
        for i in graph.node(frontier.pop()).inputs:
            if i not in seen:
                seen.add(i)
                frontier.append(i)
    return seen


class TestZooProperties:
    @pytest.mark.parametrize("name", ALL)
    def test_verifier_clean(self, name):
        engine, plan = _compiled(name)
        report = verify_plan(plan, engine.spec, engine.config)
        assert report.ok, report.summary(name)

    @pytest.mark.parametrize("name", RISKY)
    def test_dependency_convexity(self, name):
        """Independent convexity predicate: no non-member lies on a path
        between two members."""
        _, plan = _compiled(name)
        graph = plan.graph
        for sub in plan.subgraphs:
            members = set(sub.subgraph.node_ids)
            between = (_downstream(graph, members) & _upstream(graph, members)) - members
            assert not between, (
                f"{name} subgraph {sub.index}: nodes {sorted(between)} lie on "
                f"member-to-member paths but are not members")

    @pytest.mark.parametrize("name", ALL)
    def test_footprint_bound_and_recompute(self, name):
        """Satellite 1: recorded footprints derive from the actual brick
        count of the candidate, and merged multi-layer subgraphs respect the
        L2 budget."""
        engine, plan = _compiled(name)
        budget = engine.spec.l2_bytes * engine.config.l2_budget_fraction
        for sub in plan.subgraphs:
            if not sub.is_merged:
                continue
            recomputed = merged_footprint_bytes(
                graph=plan.graph, member_ids=sub.subgraph.node_ids,
                entry_ids=sub.subgraph.entry_ids, brick_shape=sub.brick_shape)
            assert recomputed == sub.footprint_bytes, (name, sub.index)
            if len(sub.subgraph) > 1:
                assert sub.footprint_bytes <= budget, (name, sub.index)

    def test_memo_state_scales_with_brick_count(self):
        g = build("resnet50", reduced=True)
        ids = [n.node_id for n in g.nodes if n.spec.spatial][:4]
        small = memo_state_bytes(g, ids, 4)
        large = memo_state_bytes(g, ids, 32)
        assert small > large > 0  # finer bricks -> more tags

    def test_full_scale_resnet50(self):
        graph = build("resnet50")
        engine = BrickDLEngine(graph)
        report = verify_plan(engine.compile(), engine.spec, engine.config)
        assert report.ok, report.summary("resnet50/full")


class TestSeededTampering:
    def _tamper(self, plan, index, **changes):
        subs = list(plan.subgraphs)
        subs[index] = replace(subs[index], **changes)
        out = ExecutionPlan(plan.graph)
        out.subgraphs = subs
        return out

    def _merged_index(self, plan):
        return next(s.index for s in plan.subgraphs
                    if s.is_merged and len(s.subgraph) > 1)

    def test_footprint_lie_is_flagged(self):
        engine, plan = _compiled("resnet50")
        i = self._merged_index(plan)
        bad = self._tamper(plan, i,
                           footprint_bytes=plan.subgraphs[i].footprint_bytes + 1)
        report = verify_plan(bad, engine.spec, engine.config)
        assert report.by_code("plan.footprint-mismatch")

    def test_delta_lie_is_flagged(self):
        engine, plan = _compiled("resnet50")
        i = self._merged_index(plan)
        bad = self._tamper(plan, i, delta=plan.subgraphs[i].delta + 0.5)
        report = verify_plan(bad, engine.spec, engine.config)
        codes = {d.code for d in report.errors}
        assert "plan.delta-mismatch" in codes or "plan.strategy-mismatch" in codes

    def test_wrong_strategy_is_flagged(self):
        engine, plan = _compiled("resnet50")
        i = self._merged_index(plan)
        current = plan.subgraphs[i].strategy
        flipped = Strategy.PADDED if current is Strategy.MEMOIZED else Strategy.MEMOIZED
        bad = self._tamper(plan, i, strategy=flipped)
        report = verify_plan(bad, engine.spec, engine.config)
        assert report.by_code("plan.strategy-mismatch")

    def test_nonconvex_subgraph_is_flagged(self):
        engine, plan = _compiled("resnet50")
        graph = plan.graph
        sub = next(s for s in plan.subgraphs
                   if s.is_merged and len(s.subgraph) >= 3)
        ids = list(sub.subgraph.node_ids)
        # Drop an interior node: a member-to-member path now crosses it.
        interior = next(
            nid for nid in ids[1:-1]
            if any(i in ids for i in graph.node(nid).inputs)
            and any(c in ids for c in graph.consumers(nid)))
        holed = [i for i in ids if i != interior]
        view = subgraph_view(graph, holed)
        bad = self._tamper(plan, sub.index, subgraph=view)
        report = verify_plan(bad, engine.spec, engine.config)
        codes = {d.code for d in report.errors}
        assert "plan.convexity" in codes or "plan.contiguity" in codes, codes

    def test_missing_node_coverage_is_flagged(self):
        engine, plan = _compiled("resnet50")
        bad = ExecutionPlan(plan.graph)
        bad.subgraphs = list(plan.subgraphs[:-1])
        report = verify_plan(bad, engine.spec, engine.config)
        assert report.by_code("plan.uncovered")

    def test_override_relaxation(self):
        """Plans compiled under overrides verify when the verifier is told
        about them."""
        engine, plan = _compiled("resnet50", brick_override=8)
        relaxed = verify_plan(plan, engine.spec, engine.config, brick_override=8)
        assert relaxed.ok, relaxed.summary("brick_override=8")

        engine, plan = _compiled("resnet50", strategy_override=Strategy.PADDED)
        relaxed = verify_plan(plan, engine.spec, engine.config,
                              strategy_override=Strategy.PADDED)
        assert relaxed.ok, relaxed.summary("strategy_override=padded")
