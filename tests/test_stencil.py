"""Stencil/HPC subpackage tests: physics correctness and merged-execution
equivalence for the heat equation and the multigrid V-cycle."""

import numpy as np
import pytest

from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.errors import ShapeError
from repro.stencil import (
    build_heat_graph,
    build_vcycle_graph,
    reference_heat,
    reference_vcycle,
    stencil_weights,
)
from repro.stencil.multigrid import _apply_a


class TestStencilWeights:
    def test_2d_kernel(self):
        w = stencil_weights(2, alpha=0.1)
        assert w.shape == (1, 1, 3, 3)
        assert w[0, 0, 1, 1] == pytest.approx(1 - 0.4)
        assert w[0, 0, 0, 1] == pytest.approx(0.1)
        assert w[0, 0, 0, 0] == 0.0  # no diagonal taps

    def test_3d_kernel_sums_to_one(self):
        w = stencil_weights(3, alpha=0.05)
        assert w.sum() == pytest.approx(1.0)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            stencil_weights(1, 0.1)

    def test_unstable_alpha_rejected(self):
        with pytest.raises(ShapeError):
            build_heat_graph(2, 16, ndim=2, alpha=0.5)


class TestHeat:
    def test_graph_matches_numpy_2d(self, rng):
        u0 = rng.standard_normal((20, 20)).astype(np.float32)
        g = build_heat_graph(steps=5, size=20)
        out = ReferenceExecutor(g).run(u0[None, None])
        np.testing.assert_allclose(list(out.values())[0][0, 0], reference_heat(u0, 5),
                                   atol=1e-5)

    def test_graph_matches_numpy_3d(self, rng):
        u0 = rng.standard_normal((8, 8, 8)).astype(np.float32)
        g = build_heat_graph(steps=3, size=8, ndim=3, alpha=0.05)
        out = ReferenceExecutor(g).run(u0[None, None])
        np.testing.assert_allclose(list(out.values())[0][0, 0],
                                   reference_heat(u0, 3, alpha=0.05), atol=1e-5)

    @pytest.mark.parametrize("strategy", [Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT])
    def test_merged_equals_numpy(self, strategy, rng):
        u0 = rng.standard_normal((24, 24)).astype(np.float32)
        engine = BrickDLEngine(build_heat_graph(4, 24), strategy_override=strategy,
                               brick_override=4, layer_schedule=(4,))
        res = engine.run(u0[None, None])
        np.testing.assert_allclose(list(res.outputs.values())[0][0, 0],
                                   reference_heat(u0, 4), atol=1e-4)

    def test_diffusion_smooths(self, rng):
        """Physics sanity: diffusion reduces variance, conserves nothing
        at the absorbing boundary (energy decays)."""
        u0 = rng.standard_normal((32, 32)).astype(np.float32)
        u = reference_heat(u0, 20)
        assert u.std() < u0.std()
        assert np.abs(u).sum() < np.abs(u0).sum()

    def test_constant_interior_steady(self):
        """Away from boundaries, a uniform field stays uniform (kernel sums
        to 1)."""
        u0 = np.ones((16, 16), np.float32)
        u = reference_heat(u0, 1)
        np.testing.assert_allclose(u[4:-4, 4:-4], 1.0, atol=1e-6)


class TestVcycle:
    def _problem(self, n=32, seed=3):
        rng = np.random.default_rng(seed)
        f = rng.standard_normal((n, n)).astype(np.float32)
        return np.zeros((n, n), np.float32), f

    def test_graph_matches_numpy(self):
        u0, f = self._problem()
        g = build_vcycle_graph(32)
        out = ReferenceExecutor(g).run(np.stack([u0, f])[None])["u_out"][0, 0]
        np.testing.assert_allclose(out, reference_vcycle(u0, f), atol=1e-4)

    def test_merged_matches_numpy(self):
        u0, f = self._problem()
        res = BrickDLEngine(build_vcycle_graph(32)).run(np.stack([u0, f])[None])
        np.testing.assert_allclose(res.outputs["u_out"][0, 0],
                                   reference_vcycle(u0, f), atol=1e-4)

    def test_residual_decreases(self):
        u0, f = self._problem()
        u1 = reference_vcycle(u0, f)
        r0 = np.linalg.norm(f - _apply_a(u0))
        r1 = np.linalg.norm(f - _apply_a(u1))
        assert r1 < 0.5 * r0

    def test_iterated_cycles_converge(self):
        u0, f = self._problem(n=16)
        u = u0
        norms = [np.linalg.norm(f - _apply_a(u))]
        for _ in range(4):
            u = reference_vcycle(u, f)
            norms.append(np.linalg.norm(f - _apply_a(u)))
        assert norms[-1] < norms[0] * 0.2
        assert all(b <= a * 1.001 for a, b in zip(norms, norms[1:]))

    def test_odd_size_rejected(self):
        with pytest.raises(ShapeError):
            build_vcycle_graph(31)

    def test_zero_rhs_fixed_point(self):
        """f = 0, u = 0 is the exact solution; the cycle must keep it."""
        u0 = np.zeros((16, 16), np.float32)
        f = np.zeros((16, 16), np.float32)
        out = reference_vcycle(u0, f)
        np.testing.assert_array_equal(out, 0.0)
