"""Property-based tests (hypothesis) on the core data structures and the
merged-execution correctness invariant."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.brick import BrickMap
from repro.core.bricked import BrickedTensor
from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.graph.builder import GraphBuilder
from repro.graph.regions import Interval, Region, StencilMap, TransposedMap
from repro.graph.tensorspec import TensorSpec
from repro.gpusim.cache import SectorCache

SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


intervals = st.tuples(st.integers(-20, 20), st.integers(0, 25)).map(
    lambda t: Interval(t[0], t[0] + t[1])
)


class TestIntervalAlgebra:
    @given(intervals, intervals)
    def test_intersection_commutes(self, a, b):
        x, y = a.intersect(b), b.intersect(a)
        assert x.is_empty() == y.is_empty()
        if not x.is_empty():
            assert x == y

    @given(intervals, intervals)
    def test_hull_contains_both(self, a, b):
        h = a.hull(b)
        assert h.contains(a) and h.contains(b)

    @given(intervals, st.integers(1, 30))
    def test_clip_within_bounds(self, iv, extent):
        c = iv.clip(extent)
        assert c.lo >= 0 and c.hi <= extent


regions = st.tuples(intervals, intervals).map(Region)
offsets = st.tuples(st.integers(-15, 15), st.integers(-15, 15))
extents = st.tuples(st.integers(1, 30), st.integers(1, 30))


class TestRegionAlgebra:
    @given(regions, regions)
    def test_intersection_commutes(self, a, b):
        x, y = a.intersect(b), b.intersect(a)
        assert x.is_empty() == y.is_empty()
        if not x.is_empty():
            assert x == y

    @given(regions)
    def test_intersection_idempotent(self, r):
        assert r.intersect(r) == r

    @given(regions, regions)
    def test_intersection_contained_in_both(self, a, b):
        x = a.intersect(b)
        assert a.contains(x) and b.contains(x)

    @given(regions, regions)
    def test_hull_contains_both(self, a, b):
        h = a.hull(b)
        assert h.contains(a) and h.contains(b)

    @given(regions, offsets)
    def test_shift_round_trip(self, r, o):
        assert r.shift(o).shift(tuple(-x for x in o)) == r

    @given(regions, offsets)
    def test_shift_preserves_shape(self, r, o):
        assert r.shift(o).shape == r.shape

    @given(regions, extents)
    def test_clip_is_intersection_with_box(self, r, e):
        clipped = r.clip(e)
        boxed = r.intersect(Region.from_extents(e))
        assert clipped.is_empty() == boxed.is_empty()
        if not clipped.is_empty():
            assert clipped == boxed

    @given(regions)
    def test_size_is_product_of_shape(self, r):
        assert r.size == int(np.prod(r.shape))
        assert r.is_empty() == (r.size == 0)

    @given(regions)
    def test_empty_propagates_through_intersection(self, r):
        empty = Region((Interval(0, 0), Interval(0, 0)))
        assert r.intersect(empty).is_empty()
        # ...but not through hull, which ignores the empty operand.
        assert r.hull(empty).is_empty() == r.is_empty()

    @given(regions, regions, regions)
    def test_intersection_associative(self, a, b, c):
        x = a.intersect(b).intersect(c)
        y = a.intersect(b.intersect(c))
        assert x.is_empty() == y.is_empty()
        if not x.is_empty():
            assert x == y


stencils = st.builds(
    StencilMap,
    stride=st.integers(1, 3),
    padding=st.integers(0, 3),
    k_eff=st.integers(1, 7),
)


class TestStencilProperties:
    @given(stencils, st.integers(0, 10), st.integers(1, 12))
    def test_in_interval_monotone(self, m, lo, length):
        small = m.in_interval(Interval(lo, lo + length))
        big = m.in_interval(Interval(lo, lo + length + 3))
        assert big.contains(small)

    @given(stencils, st.integers(0, 10), st.integers(1, 12))
    def test_alpha_beta_consistent(self, m, lo, length):
        """The paper's alpha*X + beta form equals the interval-map length."""
        alpha, beta = m.alpha_beta()
        iv = m.in_interval(Interval(lo, lo + length))
        assert iv.length == alpha * length + beta

    @given(stencils, st.integers(20, 64))
    def test_forward_backward_cover(self, m, extent):
        """The input needed for the whole output is within the padded input."""
        try:
            out = m.out_extent(extent)
        except Exception:
            return
        need = m.in_interval(Interval(0, out))
        assert need.lo >= -m.padding
        assert need.hi <= extent + m.padding


class TestTransposedProperties:
    @given(st.integers(1, 3), st.integers(0, 2), st.integers(2, 5),
           st.integers(2, 8), st.integers(1, 6))
    def test_every_output_covered(self, stride, padding, kernel, in_extent, length):
        if padding >= kernel or stride > kernel:
            # stride > kernel leaves genuine zero gaps in the output: those
            # positions have no producers by construction.
            return
        m = TransposedMap(stride=stride, padding=padding, kernel=kernel)
        try:
            out_extent = m.out_extent(in_extent)
        except Exception:
            return  # degenerate geometry (empty output) is rejected upstream
        lo = min(max(0, out_extent - length), out_extent - 1)
        out = Interval(lo, min(out_extent, lo + length))
        inp = m.in_interval(out)
        for o in out:
            assert any(
                0 <= o - (i * stride - padding) < kernel for i in inp
            ), f"output {o} uncovered"


class TestBrickRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 2), st.integers(1, 4),
        st.integers(1, 17), st.integers(1, 17),
        st.sampled_from([2, 3, 4]),
    )
    def test_dense_bricked_dense(self, n, c, h, w, b):
        rng = np.random.default_rng(h * 31 + w)
        x = rng.standard_normal((n, c, h, w)).astype(np.float32)
        bt = BrickedTensor.from_dense(x, (b, b))
        np.testing.assert_array_equal(bt.to_dense(), x)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_permutation_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 2, 9, 7)).astype(np.float32)
        grid = BrickedTensor.from_dense(x, (4, 4)).grid
        perm = rng.permutation(grid.num_bricks)
        bt = BrickedTensor.from_dense(x, (4, 4), BrickMap(grid.grid_shape, perm))
        np.testing.assert_array_equal(bt.to_dense(), x)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(-3, 10), st.integers(-3, 10), st.integers(1, 8), st.integers(1, 8))
    def test_gather_matches_dense_slice(self, lo0, lo1, len0, len1):
        rng = np.random.default_rng(lo0 * 100 + lo1 + 500)
        x = rng.standard_normal((1, 3, 11, 13)).astype(np.float32)
        bt = BrickedTensor.from_dense(x, (4, 4))
        region = Region.from_bounds([lo0, lo1], [lo0 + len0, lo1 + len1])
        patch = bt.gather_region(0, region)
        ref = np.zeros((3, len0, len1), np.float32)
        valid = region.clip((11, 13))
        if not valid.is_empty():
            ref[(slice(None), *valid.slices(origin=[lo0, lo1]))] = x[(0, slice(None), *valid.slices())]
        np.testing.assert_array_equal(patch, ref)


class TestCacheInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 60), st.booleans()),
                    min_size=1, max_size=80))
    def test_capacity_never_exceeded(self, accesses):
        c = SectorCache(8 * 256, 256)
        for buf, sector, write in accesses:
            c.access(buf, sector * 256, 256, write)
            assert len(c) <= c.capacity_sectors

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 7)), min_size=1, max_size=40))
    def test_working_set_within_capacity_always_hits_after_touch(self, accesses):
        c = SectorCache(16 * 256, 256)  # 16 sectors >= 2 bufs x 8 sectors
        touched = set()
        for buf, sector in accesses:
            r = c.access(buf, sector * 256, 256, write=False)
            if (buf, sector) in touched:
                assert r.hit_bytes == 256
            touched.add((buf, sector))


@st.composite
def random_conv_graph(draw):
    """A random small single-chain graph of mergeable ops."""
    size = draw(st.sampled_from([16, 20, 24]))
    ops = draw(st.lists(st.sampled_from(["conv", "relu", "bn", "pool", "conv_s2"]),
                        min_size=1, max_size=5))
    b = GraphBuilder("rand", TensorSpec(1, 3, (size, size)))
    for i, kind in enumerate(ops):
        try:
            if kind == "conv":
                b.conv(4, 3, padding=1, name=f"op{i}")
            elif kind == "relu":
                b.relu(name=f"op{i}")
            elif kind == "bn":
                b.batchnorm(name=f"op{i}")
            elif kind == "pool":
                b.maxpool(2, name=f"op{i}")
            elif kind == "conv_s2":
                b.conv(4, 3, stride=2, padding=1, name=f"op{i}")
        except Exception:
            break
    return b.finish()


class TestMergedEqualsNaive:
    @SLOW
    @given(random_conv_graph(), st.sampled_from([Strategy.PADDED, Strategy.MEMOIZED]))
    def test_random_graphs(self, graph, strategy):
        graph.init_weights()
        x = np.random.default_rng(0).standard_normal(graph.input_nodes[0].spec.shape).astype(np.float32)
        ref = ReferenceExecutor(graph).run(x)
        res = BrickDLEngine(graph, strategy_override=strategy, brick_override=4,
                            layer_schedule=(len(graph),)).run(x)
        for name, expected in ref.items():
            np.testing.assert_allclose(res.outputs[name], expected, atol=1e-3, rtol=1e-3)
