"""Direct unit tests for SectorCache lifetime counter accounting.

The invariant under test: every accessed byte lands in exactly one of
hit/miss, and every dirty byte leaves the cache through exactly one of
evicted (LRU pressure), flushed (write-back), or discarded (dropped
without write-back).
"""

import pytest

from repro.gpusim.cache import SectorCache


SECTOR = 32


def make_cache(sectors: int = 4) -> SectorCache:
    return SectorCache(capacity_bytes=sectors * SECTOR, sector_bytes=SECTOR)


class TestHitMissTotals:
    def test_every_accessed_byte_is_hit_or_miss(self):
        cache = make_cache()
        accessed = 0
        for offset, nbytes in ((0, 48), (16, 64), (100, 7), (0, 128)):
            cache.access(1, offset, nbytes, write=False)
            accessed += nbytes
        assert cache.hit_bytes_total + cache.miss_bytes_total == accessed

    def test_wrap_around_evictions_remiss(self):
        # Capacity 4 sectors; touching 6 distinct sectors evicts the first
        # two, so re-touching them must count as fresh misses, not hits.
        cache = make_cache(sectors=4)
        for s in range(6):
            cache.access(1, s * SECTOR, SECTOR, write=False)
        assert cache.miss_bytes_total == 6 * SECTOR
        assert cache.hit_bytes_total == 0
        # Sector 5 is resident (hit); sector 0 was evicted (miss again).
        assert cache.access(1, 5 * SECTOR, SECTOR, write=False).hit_bytes == SECTOR
        assert cache.access(1, 0, SECTOR, write=False).miss_bytes == SECTOR
        assert cache.hit_bytes_total == SECTOR
        assert cache.miss_bytes_total == 7 * SECTOR

    def test_partial_sector_spans_count_bytes_not_sectors(self):
        cache = make_cache()
        # 48 bytes at offset 16 straddles sectors 0..1 (16 + 32 bytes).
        r = cache.access(1, 16, 48, write=False)
        assert r.miss_bytes == 48
        # Re-access the same span: all 48 bytes hit even though the first
        # access only touched part of each sector (residency is sectorwise).
        r = cache.access(1, 16, 48, write=False)
        assert r.hit_bytes == 48
        assert cache.hit_bytes_total == 48
        assert cache.miss_bytes_total == 48


class TestDirtyByteAttribution:
    def test_discard_vs_flush_are_disjoint(self):
        cache = make_cache(sectors=8)
        cache.access(1, 0, 2 * SECTOR, write=True)   # buffer 1: 64 dirty
        cache.access(2, 0, SECTOR, write=True)       # buffer 2: 32 dirty
        assert cache.discard(1) == 2
        assert cache.discarded_dirty_bytes == 2 * SECTOR
        assert cache.flushed_dirty_bytes == 0
        assert cache.flush() == SECTOR
        assert cache.flushed_dirty_bytes == SECTOR
        # Nothing was evicted; the three exit paths never double-count.
        assert cache.evicted_dirty_bytes_total == 0
        assert cache.discarded_dirty_bytes + cache.flushed_dirty_bytes == 3 * SECTOR

    def test_flush_cleans_without_dropping_residency(self):
        cache = make_cache()
        cache.access(1, 0, SECTOR, write=True)
        cache.flush()
        assert len(cache) == 1
        # A second flush has nothing left to write back.
        assert cache.flush() == 0
        assert cache.flushed_dirty_bytes == SECTOR

    def test_partial_write_dirties_only_written_bytes(self):
        cache = make_cache()
        cache.access(1, 0, 10, write=True)
        assert cache.flush() == 10

    def test_eviction_attributes_dirty_to_evicted_total(self):
        cache = make_cache(sectors=2)
        cache.access(1, 0, 2 * SECTOR, write=True)
        cache.access(1, 2 * SECTOR, 2 * SECTOR, write=True)  # evicts both dirty
        assert cache.evicted_dirty_bytes_total == 2 * SECTOR
        assert cache.discarded_dirty_bytes == 0
        assert cache.flushed_dirty_bytes == 0


class TestDrainAndClear:
    def test_drain_evicted_dirty_is_idempotent(self):
        cache = make_cache(sectors=2)
        cache.access(1, 0, 2 * SECTOR, write=True)
        cache.access(1, 2 * SECTOR, SECTOR, write=True)  # evicts one dirty sector
        assert cache.drain_evicted_dirty() == SECTOR
        assert cache.drain_evicted_dirty() == 0
        assert cache.drain_evicted_dirty() == 0
        # The lifetime total is not consumed by draining.
        assert cache.evicted_dirty_bytes_total == SECTOR

    def test_clear_preserves_lifetime_totals(self):
        cache = make_cache(sectors=2)
        cache.access(1, 0, 2 * SECTOR, write=True)
        cache.access(1, 2 * SECTOR, SECTOR, write=False)  # eviction
        hit, miss = cache.hit_bytes_total, cache.miss_bytes_total
        evicted = cache.evicted_dirty_bytes_total
        cache.clear()
        assert len(cache) == 0
        assert cache.drain_evicted_dirty() == 0  # pending drain is dropped
        assert (cache.hit_bytes_total, cache.miss_bytes_total) == (hit, miss)
        assert cache.evicted_dirty_bytes_total == evicted

    def test_stats_reflects_lifetime_accounting(self):
        cache = make_cache()
        cache.access(1, 0, SECTOR, write=True)
        cache.access(1, 0, SECTOR, write=False)
        cache.discard(1)
        stats = cache.stats()
        assert stats == {
            "hit_bytes": SECTOR,
            "miss_bytes": SECTOR,
            "evicted_dirty_bytes": 0,
            "flushed_dirty_bytes": 0,
            "discarded_dirty_bytes": SECTOR,
            "resident_sectors": 0,
        }

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SectorCache(capacity_bytes=16, sector_bytes=32)
