"""Graph linter + typed structural validation (repro.analysis.graph_lint)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import Severity, lint_graph
from repro.errors import GraphError
from repro.models import MODELS, build
from testlib import residual_graph, small_chain_graph

ALL = sorted(MODELS)


class TestZooClean:
    @pytest.mark.parametrize("name", ALL)
    def test_every_zoo_model_lints_clean(self, name):
        report = lint_graph(build(name, reduced=True))
        assert report.ok, report.summary(name)
        assert not report.warnings, report.summary(name)


class TestTypedValidate:
    """graph.validate() raises a GraphError naming the offender (satellite 2)."""

    def test_dangling_edge(self):
        g = small_chain_graph()
        victim = g.node(3)
        victim.inputs = victim.inputs[:-1] + (9999,)
        with pytest.raises(GraphError, match=rf"{victim.name!r}.*dangling.*9999"):
            g.validate()

    def test_arity_mismatch(self):
        g = residual_graph()
        add = next(n for n in g.nodes if n.op.kind == "add")
        add.inputs = add.inputs[:1]
        with pytest.raises(GraphError, match=rf"{add.name!r}.*expects 2 inputs, has 1"):
            g.validate()

    def test_topological_order_violation(self):
        g = small_chain_graph()
        victim = g.node(2)
        victim.inputs = (5,)
        with pytest.raises(GraphError, match="violates\\s+topological order"):
            g.validate()

    def test_stale_name_index(self):
        g = small_chain_graph()
        g.node(2).name = g.node(3).name
        with pytest.raises(GraphError, match="different node"):
            g.validate()

    def test_bad_output_id(self):
        g = small_chain_graph()
        g._outputs.append(4242)
        with pytest.raises(GraphError, match="output id 4242"):
            g.validate()

    def test_consumer_list_mismatch(self):
        g = small_chain_graph()
        g._consumers[1].append(0)
        with pytest.raises(GraphError, match="consumer list"):
            g.validate()

    def test_structural_errors_reports_all(self):
        g = small_chain_graph()
        g.node(3).inputs = g.node(3).inputs[:-1] + (9999,)
        g._outputs.append(4242)
        errors = g.structural_errors()
        assert len(errors) >= 2
        assert all(isinstance(e, GraphError) for e in errors)


class TestLintFindsSeededDefects:
    def test_linter_reuses_structural_errors(self):
        g = small_chain_graph()
        g.node(3).inputs = g.node(3).inputs[:-1] + (9999,)
        report = lint_graph(g)
        structural = report.by_code("graph.structure")
        assert len(structural) == len(g.structural_errors())
        # Structural breakage suppresses the downstream passes entirely.
        assert {d.code for d in report.diagnostics} == {"graph.structure"}

    def test_shape_mismatch(self):
        g = small_chain_graph()
        victim = next(n for n in g.nodes if n.op.kind == "conv")
        victim.spec = replace(victim.spec, channels=victim.spec.channels + 1)
        report = lint_graph(g)
        codes = {d.code for d in report.errors}
        assert "graph.shape-mismatch" in codes
        assert any(d.node_id == victim.node_id
                   for d in report.by_code("graph.shape-mismatch"))

    def test_dtype_mismatch(self):
        g = small_chain_graph()
        victim = g.node(2)
        victim.spec = replace(victim.spec, dtype="float64")
        report = lint_graph(g)
        assert report.by_code("graph.dtype-mismatch")

    def test_unreachable_node_is_warning_only(self):
        g = small_chain_graph()
        from repro.graph.ops import Activation

        g.add(Activation("relu"), [g.node(1)], name="orphan")
        report = lint_graph(g)
        assert report.ok  # warnings don't fail
        unreachable = report.by_code("graph.unreachable")
        assert unreachable and unreachable[0].severity is Severity.WARNING

    def test_roundtrip_checked(self):
        report = lint_graph(residual_graph())
        assert report.ok
        assert not report.by_code("graph.roundtrip-unstable")

    def test_roundtrip_can_be_skipped(self):
        report = lint_graph(residual_graph(), check_serialization=False)
        assert report.ok
