"""Graph partitioning tests (section 3.3.1)."""


import pytest

from repro.core.partition import merged_footprint_bytes, partition_graph
from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec
from repro.gpusim.spec import A100, GPUSpec

from testlib import residual_graph, small_chain_graph


def all_partition_nodes(views):
    ids = []
    for v in views:
        ids.extend(v.node_ids)
    return ids


class TestStructure:
    def test_covers_every_non_input_node_once(self):
        g = small_chain_graph()
        views = partition_graph(g)
        ids = all_partition_nodes(views)
        expected = [n.node_id for n in g.nodes if not n.is_input]
        assert sorted(ids) == expected

    def test_views_are_contiguous_id_ranges(self):
        g = residual_graph()
        for v in partition_graph(g):
            ids = list(v.node_ids)
            assert ids == list(range(ids[0], ids[-1] + 1))

    def test_global_ops_isolated(self):
        g = small_chain_graph()
        views = partition_graph(g)
        for v in views:
            if any(g.node(i).op.is_global for i in v.node_ids):
                assert len(v) == 1

    def test_reduction_closes_subgraph(self):
        g = small_chain_graph()
        for v in partition_graph(g):
            members = [g.node(i) for i in v.node_ids]
            reductions = [n for n in members if n.op.is_reduction]
            if reductions:
                assert members[-1] is reductions[-1]

    def test_resolution_change_closes(self):
        """Strided convs and deconvs end their subgraphs."""
        b = GraphBuilder("updown", TensorSpec(1, 4, (32, 32)))
        b.conv(8, 3, padding=1, name="c1")
        b.conv(8, 3, stride=2, padding=1, name="down")
        b.conv(8, 3, padding=1, name="c2")
        b.deconv(8, 4, stride=2, padding=1, name="up")
        b.conv(8, 3, padding=1, name="c3")
        g = b.finish()
        views = partition_graph(g)
        closers = {g.node("down").node_id, g.node("up").node_id}
        for v in views:
            inner = set(v.node_ids[:-1])
            assert not (inner & closers), "resolution change must be last in its subgraph"


class TestBudget:
    def test_small_budget_forces_splits(self):
        g = residual_graph(size=64)
        small = GPUSpec(l2_bytes=256 * 1024)
        views_small = partition_graph(g, spec=small)
        views_big = partition_graph(g, spec=A100)
        assert len(views_small) >= len(views_big)

    def test_footprint_accounts_entries(self):
        g = small_chain_graph()
        with_entries = merged_footprint_bytes(g, [2, 3], [1])
        without = merged_footprint_bytes(g, [2, 3], [])
        assert with_entries > without


class TestSchedules:
    def proxy(self, layers=6):
        b = GraphBuilder("p", TensorSpec(1, 4, (32, 32)))
        for i in range(layers):
            b.conv(4, 3, padding=0, bias=False, name=f"conv{i}")
        return b.finish()

    @pytest.mark.parametrize("schedule,expected", [
        ((2, 2, 2), [2, 2, 2]),
        ((3, 3), [3, 3]),
        ((4, 2), [4, 2]),
        ((6,), [6]),
    ])
    def test_exact_layer_schedules(self, schedule, expected):
        g = self.proxy(6)
        views = partition_graph(g, layer_schedule=schedule)
        assert [len(v) for v in views] == expected

    def test_schedule_cycles_last_entry(self):
        g = self.proxy(6)
        views = partition_graph(g, layer_schedule=(2,))
        assert [len(v) for v in views] == [2, 2, 2]

    def test_max_layers(self):
        g = self.proxy(6)
        views = partition_graph(g, max_layers=4)
        assert max(len(v) for v in views) <= 4
