"""Profiling subsystem tests: collector reconciliation against RunMetrics,
trace-export schema, run-to-run determinism, and the CLI/harness wiring."""

import csv
import io
import json

import pytest

from repro.core.engine import BrickDLEngine, EngineResult
from repro.core.plan import Strategy
from repro.gpusim.device import Device
from repro.gpusim.spec import A100
from repro.profiling import TraceCollector, chrome_trace, summary_csv

from testlib import small_chain_graph

COUNTERS = ("l1_txns", "l2_txns", "dram_txns", "atomics_compulsory", "atomics_conflict")


def _profile(graph, **engine_kwargs):
    engine = BrickDLEngine(graph, **engine_kwargs)
    plan = engine.compile()
    device = Device(A100)
    collector = device.attach(TraceCollector())
    result = engine.run(inputs=None, functional=False, device=device, plan=plan)
    return plan, collector, result


@pytest.fixture(scope="module")
def profiled_run():
    graph = small_chain_graph(size=48)
    plan, collector, result = _profile(graph)
    return graph, plan, collector, result


def _metric_counters(metrics):
    return {
        "l1_txns": metrics.memory.l1_txns,
        "l2_txns": metrics.memory.l2_txns,
        "dram_txns": metrics.memory.dram_read_txns + metrics.memory.dram_write_txns,
        "atomics_compulsory": metrics.atomics.compulsory,
        "atomics_conflict": metrics.atomics.conflict,
    }


class TestCollector:
    def test_engine_attaches_and_returns_the_collector(self, profiled_run):
        _, _, collector, result = profiled_run
        assert result.trace is collector
        assert collector.finished
        assert collector.records

    def test_totals_reconcile_exactly_with_run_metrics(self, profiled_run):
        """Every transaction and atomic lands in exactly one task record or
        residual bucket: the rollup sums equal the device's counters."""
        _, _, collector, result = profiled_run
        totals = collector.totals()
        expected = _metric_counters(result.metrics)
        for key in COUNTERS:
            assert totals[key] == expected[key], key
        assert totals["num_tasks"] == result.metrics.num_tasks
        assert totals["flops"] == pytest.approx(result.metrics.total_flops)

    def test_per_node_column_sums_equal_totals(self, profiled_run):
        _, _, collector, _ = profiled_run
        table = collector.per_node()
        totals = collector.totals()
        for key in COUNTERS:
            assert sum(row[key] for row in table.values()) == totals[key], key
        assert sum(row["num_tasks"] for row in table.values()) == totals["num_tasks"]
        assert sum(row["flops"] for row in table.values()) == pytest.approx(totals["flops"])

    def test_per_node_keys_are_graph_nodes(self, profiled_run):
        graph, _, collector, _ = profiled_run
        ids = {n.node_id for n in graph.nodes}
        assert all(k is None or k in ids for k in collector.per_node())

    def test_per_subgraph_matches_plan_and_result(self, profiled_run):
        _, plan, collector, result = profiled_run
        rows = collector.per_subgraph(len(plan.subgraphs))
        assert len(rows) == len(plan.subgraphs)
        assert result.per_subgraph == rows
        attributed = sum(1 for r in collector.records if r.subgraph_index is not None)
        assert sum(row["num_tasks"] for row in rows) == attributed

    def test_records_carry_structured_identity(self, profiled_run):
        _, plan, collector, _ = profiled_run
        strategies = {s.strategy.value for s in plan.subgraphs} | {None}
        for r in collector.records:
            assert r.strategy in strategies
            assert 0 <= r.worker < A100.num_sms
            assert r.end_s >= r.start_s >= 0.0
        # conversion tasks have node ids too: the vast majority of records
        # attribute to a concrete graph node.
        assert sum(r.node_id is not None for r in collector.records) >= len(collector.records) * 0.9

    def test_timeline_well_nested_per_lane(self, profiled_run):
        _, _, collector, _ = profiled_run
        lanes = {}
        for r in collector.records:
            lanes.setdefault(r.worker, []).append(r)
        for records in lanes.values():
            records.sort(key=lambda r: r.start_s)
            for prev, nxt in zip(records, records[1:]):
                assert nxt.start_s >= prev.end_s - 1e-12

    def test_alloc_events_track_live_bytes(self, profiled_run):
        _, _, collector, _ = profiled_run
        assert collector.allocs
        live = 0
        for ev in collector.allocs:
            live += ev.nbytes
            assert ev.live_bytes == live
            assert ev.live_bytes >= 0


class TestExporters:
    def test_chrome_trace_round_trips_as_json(self, profiled_run, tmp_path):
        graph, _, collector, _ = profiled_run
        names = {n.node_id: n.name for n in graph.nodes}
        doc = json.loads(json.dumps(chrome_trace(collector, names=names)))
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["spec"] == A100.name
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

    def test_chrome_trace_events_schema(self, profiled_run):
        graph, _, collector, _ = profiled_run
        doc = chrome_trace(collector, names={n.node_id: n.name for n in graph.nodes})
        tasks = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(tasks) == len(collector.records)
        named_lanes = {e["tid"] for e in doc["traceEvents"]
                       if e["ph"] == "M" and e["name"] == "thread_name"}
        for e in tasks:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["tid"] in named_lanes
            assert "dram_txns" in e["args"] and "flops" in e["args"]

    def test_chrome_trace_lanes_well_nested(self, profiled_run):
        _, _, collector, _ = profiled_run
        doc = chrome_trace(collector)
        lanes = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                lanes.setdefault(e["tid"], []).append(e)
        for events in lanes.values():
            events.sort(key=lambda e: e["ts"])
            for prev, nxt in zip(events, events[1:]):
                assert nxt["ts"] >= prev["ts"] + prev["dur"] - 1e-6

    def test_counter_tracks_are_cumulative(self, profiled_run):
        _, _, collector, result = profiled_run
        doc = chrome_trace(collector)
        dram = [e["args"]["txns"] for e in doc["traceEvents"]
                if e["ph"] == "C" and e["name"] == "DRAM txns"]
        assert dram == sorted(dram)
        # The last sample is the sum of all per-task DRAM deltas.
        assert dram[-1] == sum(r.dram_txns for r in collector.records)

    def test_summary_csv_reconciles(self, profiled_run):
        graph, _, collector, result = profiled_run
        text = summary_csv(collector, names={n.node_id: n.name for n in graph.nodes})
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows
        expected = _metric_counters(result.metrics)
        for key in COUNTERS:
            assert sum(int(r[key]) for r in rows) == expected[key], key


class TestEngineResult:
    def test_per_subgraph_defaults_to_independent_lists(self, profiled_run):
        _, _, _, result = profiled_run
        a = EngineResult(outputs=None, metrics=result.metrics, plan=result.plan)
        b = EngineResult(outputs=None, metrics=result.metrics, plan=result.plan)
        assert a.per_subgraph == [] and b.per_subgraph == []
        assert a.per_subgraph is not b.per_subgraph
        a.per_subgraph.append({"num_tasks": 0})
        assert b.per_subgraph == []

    def test_attribution_tables_render(self, profiled_run):
        _, _, _, result = profiled_run
        assert "per-subgraph attribution" in result.attribution_table()
        assert "per-node attribution" in result.node_attribution_table()
        bare = EngineResult(outputs=None, metrics=result.metrics, plan=result.plan)
        assert "per-subgraph attribution" in bare.attribution_table()
        assert bare.node_attribution_table() == "(no trace collected)"


class TestDeterminism:
    def test_memoized_runs_are_byte_identical(self):
        """Two identical memoized runs produce identical conflict, compulsory,
        and transaction counts -- the trace layer must not perturb them."""
        graph = small_chain_graph(size=48)
        first = _profile(graph, strategy_override=Strategy.MEMOIZED)
        second = _profile(graph, strategy_override=Strategy.MEMOIZED)
        m1, m2 = first[2].metrics, second[2].metrics
        assert _metric_counters(m1) == _metric_counters(m2)
        assert m1.num_tasks == m2.num_tasks
        assert m1.total_flops == m2.total_flops
        assert first[1].totals() == second[1].totals()
        assert first[2].per_subgraph == second[2].per_subgraph

    def test_observer_does_not_change_counters(self):
        """A device with the collector attached counts exactly what a bare
        device counts (observation must be free of side effects)."""
        from repro.gpusim.trace import Task

        def run(device):
            buf = device.allocate("x", 1 << 16)
            for i in range(8):
                task = Task(label=f"t{i}", node_id=i % 2)
                task.read(buf, 0, 4096)
                task.write(buf, 4096, 4096)
                task.flops = 1e6
                device.submit(task)
            device.synchronize()
            return device.finish()

        bare = run(Device(A100))
        device = Device(A100)
        collector = device.attach(TraceCollector())
        observed = run(device)
        assert _metric_counters(bare) == _metric_counters(observed)
        assert collector.totals()["dram_txns"] == _metric_counters(observed)["dram_txns"]


class TestWiring:
    def test_run_brickdl_emits_trace_file(self, tmp_path):
        from repro.bench.harness import run_brickdl

        out = tmp_path / "run.json"
        run_brickdl(small_chain_graph(size=48), trace=out)
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_bench_export_write_trace_formats(self, profiled_run, tmp_path):
        from repro.bench.export import write_trace

        _, _, collector, _ = profiled_run
        jpath = write_trace(collector, tmp_path / "t.json")
        assert json.loads(jpath.read_text())["traceEvents"]
        cpath = write_trace(collector, tmp_path / "t.csv")
        assert list(csv.DictReader(io.StringIO(cpath.read_text())))
        with pytest.raises(ValueError):
            write_trace(collector, tmp_path / "t.txt")

    def test_cli_profile_writes_trace_and_csv(self, tmp_path, capsys):
        from repro.cli import main

        out, csv_out = tmp_path / "t.json", tmp_path / "t.csv"
        rc = main(["profile", "resnet50", "--reduced",
                   "--trace", str(out), "--csv", str(csv_out), "--per-node"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert list(csv.DictReader(io.StringIO(csv_out.read_text())))
        text = capsys.readouterr().out
        assert "per-node attribution" in text
