"""Serving layer: batcher, plan cache, server lifecycle, degradation paths."""

import asyncio

import numpy as np
import pytest

from repro.core.plan import Strategy
from repro.gpusim.spec import A100, GPUSpec
from repro.metrics import MetricsRegistry
from repro.serve import (
    DynamicBatcher,
    InferenceServer,
    PlanCache,
    PlanKey,
    QueueSaturatedError,
    ServeConfig,
    batch_bucket,
    loadgen,
    run_loadgen,
)
from repro.serve.plancache import CompiledEntry
from repro.serve.request import InferenceRequest, ServerClosedError

from testlib import input_for, small_chain_graph


def _request(loop, request_id=0, deadline_s=None):
    now = loop.time()
    return InferenceRequest(
        request_id=request_id, input=None,
        deadline_s=None if deadline_s is None else now + deadline_s,
        enqueued_s=now, future=loop.create_future())


def profile_server(graph=None, **overrides) -> InferenceServer:
    graph = graph if graph is not None else small_chain_graph(name="serve_chain")
    overrides.setdefault("functional", False)
    overrides.setdefault("max_wait_s", 0.005)
    return InferenceServer(graph, config=ServeConfig(**overrides))


# ---------------------------------------------------------------------------
# batch buckets
# ---------------------------------------------------------------------------

def test_batch_bucket_rounds_up_to_power_of_two():
    assert [batch_bucket(n, 8) for n in (1, 2, 3, 4, 5, 7, 8)] == \
        [1, 2, 4, 4, 8, 8, 8]


def test_batch_bucket_caps_at_max_batch():
    assert batch_bucket(5, 4) == 5  # never smaller than the batch itself
    assert batch_bucket(3, 4) == 4


def test_batch_bucket_rejects_nonpositive():
    with pytest.raises(ValueError):
        batch_bucket(0, 8)


# ---------------------------------------------------------------------------
# dynamic batcher
# ---------------------------------------------------------------------------

def test_batcher_coalesces_queued_requests():
    async def scenario():
        loop = asyncio.get_running_loop()
        queue = asyncio.Queue()
        batcher = DynamicBatcher(queue, max_batch=4, max_wait_s=0.05)
        for i in range(6):
            queue.put_nowait(_request(loop, i))
        first = await batcher.next_batch()
        second = await batcher.next_batch()
        return first, second

    first, second = asyncio.run(scenario())
    assert [r.request_id for r in first] == [0, 1, 2, 3]  # capped at max_batch
    assert [r.request_id for r in second] == [4, 5]       # flushed on timeout


def test_batcher_head_anchored_wait_admits_stragglers():
    async def scenario():
        loop = asyncio.get_running_loop()
        queue = asyncio.Queue()
        batcher = DynamicBatcher(queue, max_batch=8, max_wait_s=0.2)
        queue.put_nowait(_request(loop, 0))

        async def straggler():
            await asyncio.sleep(0.02)
            queue.put_nowait(_request(loop, 1))

        task = asyncio.create_task(straggler())
        batch = await batcher.next_batch()
        await task
        return batch

    batch = asyncio.run(scenario())
    assert [r.request_id for r in batch] == [0, 1]


def test_batcher_flushes_early_for_head_deadline():
    async def scenario():
        loop = asyncio.get_running_loop()
        queue = asyncio.Queue()
        # max_wait is huge; only the head's deadline can trigger the flush.
        batcher = DynamicBatcher(queue, max_batch=8, max_wait_s=10.0)
        queue.put_nowait(_request(loop, 0, deadline_s=0.03))
        t0 = loop.time()
        batch = await batcher.next_batch()
        return batch, loop.time() - t0

    batch, waited = asyncio.run(scenario())
    assert [r.request_id for r in batch] == [0]
    assert waited < 1.0  # flushed around the deadline, not max_wait


def test_batcher_validates_parameters():
    queue = asyncio.Queue()
    with pytest.raises(ValueError):
        DynamicBatcher(queue, max_batch=0)
    with pytest.raises(ValueError):
        DynamicBatcher(queue, max_wait_s=-1.0)


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------

def _entry(key: PlanKey) -> CompiledEntry:
    class _Plan:
        subgraphs = ()

    return CompiledEntry(key=key, engine=None, plan=_Plan(),
                         plan_digest="d" * 16, device_spec=A100)


def _key(bucket: int, model: str = "m", **kwargs) -> PlanKey:
    return PlanKey(model=model, batch_bucket=bucket, spec=A100, **kwargs)


def test_plan_key_digest_covers_every_field():
    base = _key(4)
    assert base.digest() == _key(4).digest()
    assert base.digest() != _key(8).digest()
    assert base.digest() != _key(4, model="other").digest()
    assert base.digest() != _key(4, strategy=Strategy.PADDED).digest()
    assert base.digest() != _key(4, brick=16).digest()
    small = GPUSpec(name="tiny", l2_bytes=A100.l2_bytes // 2)
    assert base.digest() != PlanKey(model="m", batch_bucket=4, spec=small).digest()


def test_plan_cache_hit_after_warmup_and_counters():
    registry = MetricsRegistry()
    cache = PlanCache(capacity=4, registry=registry)
    key = _key(2)
    compiles = []

    def compile_fn(k):
        compiles.append(k)
        return _entry(k)

    entry, hit = cache.get_or_compile(key, compile_fn)
    assert not hit and len(compiles) == 1
    entry2, hit2 = cache.get_or_compile(key, compile_fn)
    assert hit2 and entry2 is entry and len(compiles) == 1  # warm: no recompile
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_ratio == 0.5
    assert registry.counter("serve_plan_cache_hits").value == 1
    assert registry.counter("serve_plan_cache_misses").value == 1


def test_plan_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    cache.put(_entry(_key(1)))
    cache.put(_entry(_key(2)))
    assert cache.get(_key(1)) is not None  # touch 1 -> 2 becomes LRU
    cache.put(_entry(_key(4)))             # evicts bucket 2
    assert cache.evictions == 1
    assert cache.get(_key(2)) is None
    assert cache.get(_key(1)) is not None
    assert cache.get(_key(4)) is not None
    assert len(cache) == 2


def test_plan_cache_snapshot_describes_entries():
    cache = PlanCache(capacity=2)
    cache.put(_entry(_key(2, strategy=Strategy.WAVEFRONT)))
    (desc,) = cache.snapshot()
    assert desc["batch_bucket"] == 2
    assert desc["strategy"] == "wavefront"
    assert desc["plan_digest"] == "d" * 16


def test_plan_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# ---------------------------------------------------------------------------
# server end-to-end
# ---------------------------------------------------------------------------

def test_serve_requires_batch_one_graph():
    from repro.errors import ExecutionError
    from repro.graph.transforms import rebatch_graph

    batched = rebatch_graph(small_chain_graph(), 4)
    with pytest.raises(ExecutionError, match="batch 1"):
        InferenceServer(batched)


def test_serve_config_validation():
    with pytest.raises(ValueError):
        ServeConfig(devices=0)
    with pytest.raises(ValueError):
        ServeConfig(queue_depth=0)
    with pytest.raises(ValueError):
        ServeConfig(saturation_policy="drop")


def test_submit_on_closed_server_raises():
    server = profile_server()
    with pytest.raises(ServerClosedError):
        asyncio.run(server.submit(None))


def test_serve_closed_loop_cache_warmup_and_stats():
    server = profile_server(devices=2, max_batch=4, cache_capacity=4)
    report = loadgen(server, requests=24, mode="closed", concurrency=6)
    assert report.completed == 24
    assert report.rejected == 0
    stats = server.stats()
    assert stats["requests"]["completed"] == 24
    # Warmup compiles at most one plan per pow2 bucket; everything after
    # rides the cache.
    assert stats["plan_cache"]["misses"] <= 3  # buckets 1, 2, 4
    assert stats["plan_cache"]["hits"] > 0
    assert stats["plan_cache"]["request_hit_ratio"] > 0.5
    assert stats["batches"]["count"] == server.batches > 0
    assert stats["latency_s"]["p99"] >= stats["latency_s"]["p50"] > 0
    assert stats["throughput_rps"] > 0
    assert stats["sim_time_s"] > 0


def test_serve_functional_batched_matches_single_shot():
    graph = small_chain_graph(name="serve_func")
    server = InferenceServer(
        graph, config=ServeConfig(devices=1, max_batch=4, max_wait_s=0.005))

    async def scenario():
        async with server:
            # verify=4 re-runs responses single-shot and raises on any
            # bitwise difference.
            return await run_loadgen(server, requests=8, mode="closed",
                                     concurrency=4, verify=4)

    report = asyncio.run(scenario())
    assert report.completed == 8
    assert report.verified == 4


def test_serve_backpressure_rejects_when_saturated():
    server = profile_server(devices=1, max_batch=2, queue_depth=1,
                            saturation_policy="reject")

    async def scenario():
        async with server:
            results = await asyncio.gather(
                *[server.submit(None) for _ in range(16)],
                return_exceptions=True)
        return results

    results = asyncio.run(scenario())
    served = [r for r in results if not isinstance(r, Exception)]
    rejected = [r for r in results if isinstance(r, QueueSaturatedError)]
    assert len(served) + len(rejected) == 16
    assert rejected, "queue_depth=1 under a 16-burst must shed load"
    assert server.rejected == len(rejected)
    assert not any(r.degraded for r in served)  # reject policy never degrades


def test_serve_saturation_degrades_to_fallback():
    server = profile_server(devices=1, max_batch=2, queue_depth=1,
                            saturation_policy="degrade")

    async def scenario():
        async with server:
            return await asyncio.gather(
                *[server.submit(None) for _ in range(16)])

    results = asyncio.run(scenario())
    assert len(results) == 16
    degraded = [r for r in results if r.degraded]
    assert degraded, "degrade policy must shed load via the fallback path"
    assert server.rejected == 0
    assert all(r.batch_size == 1 for r in degraded)  # fallback is single-shot


def test_serve_timeout_degrades_to_fallback():
    # deadline 0: every request expires while queued and must take the
    # single-shot cuDNN-fallback path instead of riding a batch.
    server = profile_server(devices=1, default_timeout_s=0.0)

    async def scenario():
        async with server:
            return await asyncio.gather(
                *[server.submit(None) for _ in range(6)])

    results = asyncio.run(scenario())
    assert all(r.timed_out and r.degraded for r in results)
    assert server.timed_out == 6
    stats = server.stats()
    assert stats["requests"]["timed_out"] == 6
    assert stats["requests"]["degraded"] == 6


def test_serve_metrics_land_in_manifest():
    server = profile_server(devices=2, max_batch=4)
    loadgen(server, requests=12, mode="closed", concurrency=4)
    manifest = server.manifest(label="test", scale="small")
    doc = manifest.as_dict()
    assert doc["label"] == "test"
    assert doc["model"] == server.graph.name
    serve = doc["metrics"]["serve"]
    assert serve["requests"]["completed"] == 12
    assert serve["plan_cache"]["hits"] > 0
    assert doc["plan"]["cached"], "manifest must list the cached plans"
    for entry in doc["plan"]["cached"]:
        assert entry["plan_digest"]
        assert entry["batch_bucket"] >= 1
    names = {s["name"] for s in doc["registry"]["series"]}
    assert "serve_latency_s" in names
    assert "serve_batch_size" in names
    assert "serve_queue_depth" in names


def test_loadgen_poisson_seeded_inputs_are_deterministic():
    from repro.serve.loadgen import _request_input

    graph = small_chain_graph()
    a = _request_input(graph, 3, seed=7)
    b = _request_input(graph, 3, seed=7)
    c = _request_input(graph, 4, seed=7)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert a.shape == graph.input_nodes[0].spec.shape


def test_loadgen_rejects_bad_mode_and_rate():
    server = profile_server()

    async def bad_mode():
        async with server:
            await run_loadgen(server, requests=1, mode="bursty")

    with pytest.raises(ValueError, match="mode"):
        asyncio.run(bad_mode())

    server2 = profile_server()

    async def bad_rate():
        async with server2:
            await run_loadgen(server2, requests=1, mode="poisson", rate=0.0)

    with pytest.raises(ValueError, match="rate"):
        asyncio.run(bad_rate())


def test_rebatch_graph_shares_weights_and_engine_for_batch():
    from repro.core.engine import BrickDLEngine
    from repro.graph.transforms import rebatch_graph

    graph = small_chain_graph(name="rebatch")
    graph.init_weights()
    batched = rebatch_graph(graph, 4)
    assert batched is not graph
    assert all(n.spec.batch == 4 for n in batched.input_nodes)
    for node in graph.nodes:
        if node.weights:
            twin = batched.node(node.name)
            # The audited clone: a fresh dict (mutating the clone cannot leak
            # into the source graph) holding the *same* arrays (no copies).
            assert twin.weights is not node.weights
            assert twin.weights.keys() == node.weights.keys()
            for key, array in node.weights.items():
                assert twin.weights[key] is array
    assert rebatch_graph(graph, 1) is graph  # no-op at the same batch

    engine = BrickDLEngine(graph)
    engine4 = engine.for_batch(4)
    assert all(n.spec.batch == 4 for n in engine4.graph.input_nodes)
    x = input_for(graph, seed=0)
    single = engine.run(x, functional=True).outputs
    stacked = np.concatenate([x] * 4, axis=0)
    batched_out = engine4.run(stacked, functional=True).outputs
    for name, want in single.items():
        assert np.array_equal(batched_out[name][0:1], want)

# ---------------------------------------------------------------------------
# plan-cache partitions (multi-model isolation)
# ---------------------------------------------------------------------------

def test_partition_compile_storm_cannot_evict_other_model():
    """Model A churning through its quota never touches B's hot plans."""
    cache = PlanCache(capacity=8, quotas={"a": 2, "b": 2})
    cache.put(_entry(_key(1, model="b")))
    cache.put(_entry(_key(2, model="b")))
    for bucket in (1, 2, 4, 8, 16, 32):   # A's compile storm: 6 plans, quota 2
        cache.put(_entry(_key(bucket, model="a")))
    parts = cache.partition_stats()
    assert parts["a"]["evictions"] == 4 and parts["a"]["size"] == 2
    assert parts["b"]["evictions"] == 0 and parts["b"]["size"] == 2
    assert cache.get(_key(1, model="b")) is not None
    assert cache.get(_key(2, model="b")) is not None
    # Aggregates are exactly the partition sums (single-model manifest shape).
    assert cache.evictions == 4
    assert len(cache) == 4


def test_partition_counters_accurate_across_wraparound():
    """Hit/miss/eviction counters stay exact while an LRU partition wraps."""
    registry = MetricsRegistry()
    cache = PlanCache(capacity=2, registry=registry)
    compiled = []

    def compile_fn(k):
        compiled.append(k.batch_bucket)
        return _entry(k)

    # Two passes over 4 buckets through a 2-entry partition: every lookup
    # misses (the bucket was evicted before its reuse) and every insert past
    # the first two evicts.
    for _ in range(2):
        for bucket in (1, 2, 4, 8):
            cache.get_or_compile(_key(bucket, model="wrap"), compile_fn)
    stats = cache.partition_stats()["wrap"]
    assert stats == {"capacity": 2, "size": 2, "hits": 0, "misses": 8,
                     "evictions": 6, "hit_ratio": 0.0}
    assert compiled == [1, 2, 4, 8] * 2
    # A hot key in LRU position survives: touch 8 then insert -> 4 evicted.
    assert cache.get(_key(8, model="wrap")) is not None
    cache.put(_entry(_key(16, model="wrap")))
    assert cache.get(_key(8, model="wrap")) is not None
    stats = cache.partition_stats()["wrap"]
    assert stats["hits"] == 2 and stats["evictions"] == 7
    assert registry.counter("serve_plan_cache_partition_hits",
                            partition="wrap").value == 2
    assert registry.counter("serve_plan_cache_partition_misses",
                            partition="wrap").value == 8
    assert registry.counter("serve_plan_cache_partition_evictions",
                            partition="wrap").value == 7
    # Aggregate counters (no partition label) match the partition's.
    assert registry.counter("serve_plan_cache_hits").value == cache.hits == 2
    assert registry.counter("serve_plan_cache_misses").value == cache.misses == 8


def test_partition_quota_defaults_and_validation():
    cache = PlanCache(capacity=5, quotas={"special": 1})
    assert cache.partition("anyone").capacity == 5
    assert cache.partition("special").capacity == 1
    with pytest.raises(ValueError, match="quota"):
        PlanCache(capacity=4, quotas={"m": 0})


# ---------------------------------------------------------------------------
# multi-model fleet serving
# ---------------------------------------------------------------------------

def test_multi_model_server_routes_and_partitions():
    chain = small_chain_graph(name="chain_a")
    other = small_chain_graph(size=32, name="chain_b")
    server = InferenceServer(
        {"chain_a": chain, "chain_b": other},
        config=ServeConfig(functional=False, max_wait_s=0.005,
                           cache_quotas={"chain_b": 1}))

    async def run():
        async with server:
            ra = await server.submit(model="chain_a")
            rb = await server.submit(model="chain_b")
            rb2 = await server.submit(model="chain_b")
            return ra, rb, rb2

    ra, rb, rb2 = asyncio.run(run())
    assert ra.model == "chain_a" and rb.model == "chain_b"
    stats = server.stats()
    assert set(stats["models"]) == {"chain_a", "chain_b"}
    assert stats["models"]["chain_b"]["completed"] == 2
    parts = stats["plan_cache"]["partitions"]
    assert parts["chain_a"]["misses"] >= 1
    assert parts["chain_b"]["capacity"] == 1 and parts["chain_b"]["hits"] >= 1


def test_multi_model_server_rejects_unknown_model_and_dup_names():
    from repro.errors import ExecutionError

    chain = small_chain_graph(name="dup")
    with pytest.raises(ExecutionError, match="unique names"):
        InferenceServer([chain, small_chain_graph(size=32, name="dup")])
    server = profile_server()

    async def run():
        async with server:
            await server.submit(model="ghost")

    with pytest.raises(ExecutionError, match="not resident"):
        asyncio.run(run())
