"""Local (brick-patch) kernel dispatch vs full-tensor dispatch.

The invariant the merged executors rest on: for any op and any output
region, gathering the op's receptive-field input patch and running the
padding-free local kernel reproduces exactly the corresponding slice of the
full-tensor result.
"""

import numpy as np
import pytest

from repro.errors import UnsupportedOpError
from repro.graph.ops import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv,
    ConvTranspose,
    Dense,
    GlobalAvgPool,
    Pool,
    Softmax,
)
from repro.graph.regions import Region
from repro.graph.tensorspec import TensorSpec
from repro.kernels import apply_node_full, apply_node_local, pad_value_for


def check_local_matches_full(op, input_arrays, out_region, rng):
    """Gather patches per the op's rf maps and compare local vs full slice."""
    specs = [TensorSpec(a.shape[0], a.shape[1], a.shape[2:]) for a in input_arrays]
    weights = op.init_weights(specs, rng)
    full = apply_node_full(op, input_arrays, weights)

    patches = []
    offsets = (0,) * len(out_region)
    fill = pad_value_for(op)
    for idx, arr in enumerate(input_arrays):
        maps = op.rf_maps(specs, idx)
        need = Region(m.in_interval(iv) for m, iv in zip(maps, out_region))
        offsets = tuple(m.local_out_offset(iv.lo, niv.lo) for m, iv, niv in zip(maps, out_region, need))
        patch = np.full((arr.shape[1], *need.shape), fill, dtype=arr.dtype)
        valid = need.clip(arr.shape[2:])
        if not valid.is_empty():
            src = (0, slice(None), *valid.slices())
            dst = (slice(None), *valid.slices(origin=[iv.lo for iv in need]))
            patch[dst] = arr[src]
        patches.append(patch)

    local = apply_node_local(op, patches, weights, out_region.shape, offsets)
    expected = full[(0, slice(None), *out_region.slices())]
    np.testing.assert_allclose(local, expected, atol=1e-4, rtol=1e-4)


REGIONS = [
    Region.from_bounds([0, 0], [4, 4]),      # corner
    Region.from_bounds([3, 5], [7, 9]),      # interior
    Region.from_bounds([8, 8], [12, 12]),    # far corner
]


@pytest.mark.parametrize("region", REGIONS)
class TestLocalEqualsFull2D:
    def _x(self, rng, c=3, s=12):
        return rng.standard_normal((1, c, s, s)).astype(np.float32)

    def test_conv(self, region, rng):
        check_local_matches_full(Conv(out_channels=5, kernel=(3, 3), padding=1), [self._x(rng)], region, rng)

    def test_conv_strided(self, region, rng):
        op = Conv(out_channels=4, kernel=(3, 3), stride=2, padding=1)
        x = rng.standard_normal((1, 3, 24, 24)).astype(np.float32)
        check_local_matches_full(op, [x], region, rng)

    def test_conv_dilated(self, region, rng):
        op = Conv(out_channels=4, kernel=(3, 3), padding=2, dilation=2)
        check_local_matches_full(op, [self._x(rng)], region, rng)

    def test_conv_transpose(self, region, rng):
        op = ConvTranspose(out_channels=4, kernel=(4, 4), stride=2, padding=1)
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)  # output 16x16
        check_local_matches_full(op, [x], region, rng)

    def test_maxpool(self, region, rng):
        op = Pool(kernel=(3, 3), stride=1, padding=1, mode="max")
        check_local_matches_full(op, [self._x(rng)], region, rng)

    def test_avgpool(self, region, rng):
        op = Pool(kernel=(2, 2), stride=2)
        x = rng.standard_normal((1, 3, 24, 24)).astype(np.float32)
        check_local_matches_full(op, [x], region, rng)

    def test_activation(self, region, rng):
        check_local_matches_full(Activation("leaky_relu"), [self._x(rng)], region, rng)

    def test_batchnorm(self, region, rng):
        check_local_matches_full(BatchNorm(), [self._x(rng)], region, rng)

    def test_add(self, region, rng):
        check_local_matches_full(Add(), [self._x(rng), self._x(rng)], region, rng)

    def test_concat(self, region, rng):
        check_local_matches_full(Concat(num_inputs=2), [self._x(rng, c=2), self._x(rng, c=3)], region, rng)

    def test_softmax(self, region, rng):
        check_local_matches_full(Softmax(), [self._x(rng)], region, rng)


class TestLocalEqualsFull3D:
    def test_conv3d(self, rng):
        op = Conv(out_channels=3, kernel=(3, 3, 3), padding=1)
        x = rng.standard_normal((1, 2, 8, 8, 8)).astype(np.float32)
        region = Region.from_bounds([0, 2, 4], [4, 6, 8])
        check_local_matches_full(op, [x], region, rng)


class TestGlobalOpsRejected:
    def test_global_pool_not_local(self, rng):
        with pytest.raises(UnsupportedOpError):
            apply_node_local(GlobalAvgPool(), [np.zeros((1, 4, 4), np.float32)], {}, (1, 1), (0, 0))

    def test_dense_not_local(self):
        with pytest.raises(UnsupportedOpError):
            apply_node_local(Dense(out_features=4), [np.zeros((8,), np.float32)], {}, (), ())


def test_pad_value_only_maxpool_is_neg_inf():
    assert pad_value_for(Pool(kernel=(2, 2), mode="max")) == -np.inf
    assert pad_value_for(Pool(kernel=(2, 2), mode="avg")) == 0.0
    assert pad_value_for(Conv(out_channels=1, kernel=(3, 3))) == 0.0
