"""Gradient-graph tests: analytic VJPs checked against finite differences,
and merged execution of backward graphs."""

import numpy as np
import pytest

from repro.autograd import build_input_gradient_graph, gradient_feeds
from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.reference import ReferenceExecutor
from repro.errors import UnsupportedOpError
from repro.graph.builder import GraphBuilder
from repro.graph.tensorspec import TensorSpec


def numerical_input_grad(graph, x, upstream, out_name, eps=1e-3):
    """Central finite differences of <upstream, f(x)> w.r.t. x."""
    ex = ReferenceExecutor(graph)
    grad = np.zeros_like(x)
    flat_x = grad.reshape(-1)
    x_flat = x.reshape(-1)
    for i in range(x_flat.size):
        orig = x_flat[i]
        x_flat[i] = orig + eps
        hi = float((ex.run(x)[out_name] * upstream).sum())
        x_flat[i] = orig - eps
        lo = float((ex.run(x)[out_name] * upstream).sum())
        x_flat[i] = orig
        flat_x[i] = (hi - lo) / (2 * eps)
    return grad


def check_against_fd(make_graph, shape, atol=2e-2, kink_tolerant=False):
    graph = make_graph()
    graph.init_weights(seed=11)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(shape).astype(np.float32)
    out_name = graph.output_nodes[0].name
    forward = ReferenceExecutor(graph).run_all(x)
    upstream = rng.standard_normal(forward[out_name].shape).astype(np.float32)

    bwd = build_input_gradient_graph(graph)
    feeds = gradient_feeds(graph, forward, upstream)
    analytic = ReferenceExecutor(bwd).run(feeds)
    analytic = list(analytic.values())[0]

    numeric = numerical_input_grad(graph, x, upstream, out_name)
    if kink_tolerant:
        # Central differences straddle relu-family kinks when a
        # pre-activation sits within eps of zero; the analytic subgradient
        # is right there, the FD estimate is not.  Require the vast
        # majority to agree instead of every element.
        close = np.isclose(analytic, numeric, atol=atol, rtol=5e-2)
        assert close.mean() > 0.9, f"only {close.mean():.0%} of gradients match"
    else:
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=5e-2)
    return graph, bwd, feeds, analytic


class TestVjpsAgainstFiniteDifferences:
    def test_conv(self):
        def make():
            b = GraphBuilder("g", TensorSpec(1, 2, (6, 6)))
            b.conv(3, 3, padding=1, name="conv")
            return b.finish()
        check_against_fd(make, (1, 2, 6, 6))

    def test_strided_conv(self):
        def make():
            b = GraphBuilder("g", TensorSpec(1, 2, (8, 8)))
            b.conv(2, 3, stride=2, padding=1, name="conv")
            return b.finish()
        check_against_fd(make, (1, 2, 8, 8))

    def test_conv_transpose(self):
        def make():
            b = GraphBuilder("g", TensorSpec(1, 2, (5, 5)))
            b.deconv(2, 4, stride=2, padding=1, name="up")
            return b.finish()
        check_against_fd(make, (1, 2, 5, 5))

    def test_conv_bn_relu_chain(self):
        def make():
            b = GraphBuilder("g", TensorSpec(1, 2, (6, 6)))
            b.conv(3, 3, padding=1, bias=False, name="conv")
            b.batchnorm(name="bn")
            b.relu(name="relu")
            return b.finish()
        check_against_fd(make, (1, 2, 6, 6), kink_tolerant=True)

    def test_residual_add(self):
        def make():
            b = GraphBuilder("g", TensorSpec(1, 2, (6, 6)))
            root = b.conv(2, 3, padding=1, name="c1")
            branch = b.conv(2, 3, padding=1, src=root, name="c2")
            b.add(branch, root, name="add")
            return b.finish()
        check_against_fd(make, (1, 2, 6, 6))

    def test_avg_pool(self):
        def make():
            b = GraphBuilder("g", TensorSpec(1, 2, (8, 8)))
            b.avgpool(2, name="pool")
            return b.finish()
        check_against_fd(make, (1, 2, 8, 8))

    def test_leaky_relu(self):
        def make():
            b = GraphBuilder("g", TensorSpec(1, 2, (6, 6)))
            b.conv(2, 3, padding=1, name="conv")
            b.leaky_relu(slope=0.2, name="lrelu")
            return b.finish()
        check_against_fd(make, (1, 2, 6, 6), kink_tolerant=True)


class TestUnsupported:
    def test_maxpool_rejected(self):
        b = GraphBuilder("g", TensorSpec(1, 2, (8, 8)))
        b.maxpool(2)
        g = b.finish()
        with pytest.raises(UnsupportedOpError):
            build_input_gradient_graph(g)

    def test_sigmoid_rejected(self):
        b = GraphBuilder("g", TensorSpec(1, 2, (8, 8)))
        b.sigmoid()
        g = b.finish()
        with pytest.raises(UnsupportedOpError):
            build_input_gradient_graph(g)


class TestMergedBackward:
    """The backward graph is an ordinary mergeable graph: padded, memoized
    and the partitioner handle it like any conv-transpose trunk."""

    def _setup(self, size=24):
        b = GraphBuilder("trunk", TensorSpec(1, 3, (size, size)))
        b.conv(4, 3, padding=1, bias=False, name="c1")
        b.batchnorm(name="bn1")
        b.relu(name="r1")
        b.conv(4, 3, padding=1, bias=False, name="c2")
        b.relu(name="r2")
        graph = b.finish()
        graph.init_weights(seed=3)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 3, size, size)).astype(np.float32)
        forward = ReferenceExecutor(graph).run_all(x)
        upstream = rng.standard_normal(forward["r2"].shape).astype(np.float32)
        bwd = build_input_gradient_graph(graph)
        feeds = gradient_feeds(graph, forward, upstream)
        expected = ReferenceExecutor(bwd).run(feeds)
        return bwd, feeds, list(expected.values())[0]

    @pytest.mark.parametrize("strategy", [Strategy.PADDED, Strategy.MEMOIZED])
    def test_backward_graph_runs_merged(self, strategy):
        bwd, feeds, expected = self._setup()
        res = BrickDLEngine(bwd, strategy_override=strategy, brick_override=4,
                            layer_schedule=(len(bwd),)).run(feeds)
        got = list(res.outputs.values())[0]
        np.testing.assert_allclose(got, expected, atol=1e-3, rtol=1e-3)

    def test_backward_graph_partitions(self):
        bwd, _, _ = self._setup(size=48)
        plan = BrickDLEngine(bwd).compile()
        assert plan.merged_count >= 1

    def test_backward_is_transposed_conv_chain(self):
        bwd, _, _ = self._setup()
        kinds = [n.op.kind for n in bwd.nodes if not n.is_input]
        assert "convtranspose" in kinds and "mul" in kinds
