"""Graph IR and builder tests."""

import pytest

from repro.errors import GraphError, ShapeError
from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.graph.ops import Activation, Conv
from repro.graph.tensorspec import TensorSpec

from testlib import residual_graph, small_chain_graph


class TestGraph:
    def test_insertion_is_topological(self):
        g = small_chain_graph()
        for node in g.nodes:
            assert all(i < node.node_id for i in node.inputs)

    def test_duplicate_name_rejected(self):
        g = Graph("t")
        g.input(TensorSpec(1, 1, (4, 4)), name="x")
        with pytest.raises(GraphError):
            g.input(TensorSpec(1, 1, (4, 4)), name="x")

    def test_bad_input_reference(self):
        g = Graph("t")
        g.input(TensorSpec(1, 1, (4, 4)))
        with pytest.raises(GraphError):
            g.add(Activation("relu"), [7])

    def test_shape_error_annotated_with_name(self):
        g = Graph("t")
        x = g.input(TensorSpec(1, 3, (4, 4)))
        with pytest.raises(ShapeError, match="bigconv"):
            g.add(Conv(out_channels=4, kernel=(9, 9)), [x], name="bigconv")

    def test_consumers_tracked(self):
        g = residual_graph()
        add_node = g.node("b1/add")
        for pred in add_node.inputs:
            assert add_node.node_id in g.consumers(pred)

    def test_outputs_default_to_sinks(self):
        g = Graph("t")
        x = g.input(TensorSpec(1, 1, (4, 4)))
        y = g.add(Activation("relu"), [x])
        assert g.output_nodes == (y,)

    def test_node_lookup_by_name_and_id(self):
        g = small_chain_graph()
        n = g.node("c1/conv")
        assert g.node(n.node_id) is n
        with pytest.raises(GraphError):
            g.node("does-not-exist")

    def test_init_weights_idempotent(self):
        g = small_chain_graph()
        g.init_weights(seed=3)
        w1 = g.node("c1/conv").weights["weight"]
        g.init_weights(seed=4)  # must not reinitialize
        assert g.node("c1/conv").weights["weight"] is w1

    def test_weight_bytes_positive(self):
        g = small_chain_graph()
        g.init_weights()
        assert g.weight_bytes() > 0

    def test_total_flops_positive(self):
        assert small_chain_graph().total_flops() > 0

    def test_summary_mentions_all_nodes(self):
        g = small_chain_graph()
        s = g.summary()
        for node in g.nodes:
            assert node.name in s


class TestBuilder:
    def test_same_padding(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (16, 16)))
        n = b.conv(8, 5, padding="same")
        assert n.spec.spatial == (16, 16)

    def test_same_padding_with_dilation(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (16, 16)))
        n = b.conv(8, 3, padding="same", dilation=2)
        assert n.spec.spatial == (16, 16)

    def test_branching_with_at(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (16, 16)))
        root = b.conv(8, 3, padding=1)
        left = b.conv(8, 3, padding=1, src=root, name="left")
        right = b.conv(8, 3, padding=1, src=root, name="right")
        out = b.add(left, right)
        assert set(out.inputs) == {left.node_id, right.node_id}

    def test_concat_requires_two(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (16, 16)))
        x = b.conv(4, 1)
        with pytest.raises(GraphError):
            b.concat([x])

    def test_classifier_marks_output(self):
        g = small_chain_graph()
        assert g.output_nodes[0].name == "head/softmax"

    def test_finish_validates(self):
        b = GraphBuilder("t", TensorSpec(1, 3, (8, 8)))
        b.relu()
        g = b.finish()
        g.validate()
