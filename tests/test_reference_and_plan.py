"""Reference executor, plan structures, and tensor-spec coverage."""

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan, Strategy, SubgraphPlan
from repro.core.reference import ReferenceExecutor
from repro.errors import ExecutionError, ShapeError
from repro.graph.tensorspec import TensorSpec
from repro.graph.traversal import subgraph_view

from testlib import input_for, residual_graph, small_chain_graph


class TestTensorSpec:
    def test_shape_and_bytes(self):
        s = TensorSpec(2, 3, (4, 5))
        assert s.shape == (2, 3, 4, 5)
        assert s.num_elements == 120
        assert s.nbytes == 480

    def test_flat_spec(self):
        s = TensorSpec(1, 64)
        assert s.shape == (1, 64) and s.spatial_ndim == 0
        assert s.num_elements == 64

    def test_invalid(self):
        with pytest.raises(ShapeError):
            TensorSpec(0, 3, (4, 4))
        with pytest.raises(ShapeError):
            TensorSpec(1, 3, (0, 4))

    def test_with_helpers(self):
        s = TensorSpec(1, 3, (8, 8))
        assert s.with_channels(7).channels == 7
        assert s.with_spatial((2, 2)).spatial == (2, 2)

    def test_alloc_helpers(self):
        s = TensorSpec(1, 2, (3, 3))
        assert s.zeros().shape == s.shape
        a = s.random(np.random.default_rng(0))
        assert a.dtype == np.float32 and a.shape == s.shape


class TestReferenceExecutor:
    def test_run_all_contains_every_node(self):
        g = small_chain_graph()
        values = ReferenceExecutor(g).run_all(input_for(g))
        assert set(values) == {n.name for n in g.nodes}

    def test_input_shape_validation(self):
        g = small_chain_graph()
        with pytest.raises(ExecutionError):
            ReferenceExecutor(g).run(np.zeros((1, 3, 7, 7), np.float32))

    def test_missing_named_input(self):
        g = small_chain_graph()
        with pytest.raises(ExecutionError):
            ReferenceExecutor(g).run({"wrong": input_for(g)})

    def test_named_input_accepted(self):
        g = small_chain_graph()
        x = input_for(g)
        a = ReferenceExecutor(g).run(x)
        b = ReferenceExecutor(g).run({"input": x})
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])

    def test_softmax_output_is_distribution(self):
        g = small_chain_graph()
        out = ReferenceExecutor(g).run(input_for(g))["head/softmax"]
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)

    def test_deterministic(self):
        g = small_chain_graph()
        x = input_for(g)
        a = ReferenceExecutor(g).run(x)["head/softmax"]
        b = ReferenceExecutor(g).run(x)["head/softmax"]
        np.testing.assert_array_equal(a, b)


class TestPlanStructures:
    def _plan(self):
        g = residual_graph()
        view = subgraph_view(g, [1, 2, 3])
        sub = SubgraphPlan(index=0, subgraph=view, strategy=Strategy.PADDED,
                           brick_shape=(4, 4), delta=0.12, rho=64.0)
        return ExecutionPlan(g, [sub])

    def test_describe(self):
        plan = self._plan()
        text = plan.subgraphs[0].describe()
        assert "padded" in text and "4x4" in text and "12.0%" in text

    def test_merged_count(self):
        plan = self._plan()
        assert plan.merged_count == 1
        assert plan.subgraphs[0].is_merged
        assert plan.subgraphs[0].num_layers == 3

    def test_cudnn_not_merged(self):
        g = residual_graph()
        view = subgraph_view(g, [1])
        sub = SubgraphPlan(index=0, subgraph=view, strategy=Strategy.CUDNN)
        assert not sub.is_merged

    def test_summary_lists_all(self):
        plan = self._plan()
        assert "1 merged" in plan.summary()
