"""Baseline system tests: fusion pass and the three conventional executors."""

import numpy as np
import pytest

from repro.baselines import CudnnBaseline, TorchScriptBaseline, XlaBaseline, fuse_graph
from repro.baselines.tiled import slab_tiles, spatial_tiles, adaptive_tiles
from repro.core.reference import ReferenceExecutor

from testlib import input_for, residual_graph, small_chain_graph


class TestFusion:
    def test_conv_absorbs_pointwise_chain(self):
        g = small_chain_graph()
        groups = fuse_graph(g)
        by_primary = {grp.primary.name: grp for grp in groups}
        cbr = by_primary["c1/conv"]
        assert [n.name for n in cbr.fused] == ["c1/bn", "c1/relu"]

    def test_residual_add_absorbed(self):
        g = residual_graph()
        groups = fuse_graph(g)
        fused_names = {n.name for grp in groups for n in grp.fused}
        assert "b1/add" in fused_names

    def test_every_node_in_exactly_one_group(self):
        g = residual_graph()
        groups = fuse_graph(g)
        names = [n.name for grp in groups for n in grp.nodes]
        expected = [n.name for n in g.nodes if not n.is_input]
        assert sorted(names) == sorted(expected)

    def test_disabled_fusion_is_one_group_per_node(self):
        g = small_chain_graph()
        groups = fuse_graph(g, enabled=False)
        assert all(not grp.fused for grp in groups)

    def test_branch_point_not_absorbed(self):
        """A node with two consumers ends its group."""
        g = residual_graph()
        groups = fuse_graph(g)
        for grp in groups:
            for node in grp.nodes[:-1]:
                assert len(g.consumers(node)) == 1


class TestTiles:
    def test_spatial_cover(self):
        tiles = list(spatial_tiles((10, 7), (4, 4)))
        assert len(tiles) == 3 * 2
        covered = sum(t.size for t in tiles)
        assert covered == 70

    def test_slabs(self):
        slabs = list(slab_tiles((100, 20), 8))
        assert sum(s.size for s in slabs) == 2000
        assert len(slabs) <= 8

    def test_adaptive_shrinks(self):
        tiles = list(adaptive_tiles((32, 32), 32, num_sms=108))
        assert len(tiles) >= 2 * 108 or len(tiles) == 64  # bottomed at 4


@pytest.mark.parametrize("cls", [CudnnBaseline, TorchScriptBaseline, XlaBaseline])
class TestBaselineExecution:
    def test_matches_reference(self, cls):
        g = small_chain_graph(size=32)
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = cls(small_chain_graph(size=32)).run(x)
        for name, expected in ref.items():
            np.testing.assert_allclose(res.outputs[name], expected, atol=1e-4, rtol=1e-3)

    def test_residual_matches_reference(self, cls):
        g = residual_graph()
        x = input_for(g)
        ref = ReferenceExecutor(g).run(x)
        res = cls(residual_graph()).run(x)
        for name, expected in ref.items():
            np.testing.assert_allclose(res.outputs[name], expected, atol=1e-4, rtol=1e-3)

    def test_profile_mode(self, cls):
        res = cls(small_chain_graph(size=32)).run(functional=False)
        assert res.outputs is None
        assert res.metrics.total_time > 0
        assert res.metrics.memory.dram_txns > 0


class TestBaselineCharacter:
    def test_xla_fewer_syncs_than_cudnn(self):
        """XLA amortizes barriers over group clusters."""
        g1 = small_chain_graph(size=32)
        g2 = small_chain_graph(size=32)
        c = CudnnBaseline(g1).run(functional=False)
        x = XlaBaseline(g2).run(functional=False)
        # Same graph, same groups; the sync cadence differs -> XLA's "other"
        # overhead cannot exceed cuDNN's.
        assert x.metrics.time.total <= c.metrics.time.total + 1e-9

    def test_unfused_writes_more_activation_traffic(self):
        from repro.baselines.conventional import ConventionalExecutor

        g1 = small_chain_graph(size=48)
        fused = ConventionalExecutor(g1, fuse=True).run(functional=False)
        g2 = small_chain_graph(size=48)
        unfused = ConventionalExecutor(g2, fuse=False).run(functional=False)
        assert unfused.metrics.memory.l1_txns > fused.metrics.memory.l1_txns
