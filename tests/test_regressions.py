"""Regression tests for the per-input offset and coalescing-window fixes.

The offset bug: executors computed the receptive-field offsets once per
input but handed only the *last* input's offsets to ``apply_node_local``,
silently misaligning any multi-input op whose inputs carry different halos.
The built-in pointwise ops never trigger it (IdentityMap offsets are all
zero), so these tests introduce an op with deliberately lopsided
receptive fields.

The window bug: the memoized executor's consumer-coalescing window was
``108 * num_sms`` -- A100's SM count baked in as if it were a per-SM
factor.  The window is one ~27-brick halo neighborhood per SM.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.bricked import BrickedTensor
from repro.core.handles import BrickedHandle
from repro.core.memoized import HALO_NEIGHBORHOOD_BRICKS, MemoizedBrickExecutor
from repro.core.reference import ReferenceExecutor
from repro.graph.builder import GraphBuilder
from repro.graph.ops import Add, Concat
from repro.graph.regions import Interval, RFMap
from repro.graph.tensorspec import TensorSpec
from repro.graph.traversal import subgraph_view
from repro.gpusim.device import Device
from repro.gpusim.spec import A100, GPUSpec
from repro.kernels import apply_node_local

from testlib import input_for


@dataclass(frozen=True)
class LopsidedMap(RFMap):
    """Identity-shaped map that over-reads an asymmetric halo."""

    lo_halo: int = 0
    hi_halo: int = 0

    def in_interval(self, out: Interval) -> Interval:
        if out.is_empty():
            return Interval(0, 0)
        return Interval(out.lo - self.lo_halo, out.hi + self.hi_halo)

    def out_extent(self, in_extent: int) -> int:
        return in_extent

    def local_out_offset(self, out_lo: int, in_lo: int) -> int:
        return out_lo - in_lo


@dataclass(frozen=True)
class HaloAdd(Add):
    """Add whose first input over-reads 2 elements low, second 2 high.

    Both patches end up the same shape, so a misalignment does not crash --
    it silently shifts the first operand, which is exactly the failure mode
    the per-input offset plumbing exists to prevent.
    """

    def rf_maps(self, inputs, input_index=0):
        lo, hi = (2, 0) if input_index == 0 else (0, 2)
        return tuple(LopsidedMap(lo, hi) for _ in inputs[input_index].spatial)


class TestApplyNodeLocalOffsets:
    def _patches(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((3, 10, 10)).astype(np.float32)
        b = rng.standard_normal((3, 10, 10)).astype(np.float32)
        # Output window [2, 8) x [2, 8); input 0 gathered [0, 8) (low halo),
        # input 1 gathered [2, 10) (high halo).
        patch_a = a[:, 0:8, 0:8]
        patch_b = b[:, 2:10, 2:10]
        expected = a[:, 2:8, 2:8] + b[:, 2:8, 2:8]
        return patch_a, patch_b, expected

    def test_per_input_offsets_align_each_patch(self):
        patch_a, patch_b, expected = self._patches()
        out = apply_node_local(Add(), [patch_a, patch_b], {}, (6, 6),
                               [(2, 2), (0, 0)])
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_single_offset_convention_misaligns(self):
        """The historical calling convention (one offset tuple for all
        inputs) cannot express differing halos: it shifts input 0."""
        patch_a, patch_b, expected = self._patches()
        legacy = apply_node_local(Add(), [patch_a, patch_b], {}, (6, 6), (0, 0))
        assert not np.allclose(legacy, expected)

    def test_uniform_offsets_unchanged(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((2, 5, 5)).astype(np.float32)
        b = rng.standard_normal((2, 5, 5)).astype(np.float32)
        out = apply_node_local(Add(), [a, b], {}, (5, 5), (0, 0))
        np.testing.assert_allclose(out, a + b, rtol=1e-6)

    def test_concat_aligns_per_input(self):
        patch_a, patch_b, _ = self._patches()
        out = apply_node_local(Concat(), [patch_a, patch_b], {}, (6, 6),
                               [(2, 2), (0, 0)])
        assert out.shape == (6, 6, 6)
        np.testing.assert_allclose(out[:3], patch_a[:, 2:8, 2:8], rtol=1e-6)
        np.testing.assert_allclose(out[3:], patch_b[:, 0:6, 0:6], rtol=1e-6)

    def test_offset_count_must_match_inputs(self):
        patch_a, patch_b, _ = self._patches()
        with pytest.raises(Exception):
            apply_node_local(Add(), [patch_a, patch_b], {}, (6, 6), [(2, 2)])


def lopsided_graph():
    b = GraphBuilder("lopsided", TensorSpec(1, 4, (16, 16)))
    root = b.conv(4, 3, padding=1, name="root")
    left = b.conv(4, 3, padding=1, src=root, name="left")
    right = b.conv(4, 1, src=root, name="right")
    out = b.add(left, right, name="join")
    b.relu(src=out, name="out")
    g = b.finish()
    g.node("join").op = HaloAdd()
    return g


def _memoized_fixture(g, members, brick=(4, 4), spec=A100):
    g.init_weights()
    refs = ReferenceExecutor(g).run_all(input_for(g))
    ids = [g.node(n).node_id for n in members]
    view = subgraph_view(g, ids)
    device = Device(spec)
    entries = {}
    for eid in view.entry_ids:
        node = g.node(eid)
        bt = BrickedTensor.from_dense(refs[node.name], brick)
        buf = device.allocate(node.name, bt.nbytes)
        entries[eid] = BrickedHandle(spec=node.spec, grid=bt.grid, buffer=buf, data=bt)
    weight_buffers = {}
    for nid in ids:
        node = g.node(nid)
        nbytes = sum(w.nbytes for w in node.weights.values())
        if nbytes:
            weight_buffers[nid] = device.allocate(f"{node.name}/w", nbytes)
    return view, device, entries, weight_buffers, refs


class TestExecutorPerInputOffsets:
    def test_memoized_aligns_differing_halos(self):
        """End-to-end: a merged subgraph containing the lopsided two-input
        op still matches the reference executor brick-for-brick."""
        g = lopsided_graph()
        members = ("root", "left", "right", "join", "out")
        view, device, entries, wb, refs = _memoized_fixture(g, members)
        ex = MemoizedBrickExecutor(view, (4, 4), device, entries, wb, functional=True)
        exits = ex.run()
        out_id = g.node("out").node_id
        np.testing.assert_allclose(
            exits[out_id].data.to_dense(), refs["out"], atol=1e-4, rtol=1e-4
        )


class TestCoalescingWindow:
    def test_halo_neighborhood_constant(self):
        assert HALO_NEIGHBORHOOD_BRICKS == 27

    def test_window_scales_with_device_sms(self):
        """On a non-A100 spec the window follows that device's SM count;
        a tiny L2 makes the wave term the binding one."""
        g = lopsided_graph()
        members = ("root", "left", "right", "join", "out")
        spec = GPUSpec(name="tiny", num_sms=16, l2_bytes=4096)
        view, device, entries, wb, _ = _memoized_fixture(g, members, spec=spec)
        ex = MemoizedBrickExecutor(view, (4, 4), device, entries, wb, functional=False)
        depth = view.depth
        wave = int(HALO_NEIGHBORHOOD_BRICKS * spec.num_sms * min(1.0, 3.0 / depth))
        assert ex._recent_capacity >= wave
        # The old hard-coded window (108 * num_sms) is far larger: make sure
        # it is gone on devices that are not an A100.
        assert ex._recent_capacity < 108 * spec.num_sms
