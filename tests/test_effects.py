"""Static effect analysis: proofs, traffic-bound brackets, mutant rejection,
and the soundness property against the dynamic ground truth."""

from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import analyze_effects, check_manifest_bracket
from repro.analysis.effects import (
    EffectMutation,
    candidate_time_lower_bound,
    effect_prune,
)
from repro.bench.harness import adapt_sectors
from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.core.tuner import tune_plan
from repro.core.wavefront import is_chain_subgraph
from repro.gpusim.device import Device
from repro.gpusim.spec import A100
from testlib import input_for, random_dag, residual_graph, small_chain_graph

STRATEGIES = (None, Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT)


def _compiled(graph, strategy=None, brick=None):
    engine = BrickDLEngine(graph, strategy_override=strategy, brick_override=brick)
    return engine, engine.compile()


def _merged_sub(plan):
    return next(p for p in plan.subgraphs if p.is_merged)


# -- proofs ------------------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES,
                         ids=lambda s: s.value if s else "auto")
@pytest.mark.parametrize("build", [small_chain_graph, residual_graph],
                         ids=["chain", "residual"])
def test_proves_all_strategies(build, strategy):
    _, plan = _compiled(build(), strategy)
    report = analyze_effects(plan)
    assert report.ok, [d.render() for d in report.errors]
    assert report.proven
    proven = report.by_code("effects.proven")
    assert len(proven) == len(plan.subgraphs)
    assert all(s.race_free and s.write_exact and s.read_covered
               for s in report.subgraphs)


def test_analysis_never_touches_a_device(monkeypatch):
    """The tentpole contract: zero Device executions during analysis."""
    def boom(*args, **kwargs):
        raise AssertionError("effect analysis constructed a Device")

    monkeypatch.setattr(Device, "__init__", boom)
    for strategy in STRATEGIES:
        _, plan = _compiled(small_chain_graph(), strategy)
        report = analyze_effects(plan)
        assert report.proven


def test_strict_compile_consumes_effects():
    engine = BrickDLEngine(small_chain_graph(), strict=True)
    plan = engine.compile()  # raises PlanError if the effects pass fails
    assert plan.subgraphs


def test_plan_coverage_check():
    _, plan = _compiled(small_chain_graph())
    truncated = type(plan)(plan.graph, plan.subgraphs[:-1])
    report = analyze_effects(truncated)
    assert not report.ok
    assert report.by_code("effects.plan-coverage")


# -- traffic bounds ----------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES,
                         ids=lambda s: s.value if s else "auto")
@pytest.mark.parametrize("build", [small_chain_graph, residual_graph],
                         ids=["chain", "residual"])
def test_bounds_bracket_simulated_run(build, strategy):
    graph = build()
    engine, plan = _compiled(graph, strategy)
    report = analyze_effects(plan)
    metrics = engine.run(input_for(graph), functional=False).metrics
    mem = metrics.memory
    assert report.dram_read_lb <= mem.dram_read_txns <= report.dram_read_ub
    assert report.dram_write_lb <= mem.dram_write_txns <= report.dram_write_ub
    assert report.l2_lb <= mem.l2_txns <= report.l2_ub
    # Static task count models batch sample 0 only, so it never exceeds
    # the number of tasks the device actually ran.
    assert report.num_tasks <= metrics.num_tasks


def test_manifest_bracket_pass_and_fail():
    _, plan = _compiled(small_chain_graph(), Strategy.PADDED)
    report = analyze_effects(plan)
    inside = SimpleNamespace(metrics={"memory": {
        "dram_read_txns": report.dram_read_lb,
        "dram_write_txns": report.dram_write_ub,
        "dram_txns": report.dram_read_lb + report.dram_write_ub,
    }})
    ok = check_manifest_bracket(report, inside)
    assert ok.ok and ok.by_code("effects.bracket-ok")
    outside = SimpleNamespace(metrics={"memory": {
        "dram_read_txns": report.dram_read_ub + 1,
        "dram_write_txns": report.dram_write_ub,
        "dram_txns": report.dram_read_ub + 1 + report.dram_write_ub,
    }})
    bad = check_manifest_bracket(report, outside)
    assert not bad.ok
    assert bad.by_code("effects.bracket")


# -- seeded mutants ----------------------------------------------------------


def _mutation_targets(plan):
    """(exit, member-pred-of-exit) of the first merged subgraph."""
    sub = _merged_sub(plan)
    exit_id = sub.subgraph.exit_ids[0]
    members = set(sub.subgraph.node_ids)
    pred = next(i for i in plan.graph.node(exit_id).inputs if i in members)
    return exit_id, pred


@pytest.mark.parametrize("strategy",
                         [Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT],
                         ids=lambda s: s.value)
def test_dropped_dependency_edge_rejected(strategy):
    _, plan = _compiled(small_chain_graph(), strategy)
    exit_id, pred = _mutation_targets(plan)
    report = analyze_effects(plan, mutation=EffectMutation(drop_dep_edge=(exit_id, pred)))
    assert not report.ok
    assert report.by_code("effects.read-coverage")


@pytest.mark.parametrize("strategy",
                         [Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT],
                         ids=lambda s: s.value)
def test_shrunken_halo_rejected(strategy):
    _, plan = _compiled(small_chain_graph(), strategy)
    report = analyze_effects(plan, mutation=EffectMutation(shrink_halo=1))
    assert not report.ok
    assert report.by_code("effects.read-coverage")


@pytest.mark.parametrize("strategy",
                         [Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT],
                         ids=lambda s: s.value)
def test_skipped_writer_brick_rejected(strategy):
    _, plan = _compiled(small_chain_graph(), strategy)
    exit_id, pred = _mutation_targets(plan)
    # An interior member's brick: consumers read data nothing wrote.
    interior = analyze_effects(plan, mutation=EffectMutation(skip_writer=(pred, 0)))
    assert not interior.ok
    assert interior.by_code("effects.race")
    # An exit brick: the declared output region is no longer covered.
    missing = analyze_effects(plan, mutation=EffectMutation(skip_writer=(exit_id, 0)))
    assert not missing.ok
    assert missing.by_code("effects.write-coverage")


# -- soundness vs the dynamic ground truth -----------------------------------


def _expand_access(access):
    """Byte intervals an access touches: reps expand into segment copies."""
    offsets = [access.offset]
    for count, stride in access.reps:
        offsets = [o + i * stride for o in offsets for i in range(count)]
    return [(o, o + access.nbytes) for o in offsets]


def _assert_contained(graph, strategy):
    engine = BrickDLEngine(graph, strategy_override=strategy)
    plan = engine.compile()
    report = analyze_effects(plan, collect_sets=True)
    assert report.ok, [d.render() for d in report.errors]
    device = Device(adapt_sectors(A100, plan))
    engine.run(inputs=None, functional=False, device=device, plan=plan)
    for task in device.tasks:
        for access in task.accesses:
            if access.on_chip or access.nbytes == 0:
                continue
            name = access.buffer.name
            effect = report.effect_sets.get(name)
            assert effect is not None, f"no static effects for buffer {name!r}"
            for lo, hi in _expand_access(access):
                assert effect.covers(lo, hi), (
                    f"dynamic access [{lo}, {hi}) of {name!r} (task "
                    f"{task.label!r}) escapes the static effect set")


@pytest.mark.parametrize("strategy", STRATEGIES,
                         ids=lambda s: s.value if s else "auto")
def test_effects_contain_dynamic_accesses(strategy):
    _assert_contained(small_chain_graph(), strategy)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_dag())
def test_effects_contain_dynamic_accesses_random_dags(graph):
    _assert_contained(graph, None)


# -- tuner pruning -----------------------------------------------------------


def test_prune_preserves_winner_and_skips_candidates():
    graph = residual_graph()
    _, unpruned = tune_plan(graph, prune=False)
    _, pruned = tune_plan(graph)
    assert pruned.pruned > 0
    assert unpruned.pruned == 0
    assert [(c.index, c.strategy, c.brick) for c in pruned.choices] == \
           [(c.index, c.strategy, c.brick) for c in unpruned.choices]
    assert "pruned without simulation" in pruned.summary()


def test_time_lower_bound_is_sound():
    from repro.core.tuner import _profile_subgraph
    from repro.core.perfmodel import DEFAULT_CONFIG

    _, plan = _compiled(small_chain_graph())
    sub = _merged_sub(plan)
    for strategy in (Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT):
        for brick in (4, 8):
            lb = candidate_time_lower_bound(sub, strategy, brick)
            measured = _profile_subgraph(sub, strategy, brick, A100, DEFAULT_CONFIG)
            if measured is None:
                assert lb is None or not is_chain_subgraph(sub.subgraph)
                continue
            assert lb is not None
            assert lb <= measured, (strategy, brick, lb, measured)
            # The hook fires iff lb >= incumbent: at best_time == lb it prunes
            # (ties never replace the incumbent), above measured it must not.
            assert effect_prune(sub, strategy, brick, A100, DEFAULT_CONFIG, lb)
            assert not effect_prune(sub, strategy, brick, A100, DEFAULT_CONFIG,
                                    measured + 1.0)


# -- distributed schedule ----------------------------------------------------


def test_distributed_halo_schedule_proven():
    from repro.graph.builder import GraphBuilder
    from repro.graph.tensorspec import TensorSpec

    b = GraphBuilder("dist", TensorSpec(1, 3, (32, 32)))
    b.conv_bn_relu(8, 3, prefix="c1")
    b.conv_bn_relu(8, 3, prefix="c2")
    graph = b.graph
    _, plan = _compiled(graph)
    report = analyze_effects(plan, num_ranks=4)
    assert report.ok
    assert report.by_code("effects.distributed")


def test_distributed_skip_on_global_head():
    _, plan = _compiled(small_chain_graph())
    report = analyze_effects(plan)
    assert report.by_code("effects.distributed-skip")
    assert not report.by_code("effects.distributed")
