"""Observability: tracing, SLO burn rates, flight recorder, dashboards."""

import asyncio
import csv
import io
import json
import math

import pytest

from repro.metrics import MetricsRegistry
from repro.metrics.slo import BurnRateMonitor, SLOConfig, burn_rate
from repro.obs import (
    FlightRecorder,
    Tracer,
    check_completeness,
    list_traces,
    load_entries,
    merged_chrome_trace,
    render_dashboard,
    render_span_tree,
    run_top,
)
from repro.obs.context import Span
from repro.serve import InferenceServer, QueueSaturatedError, ServeConfig, loadgen
from repro.serve.loadgen import LATENCY_CSV_COLUMNS, run_loadgen

from testlib import small_chain_graph


def traced_server(tmp_path, **overrides):
    """Profile-mode server over the small chain graph, tracing to tmp_path."""
    graph = small_chain_graph(name="obs_chain")
    overrides.setdefault("functional", False)
    overrides.setdefault("max_wait_s", 0.005)
    tracer = Tracer(log_path=tmp_path / "spans.jsonl",
                    recorder=FlightRecorder(out_dir=tmp_path))
    server = InferenceServer(graph, config=ServeConfig(**overrides),
                             tracer=tracer)
    return server, tracer


# ---------------------------------------------------------------------------
# burn-rate math
# ---------------------------------------------------------------------------

def test_burn_rate_math():
    assert burn_rate(0, 100, 0.99) == 0.0
    assert burn_rate(1, 100, 0.99) == pytest.approx(1.0)
    assert burn_rate(5, 100, 0.99) == pytest.approx(5.0)
    assert burn_rate(0, 0, 0.99) == 0.0          # no traffic burns nothing
    assert burn_rate(1, 10, 1.0) == math.inf     # zero budget
    assert burn_rate(0, 10, 1.0) == 0.0


def test_slo_config_validation():
    with pytest.raises(ValueError):
        SLOConfig(objective=0.0)
    with pytest.raises(ValueError):
        SLOConfig(windows=((30.0, 5.0),))   # short > long
    with pytest.raises(ValueError):
        SLOConfig(burn_threshold=0.0)


def test_burn_monitor_alert_needs_both_windows_and_latches():
    config = SLOConfig(objective=0.9, windows=((1.0, 10.0),),
                       burn_threshold=5.0, min_events=4)
    monitor = BurnRateMonitor(config)
    # Old good traffic keeps the long window healthy...
    for i in range(40):
        monitor.record(i * 0.2, good=True)
    monitor.record(8.0, good=False)
    assert monitor.check(8.0) == []      # long window burn still low
    # ...until the failure rate sustains across both windows.
    for i in range(40):
        monitor.record(20.0 + i * 0.2, good=False)
    alerts = monitor.check(28.0)
    assert len(alerts) == 1
    assert alerts[0].short_burn > 5.0 and alerts[0].long_burn > 5.0
    assert monitor.check(29.0) == []     # latched: one alert per window pair


def test_burn_monitor_min_events_guard():
    monitor = BurnRateMonitor(SLOConfig(objective=0.5, min_events=10,
                                        burn_threshold=1.0))
    for i in range(9):
        monitor.record(float(i) * 0.01, good=False)
    assert monitor.check(0.1) == []      # 9 events < min_events


# ---------------------------------------------------------------------------
# tracer + span log
# ---------------------------------------------------------------------------

def test_tracer_jsonl_roundtrip(tmp_path):
    tracer = Tracer(log_path=tmp_path / "t.jsonl")
    root = tracer.start_span("request", kind="request", request_id=7)
    child = tracer.start_span("batch", parent=root, kind="batch", size=2)
    tracer.end_span(child)
    tracer.event("timeout", ctx=root, queued_s=0.5)
    tracer.end_span(root, status="deadline_missed")
    tracer.close()

    entries = load_entries(tmp_path / "t.jsonl")
    assert [e["type"] for e in entries] == ["span", "event", "span"]
    spans = [Span.from_dict(e) for e in entries if e["type"] == "span"]
    assert {s.name for s in spans} == {"request", "batch"}
    for span, entry in zip(spans, [e for e in entries if e["type"] == "span"]):
        assert span.as_dict() == entry   # lossless dict <-> Span roundtrip
    assert spans[0].parent_id == spans[1].span_id  # completion-ordered log
    event = next(e for e in entries if e["type"] == "event")
    assert event["trace_id"] == root.trace_id
    assert event["attrs"]["queued_s"] == 0.5


def test_tracer_ids_are_deterministic():
    a, b = Tracer(), Tracer()
    sa = a.start_span("request")
    sb = b.start_span("request")
    assert (sa.trace_id, sa.span_id) == (sb.trace_id, sb.span_id)


def test_traced_loadgen_every_task_span_reaches_a_request_root(tmp_path):
    server, tracer = traced_server(tmp_path, devices=2, max_batch=4)
    report = loadgen(server, requests=16, mode="closed", concurrency=4)
    tracer.close()

    assert report.completed == 16
    entries = load_entries(tmp_path / "spans.jsonl")
    completeness = check_completeness(entries)
    assert completeness.ok, completeness.problems
    assert completeness.request_roots == 16
    assert completeness.task_spans > 0   # device tasks made it into traces
    rows = list_traces(entries)
    assert len(rows) == 16
    # The head request of each batch carries the device-task subtree.
    tree = render_span_tree(entries, rows[0]["trace_id"])
    assert "request [request]" in tree
    assert "[execute]" in tree and "[task]" in tree


def test_traced_responses_carry_trace_ids(tmp_path):
    server, tracer = traced_server(tmp_path, devices=1, max_batch=4)

    async def scenario():
        async with server:
            return await asyncio.gather(*[server.submit(None) for _ in range(4)])

    responses = asyncio.run(scenario())
    assert all(r.trace_id is not None for r in responses)
    assert len({r.trace_id for r in responses}) == 4
    assert all(r.deadline_met for r in responses)
    assert all(r.batched_s is not None and r.completed_s >= r.batched_s
               for r in responses)


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

def test_flight_recorder_fires_exactly_once_per_reason(tmp_path):
    rec = FlightRecorder(capacity=3, out_dir=tmp_path)
    for i in range(5):
        rec.note({"type": "event", "name": f"e{i}"})
    dump = rec.trigger("timeout", detail="first", trace_id="t1", request_id=9)
    assert dump is not None
    assert [e["name"] for e in dump["entries"]] == ["e2", "e3", "e4"]  # ring
    assert rec.trigger("timeout", detail="second") is None   # exactly once
    assert rec.trigger("error") is not None                  # other reasons ok

    on_disk = json.loads((tmp_path / "flightrec-timeout.json").read_text())
    assert on_disk == dump      # the dump round-trips through JSON
    assert on_disk["request_id"] == 9 and on_disk["detail"] == "first"


def test_reject_names_the_offending_request(tmp_path):
    server, tracer = traced_server(
        tmp_path, devices=1, queue_depth=1, saturation_policy="reject",
        max_wait_s=0.05)

    async def scenario():
        async with server:
            results = await asyncio.gather(
                *[server.submit(None) for _ in range(12)],
                return_exceptions=True)
        return results

    results = asyncio.run(scenario())
    errors = [r for r in results if isinstance(r, QueueSaturatedError)]
    assert errors, "queue depth 1 with 12 concurrent submits must reject"
    err = errors[0]
    assert err.request_id is not None
    assert f"request {err.request_id}" in str(err)
    assert err.trace_id is not None
    # The flight recorder froze context for the *first* reject, by name.
    dump = server.recorder.dumps["reject"]
    assert dump["request_id"] is not None
    assert str(dump["request_id"]) in dump["detail"]
    assert (tmp_path / "flightrec-reject.json").exists()
    # Rejected request's root span closed with the rejection status.
    rejected_roots = [e for e in tracer.entries
                      if e["type"] == "span" and e["status"] == "rejected"]
    assert rejected_roots


def test_timeout_path_marks_deadline_and_dumps(tmp_path):
    server, tracer = traced_server(tmp_path, devices=1, default_timeout_s=0.0)

    async def scenario():
        async with server:
            return await asyncio.gather(*[server.submit(None) for _ in range(4)])

    responses = asyncio.run(scenario())
    assert all(r.timed_out and r.degraded for r in responses)
    assert all(not r.deadline_met for r in responses)
    assert "timeout" in server.recorder.dumps
    assert (tmp_path / "flightrec-timeout.json").exists()
    events = [e for e in tracer.entries if e["type"] == "event"]
    assert any(e["name"] == "timeout" for e in events)
    # Deadline-missed roots closed with the failure status, not "ok".
    roots = [e for e in tracer.entries
             if e["type"] == "span" and e["kind"] == "request"]
    assert roots and all(r["status"] == "deadline_missed" for r in roots)


# ---------------------------------------------------------------------------
# SLO monitoring on the serve path
# ---------------------------------------------------------------------------

def test_straggler_device_trips_burn_alert_and_flight_dump(tmp_path):
    server, tracer = traced_server(
        tmp_path, devices=1, max_batch=4,
        straggler_device=0, straggler_delay_s=0.03,
        slo_objective=0.99, slo_latency_target_s=1e-4)
    report = loadgen(server, requests=16, mode="closed", concurrency=4)
    tracer.close()

    assert report.completed == 16
    slo = server.stats()["slo"]
    assert slo["attainment"] < 0.5          # straggler made latencies bad
    assert slo["alerts_fired"] >= 1
    assert slo["alerts"][0]["short_burn"] > slo["threshold"]
    assert "slo_breach" in server.recorder.dumps
    assert (tmp_path / "flightrec-slo_breach.json").exists()
    assert any(e["type"] == "event" and e["name"] == "slo_breach"
               for e in tracer.entries)
    assert server.registry.counter("slo_burn_alerts").value >= 1


def test_healthy_run_fires_no_alert(tmp_path):
    server, tracer = traced_server(tmp_path, devices=2, max_batch=4)
    loadgen(server, requests=12, mode="closed", concurrency=4)
    slo = server.stats()["slo"]
    assert slo["attainment"] == 1.0
    assert slo["alerts_fired"] == 0
    assert "slo_breach" not in server.recorder.dumps


def test_latency_exemplars_link_histograms_to_traces(tmp_path):
    server, tracer = traced_server(tmp_path, devices=1, max_batch=4)
    loadgen(server, requests=8, mode="closed", concurrency=4)
    latency = [s for s in server.registry.samples()
               if s.name == "serve_latency_s" and s.histogram]
    assert latency
    exemplars = latency[0].histogram.get("exemplars")
    assert exemplars, "traced runs must attach exemplars to latency buckets"
    trace_ids = {e["trace_id"] for e in exemplars.values()}
    served = {e["trace_id"] for e in tracer.entries
              if e["type"] == "span" and e["kind"] == "request"}
    assert trace_ids <= served    # every exemplar points at a real trace


def test_exemplar_roundtrips_through_registry_dump():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(0.1, 1.0))
    hist.observe(0.05, exemplar="t00000001")
    hist.observe(5.0)
    assert hist.exemplars[0]["trace_id"] == "t00000001"
    assert 2 not in hist.exemplars    # overflow observe carried no exemplar

    restored = MetricsRegistry.from_dict(registry.as_dict())
    sample = next(s for s in restored.samples() if s.name == "lat")
    assert sample.histogram["exemplars"]["0"] == {
        "trace_id": "t00000001", "value": 0.05}
    # A histogram with no exemplars serializes without the key at all.
    bare = MetricsRegistry()
    bare.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    sample = next(s for s in bare.samples() if s.name == "lat")
    assert "exemplars" not in sample.histogram


def test_tracing_off_leaves_no_observable_residue():
    graph = small_chain_graph(name="obs_plain")
    server = InferenceServer(
        graph, config=ServeConfig(functional=False, max_wait_s=0.005,
                                  devices=1, max_batch=4))

    async def scenario():
        async with server:
            return await asyncio.gather(*[server.submit(None) for _ in range(4)])

    responses = asyncio.run(scenario())
    assert all(r.trace_id is None for r in responses)
    # No exemplars sneak into the registry dump: manifests stay bit-stable.
    doc = server.manifest(scale="small").as_dict()
    for series in doc["registry"]["series"]:
        if series.get("histogram"):
            assert "exemplars" not in series["histogram"]
    # SLO accounting still ran (it is always on).
    assert server.stats()["slo"]["events"] == 4


# ---------------------------------------------------------------------------
# loadgen CSV + dashboards + export
# ---------------------------------------------------------------------------

def test_latency_csv_has_one_row_per_request(tmp_path):
    server, tracer = traced_server(tmp_path, devices=2, max_batch=4)
    out = tmp_path / "latency.csv"

    async def scenario():
        async with server:
            return await run_loadgen(server, requests=10, mode="closed",
                                     concurrency=4, latency_csv=out)

    report = asyncio.run(scenario())
    assert report.completed == 10
    with out.open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 10
    assert list(rows[0]) == LATENCY_CSV_COLUMNS
    for row in rows:
        assert row["trace_id"].startswith("t")
        assert row["deadline_met"] == "True"
        assert float(row["completed_s"]) >= float(row["batched_s"]) \
            >= float(row["arrival_s"])


def test_merged_chrome_trace_lays_out_serve_and_device_lanes(tmp_path):
    server, tracer = traced_server(tmp_path, devices=1, max_batch=4)
    loadgen(server, requests=4, mode="closed", concurrency=4)
    tracer.close()
    doc = merged_chrome_trace(load_entries(tmp_path / "spans.jsonl"))
    events = doc["traceEvents"]
    pids = {e["pid"] for e in events}
    assert 0 in pids           # serve lanes
    assert 1000 in pids        # device-0 task lane
    cats = {e.get("cat") for e in events if e["ph"] == "X"}
    assert {"request", "batch", "execute", "task"} <= cats
    assert all(e["ts"] >= 0 for e in events if e["ph"] == "X")


def test_dashboard_renders_fleet_vitals(tmp_path):
    server, tracer = traced_server(tmp_path, devices=2, max_batch=4)
    loadgen(server, requests=8, mode="closed", concurrency=4)
    panel = render_dashboard(server)
    assert "obs_chain" in panel
    assert "p99" in panel and "plan cache" in panel
    assert "slo" in panel and "attainment" in panel
    assert "queue" in panel


def test_run_top_drives_traffic_and_returns_report():
    graph = small_chain_graph(name="obs_top")
    server = InferenceServer(
        graph, config=ServeConfig(functional=False, max_wait_s=0.005,
                                  devices=1, max_batch=4))
    stream = io.StringIO()
    report = run_top(server, refresh_s=0.05, stream=stream,
                     requests=6, mode="closed", concurrency=3)
    assert report.completed == 6
    assert "repro top" in stream.getvalue()
