#!/usr/bin/env python
"""Merged execution for HPC structured-grid codes (paper section 6).

Runs (a) Jacobi heat-equation time stepping and (b) a two-level multigrid
V-cycle -- both expressed as fixed-weight graphs -- under the naive
executor, the tiled baseline and all three merged strategies, verifying
bit-level agreement and comparing data movement.

    python examples/stencil_merged.py
"""

import numpy as np

from repro.baselines import CudnnBaseline
from repro.bench.harness import run_brickdl, run_conventional
from repro.bench.reporting import format_breakdowns
from repro.core import BrickDLEngine, ReferenceExecutor
from repro.core.plan import Strategy
from repro.stencil import build_heat_graph, build_vcycle_graph, reference_heat, reference_vcycle
from repro.stencil.multigrid import _apply_a


def heat_demo(steps: int = 6, size: int = 96) -> None:
    print(f"=== heat equation: {steps} Jacobi steps on a {size}x{size} grid ===")
    rng = np.random.default_rng(0)
    u0 = rng.standard_normal((size, size)).astype(np.float32)
    expected = reference_heat(u0, steps)

    for strategy in (Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT):
        graph = build_heat_graph(steps, size)
        engine = BrickDLEngine(graph, strategy_override=strategy, brick_override=8,
                               layer_schedule=(steps,))
        res = engine.run(u0[None, None])
        out = list(res.outputs.values())[0][0, 0]
        err = np.abs(out - expected).max()
        m = res.metrics
        print(f"  {strategy.value:9s} max|err|={err:.2e}  dram_txns={m.memory.dram_txns:8d}  "
              f"atomics={m.atomics.total:6d}  syncs~waves" )
    base = run_conventional(CudnnBaseline, build_heat_graph(steps, size))
    print(f"  {'baseline':9s} (tiled, per-step sync)      dram_txns={base.dram_txns:8d}")
    print(f"  smoothing check: std {u0.std():.3f} -> {expected.std():.3f}\n")


def vcycle_demo(size: int = 64) -> None:
    print(f"=== multigrid V-cycle on a {size}x{size} Poisson problem ===")
    rng = np.random.default_rng(1)
    f = rng.standard_normal((size, size)).astype(np.float32)
    u0 = np.zeros_like(f)
    x = np.stack([u0, f])[None]

    expected = reference_vcycle(u0, f)
    graph = build_vcycle_graph(size)
    res = BrickDLEngine(graph).run(x)
    err = np.abs(res.outputs["u_out"][0, 0] - expected).max()
    print(f"  merged V-cycle max|err| vs NumPy reference: {err:.2e}")

    r0 = np.abs(f - _apply_a(u0)).max()
    u = u0
    for cycle in range(1, 4):
        u = ReferenceExecutor(build_vcycle_graph(size)).run(np.stack([u, f])[None])["u_out"][0, 0]
        r = np.abs(f - _apply_a(u)).max()
        print(f"  after V-cycle {cycle}: residual {r0:.3f} -> {r:.3f}")

    rows = [run_conventional(CudnnBaseline, build_vcycle_graph(size))]
    row, _ = run_brickdl(build_vcycle_graph(size), label="brickdl")
    rows.append(row)
    print()
    print(format_breakdowns(rows, title="V-cycle execution (times in ms)", relative_to=rows[0]))


if __name__ == "__main__":
    heat_demo()
    vcycle_demo()
