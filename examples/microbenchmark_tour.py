#!/usr/bin/env python
"""A tour of BrickDL's analysis machinery and microbenchmarks.

Walks through the quantities the paper's section 3-4 are built on:

1. the calibrated T_atomic / T_brick microbenchmarks (section 4.3),
2. the Fig. 4 halo telescoping for a conv chain,
3. the brick-size model's choices across problem sizes (section 3.3.3),
4. a padded-vs-memoized head-to-head on a small 3-D conv proxy.

    python examples/microbenchmark_tour.py
"""

from repro.bench.harness import run_brickdl, run_conventional
from repro.bench.microbench import atomic_microbenchmark, compute_microbenchmark
from repro.bench.proxies import conv_chain_3d
from repro.bench.reporting import format_breakdowns, format_table
from repro.baselines import CudnnBaseline
from repro.core.halo import chain_padded_sizes, padding_growth
from repro.core.perfmodel import choose_brick_size
from repro.core.plan import Strategy
from repro.graph.traversal import subgraph_view


def main() -> None:
    # 1. Calibrated microbenchmarks.
    atomic = atomic_microbenchmark()
    brick = compute_microbenchmark()
    print(f"T_atomic = {atomic.time_per_atomic_ns:.2f} ns (paper: 87.45 ns)")
    print(f"T_brick  = {brick.time_per_call_us:.2f} us for 8^3 brick / 3^3 filter (paper: 6.72 us)\n")

    # 2. Halo telescoping (paper Fig. 4): per-layer padded brick sizes.
    chain = conv_chain_3d(layers=3, size=40, channels=8)
    view = subgraph_view(chain, [n.node_id for n in chain.nodes if not n.is_input])
    print("Fig. 4 halo telescoping for a 3-layer 3x3x3 conv chain (brick 8^3):")
    for name, shape in chain_padded_sizes(view, view.exit_ids[-1], (8, 8, 8)):
        print(f"  {name:8s} needs {'x'.join(map(str, shape))}")
    delta = padding_growth(view, None, (8, 8, 8))
    print(f"  => padding data growth delta = {delta:.1%} "
          f"({'memoized' if delta > 0.15 else 'padded'} per the 15% rule)\n")

    # 3. Brick-size model across problem sizes.
    rows = []
    for extents in ((56, 56), (224, 224), (112, 112, 112), (224, 224, 224), (7, 7)):
        d = choose_brick_size(extents, kernel_extent=3)
        rows.append(["x".join(map(str, extents)), d.brick, f"{d.rho:.0f}",
                     "cuDNN fallback" if d.fallback else "merged"])
    print(format_table(["layer", "brick", "rho", "decision"], rows,
                       title="Brick-size model (tau = 4096)"))
    print()

    # 4. Padded vs memoized on a small proxy (profile mode).
    proxy = lambda: conv_chain_3d(layers=3, size=48)
    results = [run_conventional(CudnnBaseline, proxy())]
    for strategy in (Strategy.PADDED, Strategy.MEMOIZED):
        row, _ = run_brickdl(proxy(), strategy=strategy, brick=8,
                             layer_schedule=(3,), label=strategy.value)
        results.append(row)
    print(format_breakdowns(results, title="3-layer 48^3 proxy (times in ms)",
                            relative_to=results[0]))


if __name__ == "__main__":
    main()
