#!/usr/bin/env python
"""ResNet-50 inference under all four execution systems (a one-model slice
of the paper's Fig. 7).

    python examples/resnet50_inference.py [image_size] [--trace OUT.json]

The default 160x160 keeps the simulation quick; pass 224 for paper scale.
Runs in profile mode (access streams + cost model, no NumPy arithmetic), so
full-channel ResNet-50 is cheap to explore.  ``--trace`` writes the BrickDL
run's task timeline as Chrome-trace JSON (open in Perfetto or
chrome://tracing).
"""

import sys

from repro.baselines import CudnnBaseline, TorchScriptBaseline, XlaBaseline
from repro.bench.harness import run_brickdl, run_conventional
from repro.bench.reporting import format_breakdowns
from repro.models import build


def main() -> None:
    argv = list(sys.argv[1:])
    trace = None
    if "--trace" in argv:
        i = argv.index("--trace")
        trace = argv[i + 1]
        del argv[i:i + 2]
    image_size = int(argv[0]) if argv else 160

    rows = [run_conventional(CudnnBaseline, build("resnet50", image_size=image_size))]
    brick_row, plan = run_brickdl(build("resnet50", image_size=image_size), label="brickdl",
                                  trace=trace)
    rows.append(brick_row)
    rows.append(run_conventional(TorchScriptBaseline, build("resnet50", image_size=image_size)))
    rows.append(run_conventional(XlaBaseline, build("resnet50", image_size=image_size)))

    print(f"BrickDL plan for ResNet-50 @ {image_size}x{image_size}:")
    merged = [s for s in plan.subgraphs if s.is_merged]
    for s in merged:
        print("  " + s.describe())
    print(f"  (+ {len(plan.subgraphs) - len(merged)} vendor-library subgraphs)\n")

    print(format_breakdowns(rows, title=f"ResNet-50 @ {image_size} (times in ms)",
                            relative_to=rows[0]))
    base, brick = rows[0], rows[1]
    print(f"\nBrickDL vs cuDNN: {(1 - brick.total / base.total) * +100:+.1f}% execution time, "
          f"{(1 - brick.dram_txns / base.dram_txns) * 100:+.1f}% DRAM transactions")
    if trace:
        print(f"wrote BrickDL task timeline to {trace}")


if __name__ == "__main__":
    main()
