#!/usr/bin/env python
"""Spatial model parallelism with merged halo exchanges (paper section 5.2).

Splits a stencil time-stepping workload across simulated GPUs and sweeps
the merge depth, showing the communication-avoiding tradeoff: merging more
layers per subgraph exchanges the *same* halo volume in *fewer, wider*
messages (latency win) at the price of redundant halo recomputation.

    python examples/distributed_halo_exchange.py
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.distributed import CommModel, DistributedRunner
from repro.stencil import build_heat_graph, reference_heat


def main() -> None:
    steps, size, ranks = 12, 96, 4
    rng = np.random.default_rng(0)
    u0 = rng.standard_normal((size, size)).astype(np.float32)
    expected = reference_heat(u0, steps)

    print(f"{steps}-step heat equation on a {size}x{size} grid over {ranks} simulated GPUs\n")

    rows = []
    for depth in (1, 2, 3, 4, 6, 12):
        schedule = (depth,)
        runner = DistributedRunner(build_heat_graph(steps, size), num_ranks=ranks,
                                   layer_schedule=schedule, comm=CommModel())
        res = runner.run(u0[None, None])
        out = list(res.outputs.values())[0][0, 0]
        err = np.abs(out - expected).max()
        assert err < 1e-4, err
        rows.append([
            depth,
            res.num_subgraphs,
            res.comm.messages,
            f"{res.comm.bytes / 1024:.0f} KiB",
            f"{res.comm.time_s * 1e6:.1f}",
            f"{sum(res.per_rank_flops) / 1e6:.1f}",
            f"{res.total_time_s * 1e6:.1f}",
            f"{err:.1e}",
        ])
    print(format_table(
        ["merge depth", "exchanges", "messages", "halo volume", "comm us",
         "total MFLOP", "total us", "max err"],
        rows,
        title="merge depth vs halo-exchange cost (same total halo volume; "
              "fewer messages, more redundant compute)",
    ))

    print("\nScaling ranks at fixed merge depth 3:")
    rows = []
    for r in (1, 2, 4, 8):
        runner = DistributedRunner(build_heat_graph(steps, size), num_ranks=r,
                                   layer_schedule=(3,), comm=CommModel())
        res = runner.run(u0[None, None])
        rows.append([r, res.comm.messages, f"{res.comm.time_s * 1e6:.1f}",
                     f"{max(res.per_rank_flops) / 1e6:.1f}", f"{res.load_imbalance:.1%}"])
    print(format_table(["ranks", "messages", "comm us", "max rank MFLOP", "imbalance"], rows))


if __name__ == "__main__":
    main()
