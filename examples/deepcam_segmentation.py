#!/usr/bin/env python
"""DeepCAM-style climate segmentation through merged execution.

The paper evaluates DeepCAM (Kurth et al., SC'18), an encoder-decoder
segmenter for extreme-weather events in climate fields.  The CAM5 dataset
is not redistributable, so this example synthesizes a climate-field-like
input -- smooth multi-channel fields with two injected vortex-like anomalies
-- and runs the reduced DeepCAM network functionally, printing the per-pixel
class map and the merged-execution metrics.

    python examples/deepcam_segmentation.py
"""

import numpy as np

from repro.core import BrickDLEngine, ReferenceExecutor
from repro.models import build


def synthetic_climate_field(channels: int, size: int, seed: int = 7) -> np.ndarray:
    """Smooth random fields plus localized vortex anomalies (fake TC/ARs)."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float32)
    field = np.zeros((1, channels, size, size), np.float32)
    # Large-scale smooth structure: sums of low-frequency waves.
    for c in range(channels):
        for _ in range(4):
            fx, fy = rng.uniform(0.5, 3.0, 2)
            phase = rng.uniform(0, 2 * np.pi, 2)
            field[0, c] += np.sin(2 * np.pi * fx * xx / size + phase[0]) * \
                np.cos(2 * np.pi * fy * yy / size + phase[1])
    # Two compact vortex anomalies (what the TC/AR classes key on).
    for cx, cy, amp in ((size * 0.3, size * 0.25, 4.0), (size * 0.7, size * 0.7, -4.0)):
        r2 = (xx - cx) ** 2 + (yy - cy) ** 2
        field[0] += amp * np.exp(-r2 / (2 * (size * 0.06) ** 2))
    field += 0.05 * rng.standard_normal(field.shape).astype(np.float32)
    return field


def main() -> None:
    graph = build("deepcam", reduced=True)
    spec = graph.input_nodes[0].spec
    x = synthetic_climate_field(spec.channels, spec.spatial[0])

    engine = BrickDLEngine(graph)
    plan = engine.compile()
    print(f"DeepCAM plan: {plan.merged_count} merged subgraphs of {len(plan.subgraphs)}")
    result = engine.run(x)

    # Verify against naive execution, then show the segmentation.
    ref = ReferenceExecutor(graph).run(x)["head/softmax"]
    probs = result.outputs["head/softmax"]
    assert np.abs(probs - ref).max() < 1e-3

    classes = probs.argmax(axis=1)[0]
    print(f"per-pixel classes: shape={classes.shape}, "
          f"histogram={np.bincount(classes.ravel(), minlength=probs.shape[1]).tolist()}")
    step = max(1, classes.shape[0] // 24)
    glyphs = np.array(list(".oO#%"))[:probs.shape[1]]
    print("\nclass map (downsampled):")
    for row in classes[::step]:
        print("  " + "".join(glyphs[row[::step]]))

    m = result.metrics
    print(f"\nsimulated metrics: {m.total_time * 1e3:.2f} ms, "
          f"DRAM txns={m.memory.dram_txns}, atomics={m.atomics.total}")


if __name__ == "__main__":
    main()
