#!/usr/bin/env python
"""Quickstart: build a small CNN, compile it with BrickDL, run it, and
verify the merged execution bit-for-bit against naive execution.

    python examples/quickstart.py
"""

import numpy as np

from repro.core import BrickDLEngine, ReferenceExecutor
from repro.graph import GraphBuilder, TensorSpec


def main() -> None:
    # 1. Describe the network as a data-flow graph (channels-first, NCHW).
    b = GraphBuilder("quickstart", TensorSpec(batch=1, channels=3, spatial=(64, 64)))
    b.conv_bn_relu(16, 3, prefix="block1")
    b.conv_bn_relu(16, 3, prefix="block2")
    b.maxpool(2, name="pool1")
    b.conv_bn_relu(32, 3, prefix="block3")
    b.conv_bn_relu(32, 3, prefix="block4")
    b.maxpool(2, name="pool2")
    b.classifier(num_classes=10)
    graph = b.graph

    # 2. Compile: partition into subgraphs, pick brick sizes and merged
    #    execution strategies with the static performance models.
    engine = BrickDLEngine(graph)
    plan = engine.compile()
    print(plan.summary())
    print()

    # 3. Run on the simulated A100. `functional=True` computes real values.
    x = np.random.default_rng(0).standard_normal((1, 3, 64, 64)).astype(np.float32)
    result = engine.run(x)

    # 4. The merged execution is numerically exact: compare against the
    #    naive layer-by-layer reference.
    reference = ReferenceExecutor(graph).run(x)
    for name, expected in reference.items():
        err = np.abs(result.outputs[name] - expected).max()
        print(f"output {name!r}: max |err| vs naive execution = {err:.2e}")

    # 5. Inspect the simulated-device metrics the paper's figures report.
    m = result.metrics
    print(f"\nsimulated execution: {m.total_time * 1e3:.3f} ms "
          f"(DRAM {m.time.dram * 1e3:.3f} ms, compute {m.time.compute * 1e3:.3f} ms)")
    print(f"transactions: L1={m.memory.l1_txns}  L2={m.memory.l2_txns}  "
          f"DRAM={m.memory.dram_txns}")
    print(f"atomics: {m.atomics.compulsory} compulsory + {m.atomics.conflict} conflict")
    print(f"fine-grained kernel invocations: {m.num_tasks}")


if __name__ == "__main__":
    main()
