#!/usr/bin/env python
"""Bring your own architecture: define a custom branchy network with the
graph builder, inspect the static-analysis decisions BrickDL makes for it,
and compare both merged strategies against the tiled baseline.

    python examples/custom_model.py
"""

import numpy as np

from repro.baselines import CudnnBaseline
from repro.bench.harness import run_brickdl, run_conventional
from repro.bench.reporting import format_breakdowns
from repro.core import BrickDLEngine, ReferenceExecutor
from repro.core.plan import Strategy
from repro.graph import GraphBuilder, TensorSpec


def build_custom(size: int = 96):
    """A little inception-flavoured net with a residual tail."""
    b = GraphBuilder("custom", TensorSpec(1, 3, (size, size)))
    stem = b.conv_bn_relu(16, 3, prefix="stem")

    # Multi-branch block: 1x1 || 3x3 || 5x5, concatenated.
    p1 = b.conv_bn_relu(8, 1, src=stem, prefix="b1x1")
    p3 = b.conv_bn_relu(8, 3, src=stem, prefix="b3x3")
    p5 = b.conv_bn_relu(8, 5, src=stem, prefix="b5x5")
    mixed = b.concat([p1, p3, p5], name="mix")

    # Residual tail.
    skip = mixed
    x = b.conv(24, 3, padding=1, bias=False, name="res/conv1")
    x = b.batchnorm(name="res/bn1")
    x = b.relu(name="res/relu1")
    x = b.conv(24, 3, padding=1, bias=False, name="res/conv2")
    x = b.batchnorm(name="res/bn2")
    x = b.add(x, skip, name="res/add")
    b.relu(src=x, name="res/out")
    b.maxpool(2, name="pool")
    b.classifier(10)
    return b.graph


def main() -> None:
    graph = build_custom()
    engine = BrickDLEngine(graph)
    plan = engine.compile()
    print(plan.summary())

    # Functional check: merged execution is exact.
    x = np.random.default_rng(0).standard_normal(graph.input_nodes[0].spec.shape).astype(np.float32)
    ref = ReferenceExecutor(graph).run(x)
    res = engine.run(x)
    err = max(np.abs(res.outputs[k] - ref[k]).max() for k in ref)
    print(f"\nmax |err| vs naive execution: {err:.2e}")

    # Strategy comparison in profile mode.
    rows = [run_conventional(CudnnBaseline, build_custom())]
    for strategy in (None, Strategy.PADDED, Strategy.MEMOIZED):
        row, _ = run_brickdl(build_custom(), strategy=strategy,
                             label="model-choice" if strategy is None else strategy.value)
        rows.append(row)
    print()
    print(format_breakdowns(rows, title="custom model (times in ms)", relative_to=rows[0]))


if __name__ == "__main__":
    main()
