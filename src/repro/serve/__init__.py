"""Async inference serving over the simulated device fleet.

The production-shaped front half of the reproduction: an asyncio admission
queue with bounded depth and per-request deadlines, a dynamic batcher that
coalesces compatible requests into power-of-two batch buckets, a persistent
compiled-plan cache keyed by ``(model, batch bucket, GPUSpec, overrides)``
with LRU eviction, and a scheduler that round-robins batches across N
simulated devices with backpressure and graceful degradation to the
cuDNN-fallback path.  Serve-path metrics (latency histograms, queue-depth
gauges, batch-size histograms, cache hit ratios) flow into the existing
:class:`~repro.metrics.MetricsRegistry` and out as run manifests.

Entry points: :class:`InferenceServer` (async API), :func:`loadgen` /
:func:`run_loadgen` (traffic + report), and the ``repro serve`` /
``repro loadgen`` CLI subcommands.
"""

from repro.serve.batcher import DynamicBatcher, batch_bucket
from repro.serve.loadgen import LoadgenReport, loadgen, run_loadgen
from repro.serve.plancache import CompiledEntry, PlanCache, PlanKey
from repro.serve.request import (
    InferenceRequest,
    InferenceResponse,
    QueueSaturatedError,
    ServerClosedError,
)
from repro.serve.server import InferenceServer, ServeConfig

__all__ = [
    "InferenceServer", "ServeConfig",
    "DynamicBatcher", "batch_bucket",
    "PlanCache", "PlanKey", "CompiledEntry",
    "InferenceRequest", "InferenceResponse",
    "QueueSaturatedError", "ServerClosedError",
    "LoadgenReport", "loadgen", "run_loadgen",
]
