"""Async inference serving over the simulated device fleet.

The production-shaped front half of the reproduction: a multi-class
admission queue with bounded depth, per-tenant quotas, and per-request
deadlines; a fleet batcher that coalesces compatible requests into
power-of-two batch buckets per priority class (head-anchored or
earliest-deadline-first, with higher-class preemption of coalescing
windows); a persistent compiled-plan cache partitioned per model and keyed
by ``(model, batch bucket, GPUSpec, overrides)`` with intra-partition LRU
eviction; a device pool that dispatches batches with backpressure and
graceful degradation to the cuDNN-fallback path; and an autoscaler that
grows/shrinks the simulated fleet from queue-depth and SLO burn-rate
signals.  Serve-path metrics (latency histograms with per-model /
per-tenant / per-class dimensions, queue-depth gauges, shed and scale-event
counters, cache hit ratios) flow into the existing
:class:`~repro.metrics.MetricsRegistry` and out as run manifests.

Entry points: :class:`InferenceServer` (async API), :func:`loadgen` /
:func:`run_loadgen` (traffic + report), :func:`run_scenario` /
:data:`SCENARIOS` (deterministic virtual-time scenario packs), and the
``repro serve`` / ``repro loadgen`` / ``repro scenario`` CLI subcommands.
"""

from repro.serve.autoscaler import Autoscaler, AutoscalerConfig, DevicePool, ScaleEvent
from repro.serve.batcher import DynamicBatcher, batch_bucket
from repro.serve.loadgen import LoadgenReport, loadgen, run_loadgen
from repro.serve.plancache import CachePartition, CompiledEntry, PlanCache, PlanKey
from repro.serve.request import (
    InferenceRequest,
    InferenceResponse,
    QueueSaturatedError,
    ServerClosedError,
    TenantQuotaError,
)
from repro.serve.scenarios import SCENARIOS, Scenario, ScenarioReport, TenantSpec, run_scenario
from repro.serve.scheduler import AdmissionQueue, FleetBatcher, PriorityClass
from repro.serve.server import InferenceServer, ServeConfig
from repro.serve.vtime import VirtualTimeLoop, run_virtual

__all__ = [
    "InferenceServer", "ServeConfig",
    "DynamicBatcher", "batch_bucket",
    "PriorityClass", "AdmissionQueue", "FleetBatcher",
    "PlanCache", "PlanKey", "CompiledEntry", "CachePartition",
    "AutoscalerConfig", "Autoscaler", "DevicePool", "ScaleEvent",
    "InferenceRequest", "InferenceResponse",
    "QueueSaturatedError", "TenantQuotaError", "ServerClosedError",
    "LoadgenReport", "loadgen", "run_loadgen",
    "Scenario", "ScenarioReport", "TenantSpec", "SCENARIOS", "run_scenario",
    "VirtualTimeLoop", "run_virtual",
]
