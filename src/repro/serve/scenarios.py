"""Scenario packs: deterministic fleet-scale traffic, replayed from a seed.

A *scenario* emulates a production traffic shape -- diurnal load, a flash
burst, a heavy-tailed multi-model mix, a straggling device, multi-tenant
contention -- against the serving fleet, entirely in virtual time
(:mod:`repro.serve.vtime`).  Hours of emulated traffic and
millions-of-users arrival processes replay in seconds of wall clock, and
two runs of the same ``(scenario, seed)`` are **bit-identical**: the
arrival process is a seeded non-homogeneous Poisson draw, the event loop
is a discrete-event simulator, and the server executes inline with
simulated durations charged as virtual sleeps.  The run's manifest
fingerprint (sha256 over the canonical manifest minus volatile
provenance) is the replay-regression oracle.

Everything self-scales from one calibration: the simulated service time of
a full batch (``unit_s``, measured by compiling and profile-running each
resident model once).  Arrival rates are expressed as utilization ``rho``
of the baseline fleet capacity ``devices * max_batch / unit_s``, and every
wait, deadline, and autoscaler interval is a multiple of ``unit_s`` -- so
the same scenario stresses the same queueing regimes whether the model
under serve simulates in microseconds or milliseconds.

Each scenario carries *objectives* -- the conformance matrix CI asserts:
per-class p99 SLO attainment, shed-rate bounds, and (for the burst
scenario) that the autoscaler actually scaled up and back down.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.gpusim.spec import A100, GPUSpec
from repro.serve.autoscaler import AutoscalerConfig
from repro.serve.loadgen import _request_input
from repro.serve.request import QueueSaturatedError, TenantQuotaError
from repro.serve.scheduler import PriorityClass
from repro.serve.server import InferenceServer, ServeConfig
from repro.serve.vtime import run_virtual

__all__ = ["TenantSpec", "Scenario", "ScenarioReport", "SCENARIOS",
           "run_scenario", "manifest_fingerprint"]

# Manifest keys that record provenance, not modeled results; the replay
# fingerprint drops them (mirrors what the manifest differ ignores).
_VOLATILE_MANIFEST_KEYS = ("created", "git_sha")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a scenario: share of traffic, class, deadline, quota."""

    name: str
    weight: float = 1.0            # share of the arrival process
    priority: str = "interactive"  # admission class this tenant rides
    deadline_units: float | None = 12.0   # deadline in units of unit_s
    quota: int | None = None       # in-flight admission quota

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {self.weight}")


_DEFAULT_TENANTS = (
    TenantSpec("web", weight=0.7, priority="interactive", deadline_units=12.0),
    TenantSpec("pipeline", weight=0.3, priority="batch", deadline_units=60.0),
)


@dataclass(frozen=True)
class Scenario:
    """One deterministic fleet-traffic shape plus its conformance bounds."""

    name: str
    description: str
    requests: int = 320
    devices: int = 2               # baseline fleet (min fleet when autoscaling)
    max_batch: int = 8
    queue_depth: int = 64
    models: tuple[str, ...] = ("mobilenet_v1",)
    model_weights: tuple[float, ...] = (1.0,)
    tenants: tuple[TenantSpec, ...] = _DEFAULT_TENANTS
    # Arrival process: utilization of baseline capacity over virtual time.
    rho_profile: str = "steady"    # "steady" | "diurnal" | "burst"
    rho_base: float = 0.6
    rho_peak: float = 0.9
    burst_frac: float = 0.2        # burst profile: fraction of T at rho_peak
    # Fleet scheduling (units of the calibrated unit_s).
    interactive_batching: str = "edf"
    batch_wait_units: float = 0.75     # coalescing window
    fallback_timeout_units: float = 24.0
    saturation_policy: str = "reject"
    # Autoscaling (burst absorption); devices above is the minimum fleet.
    autoscale: bool = False
    max_devices: int = 6
    # Fault injection: device 0 straggles by this many units per batch.
    straggler_device: int | None = None
    straggler_delay_units: float = 0.0
    # Conformance matrix: (dotted path into the report summary, "min"|"max",
    # bound).  check() turns violations into failures.
    objectives: tuple[tuple[str, str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.rho_profile not in ("steady", "diurnal", "burst"):
            raise ValueError(f"unknown rho_profile {self.rho_profile!r}")
        if len(self.models) != len(self.model_weights):
            raise ValueError("models and model_weights must align")
        if not 0 < self.burst_frac < 1:
            raise ValueError(f"burst_frac must be in (0,1), got {self.burst_frac}")

    # -- the arrival-rate shape ---------------------------------------------
    def rho(self, t: float, duration: float) -> float:
        """Instantaneous utilization at virtual time ``t`` of ``duration``."""
        if self.rho_profile == "steady":
            return self.rho_base
        if self.rho_profile == "diurnal":
            phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / duration))
            return self.rho_base + (self.rho_peak - self.rho_base) * phase
        lo = (0.5 - self.burst_frac / 2) * duration
        hi = (0.5 + self.burst_frac / 2) * duration
        return self.rho_peak if lo <= t < hi else self.rho_base

    def mean_rho(self) -> float:
        if self.rho_profile == "steady":
            return self.rho_base
        if self.rho_profile == "diurnal":
            return (self.rho_base + self.rho_peak) / 2.0
        return (self.rho_base * (1 - self.burst_frac)
                + self.rho_peak * self.burst_frac)


@dataclass
class ScenarioReport:
    """What one scenario replay produced (and whether it conformed)."""

    scenario: str
    seed: int
    batching: str
    unit_s: float
    duration_s: float              # virtual seconds the session spanned
    requests: int
    completed: int
    shed: int
    verified: int
    fingerprint: str
    stats: dict = field(default_factory=dict)
    shed_by_reason: dict = field(default_factory=dict)
    objectives: tuple = ()

    def summary(self) -> dict:
        """The dotted-lookup namespace objectives are checked against."""
        # Scalars last: the server stats carry their own "requests"
        # breakdown dict, and the scenario's scalar counts must win the
        # collision (the breakdown stays on ``self.stats``).
        return {
            **self.stats,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": self.shed / self.requests if self.requests else 0.0,
        }

    def check(self) -> list[str]:
        """Evaluate the scenario's objectives; returns violations."""
        summary = self.summary()
        violations = []
        for path, op, bound in self.objectives:
            value = _dig(summary, path)
            if value is None:
                violations.append(f"{path}: not found in report")
            elif op == "min" and value < bound:
                violations.append(f"{path}: {value:.4f} < required {bound}")
            elif op == "max" and value > bound:
                violations.append(f"{path}: {value:.4f} > allowed {bound}")
        return violations

    def render(self) -> str:
        from repro.bench.reporting import format_table

        slo = self.stats.get("slo", {})
        auto = self.stats.get("autoscaler", {})
        rows = [
            ["requests", f"{self.completed}/{self.requests} completed, "
                         f"{self.shed} shed {dict(self.shed_by_reason)}"],
            ["virtual duration", f"{self.duration_s:.3f} s "
                                 f"(unit {self.unit_s * 1e3:.3f} ms)"],
            ["latency p50/p99",
             f"{self.stats['latency_s']['p50'] * 1e3:.2f} / "
             f"{self.stats['latency_s']['p99'] * 1e3:.2f} ms"],
            ["SLO attainment", f"{slo.get('attainment', 0.0):.2%}"],
            ["devices", f"{self.stats['devices']['current']} "
                        f"(+{auto.get('scale_ups', 0)}/"
                        f"-{auto.get('scale_downs', 0)} scale events)"],
            ["verified bit-identical", self.verified],
            ["fingerprint", self.fingerprint[:16]],
        ]
        for name, cls in sorted(self.stats.get("classes", {}).items()):
            rows.append([f"class {name} ({cls['batching']})",
                        f"{cls['completed']} done, shed {cls['shed_rate']:.1%}, "
                        f"attain {cls['attainment']:.2%}, "
                        f"p99 {cls['p99_s'] * 1e3:.2f} ms"])
        for name, ten in sorted(self.stats.get("tenants", {}).items()):
            rows.append([f"tenant {name}",
                        f"{ten['completed']} done, {ten['shed']} shed"])
        violations = self.check()
        rows.append(["conformance",
                     "OK" if not violations else "; ".join(violations)])
        return format_table(["metric", "value"], rows,
                            title=f"scenario: {self.scenario} "
                                  f"(seed {self.seed}, {self.batching})")


def _dig(doc: Mapping, path: str):
    cur = doc
    for part in path.split("."):
        if not isinstance(cur, Mapping) or part not in cur:
            return None
        cur = cur[part]
    return cur if isinstance(cur, (int, float)) else None


def manifest_fingerprint(manifest_doc: Mapping) -> str:
    """sha256 over the canonical manifest JSON, volatile provenance dropped."""
    doc = {k: v for k, v in dict(manifest_doc).items()
           if k not in _VOLATILE_MANIFEST_KEYS}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- the pack ----------------------------------------------------------------
SCENARIOS: dict[str, Scenario] = {}


def _register(s: Scenario) -> Scenario:
    SCENARIOS[s.name] = s
    return s


_register(Scenario(
    name="diurnal",
    description="A day of traffic in miniature: load swings sinusoidally "
                "between a quiet trough and a busy peak.",
    rho_profile="diurnal", rho_base=0.2, rho_peak=0.85,
    objectives=(
        ("classes.interactive.attainment", "min", 0.97),
        ("classes.interactive.shed_rate", "max", 0.02),
        ("shed_rate", "max", 0.05),
    ),
))

_register(Scenario(
    name="burst",
    description="Flash crowd: 10x arrival spike mid-run; the autoscaler "
                "must absorb it and then shrink back.",
    rho_profile="burst", rho_base=0.25, rho_peak=2.5, burst_frac=0.2,
    devices=1, autoscale=True, max_devices=6,
    queue_depth=96,
    objectives=(
        ("autoscaler.scale_ups", "min", 1),
        ("autoscaler.scale_downs", "min", 1),
        ("classes.interactive.attainment", "min", 0.80),
        ("shed_rate", "max", 0.25),
    ),
))

_register(Scenario(
    name="heavy_tail",
    description="Heavy-tailed multi-model mix: a hot small model dominates "
                "while a cold large one arrives rarely, contending for "
                "devices and cache partitions.",
    models=("mobilenet_v1", "drn26"), model_weights=(0.85, 0.15),
    rho_profile="steady", rho_base=0.6,
    objectives=(
        ("classes.interactive.attainment", "min", 0.90),
        ("shed_rate", "max", 0.10),
    ),
))

_register(Scenario(
    name="straggler",
    description="One slow device: device 0 adds multiple service units to "
                "every batch it serves; EDF + deadlines must keep the "
                "interactive class inside its SLO anyway.",
    rho_profile="steady", rho_base=0.45,
    straggler_device=0, straggler_delay_units=6.0,
    objectives=(
        ("classes.interactive.attainment", "min", 0.85),
        ("shed_rate", "max", 0.10),
    ),
))

_register(Scenario(
    name="multitenant",
    description="Contention: a greedy bulk tenant floods admission beyond "
                "capacity; its quota sheds the flood while the paying "
                "interactive tenant stays inside its SLO.",
    rho_profile="steady", rho_base=1.3,
    tenants=(
        TenantSpec("paying", weight=0.35, priority="interactive",
                   deadline_units=12.0),
        TenantSpec("greedy", weight=0.65, priority="batch",
                   deadline_units=None, quota=8),
    ),
    objectives=(
        ("classes.interactive.attainment", "min", 0.90),
        ("tenants.paying.shed", "max", 0),
        ("tenants.greedy.shed", "min", 1),
    ),
))


# -- running -----------------------------------------------------------------
@dataclass(frozen=True)
class _Arrival:
    index: int
    at_s: float
    model: str
    tenant: TenantSpec


def _plan_arrivals(scenario: Scenario, seed: int, requests: int,
                   capacity_rps: float) -> tuple[list[_Arrival], float]:
    """Draw the seeded non-homogeneous Poisson arrival plan.

    Thinning against ``rho_peak`` gives exact non-homogeneous arrivals; the
    duration estimate from the mean utilization sizes the horizon so about
    ``requests`` arrivals fit (we draw exactly ``requests``, wrapping the
    profile if the tail runs long -- determinism over exact horizon).
    """
    rng = np.random.default_rng(seed)
    rho_max = max(scenario.rho_base, scenario.rho_peak)
    duration = requests / (scenario.mean_rho() * capacity_rps)
    lam = rho_max * capacity_rps
    arrivals: list[_Arrival] = []
    t = 0.0
    model_w = np.asarray(scenario.model_weights, dtype=float)
    model_w /= model_w.sum()
    tenant_w = np.asarray([ten.weight for ten in scenario.tenants], dtype=float)
    tenant_w /= tenant_w.sum()
    while len(arrivals) < requests:
        t += float(rng.exponential(1.0 / lam))
        rho_t = scenario.rho(t % duration, duration)
        if float(rng.random()) * rho_max > rho_t:
            continue
        model = scenario.models[int(rng.choice(len(model_w), p=model_w))]
        tenant = scenario.tenants[int(rng.choice(len(tenant_w), p=tenant_w))]
        arrivals.append(_Arrival(len(arrivals), t, model, tenant))
    return arrivals, duration


def _calibrate(graphs: Mapping[str, object], spec: GPUSpec,
               max_batch: int) -> float:
    """Simulated service seconds of one full batch (max over models)."""
    from repro.bench.harness import adapt_sectors
    from repro.core.engine import BrickDLEngine
    from repro.gpusim.device import Device

    unit = 0.0
    for graph in graphs.values():
        engine = BrickDLEngine(graph, spec=spec).for_batch(max_batch)
        plan = engine.compile()
        device = Device(adapt_sectors(spec, plan))
        result = engine.run(inputs=None, functional=False, device=device,
                            plan=plan)
        unit = max(unit, result.metrics.total_time)
    if unit <= 0:
        raise ExecutionError("calibration produced a non-positive unit time")
    return unit


def build_scenario_config(scenario: Scenario, unit_s: float,
                          batching: str | None = None) -> ServeConfig:
    """The :class:`ServeConfig` one scenario runs under (unit-scaled)."""
    u = unit_s
    interactive = PriorityClass(
        name="interactive", rank=0,
        batching=batching or scenario.interactive_batching,
        max_wait_s=scenario.batch_wait_units * u)
    bulk = PriorityClass(
        name="batch", rank=1, batching="head",
        max_wait_s=4 * scenario.batch_wait_units * u)
    quotas = {t.name: t.quota for t in scenario.tenants if t.quota is not None}
    return ServeConfig(
        devices=scenario.devices,
        max_batch=scenario.max_batch,
        max_wait_s=scenario.batch_wait_units * u,
        queue_depth=scenario.queue_depth,
        saturation_policy=scenario.saturation_policy,
        functional=False,
        default_timeout_s=scenario.fallback_timeout_units * u,
        classes=(interactive, bulk),
        default_class="interactive",
        tenant_quotas=quotas or None,
        autoscaler=AutoscalerConfig(
            min_devices=scenario.devices,
            max_devices=scenario.max_devices,
            interval_s=2 * u,
            scale_up_queue_per_device=2.0 * scenario.max_batch,
            scale_down_queue_per_device=0.5,
            hysteresis_ticks=2,
            cooldown_s=6 * u,
            burn_window_s=50 * u,
        ) if scenario.autoscale else None,
        straggler_device=scenario.straggler_device,
        straggler_delay_s=scenario.straggler_delay_units * u,
        slo_latency_target_s=None,
        execution="inline",
    )


def run_scenario(
    scenario: "Scenario | str",
    *,
    seed: int = 0,
    batching: str | None = None,
    requests: int | None = None,
    functional: bool = False,
    verify: int = 0,
    spec: GPUSpec = A100,
    reduced: bool = True,
    manifest_path=None,
    trace_path=None,
) -> ScenarioReport:
    """Replay one scenario deterministically; returns its report.

    ``batching`` overrides the interactive class's mode (the CI matrix runs
    each scenario under both ``edf`` and ``head``).  ``verify`` samples that
    many served responses and re-runs them single-shot, asserting
    bit-identical outputs (forces ``functional``).  Everything runs under a
    virtual-time loop: wall cost is simulation only, and the returned
    ``fingerprint`` is stable across replays of the same ``(scenario,
    seed, batching, requests)``.
    """
    if isinstance(scenario, str):
        if scenario not in SCENARIOS:
            raise KeyError(f"unknown scenario {scenario!r} "
                           f"(have {sorted(SCENARIOS)})")
        scenario = SCENARIOS[scenario]
    if verify:
        functional = True
    from repro.models import zoo

    graphs = {name: zoo.build(name, reduced=reduced)
              for name in scenario.models}
    unit_s = _calibrate(graphs, spec, scenario.max_batch)
    n_requests = requests if requests is not None else scenario.requests
    capacity_rps = scenario.devices * scenario.max_batch / unit_s
    arrivals, duration = _plan_arrivals(scenario, seed, n_requests,
                                        capacity_rps)
    config = build_scenario_config(scenario, unit_s, batching=batching)
    if functional:
        config = dataclasses.replace(config, functional=True)

    tracer = None
    if trace_path is not None:
        from pathlib import Path

        from repro.obs import FlightRecorder, Tracer

        tp = Path(trace_path)
        tracer = Tracer(log_path=tp,
                        recorder=FlightRecorder(out_dir=tp.parent or Path(".")))

    server = InferenceServer(list(graphs.values()), spec=spec, config=config,
                             tracer=tracer)
    responses: dict[int, object] = {}
    shed_by_reason: dict[str, int] = {}

    async def _drive() -> float:
        loop = asyncio.get_running_loop()
        async with server:
            if tracer is not None:
                tracer.clock = loop.time  # span times on the virtual axis
            t0 = loop.time()

            async def one(arrival: _Arrival) -> None:
                x = (_request_input(graphs[arrival.model], arrival.index, seed)
                     if config.functional else None)
                timeout = (arrival.tenant.deadline_units * unit_s
                           if arrival.tenant.deadline_units is not None
                           else None)
                try:
                    responses[arrival.index] = await server.submit(
                        x, timeout_s=timeout, model=arrival.model,
                        tenant=arrival.tenant.name,
                        priority=arrival.tenant.priority)
                except TenantQuotaError:
                    shed_by_reason["quota"] = shed_by_reason.get("quota", 0) + 1
                except QueueSaturatedError:
                    shed_by_reason["saturated"] = (
                        shed_by_reason.get("saturated", 0) + 1)

            tasks = []
            for arrival in arrivals:
                delay = t0 + arrival.at_s - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(asyncio.create_task(one(arrival)))
            await asyncio.gather(*tasks)
            return loop.time() - t0

    elapsed = run_virtual(_drive())
    if tracer is not None:
        tracer.close()

    verified = 0
    if verify and config.functional:
        verified = _verify_scenario(scenario, graphs, server, arrivals,
                                    responses, seed, verify)

    stats = server.stats()
    manifest = server.manifest(label=f"scenario-{scenario.name}")
    if manifest_path is not None:
        manifest.save(manifest_path)
    return ScenarioReport(
        scenario=scenario.name,
        seed=seed,
        batching=batching or scenario.interactive_batching,
        unit_s=unit_s,
        duration_s=elapsed,
        requests=len(arrivals),
        completed=len(responses),
        shed=sum(shed_by_reason.values()),
        verified=verified,
        fingerprint=manifest_fingerprint(manifest.as_dict()),
        stats=stats,
        shed_by_reason=shed_by_reason,
        objectives=scenario.objectives,
    )


def _verify_scenario(scenario: Scenario, graphs: Mapping, server,
                     arrivals: Sequence[_Arrival], responses: Mapping,
                     seed: int, count: int) -> int:
    """Differential replay: served outputs == single-shot engine outputs."""
    from repro.core.engine import BrickDLEngine

    engines = {}
    candidates = [a for a in arrivals
                  if a.index in responses and not responses[a.index].degraded]
    if not candidates:
        return 0
    step = max(len(candidates) // count, 1)
    verified = 0
    for arrival in candidates[::step][:count]:
        if arrival.model not in engines:
            engine = BrickDLEngine(graphs[arrival.model], spec=server.spec)
            engines[arrival.model] = (engine, engine.compile())
        engine, plan = engines[arrival.model]
        x = _request_input(graphs[arrival.model], arrival.index, seed)
        single = engine.run(x, functional=True, plan=plan).outputs
        served = responses[arrival.index].outputs
        for name, want in single.items():
            if not np.array_equal(served[name], want):
                raise ExecutionError(
                    f"scenario {scenario.name}: request {arrival.index} "
                    f"output {name!r} differs from single-shot")
        verified += 1
    return verified
