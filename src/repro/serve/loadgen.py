"""Traffic generation against an :class:`~repro.serve.server.InferenceServer`.

Two canonical load shapes:

* **open-loop Poisson** -- arrivals are a seeded Poisson process at
  ``rate`` requests/second, independent of completions (how production
  traffic behaves; exposes queueing delay honestly);
* **closed-loop** -- ``concurrency`` clients each keep exactly one request
  in flight (how most benchmark harnesses behave; throughput-bound).

Each request gets a deterministic input drawn from ``seed + request index``,
so any response can be re-verified bit-for-bit against a single-shot
:class:`~repro.core.engine.BrickDLEngine` run of the same input -- the
differential check ``verify`` samples.
"""

from __future__ import annotations

import asyncio
import csv
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ExecutionError
from repro.serve.request import InferenceResponse, QueueSaturatedError
from repro.serve.server import InferenceServer

__all__ = ["LoadgenReport", "run_loadgen", "loadgen"]


@dataclass
class LoadgenReport:
    """What one traffic run observed, read back off the server registry."""

    model: str
    mode: str
    requests: int
    completed: int
    rejected: int
    degraded: int
    timed_out: int
    verified: int
    wall_s: float
    throughput_rps: float
    p50_s: float
    p99_s: float
    mean_batch: float
    cache_hit_ratio: float        # request-weighted: requests on a cached plan
    cache_lookup_ratio: float = 0.0   # per-lookup (one lookup per batch)
    cache_entries: int = 0
    stats: dict = field(default_factory=dict)

    def render(self) -> str:
        from repro.bench.reporting import format_table

        rows = [
            ["requests", f"{self.completed}/{self.requests} completed"],
            ["rejected", self.rejected],
            ["degraded (fallback)", self.degraded],
            ["timed out", self.timed_out],
            ["verified bit-identical", self.verified],
            ["wall time", f"{self.wall_s:.2f} s"],
            ["throughput", f"{self.throughput_rps:.1f} req/s"],
            ["latency p50", f"{self.p50_s * 1e3:.1f} ms"],
            ["latency p99", f"{self.p99_s * 1e3:.1f} ms"],
            ["mean batch size", f"{self.mean_batch:.2f}"],
            ["plan-cache hit ratio (requests)", f"{self.cache_hit_ratio:.1%}"],
            ["plan-cache hit ratio (lookups)", f"{self.cache_lookup_ratio:.1%}"],
            ["plan-cache entries", self.cache_entries],
        ]
        slo = self.stats.get("slo")
        if slo:
            rows.append(["SLO attainment",
                         f"{slo['attainment']:.2%} "
                         f"(objective {slo['objective']:.2%})"])
            for pair, burn in slo.get("burn_rates", {}).items():
                rows.append([f"burn rate ({pair})",
                             f"{burn['short']:.2f} / {burn['long']:.2f}"])
            rows.append(["burn alerts fired", slo.get("alerts_fired", 0)])
        return format_table(
            ["metric", "value"], rows,
            title=f"loadgen: {self.model} ({self.mode})")


def _request_input(graph, index: int, seed: int) -> np.ndarray:
    spec = graph.input_nodes[0].spec
    rng = np.random.default_rng(seed + index)
    return rng.standard_normal(spec.shape).astype(spec.dtype)


async def run_loadgen(
    server: InferenceServer,
    requests: int = 200,
    mode: str = "poisson",
    rate: float = 100.0,
    concurrency: int = 8,
    seed: int = 0,
    timeout_s: float | None = None,
    verify: int = 0,
    latency_csv: "str | Path | None" = None,
) -> LoadgenReport:
    """Drive ``server`` (already started) with synthetic traffic.

    ``verify`` re-runs that many evenly spaced requests single-shot through
    a fresh engine and asserts the served outputs are bit-identical.
    ``latency_csv`` optionally names a file to receive one row per request
    (arrival/admitted/batched/completed timestamps, deadline attainment,
    trace id) -- the raw data behind the aggregate percentiles.
    """
    if mode not in ("poisson", "closed"):
        raise ValueError(f"mode must be 'poisson' or 'closed', got {mode!r}")
    functional = server.config.functional
    graph = server.graph
    responses: dict[int, InferenceResponse] = {}
    arrivals: dict[int, float] = {}
    rejections: dict[int, QueueSaturatedError] = {}
    rejected = 0
    loop = asyncio.get_running_loop()
    t0 = loop.time()

    async def one(index: int) -> None:
        nonlocal rejected
        x = _request_input(graph, index, seed) if functional else None
        arrivals[index] = loop.time()
        try:
            responses[index] = await server.submit(x, timeout_s=timeout_s)
        except QueueSaturatedError as err:
            rejected += 1
            rejections[index] = err

    if mode == "poisson":
        if rate <= 0:
            raise ValueError(f"poisson mode needs rate > 0, got {rate}")
        arrival_rng = np.random.default_rng(seed)
        tasks = []
        next_at = t0
        for i in range(requests):
            next_at += float(arrival_rng.exponential(1.0 / rate))
            delay = next_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(one(i)))
        await asyncio.gather(*tasks)
    else:
        counter = iter(range(requests))

        async def client() -> None:
            for i in counter:
                await one(i)

        await asyncio.gather(*[client() for _ in range(max(1, concurrency))])

    wall = loop.time() - t0

    verified = 0
    if verify and functional:
        verified = _verify_sample(graph, server, responses, seed,
                                  min(verify, len(responses)))

    if latency_csv is not None:
        _write_latency_csv(latency_csv, t0, arrivals, responses, rejections)

    stats = server.stats()
    return LoadgenReport(
        model=graph.name,
        mode=mode,
        requests=requests,
        completed=len(responses),
        rejected=rejected,
        degraded=stats["requests"]["degraded"],
        timed_out=stats["requests"]["timed_out"],
        verified=verified,
        wall_s=wall,
        throughput_rps=len(responses) / wall if wall > 0 else 0.0,
        p50_s=stats["latency_s"]["p50"],
        p99_s=stats["latency_s"]["p99"],
        mean_batch=stats["batches"]["mean_size"],
        cache_hit_ratio=stats["plan_cache"]["request_hit_ratio"],
        cache_lookup_ratio=stats["plan_cache"]["hit_ratio"],
        cache_entries=stats["plan_cache"]["size"],
        stats=stats,
    )


LATENCY_CSV_COLUMNS = [
    "index", "request_id", "arrival_s", "admitted_s", "batched_s",
    "completed_s", "latency_s", "deadline_met", "degraded", "timed_out",
    "rejected", "trace_id",
]


def _write_latency_csv(path: "str | Path", t0: float,
                       arrivals: dict[int, float],
                       responses: dict[int, "InferenceResponse"],
                       rejections: dict[int, QueueSaturatedError]) -> None:
    """One row per request, timestamps relative to loadgen start."""
    def rel(t: float | None) -> str:
        return "" if t is None else f"{t - t0:.6f}"

    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(LATENCY_CSV_COLUMNS)
        for index in sorted(arrivals):
            arrival = arrivals[index]
            r = responses.get(index)
            if r is not None:
                writer.writerow([
                    index, r.request_id, rel(arrival), rel(r.admitted_s),
                    rel(r.batched_s), rel(r.completed_s),
                    f"{r.latency_s:.6f}", r.deadline_met, r.degraded,
                    r.timed_out, False, r.trace_id or "",
                ])
            elif index in rejections:
                err = rejections[index]
                writer.writerow([
                    index, err.request_id if err.request_id is not None else "",
                    rel(arrival), "", "", "", "", False, False, False, True,
                    err.trace_id or "",
                ])


def _verify_sample(graph, server: InferenceServer, responses, seed: int,
                   count: int) -> int:
    """Differential check: served outputs == single-shot engine outputs."""
    from repro.core.engine import BrickDLEngine

    engine = BrickDLEngine(graph, spec=server.spec,
                           strategy_override=server.config.strategy,
                           brick_override=server.config.brick)
    plan = engine.compile()
    # Degraded responses took the cuDNN-fallback plan, a different (allclose
    # but not bitwise-equal) arithmetic path; the bit-identity contract is
    # for batched-vs-single-shot on the *same* plan.
    indices = sorted(i for i, r in responses.items() if not r.degraded)
    if not indices:
        return 0
    picked = [indices[int(i * (len(indices) - 1) / max(count - 1, 1))]
              for i in range(count)]
    verified = 0
    for index in dict.fromkeys(picked):
        x = _request_input(graph, index, seed)
        single = engine.run(x, functional=True, plan=plan).outputs
        served = responses[index].outputs
        for name, want in single.items():
            got = served[name]
            if not np.array_equal(got, want):
                raise ExecutionError(
                    f"request {index}: served output {name!r} differs from "
                    f"single-shot (max |diff| "
                    f"{np.abs(got - want).max():.3e})")
        verified += 1
    return verified


def loadgen(server: InferenceServer, **kwargs) -> LoadgenReport:
    """Synchronous wrapper: start the server, run traffic, close it."""
    async def _run() -> LoadgenReport:
        async with server:
            return await run_loadgen(server, **kwargs)

    return asyncio.run(_run())
