"""Dynamic batching: coalesce admitted requests into bucketed batches.

Clipper-style adaptive batching: the batcher greedily coalesces queued
requests up to ``max_batch``, but never holds the head request longer than
``max_wait_s`` -- and flushes *earlier* if the head request's deadline
would otherwise expire while waiting for stragglers.  Batch sizes are then
rounded up to the nearest power-of-two *bucket*, so the plan cache holds
O(log max_batch) compiled plans instead of one per observed batch size;
the pad slots run zeros and are sliced away before responses resolve.
"""

from __future__ import annotations

import asyncio

from repro.serve.request import InferenceRequest

__all__ = ["DynamicBatcher", "batch_bucket"]


def batch_bucket(n: int, max_batch: int) -> int:
    """Smallest power of two >= ``n``, capped at ``max_batch``."""
    if n < 1:
        raise ValueError(f"batch size must be >= 1, got {n}")
    bucket = 1
    while bucket < n:
        bucket *= 2
    return min(bucket, max(max_batch, n))


class DynamicBatcher:
    """Pull coalesced batches off an admission queue."""

    def __init__(
        self,
        queue: "asyncio.Queue[InferenceRequest]",
        max_batch: int = 8,
        max_wait_s: float = 0.01,
        # Flush this far ahead of the head request's deadline so the batch
        # still has a chance to execute inside it.
        deadline_slack_s: float = 0.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.queue = queue
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.deadline_slack_s = deadline_slack_s
        self.batches_formed = 0

    def _flush_at(self, now_s: float, head: InferenceRequest) -> float:
        flush_at = now_s + self.max_wait_s
        if head.deadline_s is not None:
            flush_at = min(flush_at, head.deadline_s - self.deadline_slack_s)
        return flush_at

    async def next_batch(self) -> list[InferenceRequest]:
        """Block for the next batch: [head] plus whatever coalesces in time.

        Returns at most ``max_batch`` requests.  The wait window is anchored
        at the *head* request (its ``max_wait``/deadline govern the flush),
        so a steady trickle cannot starve the first arrival.
        """
        loop = asyncio.get_running_loop()
        head = await self.queue.get()
        batch = [head]
        flush_at = self._flush_at(loop.time(), head)
        while len(batch) < self.max_batch:
            remaining = flush_at - loop.time()
            if remaining <= 0:
                break
            try:
                req = await asyncio.wait_for(self.queue.get(), timeout=remaining)
            except asyncio.TimeoutError:
                break
            batch.append(req)
        # Stage boundary for the per-request breakdown: queued ends (and
        # batching/service begins) the moment the batch is formed.
        formed_at = loop.time()
        for req in batch:
            req.batched_s = formed_at
        self.batches_formed += 1
        return batch

    def drain_nowait(self) -> list[InferenceRequest]:
        """Empty the queue without waiting (shutdown path)."""
        drained = []
        while True:
            try:
                drained.append(self.queue.get_nowait())
            except asyncio.QueueEmpty:
                return drained
