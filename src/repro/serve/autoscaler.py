"""Autoscaling the simulated device fleet from queue and burn-rate signals.

Two pieces:

* :class:`DevicePool` -- the dynamic replacement for the fixed device list:
  workers are spawned/retired at runtime, an idle FIFO rotation hands the
  scheduler the next free device (``await acquire()`` is the same
  backpressure the size-1 device queues used to provide), and retirement is
  graceful -- a retiring device finishes its in-flight batch, then its loop
  exits on a sentinel.
* :class:`Autoscaler` -- a periodic control loop reading two signals the
  serve path already maintains: admission-queue depth (demand we have not
  started) and the short-window SLO burn rate (harm we are already doing).
  Crossing the scale-up threshold for ``hysteresis_ticks`` consecutive
  ticks -- outside the post-scale ``cooldown_s`` -- grows the fleet by
  ``step``; a drained queue with an all-idle fleet shrinks it.  Every
  decision is recorded as a :class:`ScaleEvent`, counted in the registry
  (``serve_scale_events{direction=...}``), and traced as a root span of
  kind ``scale`` so Perfetto shows exactly when and why the fleet moved.

Hysteresis and cooldown exist for the classic reason: queue depth under
bursty arrivals oscillates, and a controller that reacts to every sample
flaps -- scaling up into the tail of a burst it already absorbed, then
down into the next one.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.metrics.registry import MetricsRegistry
    from repro.obs.tracer import Tracer

__all__ = ["AutoscalerConfig", "ScaleEvent", "DevicePool", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop tunables (times on the event-loop clock, so virtual-time
    scenarios scale them with the workload's unit service time)."""

    min_devices: int = 1
    max_devices: int = 8
    interval_s: float = 0.25          # tick period
    scale_up_queue_per_device: float = 4.0   # depth/devices that means "behind"
    scale_up_burn: float = 2.0        # short-window burn rate that means "harm"
    scale_down_queue_per_device: float = 0.5
    hysteresis_ticks: int = 2         # consecutive ticks before acting
    cooldown_s: float = 1.0           # quiet period after any scale action
    step: int = 1                     # devices added/removed per action
    burn_window_s: float = 5.0        # which burn window to read

    def __post_init__(self) -> None:
        if self.min_devices < 1:
            raise ValueError(f"min_devices must be >= 1, got {self.min_devices}")
        if self.max_devices < self.min_devices:
            raise ValueError(
                f"max_devices ({self.max_devices}) must be >= min_devices "
                f"({self.min_devices})")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.hysteresis_ticks < 1:
            raise ValueError(
                f"hysteresis_ticks must be >= 1, got {self.hysteresis_ticks}")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision, as it lands in manifests and traces."""

    time_s: float
    direction: str          # "up" | "down"
    from_devices: int
    to_devices: int
    reason: str             # which signal tripped
    queue_depth: int
    burn: float

    def as_dict(self) -> dict:
        return {
            "time_s": round(self.time_s, 6),
            "direction": self.direction,
            "from": self.from_devices,
            "to": self.to_devices,
            "reason": self.reason,
            "queue_depth": self.queue_depth,
            "burn": round(self.burn, 4),
        }


class DevicePool:
    """Dynamic fleet of device workers with an idle FIFO rotation.

    ``run_device(index, queue)`` is the worker coroutine (the server's
    device loop); it must exit when it reads ``None`` off its queue and
    call :meth:`release` after each served batch.
    """

    def __init__(self, run_device: Callable, name: str = "serve/device") -> None:
        self._run_device = run_device
        self._name = name
        self._queues: dict[int, asyncio.Queue] = {}
        self._tasks: dict[int, asyncio.Task] = {}
        self._idle: asyncio.Queue[int] = asyncio.Queue()
        self._live: list[int] = []       # logically active, spawn order
        self._retiring: set[int] = set()
        self._dead: set[int] = set()     # finalized; stale idle tokens skip
        self._busy: set[int] = set()
        self._next = 0
        self.started = 0
        self.retired = 0

    @property
    def size(self) -> int:
        """Logical fleet size (retired devices leave at the decision)."""
        return len(self._live)

    @property
    def busy(self) -> int:
        return len(self._busy)

    @property
    def idle(self) -> int:
        return len(self._live) - sum(1 for i in self._live if i in self._busy)

    def tasks(self) -> list[asyncio.Task]:
        return list(self._tasks.values())

    def spawn(self) -> int:
        """Start one device worker and add it to the idle rotation."""
        index = self._next
        self._next += 1
        queue: asyncio.Queue = asyncio.Queue(maxsize=1)
        self._queues[index] = queue
        self._tasks[index] = asyncio.create_task(
            self._run_device(index, queue), name=f"{self._name}{index}")
        self._live.append(index)
        self._idle.put_nowait(index)
        self.started += 1
        return index

    def retire_one(self) -> int | None:
        """Gracefully remove the newest device; returns its index.

        LIFO keeps device 0 (straggler-injection target, trace lane 1000)
        stable across scale churn.  The worker exits when it next passes
        through the idle rotation -- an in-flight batch always completes.
        """
        if not self._live:
            return None
        index = self._live.pop()
        self._retiring.add(index)
        self.retired += 1
        if index not in self._busy:
            # Somewhere in the idle queue: acquire() will skip and finalize
            # it.  Nudge the sentinel in now so an idle fleet retires
            # immediately instead of on the next acquire.
            self._finalize(index)
        return index

    async def acquire(self) -> int:
        """Next idle device (FIFO).  Blocks while the whole fleet is busy --
        this is the scheduler's backpressure."""
        while True:
            index = await self._idle.get()
            if index in self._dead:
                continue  # stale token from a device retired while idle
            if index in self._retiring:
                self._finalize(index)
                continue
            self._busy.add(index)
            return index

    def dispatch(self, index: int, item) -> None:
        """Hand an acquired device its work (its queue is empty by
        construction: acquire() only returns idle devices)."""
        self._queues[index].put_nowait(item)

    def release(self, index: int) -> None:
        """Worker callback after serving a batch: rejoin rotation or exit."""
        self._busy.discard(index)
        if index in self._retiring:
            self._finalize(index)
        else:
            self._idle.put_nowait(index)

    def _finalize(self, index: int) -> None:
        self._retiring.discard(index)
        self._dead.add(index)
        queue = self._queues.get(index)
        if queue is not None and queue.empty():
            queue.put_nowait(None)


class Autoscaler:
    """Periodic scale controller over a :class:`DevicePool`.

    ``signals()`` returns ``(queue_depth, burn_rate)``; the pool supplies
    its own busy/idle census.  ``tick()`` is separable from the timer loop
    so tests can drive the control law directly.
    """

    def __init__(
        self,
        config: AutoscalerConfig,
        pool: DevicePool,
        signals: Callable[[], tuple[int, float]],
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.config = config
        self.pool = pool
        self.signals = signals
        self.registry = registry
        self.tracer = tracer
        self.events: list[ScaleEvent] = []
        self.ticks = 0
        self._up_ticks = 0
        self._down_ticks = 0
        self._last_scale_s: float | None = None

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.events if e.direction == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.events if e.direction == "down")

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.interval_s)
            self.tick(loop.time())

    def tick(self, now_s: float) -> ScaleEvent | None:
        cfg = self.config
        depth, burn = self.signals()
        size = self.pool.size
        self.ticks += 1
        queue_hot = depth >= cfg.scale_up_queue_per_device * max(size, 1)
        burn_hot = burn >= cfg.scale_up_burn
        want_up = queue_hot or burn_hot
        want_down = (not want_up
                     and depth <= cfg.scale_down_queue_per_device * max(size, 1)
                     and self.pool.busy == 0
                     and burn < cfg.scale_up_burn)
        self._up_ticks = self._up_ticks + 1 if want_up else 0
        self._down_ticks = self._down_ticks + 1 if want_down else 0
        cooling = (self._last_scale_s is not None
                   and now_s - self._last_scale_s < cfg.cooldown_s)
        if cooling:
            return None
        if (want_up and self._up_ticks >= cfg.hysteresis_ticks
                and size < cfg.max_devices):
            delta = min(cfg.step, cfg.max_devices - size)
            reason = "burn" if burn_hot and not queue_hot else "queue_depth"
            return self._scale(now_s, delta, depth, burn, reason)
        if (want_down and self._down_ticks >= cfg.hysteresis_ticks
                and size > cfg.min_devices):
            delta = -min(cfg.step, size - cfg.min_devices)
            return self._scale(now_s, delta, depth, burn, "idle")
        return None

    def _scale(self, now_s: float, delta: int, depth: int, burn: float,
               reason: str) -> ScaleEvent:
        before = self.pool.size
        if delta > 0:
            for _ in range(delta):
                self.pool.spawn()
        else:
            for _ in range(-delta):
                self.pool.retire_one()
        after = self.pool.size
        direction = "up" if delta > 0 else "down"
        event = ScaleEvent(now_s, direction, before, after, reason,
                           depth, burn)
        self.events.append(event)
        self._up_ticks = 0
        self._down_ticks = 0
        self._last_scale_s = now_s
        if self.registry is not None:
            self.registry.counter("serve_scale_events",
                                  direction=direction).inc()
            self.registry.gauge("serve_devices").set(after)
        if self.tracer is not None:
            self.tracer.record_span(
                f"scale_{direction}", parent=None, kind="scale",
                start_s=now_s - self.config.interval_s, end_s=now_s,
                **{"from": before, "to": after, "reason": reason,
                   "queue_depth": depth, "burn": round(burn, 4)})
        return event

    def stats(self) -> dict:
        """The ``metrics.serve.autoscaler`` block of the serve manifest."""
        return {
            "enabled": True,
            "devices": self.pool.size,
            "min": self.config.min_devices,
            "max": self.config.max_devices,
            "ticks": self.ticks,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "events": [e.as_dict() for e in self.events],
        }
