"""Request/response currency of the serving layer.

A request enters the admission queue, rides a dynamic batch through a
simulated device, and resolves its future with an
:class:`InferenceResponse` that records how it was served: which batch and
batch bucket it rode, whether the compiled plan came from the cache,
whether it degraded to the cuDNN-fallback path, and both wall-clock latency
(queueing + execution as the event loop saw it) and the simulated device
time of its batch.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

__all__ = ["InferenceRequest", "InferenceResponse", "QueueSaturatedError",
           "TenantQuotaError", "ServerClosedError"]


class QueueSaturatedError(RuntimeError):
    """Admission rejected: the queue is full and the saturation policy is
    ``reject`` (the client is expected to back off and retry).

    Carries the offending request's stable identity so clients, log lines,
    and flight-recorder dumps can name it instead of shedding anonymously.
    """

    def __init__(self, message: str = "admission queue full",
                 request_id: int | None = None,
                 trace_id: str | None = None) -> None:
        super().__init__(message)
        self.request_id = request_id
        self.trace_id = trace_id


class TenantQuotaError(QueueSaturatedError):
    """Admission rejected by the *tenant's* in-flight quota, not global
    saturation: one tenant flooding the fleet is shed by name while other
    tenants keep admitting.  Subclasses :class:`QueueSaturatedError` so
    clients that only know "back off and retry" handle both the same way.
    """

    def __init__(self, message: str = "tenant quota exhausted",
                 tenant: str | None = None,
                 request_id: int | None = None,
                 trace_id: str | None = None) -> None:
        super().__init__(message, request_id=request_id, trace_id=trace_id)
        self.tenant = tenant


class ServerClosedError(RuntimeError):
    """Submitted to a server that is not running."""


@dataclass
class InferenceRequest:
    """One admitted inference request, waiting for its batch."""

    request_id: int
    # Input activation (``None`` on a profile-mode server: access streams
    # and timing only, no NumPy arithmetic).
    input: np.ndarray | None
    # Absolute event-loop deadline; a request still queued past it is
    # diverted to the fallback path instead of riding a merged batch.
    deadline_s: float | None
    enqueued_s: float
    future: "asyncio.Future[InferenceResponse]" = field(repr=False, default=None)
    # Root span of this request's trace (``repro.obs``); ``None`` on an
    # untraced server.
    trace: object | None = field(repr=False, default=None)
    # When the dynamic batcher pulled this request into a batch (event-loop
    # clock); ``None`` until batched (or never, on the saturation path).
    batched_s: float | None = None
    # Fleet identity: which resident model serves this request, which tenant
    # submitted it, and which priority class admitted it.  Single-model
    # servers fill these with their defaults, so the fields are always set.
    model: str = ""
    tenant: str = "default"
    priority: str = "standard"

    def expired(self, now_s: float) -> bool:
        return self.deadline_s is not None and now_s > self.deadline_s


@dataclass(frozen=True)
class InferenceResponse:
    """How one request was served."""

    request_id: int
    # Primary graph output for this request (its slice of the batch), or
    # ``None`` on a profile-mode server.
    output: np.ndarray | None
    # All graph outputs by name (same slicing), or ``None`` in profile mode.
    outputs: dict[str, np.ndarray] | None
    batch_size: int          # how many requests actually rode the batch
    batch_bucket: int        # padded batch size the plan was compiled for
    cache_hit: bool          # plan came from the cache (no recompile)
    degraded: bool           # served by the cuDNN-fallback baseline path
    timed_out: bool          # deadline passed while queued
    device: int              # simulated device index that ran the batch
    latency_s: float         # wall latency: admission -> completion
    sim_time_s: float        # simulated device time of the whole batch
    # Observability (all optional so hand-built responses stay valid):
    trace_id: str | None = None      # this request's trace, when traced
    deadline_met: bool = True        # completed within the deadline (if any)
    admitted_s: float = 0.0          # event-loop time of admission
    batched_s: float | None = None   # when the batcher picked it up
    completed_s: float = 0.0         # event-loop time of resolution
    # Fleet identity (mirrors the request; defaults keep hand-built
    # responses and single-model servers valid).
    model: str = ""
    tenant: str = "default"
    priority: str = "standard"
