"""The asyncio inference server over the simulated device fleet.

Request lifecycle::

    submit() -> admission queue (bounded; saturation degrades or rejects)
             -> DynamicBatcher (coalesce up to max_batch / max_wait)
             -> scheduler (round-robin over N simulated devices, one batch
                in flight per device -- natural backpressure)
             -> PlanCache lookup by (model, batch bucket, GPUSpec, override)
             -> BrickDLEngine.run on a fresh Device built from the cached
                entry's sector-adapted spec
             -> per-request response slices resolve the futures

Degradation ladder: a request whose deadline expires while queued, or that
arrives when the admission queue is saturated (policy ``degrade``), skips
batching and runs single-shot through the cuDNN-fallback baseline path --
the vendor-library execution the paper falls back to for unmergeable work
(section 3.3.3) -- so the server sheds load by serving *slower, cheaper*
rather than dropping.  Policy ``reject`` turns saturation into
:class:`~repro.serve.request.QueueSaturatedError` instead.

Everything executes on the *simulated* device, so "latency" is wall time
of the simulation (queueing is real; execution cost is the simulator's
Python time), while each response also carries the simulated device time
of its batch.  Serve-path metrics flow into a
:class:`~repro.metrics.MetricsRegistry` and out through
:func:`~repro.metrics.manifest_from_serve`.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.errors import ExecutionError
from repro.graph.ir import Graph
from repro.gpusim.device import Device
from repro.gpusim.spec import A100, GPUSpec
from repro.metrics import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    RunManifest,
    manifest_from_serve,
)
from repro.metrics.slo import SLOConfig
from repro.obs.slo import SLOMonitor
from repro.serve.batcher import DynamicBatcher, batch_bucket
from repro.serve.plancache import CompiledEntry, PlanCache, PlanKey
from repro.serve.request import (
    InferenceRequest,
    InferenceResponse,
    QueueSaturatedError,
    ServerClosedError,
)

__all__ = ["ServeConfig", "InferenceServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving session."""

    devices: int = 2             # simulated device fleet size
    max_batch: int = 8           # dynamic batcher cap (and largest bucket)
    max_wait_s: float = 0.02     # batcher hold on the head request
    queue_depth: int = 64        # admission queue bound (backpressure)
    cache_capacity: int = 16     # compiled-plan LRU entries
    saturation_policy: str = "degrade"   # "degrade" | "reject"
    functional: bool = True      # False: profile mode (no NumPy arithmetic)
    strategy: Strategy | None = None     # engine strategy override
    brick: int | None = None             # engine brick override
    default_timeout_s: float | None = None  # per-request deadline default
    # SLO: deadline-attainment objective for burn-rate alerting, plus an
    # optional hard latency target (a request is "good" only if it also
    # completed inside it -- the deterministic CI straggler objective).
    slo_objective: float = 0.99
    slo_latency_target_s: float | None = None
    # Fault injection: add this much wall-clock delay to every batch served
    # by one device (straggler emulation; never touches simulated metrics).
    straggler_device: int | None = None
    straggler_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.saturation_policy not in ("degrade", "reject"):
            raise ValueError(
                f"saturation_policy must be 'degrade' or 'reject', "
                f"got {self.saturation_policy!r}")
        if self.straggler_delay_s < 0:
            raise ValueError(
                f"straggler_delay_s must be >= 0, got {self.straggler_delay_s}")


class InferenceServer:
    """Serve one model graph from a dynamic-batching asyncio loop."""

    def __init__(
        self,
        graph: Graph,
        spec: GPUSpec = A100,
        config: ServeConfig = ServeConfig(),
        registry: MetricsRegistry | None = None,
        tracer=None,
        slo: SLOConfig | None = None,
    ) -> None:
        graph.validate()
        if any(n.spec.batch != 1 for n in graph.input_nodes):
            raise ExecutionError(
                "serve graphs must be built at batch 1; the server rebatches "
                "per bucket itself")
        self.graph = graph
        self.spec = spec
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.set_base(model=graph.name)
        self.cache = PlanCache(capacity=config.cache_capacity, registry=self.registry)
        # Observability: the tracer (and its flight recorder) are optional;
        # the SLO monitor is always on -- recording one outcome per request
        # is two appends, and burn rates belong in every manifest.
        self.tracer = tracer
        self.recorder = tracer.recorder if tracer is not None else None
        self.slo = SLOMonitor(
            slo if slo is not None else SLOConfig(
                objective=config.slo_objective,
                latency_target_s=config.slo_latency_target_s),
            registry=self.registry, tracer=tracer, recorder=self.recorder)
        if config.functional:
            graph.init_weights()

        self._queue: asyncio.Queue[InferenceRequest] | None = None
        self._batcher: DynamicBatcher | None = None
        self._tasks: list[asyncio.Task] = []
        self._device_queues: list[asyncio.Queue] = []
        self._pending: set[asyncio.Future] = set()
        self._ids = itertools.count()
        self._running = False
        self._started_s = 0.0
        self._stopped_s: float | None = None

        # Request counters mirrored into the registry (kept as plain ints
        # too so stats() never has to scan samples).
        self.completed = 0
        self.degraded = 0
        self.timed_out = 0
        self.rejected = 0
        self.batches = 0
        # Requests that rode an already-cached plan (no compile in their
        # critical path) -- the request-weighted cache hit numerator.
        self.cached_plan_requests = 0

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "InferenceServer":
        if self._running:
            return self
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._batcher = DynamicBatcher(
            self._queue, max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_s)
        self._device_queues = [asyncio.Queue(maxsize=1)
                               for _ in range(self.config.devices)]
        self._tasks = [asyncio.create_task(self._schedule_loop(),
                                           name="serve/scheduler")]
        self._tasks += [
            asyncio.create_task(self._device_loop(i), name=f"serve/device{i}")
            for i in range(self.config.devices)
        ]
        self._running = True
        self._started_s = loop.time()
        self._stopped_s = None
        return self

    async def close(self) -> None:
        """Graceful shutdown: serve everything admitted, then stop."""
        if not self._running:
            return
        self._running = False  # no new admissions
        if self._pending:
            await asyncio.gather(*list(self._pending), return_exceptions=True)
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self._stopped_s = asyncio.get_running_loop().time()

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- admission ----------------------------------------------------------
    async def submit(
        self,
        x: np.ndarray | None = None,
        timeout_s: float | None = None,
    ) -> InferenceResponse:
        """Admit one request and await its response.

        ``x`` is the input activation (shape of the graph's batch-1 input);
        ``None`` is only valid on a profile-mode server.  ``timeout_s``
        (default :attr:`ServeConfig.default_timeout_s`) sets the queueing
        deadline: a request still waiting past it degrades to the fallback
        path rather than riding a batch.
        """
        if not self._running:
            raise ServerClosedError(f"server for {self.graph.name!r} is not running")
        if self.config.functional and x is None:
            raise ExecutionError("functional server requires an input array")
        loop = asyncio.get_running_loop()
        timeout_s = timeout_s if timeout_s is not None else self.config.default_timeout_s
        now = loop.time()
        request_id = next(self._ids)
        root = None
        if self.tracer is not None:
            root = self.tracer.start_span(
                "request", kind="request", start_s=now,
                request_id=request_id, model=self.graph.name)
        req = InferenceRequest(
            request_id=request_id,
            input=None if x is None else np.asarray(x, dtype=np.float32),
            deadline_s=now + timeout_s if timeout_s is not None else None,
            enqueued_s=now,
            future=loop.create_future(),
            trace=root,
        )
        self._pending.add(req.future)
        req.future.add_done_callback(self._pending.discard)
        try:
            self._queue.put_nowait(req)
        except asyncio.QueueFull:
            if self.config.saturation_policy == "reject":
                self._reject(req, loop.time())
            # Graceful degradation: shed to the single-shot fallback path.
            self.registry.counter("serve_saturation_fallbacks").inc()
            if self.tracer is not None:
                self.tracer.event("saturated", ctx=root,
                                  request_id=req.request_id, policy="degrade",
                                  queue_depth=self.config.queue_depth)
            await self._serve_fallback(req, timed_out=False)
            return await req.future
        self._observe_queue_depth()
        return await req.future

    def _reject(self, req: InferenceRequest, now_s: float) -> None:
        """Shed one request by name: counters, SLO debit, flight dump, raise."""
        self.rejected += 1
        self.registry.counter("serve_requests_rejected").inc()
        trace_id = req.trace.trace_id if req.trace is not None else None
        self.slo.observe(now_s, good=False, trace_id=trace_id)
        message = (f"request {req.request_id}: admission queue full "
                   f"({self.config.queue_depth}); retry later")
        if self.recorder is not None:
            self.recorder.trigger("reject", detail=message, trace_id=trace_id,
                                  request_id=req.request_id, time_s=now_s)
        if self.tracer is not None:
            self.tracer.event("reject", ctx=req.trace,
                              request_id=req.request_id,
                              queue_depth=self.config.queue_depth)
            self.tracer.end_span(req.trace, end_s=now_s, status="rejected")
        req.future.cancel()
        raise QueueSaturatedError(message, request_id=req.request_id,
                                  trace_id=trace_id) from None

    def _observe_queue_depth(self) -> None:
        depth = self._queue.qsize() if self._queue is not None else 0
        self.registry.gauge("serve_queue_depth").set(depth)
        self.registry.histogram("serve_queue_depth_hist",
                                buckets=BATCH_BUCKETS).observe(depth)

    # -- scheduling ---------------------------------------------------------
    async def _schedule_loop(self) -> None:
        """Round-robin formed batches across the device fleet.

        ``await put`` on a size-1 device queue is the backpressure: batch
        formation stalls while every device is busy, which in turn lets the
        admission queue fill and the saturation policy engage.
        """
        device = 0
        while True:
            batch = await self._batcher.next_batch()
            await self._device_queues[device].put(batch)
            device = (device + 1) % self.config.devices

    async def _device_loop(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._device_queues[index].get()
            self._observe_queue_depth()
            # Timeout -> fallback degradation: requests whose deadline
            # lapsed while queued leave the batch and run single-shot.
            now = loop.time()
            expired = [r for r in batch if r.expired(now)]
            live = [r for r in batch if not r.expired(now)]
            for req in expired:
                self.timed_out += 1
                self.registry.counter("serve_requests_timed_out").inc()
                if self.tracer is not None:
                    self.tracer.event(
                        "timeout", ctx=req.trace, request_id=req.request_id,
                        queued_s=round(now - req.enqueued_s, 6), device=index)
                if self.recorder is not None:
                    self.recorder.trigger(
                        "timeout",
                        detail=(f"request {req.request_id}: deadline lapsed "
                                f"after {now - req.enqueued_s:.4f}s queued"),
                        trace_id=(req.trace.trace_id if req.trace is not None
                                  else None),
                        request_id=req.request_id, time_s=now)
                await self._serve_fallback(req, timed_out=True, device=index)
            if live:
                await self._serve_batch(live, index)

    # -- execution ----------------------------------------------------------
    async def _serve_batch(self, batch: list[InferenceRequest], device: int) -> None:
        loop = asyncio.get_running_loop()
        # The batch span parents onto the *head* request's trace (Clipper
        # batching anchors the wait window there too); the other members'
        # ids ride along as attributes, and each member's own request span
        # still closes with its response, so every trace stays rooted.
        batch_span = None
        if self.tracer is not None and batch[0].trace is not None:
            batch_span = self.tracer.start_span(
                "batch", parent=batch[0].trace, kind="batch",
                device=device, size=len(batch),
                request_ids=[r.request_id for r in batch],
                member_traces=[r.trace.trace_id for r in batch
                               if r.trace is not None])
        try:
            outputs, bucket, hit, sim_s = await asyncio.to_thread(
                self._execute, batch, batch_bucket(len(batch), self.config.max_batch),
                None, batch_span, device)
        except Exception as exc:  # resolve, never wedge the worker
            self._trace_failure(exc, batch, batch_span, device)
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        if (self.config.straggler_delay_s > 0
                and device == self.config.straggler_device):
            await asyncio.sleep(self.config.straggler_delay_s)
        if batch_span is not None:
            self.tracer.end_span(batch_span, bucket=bucket, cache_hit=hit,
                                 sim_time_s=round(sim_s, 6))
        self.batches += 1
        self.registry.counter("serve_batches").inc()
        self.registry.counter("serve_device_batches", device=device).inc()
        self.registry.counter("serve_sim_time_s").inc(sim_s)
        self.registry.histogram("serve_batch_size",
                                buckets=BATCH_BUCKETS).observe(len(batch))
        if hit:
            self.cached_plan_requests += len(batch)
            self.registry.counter("serve_requests_on_cached_plan").inc(len(batch))
        now = loop.time()
        for i, req in enumerate(batch):
            self._resolve(req, InferenceResponse(
                request_id=req.request_id,
                output=None if outputs is None else _primary(outputs, i),
                outputs=None if outputs is None else _slice(outputs, i),
                batch_size=len(batch),
                batch_bucket=bucket,
                cache_hit=hit,
                degraded=False,
                timed_out=False,
                device=device,
                latency_s=now - req.enqueued_s,
                sim_time_s=sim_s,
                trace_id=req.trace.trace_id if req.trace is not None else None,
                deadline_met=req.deadline_s is None or now <= req.deadline_s,
                admitted_s=req.enqueued_s,
                batched_s=req.batched_s,
                completed_s=now,
            ))

    async def _serve_fallback(self, req: InferenceRequest, timed_out: bool,
                              device: int = -1) -> None:
        loop = asyncio.get_running_loop()
        fb_span = None
        if self.tracer is not None and req.trace is not None:
            fb_span = self.tracer.start_span(
                "fallback", parent=req.trace, kind="batch", device=device,
                request_id=req.request_id, timed_out=timed_out)
        try:
            outputs, bucket, hit, sim_s = await asyncio.to_thread(
                self._execute, [req], 1, Strategy.CUDNN, fb_span, device)
        except Exception as exc:
            self._trace_failure(exc, [req], fb_span, device)
            if not req.future.done():
                req.future.set_exception(exc)
            return
        if fb_span is not None:
            self.tracer.end_span(fb_span, cache_hit=hit,
                                 sim_time_s=round(sim_s, 6))
        self.degraded += 1
        self.registry.counter("serve_requests_degraded").inc()
        if hit:
            self.cached_plan_requests += 1
            self.registry.counter("serve_requests_on_cached_plan").inc()
        now = loop.time()
        self._resolve(req, InferenceResponse(
            request_id=req.request_id,
            output=None if outputs is None else _primary(outputs, 0),
            outputs=None if outputs is None else _slice(outputs, 0),
            batch_size=1,
            batch_bucket=bucket,
            cache_hit=hit,
            degraded=True,
            timed_out=timed_out,
            device=device,
            latency_s=now - req.enqueued_s,
            sim_time_s=sim_s,
            trace_id=req.trace.trace_id if req.trace is not None else None,
            deadline_met=req.deadline_s is None or now <= req.deadline_s,
            admitted_s=req.enqueued_s,
            batched_s=req.batched_s,
            completed_s=now,
        ))

    def _trace_failure(self, exc: Exception, batch: list[InferenceRequest],
                       span, device: int) -> None:
        """Record an execution failure: error spans, event, flight dump."""
        if self.tracer is None:
            for req in batch:
                trace_id = req.trace.trace_id if req.trace is not None else None
                self.slo.observe(self._loop_time(), good=False, trace_id=trace_id)
            return
        now = self.tracer.clock()
        head = batch[0]
        self.tracer.event("error", ctx=span if span is not None else head.trace,
                          error=repr(exc), device=device,
                          request_ids=[r.request_id for r in batch])
        if span is not None:
            self.tracer.end_span(span, end_s=now, status="error")
        for req in batch:
            trace_id = None
            if req.trace is not None:
                trace_id = req.trace.trace_id
                self.tracer.end_span(req.trace, end_s=now, status="error",
                                     error=repr(exc))
            self.slo.observe(now, good=False, trace_id=trace_id)
        if self.recorder is not None:
            self.recorder.trigger(
                "error",
                detail=(f"batch on device {device} failed serving request(s) "
                        f"{[r.request_id for r in batch]}: {exc!r}"),
                trace_id=(head.trace.trace_id if head.trace is not None
                          else None),
                request_id=head.request_id, time_s=now)

    def _loop_time(self) -> float:
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:
            import time as _time
            return _time.monotonic()

    def _resolve(self, req: InferenceRequest, response: InferenceResponse) -> None:
        self.completed += 1
        self.registry.counter("serve_requests_completed").inc()
        path = "fallback" if response.degraded else "merged"
        self.registry.histogram(
            "serve_latency_s", buckets=LATENCY_BUCKETS_S, path=path,
        ).observe(response.latency_s, exemplar=response.trace_id)
        if response.batched_s is not None:
            self.registry.histogram(
                "serve_stage_s", buckets=LATENCY_BUCKETS_S, stage="queued",
            ).observe(response.batched_s - req.enqueued_s)
            self.registry.histogram(
                "serve_stage_s", buckets=LATENCY_BUCKETS_S, stage="service",
            ).observe(response.completed_s - response.batched_s)
        self.slo.observe(response.completed_s, good=response.deadline_met,
                         trace_id=response.trace_id,
                         latency_s=response.latency_s)
        if self.tracer is not None and req.trace is not None:
            if response.batched_s is not None:
                self.tracer.record_span(
                    "queued", parent=req.trace, kind="stage",
                    start_s=req.enqueued_s, end_s=response.batched_s)
            self.tracer.end_span(
                req.trace, end_s=response.completed_s,
                status="ok" if response.deadline_met else "deadline_missed",
                degraded=response.degraded or None,
                timed_out=response.timed_out or None,
                latency_s=round(response.latency_s, 6),
                batch_size=response.batch_size, device=response.device)
        if not req.future.done():
            req.future.set_result(response)

    # Runs in a worker thread (asyncio.to_thread): everything here is
    # CPU-bound simulation; the event loop keeps admitting meanwhile.
    def _execute(self, batch: list[InferenceRequest], bucket: int,
                 strategy: Strategy | None = None, parent_span=None,
                 device_index: int | None = None):
        strategy = strategy if strategy is not None else self.config.strategy
        key = PlanKey(model=self.graph.name, batch_bucket=bucket,
                      spec=self.spec, strategy=strategy,
                      brick=self.config.brick)
        tracer = self.tracer if parent_span is not None else None
        plan_t0 = tracer.clock() if tracer is not None else 0.0
        entry, hit = self.cache.get_or_compile(key, self._compile)
        if tracer is not None:
            tracer.record_span(
                "plan", parent=parent_span, kind="plan",
                start_s=plan_t0, end_s=tracer.clock(),
                cache_hit=hit, bucket=bucket, plan_digest=entry.plan_digest,
                compile_s=round(entry.compile_s, 4))
        inputs = None
        if self.config.functional:
            spec = self.graph.input_nodes[0].spec
            stacked = np.zeros((bucket, *spec.shape[1:]), dtype=spec.dtype)
            for i, req in enumerate(batch):
                stacked[i:i + 1] = req.input
            inputs = stacked
        device = Device(entry.device_spec)
        exec_span = None
        if tracer is not None:
            exec_span = tracer.start_span(
                "execute", parent=parent_span, kind="execute",
                device=device_index, bucket=bucket,
                plan_digest=entry.plan_digest,
                strategy=strategy.value if strategy is not None else None)
        result = entry.engine.run(
            inputs=inputs, functional=self.config.functional,
            device=device, plan=entry.plan,
            trace_ctx=exec_span.context() if exec_span is not None else None)
        if exec_span is not None:
            tracer.end_span(exec_span,
                            sim_time_s=round(result.metrics.total_time, 6),
                            num_tasks=result.metrics.num_tasks)
            if result.trace is not None:
                tracer.emit_task_spans(result.trace.records, exec_span,
                                       device=device_index)
        return result.outputs, bucket, hit, result.metrics.total_time

    def _compile(self, key: PlanKey) -> CompiledEntry:
        from repro.bench.harness import adapt_sectors

        engine = BrickDLEngine(
            self.graph, spec=key.spec,
            strategy_override=key.strategy, brick_override=key.brick,
        ).for_batch(key.batch_bucket)
        plan = engine.compile()
        return CompiledEntry(
            key=key, engine=engine, plan=plan, plan_digest=plan.digest(),
            device_spec=adapt_sectors(key.spec, plan),
        )

    # -- reporting ----------------------------------------------------------
    def _wall_s(self) -> float:
        if not self._started_s:
            return 0.0
        try:
            end = self._stopped_s if self._stopped_s is not None \
                else asyncio.get_running_loop().time()
        except RuntimeError:  # no running loop (stats after the event loop)
            end = self._stopped_s if self._stopped_s is not None else self._started_s
        return max(end - self._started_s, 0.0)

    def latency_quantile(self, q: float) -> float:
        """``q``-quantile of served latencies, read off the registry."""
        hists = [s for s in self.registry.samples()
                 if s.name == "serve_latency_s" and s.histogram]
        from repro.metrics.registry import Histogram
        merged = Histogram(buckets=LATENCY_BUCKETS_S)
        for s in hists:
            merged.counts = [a + b for a, b in zip(merged.counts, s.histogram["counts"])]
            merged.count += s.histogram["count"]
            merged.sum += s.histogram["sum"]
        return merged.quantile(q)

    def stats(self) -> dict:
        """Serve-path rollup (the ``metrics.serve`` block of the manifest)."""
        wall = self._wall_s()
        batch_hist = self.registry.histogram("serve_batch_size", buckets=BATCH_BUCKETS)
        return {
            "requests": {
                "completed": self.completed,
                "degraded": self.degraded,
                "timed_out": self.timed_out,
                "rejected": self.rejected,
            },
            "latency_s": {
                "p50": self.latency_quantile(0.50),
                "p99": self.latency_quantile(0.99),
            },
            "batches": {
                "count": self.batches,
                "mean_size": batch_hist.mean,
            },
            "plan_cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "hit_ratio": self.cache.hit_ratio,
                # Fraction of requests whose batch rode an already-compiled
                # plan: the serving-level number (a warm max-batch bucket
                # serves 8 requests per lookup).
                "request_hit_ratio": (self.cached_plan_requests / self.completed
                                      if self.completed else 0.0),
                "size": len(self.cache),
            },
            "sim_time_s": self.registry.counter("serve_sim_time_s").value,
            "wall_s": wall,
            "throughput_rps": self.completed / wall if wall > 0 else 0.0,
            "stages": self._stage_stats(),
            "slo": self.slo.stats(),
        }

    def _stage_stats(self) -> dict:
        """Per-stage time breakdown (queued / service / compile)."""
        queued = self.registry.histogram("serve_stage_s",
                                         buckets=LATENCY_BUCKETS_S, stage="queued")
        service = self.registry.histogram("serve_stage_s",
                                          buckets=LATENCY_BUCKETS_S, stage="service")
        return {
            "queued_mean_ms": queued.mean * 1e3,
            "queued_p99_ms": queued.quantile(0.99) * 1e3,
            "service_mean_ms": service.mean * 1e3,
            "service_p99_ms": service.quantile(0.99) * 1e3,
            "compile_total_s": self.registry.counter("serve_plan_compile_s").value,
        }

    def manifest(self, label: str = "serve", scale: str | None = None) -> RunManifest:
        """The serving session as a diffable run manifest."""
        return manifest_from_serve(
            self.graph.name, self.registry, self.spec,
            cached_plans=self.cache.snapshot(),
            serve_stats=self.stats(),
            label=label, scale=scale,
        )


def _slice(outputs: dict[str, np.ndarray], i: int) -> dict[str, np.ndarray]:
    return {k: v[i:i + 1] for k, v in outputs.items()}


def _primary(outputs: dict[str, np.ndarray], i: int) -> np.ndarray:
    return next(iter(outputs.values()))[i:i + 1]
