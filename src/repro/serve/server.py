"""The asyncio inference fleet over the simulated devices.

Request lifecycle::

    submit(model=, tenant=, priority=)
             -> per-tenant admission quota (over-quota sheds by name)
             -> admission queue (bounded; one buffer per priority class:
                FIFO for head-anchored classes, (deadline, seq) heap for
                EDF classes; saturation degrades or rejects)
             -> FleetBatcher (highest-rank class first; coalesce up to
                max_batch / max_wait, model-homogeneous; higher-rank
                arrivals preempt a lower class's coalescing window)
             -> DevicePool (idle FIFO rotation; the autoscaler grows and
                shrinks the fleet from queue-depth/burn-rate signals)
             -> PlanCache partition lookup by (model, batch bucket,
                GPUSpec, override) -- per-model quotas, isolated eviction
             -> BrickDLEngine.run on a fresh Device built from the cached
                entry's sector-adapted spec
             -> per-request response slices resolve the futures

Degradation ladder: a request whose deadline expires while queued, or that
arrives when the admission queue is saturated (policy ``degrade``), skips
batching and runs single-shot through the cuDNN-fallback baseline path --
the vendor-library execution the paper falls back to for unmergeable work
(section 3.3.3) -- so the server sheds load by serving *slower, cheaper*
rather than dropping.  Policy ``reject`` turns saturation into
:class:`~repro.serve.request.QueueSaturatedError`; a tenant over its
in-flight quota is always shed, as
:class:`~repro.serve.request.TenantQuotaError`.

Execution modes: ``thread`` (default) runs the CPU-bound simulation in a
worker thread so the event loop keeps admitting -- wall-clock serving.
``inline`` runs it synchronously on the loop and charges the simulated
duration as an ``asyncio.sleep`` -- under a
:class:`~repro.serve.vtime.VirtualTimeLoop` this makes a whole serving
session a deterministic discrete-event simulation (the scenario packs'
mode).  Serve-path metrics flow into a
:class:`~repro.metrics.MetricsRegistry` and out through
:func:`~repro.metrics.manifest_from_serve`.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.engine import BrickDLEngine
from repro.core.plan import Strategy
from repro.errors import ExecutionError
from repro.graph.ir import Graph
from repro.gpusim.device import Device
from repro.gpusim.spec import A100, GPUSpec
from repro.metrics import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    RunManifest,
    manifest_from_serve,
)
from repro.metrics.slo import SLOConfig
from repro.obs.slo import SLOMonitor
from repro.serve.autoscaler import Autoscaler, AutoscalerConfig, DevicePool
from repro.serve.batcher import batch_bucket
from repro.serve.plancache import CompiledEntry, PlanCache, PlanKey
from repro.serve.request import (
    InferenceRequest,
    InferenceResponse,
    QueueSaturatedError,
    ServerClosedError,
    TenantQuotaError,
)
from repro.serve.scheduler import AdmissionQueue, FleetBatcher, PriorityClass

__all__ = ["ServeConfig", "InferenceServer"]

_EXECUTION_MODES = ("thread", "inline")


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving session."""

    devices: int = 2             # simulated device fleet size (baseline)
    max_batch: int = 8           # dynamic batcher cap (and largest bucket)
    max_wait_s: float = 0.02     # batcher hold on the head request
    queue_depth: int = 64        # admission queue bound (backpressure)
    cache_capacity: int = 16     # compiled-plan LRU entries per partition
    saturation_policy: str = "degrade"   # "degrade" | "reject"
    functional: bool = True      # False: profile mode (no NumPy arithmetic)
    strategy: Strategy | None = None     # engine strategy override
    brick: int | None = None             # engine brick override
    default_timeout_s: float | None = None  # per-request deadline default
    # SLO: deadline-attainment objective for burn-rate alerting, plus an
    # optional hard latency target (a request is "good" only if it also
    # completed inside it -- the deterministic CI straggler objective).
    slo_objective: float = 0.99
    slo_latency_target_s: float | None = None
    # Fault injection: add this much event-loop delay to every batch served
    # by one device (straggler emulation; never touches simulated metrics).
    straggler_device: int | None = None
    straggler_delay_s: float = 0.0
    # -- fleet knobs --------------------------------------------------------
    # Priority classes; () means one default class using ``batching``.
    classes: tuple[PriorityClass, ...] = ()
    default_class: str | None = None     # class used when submit() omits one
    batching: str = "head"               # default class's mode: head | edf
    # Per-tenant in-flight admission quotas; ``default_tenant_quota`` caps
    # tenants not named (None = unlimited).
    tenant_quotas: Mapping[str, int] | None = None
    default_tenant_quota: int | None = None
    # Per-model plan-cache capacity overrides (else ``cache_capacity``).
    cache_quotas: Mapping[str, int] | None = None
    # Autoscaler; None pins the fleet at ``devices``.
    autoscaler: AutoscalerConfig | None = None
    # "thread": simulate in a worker thread (wall-clock serving).
    # "inline": simulate on the loop, charge sim time as virtual sleep.
    execution: str = "thread"
    # Virtual service seconds charged per simulated second (inline mode).
    service_time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.saturation_policy not in ("degrade", "reject"):
            raise ValueError(
                f"saturation_policy must be 'degrade' or 'reject', "
                f"got {self.saturation_policy!r}")
        if self.straggler_delay_s < 0:
            raise ValueError(
                f"straggler_delay_s must be >= 0, got {self.straggler_delay_s}")
        if self.batching not in ("head", "edf"):
            raise ValueError(
                f"batching must be 'head' or 'edf', got {self.batching!r}")
        if self.execution not in _EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {_EXECUTION_MODES}, "
                f"got {self.execution!r}")
        if self.service_time_scale < 0:
            raise ValueError(f"service_time_scale must be >= 0, "
                             f"got {self.service_time_scale}")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate priority class names: {names}")
        if self.default_class is not None and self.classes \
                and self.default_class not in names:
            raise ValueError(
                f"default_class {self.default_class!r} not in classes {names}")
        for tenant, quota in dict(self.tenant_quotas or {}).items():
            if quota < 1:
                raise ValueError(
                    f"tenant quota for {tenant!r} must be >= 1, got {quota}")


def _blank_class_stats() -> dict:
    return {"completed": 0, "shed": 0, "good": 0, "total": 0}


def _blank_tenant_stats() -> dict:
    return {"completed": 0, "shed": 0}


class InferenceServer:
    """Serve one or many model graphs from a fleet-scheduling asyncio loop."""

    def __init__(
        self,
        graph: "Graph | Sequence[Graph] | Mapping[str, Graph]",
        spec: GPUSpec = A100,
        config: ServeConfig = ServeConfig(),
        registry: MetricsRegistry | None = None,
        tracer=None,
        slo: SLOConfig | None = None,
    ) -> None:
        graphs = self._normalize_graphs(graph)
        for g in graphs:
            g.validate()
            if any(n.spec.batch != 1 for n in g.input_nodes):
                raise ExecutionError(
                    f"serve graphs must be built at batch 1 ({g.name!r} is "
                    f"not); the server rebatches per bucket itself")
        self.graphs: dict[str, Graph] = {g.name: g for g in graphs}
        if len(self.graphs) != len(graphs):
            raise ExecutionError(
                f"resident models need unique names, got "
                f"{[g.name for g in graphs]}")
        self.graph = graphs[0]   # primary model (single-model back-compat)
        self.spec = spec
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.set_base(model=self.graph.name)
        self.cache = PlanCache(
            capacity=config.cache_capacity, registry=self.registry,
            quotas=config.cache_quotas,
            timer=(self._loop_time if config.execution == "inline"
                   else time.perf_counter))
        # Priority classes: explicit set, or one default class built from
        # the config's ``batching`` mode.
        classes = config.classes or (
            PriorityClass(name="standard", rank=0, batching=config.batching),)
        self.classes: dict[str, PriorityClass] = {c.name: c for c in classes}
        self._class_list = classes
        self.default_class = config.default_class or classes[0].name
        # Observability: the tracer (and its flight recorder) are optional;
        # the SLO monitor is always on -- recording one outcome per request
        # is two appends, and burn rates belong in every manifest.
        self.tracer = tracer
        self.recorder = tracer.recorder if tracer is not None else None
        self.slo = SLOMonitor(
            slo if slo is not None else SLOConfig(
                objective=config.slo_objective,
                latency_target_s=config.slo_latency_target_s),
            registry=self.registry, tracer=tracer, recorder=self.recorder)
        if config.functional:
            for g in graphs:
                g.init_weights()

        self._queue: AdmissionQueue | None = None
        self._batcher: FleetBatcher | None = None
        self._pool: DevicePool | None = None
        self._autoscaler: Autoscaler | None = None
        self._tasks: list[asyncio.Task] = []
        self._pending: set[asyncio.Future] = set()
        self._ids = itertools.count()
        self._running = False
        self._started_s = 0.0
        self._stopped_s: float | None = None

        # Request counters mirrored into the registry (kept as plain ints
        # too so stats() never has to scan samples).
        self.completed = 0
        self.degraded = 0
        self.timed_out = 0
        self.rejected = 0
        self.batches = 0
        # Requests that rode an already-cached plan (no compile in their
        # critical path) -- the request-weighted cache hit numerator.
        self.cached_plan_requests = 0
        # Fleet dimensions: plain-int rollups per class/tenant/model.
        self._class_stats = {name: _blank_class_stats() for name in self.classes}
        self._tenant_stats: dict[str, dict] = {}
        self._model_stats = {name: {"completed": 0} for name in self.graphs}
        self._tenant_inflight: dict[str, int] = {}

    @staticmethod
    def _normalize_graphs(graph) -> list[Graph]:
        if isinstance(graph, Graph):
            return [graph]
        if isinstance(graph, Mapping):
            return list(graph.values())
        graphs = list(graph)
        if not graphs:
            raise ExecutionError("server needs at least one model graph")
        return graphs

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "InferenceServer":
        if self._running:
            return self
        loop = asyncio.get_running_loop()
        self._queue = AdmissionQueue(self._class_list,
                                     depth=self.config.queue_depth)
        self._batcher = FleetBatcher(
            self._queue, max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_s,
            on_preempt=self._on_preempt)
        self._pool = DevicePool(self._device_loop)
        for _ in range(self.config.devices):
            self._pool.spawn()
        self._tasks = [asyncio.create_task(self._schedule_loop(),
                                           name="serve/scheduler")]
        if self.config.autoscaler is not None:
            self._autoscaler = Autoscaler(
                self.config.autoscaler, self._pool, self._autoscale_signals,
                registry=self.registry, tracer=self.tracer)
            self._tasks.append(asyncio.create_task(
                self._autoscaler.run(), name="serve/autoscaler"))
        self._running = True
        self._started_s = loop.time()
        self._stopped_s = None
        return self

    async def close(self) -> None:
        """Graceful shutdown: serve everything admitted, then stop."""
        if not self._running:
            return
        self._running = False  # no new admissions
        if self._pending:
            await asyncio.gather(*list(self._pending), return_exceptions=True)
        tasks = self._tasks + (self._pool.tasks() if self._pool else [])
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks = []
        self._stopped_s = asyncio.get_running_loop().time()

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- admission ----------------------------------------------------------
    async def submit(
        self,
        x: np.ndarray | None = None,
        timeout_s: float | None = None,
        *,
        model: str | None = None,
        tenant: str = "default",
        priority: str | None = None,
    ) -> InferenceResponse:
        """Admit one request and await its response.

        ``x`` is the input activation (shape of the model's batch-1 input);
        ``None`` is only valid on a profile-mode server.  ``timeout_s``
        (default: the class's, then :attr:`ServeConfig.default_timeout_s`)
        sets the queueing deadline: a request still waiting past it degrades
        to the fallback path rather than riding a batch.  ``model`` selects
        a resident model (default: the primary), ``tenant`` attributes the
        request for quotas and metrics, ``priority`` names an admission
        class.
        """
        if not self._running:
            raise ServerClosedError(f"server for {self.graph.name!r} is not running")
        if self.config.functional and x is None:
            raise ExecutionError("functional server requires an input array")
        model = model if model is not None else self.graph.name
        if model not in self.graphs:
            raise ExecutionError(
                f"model {model!r} is not resident "
                f"(have {sorted(self.graphs)})")
        class_name = priority if priority is not None else self.default_class
        cls = self.classes.get(class_name)
        if cls is None:
            raise ValueError(f"unknown priority class {class_name!r} "
                             f"(have {sorted(self.classes)})")
        loop = asyncio.get_running_loop()
        if timeout_s is None:
            timeout_s = (cls.default_timeout_s
                         if cls.default_timeout_s is not None
                         else self.config.default_timeout_s)
        now = loop.time()
        request_id = next(self._ids)
        root = None
        if self.tracer is not None:
            root = self.tracer.start_span(
                "request", kind="request", start_s=now,
                request_id=request_id, model=model, tenant=tenant,
                **{"class": cls.name})
        req = InferenceRequest(
            request_id=request_id,
            input=None if x is None else np.asarray(x, dtype=np.float32),
            deadline_s=now + timeout_s if timeout_s is not None else None,
            enqueued_s=now,
            future=loop.create_future(),
            trace=root,
            model=model,
            tenant=tenant,
            priority=cls.name,
        )
        self._pending.add(req.future)
        req.future.add_done_callback(self._pending.discard)
        quota = self._tenant_quota(tenant)
        if quota is not None and self._tenant_inflight.get(tenant, 0) >= quota:
            self._reject(req, loop.time(), reason="quota")
        self._tenant_inflight[tenant] = self._tenant_inflight.get(tenant, 0) + 1
        req.future.add_done_callback(
            lambda _f, t=tenant: self._release_tenant(t))
        try:
            self._queue.put_nowait(req, cls.name)
        except asyncio.QueueFull:
            if self.config.saturation_policy == "reject":
                self._reject(req, loop.time())
            # Graceful degradation: shed to the single-shot fallback path.
            self.registry.counter("serve_saturation_fallbacks").inc()
            if self.tracer is not None:
                self.tracer.event("saturated", ctx=root,
                                  request_id=req.request_id, policy="degrade",
                                  queue_depth=self.config.queue_depth)
            await self._serve_fallback(req, timed_out=False)
            return await req.future
        self._observe_queue_depth()
        return await req.future

    def _tenant_quota(self, tenant: str) -> int | None:
        quotas = self.config.tenant_quotas or {}
        if tenant in quotas:
            return quotas[tenant]
        return self.config.default_tenant_quota

    def _release_tenant(self, tenant: str) -> None:
        left = self._tenant_inflight.get(tenant, 0) - 1
        if left > 0:
            self._tenant_inflight[tenant] = left
        else:
            self._tenant_inflight.pop(tenant, None)

    def _tenant_stat(self, tenant: str) -> dict:
        stat = self._tenant_stats.get(tenant)
        if stat is None:
            stat = self._tenant_stats[tenant] = _blank_tenant_stats()
        return stat

    def _reject(self, req: InferenceRequest, now_s: float,
                reason: str = "saturated") -> None:
        """Shed one request by name: counters, SLO debit, flight dump, raise."""
        self.rejected += 1
        self.registry.counter("serve_requests_rejected").inc()
        self.registry.counter(
            "serve_requests_shed", reason=reason, tenant=req.tenant,
            **{"class": req.priority}).inc()
        cstats = self._class_stats[req.priority]
        cstats["shed"] += 1
        cstats["total"] += 1
        self._tenant_stat(req.tenant)["shed"] += 1
        trace_id = req.trace.trace_id if req.trace is not None else None
        self.slo.observe(now_s, good=False, trace_id=trace_id)
        if reason == "quota":
            message = (f"request {req.request_id}: tenant {req.tenant!r} at "
                       f"its in-flight quota "
                       f"({self._tenant_quota(req.tenant)}); retry later")
        else:
            message = (f"request {req.request_id}: admission queue full "
                       f"({self.config.queue_depth}); retry later")
        if self.recorder is not None:
            self.recorder.trigger("reject", detail=message, trace_id=trace_id,
                                  request_id=req.request_id, time_s=now_s)
        if self.tracer is not None:
            self.tracer.event("reject", ctx=req.trace,
                              request_id=req.request_id, reason=reason,
                              queue_depth=self.config.queue_depth)
            self.tracer.end_span(req.trace, end_s=now_s, status="rejected")
        req.future.cancel()
        if reason == "quota":
            raise TenantQuotaError(message, tenant=req.tenant,
                                   request_id=req.request_id,
                                   trace_id=trace_id) from None
        raise QueueSaturatedError(message, request_id=req.request_id,
                                  trace_id=trace_id) from None

    def _observe_queue_depth(self) -> None:
        depth = self._queue.qsize() if self._queue is not None else 0
        self.registry.gauge("serve_queue_depth").set(depth)
        self.registry.histogram("serve_queue_depth_hist",
                                buckets=BATCH_BUCKETS).observe(depth)

    # -- scheduling ---------------------------------------------------------
    async def _schedule_loop(self) -> None:
        """Dispatch formed batches to idle devices.

        ``await acquire()`` on the pool is the backpressure: batch
        formation stalls while every device is busy, which in turn lets the
        admission queue fill and the saturation policy engage.
        """
        while True:
            _cls, batch = await self._batcher.next_batch()
            index = await self._pool.acquire()
            self._pool.dispatch(index, batch)

    def _on_preempt(self, cls: PriorityClass, by: PriorityClass,
                    batch_size: int) -> None:
        self.registry.counter("serve_preemptions",
                              **{"class": cls.name}).inc()
        if self.tracer is not None:
            now = self._loop_time()
            self.tracer.record_span(
                "preempt", parent=None, kind="preempt", start_s=now,
                end_s=now, preempted=cls.name, by=by.name,
                batch_size=batch_size)

    def _autoscale_signals(self) -> tuple[int, float]:
        depth = self._queue.qsize() if self._queue is not None else 0
        window = self.config.autoscaler.burn_window_s
        burn = self.slo.monitor.burn(window, self._loop_time())
        return depth, burn

    async def _device_loop(self, index: int, queue: asyncio.Queue) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await queue.get()
            if batch is None:   # retirement sentinel from the pool
                break
            self._observe_queue_depth()
            # Timeout -> fallback degradation: requests whose deadline
            # lapsed while queued leave the batch and run single-shot.
            now = loop.time()
            expired = [r for r in batch if r.expired(now)]
            live = [r for r in batch if not r.expired(now)]
            for req in expired:
                self.timed_out += 1
                self.registry.counter("serve_requests_timed_out").inc()
                if self.tracer is not None:
                    self.tracer.event(
                        "timeout", ctx=req.trace, request_id=req.request_id,
                        queued_s=round(now - req.enqueued_s, 6), device=index)
                if self.recorder is not None:
                    self.recorder.trigger(
                        "timeout",
                        detail=(f"request {req.request_id}: deadline lapsed "
                                f"after {now - req.enqueued_s:.4f}s queued"),
                        trace_id=(req.trace.trace_id if req.trace is not None
                                  else None),
                        request_id=req.request_id, time_s=now)
                await self._serve_fallback(req, timed_out=True, device=index)
            if live:
                await self._serve_batch(live, index)
            self._pool.release(index)

    # -- execution ----------------------------------------------------------
    async def _run_execute(self, batch: list[InferenceRequest], bucket: int,
                           strategy: Strategy | None, span, device: int):
        """Execute with the configured mode: worker thread (wall-clock) or
        inline with simulated time charged as (virtual) loop sleep."""
        if self.config.execution == "thread":
            return await asyncio.to_thread(
                self._execute, batch, bucket, strategy, span, device)
        result = self._execute(batch, bucket, strategy, span, device)
        delay = result[3] * self.config.service_time_scale
        if delay > 0:
            await asyncio.sleep(delay)
        return result

    async def _serve_batch(self, batch: list[InferenceRequest], device: int) -> None:
        loop = asyncio.get_running_loop()
        # The batch span parents onto the *head* request's trace (Clipper
        # batching anchors the wait window there too); the other members'
        # ids ride along as attributes, and each member's own request span
        # still closes with its response, so every trace stays rooted.
        batch_span = None
        if self.tracer is not None and batch[0].trace is not None:
            batch_span = self.tracer.start_span(
                "batch", parent=batch[0].trace, kind="batch",
                device=device, size=len(batch), model=batch[0].model,
                request_ids=[r.request_id for r in batch],
                member_traces=[r.trace.trace_id for r in batch
                               if r.trace is not None])
        try:
            outputs, bucket, hit, sim_s = await self._run_execute(
                batch, batch_bucket(len(batch), self.config.max_batch),
                None, batch_span, device)
        except Exception as exc:  # resolve, never wedge the worker
            self._trace_failure(exc, batch, batch_span, device)
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        if (self.config.straggler_delay_s > 0
                and device == self.config.straggler_device):
            await asyncio.sleep(self.config.straggler_delay_s)
        if batch_span is not None:
            self.tracer.end_span(batch_span, bucket=bucket, cache_hit=hit,
                                 sim_time_s=round(sim_s, 6))
        self.batches += 1
        self.registry.counter("serve_batches").inc()
        self.registry.counter("serve_device_batches", device=device).inc()
        self.registry.counter("serve_sim_time_s").inc(sim_s)
        self.registry.histogram("serve_batch_size",
                                buckets=BATCH_BUCKETS).observe(len(batch))
        if hit:
            self.cached_plan_requests += len(batch)
            self.registry.counter("serve_requests_on_cached_plan").inc(len(batch))
        now = loop.time()
        for i, req in enumerate(batch):
            self._resolve(req, InferenceResponse(
                request_id=req.request_id,
                output=None if outputs is None else _primary(outputs, i),
                outputs=None if outputs is None else _slice(outputs, i),
                batch_size=len(batch),
                batch_bucket=bucket,
                cache_hit=hit,
                degraded=False,
                timed_out=False,
                device=device,
                latency_s=now - req.enqueued_s,
                sim_time_s=sim_s,
                trace_id=req.trace.trace_id if req.trace is not None else None,
                deadline_met=req.deadline_s is None or now <= req.deadline_s,
                admitted_s=req.enqueued_s,
                batched_s=req.batched_s,
                completed_s=now,
                model=req.model,
                tenant=req.tenant,
                priority=req.priority,
            ))

    async def _serve_fallback(self, req: InferenceRequest, timed_out: bool,
                              device: int = -1) -> None:
        loop = asyncio.get_running_loop()
        fb_span = None
        if self.tracer is not None and req.trace is not None:
            fb_span = self.tracer.start_span(
                "fallback", parent=req.trace, kind="batch", device=device,
                request_id=req.request_id, timed_out=timed_out)
        try:
            outputs, bucket, hit, sim_s = await self._run_execute(
                [req], 1, Strategy.CUDNN, fb_span, device)
        except Exception as exc:
            self._trace_failure(exc, [req], fb_span, device)
            if not req.future.done():
                req.future.set_exception(exc)
            return
        if fb_span is not None:
            self.tracer.end_span(fb_span, cache_hit=hit,
                                 sim_time_s=round(sim_s, 6))
        self.degraded += 1
        self.registry.counter("serve_requests_degraded").inc()
        if hit:
            self.cached_plan_requests += 1
            self.registry.counter("serve_requests_on_cached_plan").inc()
        now = loop.time()
        self._resolve(req, InferenceResponse(
            request_id=req.request_id,
            output=None if outputs is None else _primary(outputs, 0),
            outputs=None if outputs is None else _slice(outputs, 0),
            batch_size=1,
            batch_bucket=bucket,
            cache_hit=hit,
            degraded=True,
            timed_out=timed_out,
            device=device,
            latency_s=now - req.enqueued_s,
            sim_time_s=sim_s,
            trace_id=req.trace.trace_id if req.trace is not None else None,
            deadline_met=req.deadline_s is None or now <= req.deadline_s,
            admitted_s=req.enqueued_s,
            batched_s=req.batched_s,
            completed_s=now,
            model=req.model,
            tenant=req.tenant,
            priority=req.priority,
        ))

    def _trace_failure(self, exc: Exception, batch: list[InferenceRequest],
                       span, device: int) -> None:
        """Record an execution failure: error spans, event, flight dump."""
        if self.tracer is None:
            for req in batch:
                trace_id = req.trace.trace_id if req.trace is not None else None
                self.slo.observe(self._loop_time(), good=False, trace_id=trace_id)
            return
        now = self.tracer.clock()
        head = batch[0]
        self.tracer.event("error", ctx=span if span is not None else head.trace,
                          error=repr(exc), device=device,
                          request_ids=[r.request_id for r in batch])
        if span is not None:
            self.tracer.end_span(span, end_s=now, status="error")
        for req in batch:
            trace_id = None
            if req.trace is not None:
                trace_id = req.trace.trace_id
                self.tracer.end_span(req.trace, end_s=now, status="error",
                                     error=repr(exc))
            self.slo.observe(now, good=False, trace_id=trace_id)
        if self.recorder is not None:
            self.recorder.trigger(
                "error",
                detail=(f"batch on device {device} failed serving request(s) "
                        f"{[r.request_id for r in batch]}: {exc!r}"),
                trace_id=(head.trace.trace_id if head.trace is not None
                          else None),
                request_id=head.request_id, time_s=now)

    def _loop_time(self) -> float:
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:
            return time.monotonic()

    def _resolve(self, req: InferenceRequest, response: InferenceResponse) -> None:
        self.completed += 1
        self.registry.counter("serve_requests_completed").inc()
        path = "fallback" if response.degraded else "merged"
        self.registry.histogram(
            "serve_latency_s", buckets=LATENCY_BUCKETS_S, path=path,
        ).observe(response.latency_s, exemplar=response.trace_id)
        # Fleet dimensions: per-tenant / per-class / per-model series.
        self.registry.counter("serve_tenant_requests",
                              tenant=req.tenant).inc()
        self.registry.histogram(
            "serve_tenant_latency_s", buckets=LATENCY_BUCKETS_S,
            tenant=req.tenant).observe(response.latency_s)
        self.registry.histogram(
            "serve_class_latency_s", buckets=LATENCY_BUCKETS_S,
            **{"class": req.priority}).observe(response.latency_s)
        self.registry.histogram(
            "serve_model_latency_s", buckets=LATENCY_BUCKETS_S,
            model=req.model).observe(response.latency_s)
        good = response.deadline_met
        target = self.slo.config.latency_target_s
        if good and target is not None:
            good = response.latency_s <= target
        cstats = self._class_stats[req.priority]
        cstats["completed"] += 1
        cstats["total"] += 1
        if good:
            cstats["good"] += 1
        self._tenant_stat(req.tenant)["completed"] += 1
        if req.model in self._model_stats:
            self._model_stats[req.model]["completed"] += 1
        if response.batched_s is not None:
            self.registry.histogram(
                "serve_stage_s", buckets=LATENCY_BUCKETS_S, stage="queued",
            ).observe(response.batched_s - req.enqueued_s)
            self.registry.histogram(
                "serve_stage_s", buckets=LATENCY_BUCKETS_S, stage="service",
            ).observe(response.completed_s - response.batched_s)
        self.slo.observe(response.completed_s, good=response.deadline_met,
                         trace_id=response.trace_id,
                         latency_s=response.latency_s)
        if self.tracer is not None and req.trace is not None:
            if response.batched_s is not None:
                self.tracer.record_span(
                    "queued", parent=req.trace, kind="stage",
                    start_s=req.enqueued_s, end_s=response.batched_s)
            self.tracer.end_span(
                req.trace, end_s=response.completed_s,
                status="ok" if response.deadline_met else "deadline_missed",
                degraded=response.degraded or None,
                timed_out=response.timed_out or None,
                latency_s=round(response.latency_s, 6),
                batch_size=response.batch_size, device=response.device)
        if not req.future.done():
            req.future.set_result(response)

    # In thread mode this runs in a worker thread (asyncio.to_thread):
    # everything here is CPU-bound simulation; the event loop keeps
    # admitting meanwhile.  In inline mode it runs on the loop and the
    # caller charges the simulated duration as virtual sleep.
    def _execute(self, batch: list[InferenceRequest], bucket: int,
                 strategy: Strategy | None = None, parent_span=None,
                 device_index: int | None = None):
        strategy = strategy if strategy is not None else self.config.strategy
        model = batch[0].model if batch[0].model in self.graphs \
            else self.graph.name
        graph = self.graphs[model]
        key = PlanKey(model=model, batch_bucket=bucket,
                      spec=self.spec, strategy=strategy,
                      brick=self.config.brick)
        tracer = self.tracer if parent_span is not None else None
        plan_t0 = tracer.clock() if tracer is not None else 0.0
        entry, hit = self.cache.get_or_compile(key, self._compile)
        if tracer is not None:
            tracer.record_span(
                "plan", parent=parent_span, kind="plan",
                start_s=plan_t0, end_s=tracer.clock(),
                cache_hit=hit, bucket=bucket, plan_digest=entry.plan_digest,
                compile_s=round(entry.compile_s, 4))
        inputs = None
        if self.config.functional:
            spec = graph.input_nodes[0].spec
            stacked = np.zeros((bucket, *spec.shape[1:]), dtype=spec.dtype)
            for i, req in enumerate(batch):
                stacked[i:i + 1] = req.input
            inputs = stacked
        device = Device(entry.device_spec)
        exec_span = None
        if tracer is not None:
            exec_span = tracer.start_span(
                "execute", parent=parent_span, kind="execute",
                device=device_index, bucket=bucket,
                plan_digest=entry.plan_digest,
                strategy=strategy.value if strategy is not None else None)
        result = entry.engine.run(
            inputs=inputs, functional=self.config.functional,
            device=device, plan=entry.plan,
            trace_ctx=exec_span.context() if exec_span is not None else None)
        if exec_span is not None:
            tracer.end_span(exec_span,
                            sim_time_s=round(result.metrics.total_time, 6),
                            num_tasks=result.metrics.num_tasks)
            if result.trace is not None:
                tracer.emit_task_spans(result.trace.records, exec_span,
                                       device=device_index)
        return result.outputs, bucket, hit, result.metrics.total_time

    def _compile(self, key: PlanKey) -> CompiledEntry:
        from repro.bench.harness import adapt_sectors

        engine = BrickDLEngine(
            self.graphs[key.model], spec=key.spec,
            strategy_override=key.strategy, brick_override=key.brick,
        ).for_batch(key.batch_bucket)
        plan = engine.compile()
        return CompiledEntry(
            key=key, engine=engine, plan=plan, plan_digest=plan.digest(),
            device_spec=adapt_sectors(key.spec, plan),
        )

    # -- reporting ----------------------------------------------------------
    def _wall_s(self) -> float:
        if not self._started_s:
            return 0.0
        try:
            end = self._stopped_s if self._stopped_s is not None \
                else asyncio.get_running_loop().time()
        except RuntimeError:  # no running loop (stats after the event loop)
            end = self._stopped_s if self._stopped_s is not None else self._started_s
        return max(end - self._started_s, 0.0)

    def latency_quantile(self, q: float) -> float:
        """``q``-quantile of served latencies, read off the registry."""
        hists = [s for s in self.registry.samples()
                 if s.name == "serve_latency_s" and s.histogram]
        from repro.metrics.registry import Histogram
        merged = Histogram(buckets=LATENCY_BUCKETS_S)
        for s in hists:
            merged.merge_doc(s.histogram)
        return merged.quantile(q)

    def _dimension_quantile(self, name: str, q: float, **labels) -> float:
        return self.registry.histogram(
            name, buckets=LATENCY_BUCKETS_S, **labels).quantile(q)

    def stats(self) -> dict:
        """Serve-path rollup (the ``metrics.serve`` block of the manifest)."""
        wall = self._wall_s()
        batch_hist = self.registry.histogram("serve_batch_size", buckets=BATCH_BUCKETS)
        return {
            "requests": {
                "completed": self.completed,
                "degraded": self.degraded,
                "timed_out": self.timed_out,
                "rejected": self.rejected,
            },
            "latency_s": {
                "p50": self.latency_quantile(0.50),
                "p99": self.latency_quantile(0.99),
            },
            "batches": {
                "count": self.batches,
                "mean_size": batch_hist.mean,
                "preemptions": (self._batcher.preemptions
                                if self._batcher is not None else 0),
            },
            "plan_cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "hit_ratio": self.cache.hit_ratio,
                # Fraction of requests whose batch rode an already-compiled
                # plan: the serving-level number (a warm max-batch bucket
                # serves 8 requests per lookup).
                "request_hit_ratio": (self.cached_plan_requests / self.completed
                                      if self.completed else 0.0),
                "size": len(self.cache),
                "partitions": self.cache.partition_stats(),
            },
            "sim_time_s": self.registry.counter("serve_sim_time_s").value,
            "wall_s": wall,
            "throughput_rps": self.completed / wall if wall > 0 else 0.0,
            "stages": self._stage_stats(),
            "slo": self.slo.stats(),
            "classes": self._class_rollup(),
            "tenants": self._tenant_rollup(),
            "models": self._model_rollup(),
            "devices": self._device_rollup(),
            "autoscaler": (self._autoscaler.stats()
                           if self._autoscaler is not None
                           else {"enabled": False,
                                 "devices": (self._pool.size if self._pool
                                             else self.config.devices),
                                 "scale_ups": 0, "scale_downs": 0,
                                 "events": []}),
        }

    def _class_rollup(self) -> dict:
        out = {}
        for name in self.classes:
            c = self._class_stats[name]
            total = c["total"]
            out[name] = {
                "batching": self.classes[name].batching,
                "completed": c["completed"],
                "shed": c["shed"],
                "shed_rate": c["shed"] / total if total else 0.0,
                "attainment": c["good"] / total if total else 1.0,
                "p50_s": self._dimension_quantile(
                    "serve_class_latency_s", 0.50, **{"class": name}),
                "p99_s": self._dimension_quantile(
                    "serve_class_latency_s", 0.99, **{"class": name}),
            }
        return out

    def _tenant_rollup(self) -> dict:
        out = {}
        for name in sorted(self._tenant_stats):
            t = self._tenant_stats[name]
            out[name] = {
                "completed": t["completed"],
                "shed": t["shed"],
                "p99_s": self._dimension_quantile(
                    "serve_tenant_latency_s", 0.99, tenant=name),
            }
        return out

    def _model_rollup(self) -> dict:
        out = {}
        for name in self.graphs:
            out[name] = {
                "completed": self._model_stats[name]["completed"],
                "p50_s": self._dimension_quantile(
                    "serve_model_latency_s", 0.50, model=name),
                "p99_s": self._dimension_quantile(
                    "serve_model_latency_s", 0.99, model=name),
            }
        return out

    def _device_rollup(self) -> dict:
        return {
            "configured": self.config.devices,
            "current": self._pool.size if self._pool else self.config.devices,
            "started": self._pool.started if self._pool else 0,
            "retired": self._pool.retired if self._pool else 0,
        }

    def _stage_stats(self) -> dict:
        """Per-stage time breakdown (queued / service / compile)."""
        queued = self.registry.histogram("serve_stage_s",
                                         buckets=LATENCY_BUCKETS_S, stage="queued")
        service = self.registry.histogram("serve_stage_s",
                                          buckets=LATENCY_BUCKETS_S, stage="service")
        return {
            "queued_mean_ms": queued.mean * 1e3,
            "queued_p99_ms": queued.quantile(0.99) * 1e3,
            "service_mean_ms": service.mean * 1e3,
            "service_p99_ms": service.quantile(0.99) * 1e3,
            "compile_total_s": self.registry.counter("serve_plan_compile_s").value,
        }

    def manifest(self, label: str = "serve", scale: str | None = None) -> RunManifest:
        """The serving session as a diffable run manifest."""
        return manifest_from_serve(
            self.graph.name, self.registry, self.spec,
            cached_plans=self.cache.snapshot(),
            serve_stats=self.stats(),
            label=label, scale=scale,
        )


def _slice(outputs: dict[str, np.ndarray], i: int) -> dict[str, np.ndarray]:
    return {k: v[i:i + 1] for k, v in outputs.items()}


def _primary(outputs: dict[str, np.ndarray], i: int) -> np.ndarray:
    return next(iter(outputs.values()))[i:i + 1]
