"""Fleet scheduling: priority classes, tenant quotas, head/EDF batching.

The single-model server batched with one policy (head-anchored coalescing)
off one FIFO queue.  A fleet needs admission *classes*: interactive traffic
wants earliest-deadline-first ordering so a late-deadline straggler never
delays a tight one, while bulk traffic is happy with arrival order and a
longer coalescing window.  This module provides:

* :class:`PriorityClass` -- a named admission class with a rank (lower is
  served first), a batching mode (``head`` or ``edf``) and optional
  per-class wait/timeout overrides;
* :class:`AdmissionQueue` -- one bounded queue with a buffer per class:
  FIFO deques for head-anchored classes, ``(deadline, seq)`` heaps for EDF
  classes, all sharing a single depth bound so backpressure stays global;
* :class:`FleetBatcher` -- forms model-homogeneous batches from the
  highest-rank non-empty class, coalescing inside the head request's wait
  window exactly like the PR-5 :class:`~repro.serve.batcher.DynamicBatcher`
  -- and *preempts* a lower class's coalescing window when higher-rank work
  arrives mid-wait.

EDF invariant (tested by hypothesis): within a formed batch, requests are
ordered by non-decreasing deadline, with deadline-free requests last in
arrival order.  Batch *membership* never affects result bits -- outputs
are per-request slices of an order-invariant batched execution -- so EDF
vs head-anchored only moves latency, never values.
"""

from __future__ import annotations

import asyncio
import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.serve.request import InferenceRequest

__all__ = ["PriorityClass", "AdmissionQueue", "FleetBatcher",
           "DEFAULT_CLASS", "edf_key"]

_BATCHING_MODES = ("head", "edf")


@dataclass(frozen=True)
class PriorityClass:
    """One admission class of the fleet scheduler."""

    name: str = "standard"
    rank: int = 0                 # lower rank = scheduled first
    batching: str = "head"        # "head" (arrival order) | "edf"
    max_wait_s: float | None = None       # coalescing window override
    default_timeout_s: float | None = None  # per-class deadline default
    preemptible: bool = True      # higher-rank arrivals flush our window

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("priority class needs a non-empty name")
        if self.batching not in _BATCHING_MODES:
            raise ValueError(
                f"batching must be one of {_BATCHING_MODES}, "
                f"got {self.batching!r}")
        if self.max_wait_s is not None and self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


DEFAULT_CLASS = PriorityClass()


def edf_key(req: InferenceRequest) -> tuple[float, int]:
    """EDF ordering key: deadline first, arrival sequence as tie-break.

    Deadline-free requests sort last (``inf``) but stay FIFO among
    themselves -- they can always wait, so they never displace a deadline.
    """
    deadline = req.deadline_s if req.deadline_s is not None else math.inf
    return (deadline, req.request_id)


class AdmissionQueue:
    """Bounded multi-class admission queue with one buffer per class.

    The *depth* bound is shared across classes: total queued requests never
    exceed it, so saturation policy engages fleet-wide (a flood of bulk
    traffic saturates admission for everyone -- that is what the per-tenant
    quotas upstream are for).
    """

    def __init__(self, classes: Sequence[PriorityClass],
                 depth: int = 64) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        if not classes:
            raise ValueError("admission queue needs at least one class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        self.depth = depth
        # Scheduling order: rank, then declaration order for equal ranks.
        self.classes: tuple[PriorityClass, ...] = tuple(
            sorted(classes, key=lambda c: (c.rank, names.index(c.name))))
        self._heads: dict[str, deque[InferenceRequest]] = {}
        self._heaps: dict[str, list[tuple[tuple[float, int], InferenceRequest]]] = {}
        for cls in self.classes:
            if cls.batching == "edf":
                self._heaps[cls.name] = []
            else:
                self._heads[cls.name] = deque()
        self._size = 0
        self._arrival = asyncio.Event()

    # -- introspection ------------------------------------------------------
    def qsize(self) -> int:
        return self._size

    def empty(self) -> bool:
        return self._size == 0

    def class_size(self, name: str) -> int:
        if name in self._heads:
            return len(self._heads[name])
        return len(self._heaps[name])

    def top_class(self) -> PriorityClass | None:
        """Highest-rank class with queued work, or ``None`` when empty."""
        for cls in self.classes:
            if self.class_size(cls.name):
                return cls
        return None

    # -- producer side ------------------------------------------------------
    def put_nowait(self, req: InferenceRequest, class_name: str) -> None:
        if class_name not in self._heads and class_name not in self._heaps:
            raise KeyError(f"unknown priority class {class_name!r}")
        if self._size >= self.depth:
            raise asyncio.QueueFull
        if class_name in self._heads:
            self._heads[class_name].append(req)
        else:
            heapq.heappush(self._heaps[class_name], (edf_key(req), req))
        self._size += 1
        self._arrival.set()

    # -- consumer side ------------------------------------------------------
    def pop(self, class_name: str,
            model: str | None = None) -> InferenceRequest | None:
        """Pop the next request of one class, optionally model-filtered.

        Head-anchored classes pop in arrival order; EDF classes pop the
        earliest deadline.  With ``model`` set, other models' requests stay
        queued in place (batches are model-homogeneous; a mixed stream
        forms alternating batches instead of padding across models).
        """
        if class_name in self._heads:
            buf = self._heads[class_name]
            if not buf:
                return None
            if model is None:
                req = buf.popleft()
            else:
                req = next((r for r in buf if r.model == model), None)
                if req is None:
                    return None
                buf.remove(req)
        else:
            heap = self._heaps[class_name]
            if not heap:
                return None
            if model is None:
                _, req = heapq.heappop(heap)
            else:
                index = min((i for i, (_, r) in enumerate(heap)
                             if r.model == model),
                            key=lambda i: heap[i][0], default=None)
                if index is None:
                    return None
                _, req = heap[index]
                heap[index] = heap[-1]
                heap.pop()
                if index < len(heap):
                    heapq.heapify(heap)
        self._size -= 1
        return req

    def drain_nowait(self) -> list[InferenceRequest]:
        """Empty every buffer (shutdown path), scheduling order."""
        drained: list[InferenceRequest] = []
        for cls in self.classes:
            while True:
                req = self.pop(cls.name)
                if req is None:
                    break
                drained.append(req)
        return drained

    async def wait_nonempty(self) -> None:
        while self.empty():
            self._arrival.clear()
            await self._arrival.wait()

    async def wait_arrival(self, timeout_s: float) -> bool:
        """Block up to ``timeout_s`` for a *new* admission; True if one came.

        Always clears-then-waits, even when other classes hold queued work:
        the caller just failed to pop from its own buffer, and treating
        stale occupancy as an arrival would spin without advancing time
        (fatal under a virtual-time loop).  Single-threaded asyncio makes
        the clear race-free: nothing can enqueue between the caller's
        failed pop and the ``clear()`` without an ``await`` in between.
        """
        self._arrival.clear()
        try:
            await asyncio.wait_for(self._arrival.wait(), timeout=timeout_s)
            return True
        except asyncio.TimeoutError:
            return False


class FleetBatcher:
    """Form class-aware, model-homogeneous batches off an admission queue.

    Head-anchored semantics match :class:`~repro.serve.batcher
    .DynamicBatcher`: the wait window anchors at the head request (its
    class's ``max_wait_s`` and its own deadline govern the flush).  EDF
    classes pick heads and coalesce in deadline order instead of arrival
    order.  When a strictly higher-rank class gets work while a preemptible
    class is still coalescing, the window flushes early so the urgent class
    reaches a device next -- ``on_preempt`` observes every such cut.
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        max_batch: int = 8,
        max_wait_s: float = 0.01,
        deadline_slack_s: float = 0.0,
        on_preempt: Callable[[PriorityClass, PriorityClass, int], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.queue = queue
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.deadline_slack_s = deadline_slack_s
        self.on_preempt = on_preempt
        self.batches_formed = 0
        self.preemptions = 0

    def _flush_at(self, now_s: float, cls: PriorityClass,
                  head: InferenceRequest) -> float:
        wait = cls.max_wait_s if cls.max_wait_s is not None else self.max_wait_s
        flush_at = now_s + wait
        if head.deadline_s is not None:
            flush_at = min(flush_at, head.deadline_s - self.deadline_slack_s)
        return flush_at

    async def next_batch(self) -> tuple[PriorityClass, list[InferenceRequest]]:
        """Block for the next ``(class, batch)`` in scheduling order."""
        loop = asyncio.get_running_loop()
        while True:
            await self.queue.wait_nonempty()
            cls = self.queue.top_class()
            if cls is None:  # lost a race with another consumer
                continue
            head = self.queue.pop(cls.name)
            if head is not None:
                break
        batch = [head]
        flush_at = self._flush_at(loop.time(), cls, head)
        while len(batch) < self.max_batch:
            req = self.queue.pop(cls.name, model=head.model)
            if req is not None:
                batch.append(req)
                continue
            remaining = flush_at - loop.time()
            if remaining <= 0:
                break
            arrived = await self.queue.wait_arrival(remaining)
            if not arrived:
                break
            top = self.queue.top_class()
            if (top is not None and top.rank < cls.rank and cls.preemptible):
                # Urgent work arrived mid-window: stop coalescing and ship
                # what we have so the higher class is next off the queue.
                self.preemptions += 1
                if self.on_preempt is not None:
                    self.on_preempt(cls, top, len(batch))
                break
        if cls.batching == "edf":
            batch.sort(key=edf_key)
        formed_at = loop.time()
        for req in batch:
            req.batched_s = formed_at
        self.batches_formed += 1
        return cls, batch

    def drain_nowait(self) -> list[InferenceRequest]:
        return self.queue.drain_nowait()


def validate_classes(classes: Iterable[PriorityClass]) -> tuple[PriorityClass, ...]:
    """Dataclass-level validation for a class set (used by ServeConfig)."""
    out = tuple(classes)
    names = [c.name for c in out]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate priority class names: {names}")
    return out
