"""Persistent compiled-plan cache: per-model partitions with LRU eviction.

Compilation (partitioning + the brick-size and strategy models) is the
expensive, batch-dependent step of a BrickDL execution: batch size scales
every activation volume, which moves the L2-footprint partitioning and
therefore the whole plan.  The serving layer compiles once per *batch
bucket* and reuses the plan for every batch that lands in the bucket.

A fleet holds many models, and one model's compile storm must not evict
another's hot plans -- so the cache is *partitioned by model*: each
partition is its own LRU with its own capacity quota, and eviction never
crosses a partition boundary.  Aggregate ``hits``/``misses``/``evictions``
stay available for the single-model manifest shape, while per-partition
counters land in the registry under a ``partition`` label.

Cache keys digest everything that determines the compiled artifact --
``(model, batch_bucket, GPUSpec, strategy/brick override)`` -- and each
entry records the PR-4 :func:`~repro.metrics.manifest.plan_digest` of its
compiled plan, so manifests and diffs can correlate a served batch with the
exact plan that ran it.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.metrics.manifest import spec_dict

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.engine import BrickDLEngine
    from repro.core.plan import ExecutionPlan, Strategy
    from repro.gpusim.spec import GPUSpec
    from repro.metrics.registry import MetricsRegistry

__all__ = ["PlanKey", "CompiledEntry", "CachePartition", "PlanCache"]


@dataclass(frozen=True)
class PlanKey:
    """Everything that determines a compiled plan."""

    model: str
    batch_bucket: int
    spec: "GPUSpec"
    strategy: "Strategy | None" = None
    brick: int | None = None

    def digest(self) -> str:
        doc = {
            "model": self.model,
            "batch_bucket": self.batch_bucket,
            "spec": spec_dict(self.spec),
            "strategy": self.strategy.value if self.strategy else None,
            "brick": self.brick,
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class CompiledEntry:
    """One cached compiled artifact: the batched engine + its plan."""

    key: PlanKey
    engine: "BrickDLEngine"
    plan: "ExecutionPlan"
    plan_digest: str
    # Device spec with cache-sector granularity adapted to this plan's
    # bricks (what executions of this entry should run against).
    device_spec: "GPUSpec" = None
    uses: int = 0
    # Wall-clock seconds the compile took (0.0 until measured); surfaced in
    # manifests and the per-stage breakdown, never diffed (wall time).
    compile_s: float = 0.0

    def describe(self) -> dict:
        return {
            "key": self.key.digest(),
            "model": self.key.model,
            "batch_bucket": self.key.batch_bucket,
            "strategy": self.key.strategy.value if self.key.strategy else None,
            "brick": self.key.brick,
            "plan_digest": self.plan_digest,
            "subgraphs": len(self.plan.subgraphs),
            "uses": self.uses,
            "compile_s": round(self.compile_s, 4),
        }


@dataclass
class CachePartition:
    """One model's slice of the plan cache: an isolated LRU with a quota."""

    name: str
    capacity: int
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: "OrderedDict[str, CompiledEntry]" = field(default_factory=OrderedDict)

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "size": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hits / total if total else 0.0,
        }


@dataclass
class PlanCache:
    """Partitioned LRU cache of :class:`CompiledEntry`, worker-thread safe.

    ``capacity`` is the *per-partition* quota every model gets unless
    ``quotas`` names a different one; eviction is strictly intra-partition,
    so model A filling its quota can never push model B's plans out.  The
    aggregate ``hits``/``misses``/``evictions`` properties sum partitions
    (the PR-5 single-model shape is the one-partition special case).

    ``registry`` (optional) receives the aggregate ``serve_plan_cache_
    {hits,misses,evictions}`` counters and ``serve_plan_cache_size`` gauge,
    plus the same per-partition under ``serve_plan_cache_partition_*``
    with a ``partition`` label.  ``timer`` measures compile seconds
    (injectable: virtual-time servers pin it so manifests stay
    bit-deterministic).
    """

    capacity: int = 16
    registry: "MetricsRegistry | None" = None
    quotas: Mapping[str, int] | None = None
    timer: Callable[[], float] = time.perf_counter
    _partitions: "OrderedDict[str, CachePartition]" = field(default_factory=OrderedDict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _compile_locks: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {self.capacity}")
        for name, quota in dict(self.quotas or {}).items():
            if quota < 1:
                raise ValueError(
                    f"cache quota for {name!r} must be >= 1, got {quota}")

    def __len__(self) -> int:
        return sum(len(p.entries) for p in self._partitions.values())

    # -- aggregates (the single-model manifest shape) -----------------------
    @property
    def hits(self) -> int:
        return sum(p.hits for p in self._partitions.values())

    @property
    def misses(self) -> int:
        return sum(p.misses for p in self._partitions.values())

    @property
    def evictions(self) -> int:
        return sum(p.evictions for p in self._partitions.values())

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def partition(self, model: str) -> CachePartition:
        """The model's partition, created at its quota on first touch."""
        part = self._partitions.get(model)
        if part is None:
            quota = dict(self.quotas or {}).get(model, self.capacity)
            part = self._partitions[model] = CachePartition(model, quota)
        return part

    def partition_stats(self) -> dict[str, dict]:
        with self._lock:
            return {name: p.stats()
                    for name, p in sorted(self._partitions.items())}

    # -- lookup / insert ----------------------------------------------------
    def get(self, key: PlanKey) -> CompiledEntry | None:
        digest = key.digest()
        with self._lock:
            part = self.partition(key.model)
            entry = part.entries.get(digest)
            if entry is None:
                part.misses += 1
                self._count("serve_plan_cache_misses")
                self._count("serve_plan_cache_partition_misses", part.name)
                return None
            part.entries.move_to_end(digest)
            entry.uses += 1
            part.hits += 1
            self._count("serve_plan_cache_hits")
            self._count("serve_plan_cache_partition_hits", part.name)
            return entry

    def put(self, entry: CompiledEntry) -> None:
        digest = entry.key.digest()
        with self._lock:
            part = self.partition(entry.key.model)
            part.entries[digest] = entry
            part.entries.move_to_end(digest)
            while len(part.entries) > part.capacity:
                part.entries.popitem(last=False)
                part.evictions += 1
                self._count("serve_plan_cache_evictions")
                self._count("serve_plan_cache_partition_evictions", part.name)
            self._gauge("serve_plan_cache_size", len(self))

    def get_or_compile(self, key: PlanKey,
                       compile_fn: Callable[[PlanKey], CompiledEntry]) -> tuple[CompiledEntry, bool]:
        """Return ``(entry, cache_hit)``; compiles and inserts on miss.

        Compiles are serialized per key (outside the entry lock, so other
        keys stay servable): two devices racing on a cold bucket yield one
        compile, with the loser waiting and then counting a hit -- it did
        reuse a cached plan.
        """
        digest = key.digest()
        with self._lock:
            compile_lock = self._compile_locks.setdefault(digest, threading.Lock())
        with compile_lock:
            entry = self.get(key)
            if entry is not None:
                return entry, True
            t0 = self.timer()
            entry = compile_fn(key)
            entry.compile_s = self.timer() - t0
            if self.registry is not None:
                self.registry.counter("serve_plan_compile_s").inc(entry.compile_s)
            self.put(entry)
            return entry, False

    def snapshot(self) -> list[dict]:
        """Per-entry descriptions, partition then LRU-oldest first."""
        with self._lock:
            return [e.describe()
                    for _, part in sorted(self._partitions.items())
                    for e in part.entries.values()]

    def _count(self, name: str, partition: str | None = None) -> None:
        if self.registry is not None:
            self.registry.counter(name, partition=partition).inc()

    def _gauge(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.gauge(name).set(value)
