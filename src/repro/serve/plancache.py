"""Persistent compiled-plan cache with LRU eviction.

Compilation (partitioning + the brick-size and strategy models) is the
expensive, batch-dependent step of a BrickDL execution: batch size scales
every activation volume, which moves the L2-footprint partitioning and
therefore the whole plan.  The serving layer compiles once per *batch
bucket* and reuses the plan for every batch that lands in the bucket.

Cache keys digest everything that determines the compiled artifact --
``(model, batch_bucket, GPUSpec, strategy/brick override)`` -- and each
entry records the PR-4 :func:`~repro.metrics.manifest.plan_digest` of its
compiled plan, so manifests and diffs can correlate a served batch with the
exact plan that ran it.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.metrics.manifest import spec_dict

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.engine import BrickDLEngine
    from repro.core.plan import ExecutionPlan, Strategy
    from repro.gpusim.spec import GPUSpec
    from repro.metrics.registry import MetricsRegistry

__all__ = ["PlanKey", "CompiledEntry", "PlanCache"]


@dataclass(frozen=True)
class PlanKey:
    """Everything that determines a compiled plan."""

    model: str
    batch_bucket: int
    spec: "GPUSpec"
    strategy: "Strategy | None" = None
    brick: int | None = None

    def digest(self) -> str:
        doc = {
            "model": self.model,
            "batch_bucket": self.batch_bucket,
            "spec": spec_dict(self.spec),
            "strategy": self.strategy.value if self.strategy else None,
            "brick": self.brick,
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class CompiledEntry:
    """One cached compiled artifact: the batched engine + its plan."""

    key: PlanKey
    engine: "BrickDLEngine"
    plan: "ExecutionPlan"
    plan_digest: str
    # Device spec with cache-sector granularity adapted to this plan's
    # bricks (what executions of this entry should run against).
    device_spec: "GPUSpec" = None
    uses: int = 0
    # Wall-clock seconds the compile took (0.0 until measured); surfaced in
    # manifests and the per-stage breakdown, never diffed (wall time).
    compile_s: float = 0.0

    def describe(self) -> dict:
        return {
            "key": self.key.digest(),
            "model": self.key.model,
            "batch_bucket": self.key.batch_bucket,
            "strategy": self.key.strategy.value if self.key.strategy else None,
            "brick": self.key.brick,
            "plan_digest": self.plan_digest,
            "subgraphs": len(self.plan.subgraphs),
            "uses": self.uses,
            "compile_s": round(self.compile_s, 4),
        }


@dataclass
class PlanCache:
    """LRU cache of :class:`CompiledEntry`, safe for worker threads.

    ``registry`` (optional) receives ``serve_plan_cache_{hits,misses,
    evictions}`` counters and a ``serve_plan_cache_size`` gauge, so cache
    behavior lands in the serving manifest alongside the latency metrics.
    """

    capacity: int = 16
    registry: "MetricsRegistry | None" = None
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _entries: "OrderedDict[str, CompiledEntry]" = field(default_factory=OrderedDict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _compile_locks: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: PlanKey) -> CompiledEntry | None:
        digest = key.digest()
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                self._count("serve_plan_cache_misses")
                return None
            self._entries.move_to_end(digest)
            entry.uses += 1
            self.hits += 1
            self._count("serve_plan_cache_hits")
            return entry

    def put(self, entry: CompiledEntry) -> None:
        digest = entry.key.digest()
        with self._lock:
            self._entries[digest] = entry
            self._entries.move_to_end(digest)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("serve_plan_cache_evictions")
            self._gauge("serve_plan_cache_size", len(self._entries))

    def get_or_compile(self, key: PlanKey,
                       compile_fn: Callable[[PlanKey], CompiledEntry]) -> tuple[CompiledEntry, bool]:
        """Return ``(entry, cache_hit)``; compiles and inserts on miss.

        Compiles are serialized per key (outside the entry lock, so other
        keys stay servable): two devices racing on a cold bucket yield one
        compile, with the loser waiting and then counting a hit -- it did
        reuse a cached plan.
        """
        digest = key.digest()
        with self._lock:
            compile_lock = self._compile_locks.setdefault(digest, threading.Lock())
        with compile_lock:
            entry = self.get(key)
            if entry is not None:
                return entry, True
            t0 = time.perf_counter()
            entry = compile_fn(key)
            entry.compile_s = time.perf_counter() - t0
            if self.registry is not None:
                self.registry.counter("serve_plan_compile_s").inc(entry.compile_s)
            self.put(entry)
            return entry, False

    def snapshot(self) -> list[dict]:
        """Per-entry descriptions, LRU-oldest first (for manifests)."""
        with self._lock:
            return [e.describe() for e in self._entries.values()]

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc()

    def _gauge(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.gauge(name).set(value)
