"""Virtual-time event loop: deterministic discrete-event serving.

Scenario packs emulate hours of diurnal traffic and millions-of-users
bursts; running them against the wall clock would make CI both slow and
flaky (every ``await`` races the OS scheduler).  :class:`VirtualTimeLoop`
replaces the loop clock with a virtual one that *jumps* to the next
scheduled timer whenever no callback is ready -- the classic discrete-event
simulation step.  Under it:

* ``loop.time()`` is virtual seconds since the loop started (begins at 0);
* ``asyncio.sleep(t)`` costs no wall time but advances every timestamp the
  serve path records (admission, batching deadlines, autoscaler cooldowns,
  latency histograms) by exactly ``t``;
* the interleaving of coroutines is a pure function of the program and its
  timers -- two runs of the same seeded scenario execute the same event
  sequence and produce bit-identical manifests.

The one rule: code running under a virtual loop must not block on *real*
concurrency (``asyncio.to_thread``, executors, sockets) -- a thread's wall
progress is invisible to the virtual clock, so the loop would jump past
it.  The server's ``execution="inline"`` mode exists for exactly this:
simulation runs synchronously on the loop, and its simulated duration is
charged as a virtual ``sleep``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Coroutine

__all__ = ["VirtualTimeLoop", "run_virtual"]


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector loop whose clock advances by timer-jumping, not waiting."""

    def __init__(self) -> None:
        super().__init__()
        self._vnow = 0.0

    def time(self) -> float:
        return self._vnow

    def advance(self, delta_s: float) -> None:
        """Manually move the clock (test hook; normal runs never need it)."""
        if delta_s < 0:
            raise ValueError(f"cannot rewind virtual time by {delta_s}")
        self._vnow += delta_s

    def _run_once(self) -> None:
        # Discrete-event step: with nothing runnable now, jump straight to
        # the earliest timer instead of sleeping until it.  The base
        # _run_once then computes a zero timeout and fires it immediately.
        if not self._ready and self._scheduled:
            when = self._scheduled[0]._when
            if when > self._vnow:
                self._vnow = when
        super()._run_once()


def run_virtual(coro: Coroutine[Any, Any, Any]) -> Any:
    """``asyncio.run`` on a fresh :class:`VirtualTimeLoop`."""
    loop = VirtualTimeLoop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(coro)
    finally:
        try:
            _cancel_all(loop)
        finally:
            asyncio.set_event_loop(None)
            loop.close()


def _cancel_all(loop: asyncio.AbstractEventLoop) -> None:
    tasks = [t for t in asyncio.all_tasks(loop) if not t.done()]
    for t in tasks:
        t.cancel()
    if tasks:
        loop.run_until_complete(
            asyncio.gather(*tasks, return_exceptions=True))
