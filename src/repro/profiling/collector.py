"""The default trace collector: per-task records and attribution rollups.

:class:`TraceCollector` is a :class:`~repro.profiling.observer.DeviceObserver`
that accumulates one :class:`TaskRecord` per submitted task (identity,
timeline position, counter deltas) plus the *residual* counter growth that
happens outside any task -- the memoized scheduler's bulk conflict-CAS
accounting, recursion overhead, and the final write-back flush.  Every
transaction and atomic the device counts lands in exactly one record or one
residual bucket, so the rollups reconcile exactly with the run's
:class:`~repro.gpusim.device.RunMetrics`:

* :meth:`per_node` -- attribution by graph node (the trace-level analogue of
  reading Nsight Compute counters per kernel, paper section 4),
* :meth:`per_subgraph` -- attribution by plan entry, same keys as the
  engine's historical ``Device.delta_since`` dicts,
* :meth:`totals` -- whole-run sums for reconciliation checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.profiling.observer import DeviceObserver

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import Device, RunMetrics
    from repro.gpusim.trace import Buffer, Task

__all__ = ["TaskRecord", "AllocEvent", "SyncEvent", "TraceCollector"]

_COUNTER_KEYS = ("l1_txns", "l2_txns", "dram_txns",
                 "atomics_compulsory", "atomics_conflict")


@dataclass(frozen=True)
class TaskRecord:
    """One task's identity, timeline position, and counter attribution."""

    seq: int
    label: str
    node_id: int | None
    subgraph_index: int | None
    strategy: str | None
    worker: int
    start_s: float
    end_s: float
    flops: float
    calls: int
    l1_txns: int
    l2_txns: int
    dram_txns: int
    atomics_compulsory: int
    atomics_conflict: int
    bytes_read: int
    bytes_written: int
    brick: tuple[int, ...] | None = None
    batch_index: int | None = None
    # Serve-layer trace provenance ``(trace_id, parent_span_id)``, carried
    # through from the task stamp; ``None`` on untraced runs.
    trace: tuple[str, str] | None = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class AllocEvent:
    """One allocation or discard, with the live-bytes level after it."""

    time_s: float
    name: str
    nbytes: int          # positive alloc, negative discard
    live_bytes: int      # total allocated-and-not-discarded after this event


@dataclass(frozen=True)
class SyncEvent:
    time_s: float
    subgraph_index: int | None


def _zero_residual() -> dict:
    return {k: 0 for k in _COUNTER_KEYS} | {"overhead_s": 0.0}


class TraceCollector(DeviceObserver):
    """Accumulates task records, residuals, and allocation/sync events."""

    def __init__(self) -> None:
        self.records: list[TaskRecord] = []
        self.allocs: list[AllocEvent] = []
        self.syncs: list[SyncEvent] = []
        # Residual counter growth outside any task, keyed by subgraph index
        # (int), None (graph level), or "flush" (final write-back).
        self.residuals: dict[object, dict] = {}
        self.finished: bool = False
        self.spec = None
        self._live_bytes = 0
        self._scopes: list[tuple[int | None, str | None]] = []
        self._last: dict[str, float] | None = None

    # -- cursor bookkeeping -------------------------------------------------
    def _settle(self, device: "Device", bucket_key: object,
                task_delta: Mapping[str, int] | None = None) -> None:
        """Attribute counter growth since the last event.

        The growth beyond ``task_delta`` (what the current task itself
        produced, if any) is residual and lands in ``bucket_key``'s bucket.
        """
        now = device.counter_state()
        if self._last is not None:
            bucket = None
            for key in _COUNTER_KEYS + ("overhead_s",):
                grown = now[key] - self._last[key]
                if task_delta is not None:
                    grown -= task_delta.get(key, 0)
                if grown:
                    if bucket is None:
                        bucket = self.residuals.setdefault(bucket_key, _zero_residual())
                    bucket[key] += grown
        self._last = now

    def _active_scope(self) -> tuple[int | None, str | None]:
        return self._scopes[-1] if self._scopes else (None, None)

    # -- observer hooks ------------------------------------------------------
    def on_alloc(self, device: "Device", buffer: "Buffer") -> None:
        self.spec = device.spec
        self._live_bytes += buffer.nbytes
        self.allocs.append(AllocEvent(device.now_s, buffer.name, buffer.nbytes,
                                      self._live_bytes))

    def on_discard(self, device: "Device", buffer: "Buffer") -> None:
        self._live_bytes -= buffer.nbytes
        self.allocs.append(AllocEvent(device.now_s, buffer.name, -buffer.nbytes,
                                      self._live_bytes))

    def on_scope_begin(self, device: "Device", subgraph_index: int | None,
                       strategy: str | None) -> None:
        self.spec = device.spec
        # Growth before the scope opened belongs to the enclosing context.
        self._settle(device, self._active_scope()[0])
        self._scopes.append((subgraph_index, strategy))

    def on_scope_end(self, device: "Device", subgraph_index: int | None,
                     strategy: str | None) -> None:
        self._settle(device, subgraph_index)
        if self._scopes:
            self._scopes.pop()

    def on_task_submit(self, device: "Device", task: "Task",
                       delta: Mapping[str, int]) -> None:
        self.spec = device.spec
        self._settle(device, self._active_scope()[0], task_delta=delta)
        self.records.append(TaskRecord(
            seq=len(self.records),
            label=task.label,
            node_id=task.node_id,
            subgraph_index=task.subgraph_index,
            strategy=task.strategy,
            worker=task.worker if task.worker is not None else 0,
            start_s=task.start_s or 0.0,
            end_s=task.end_s or 0.0,
            flops=float(task.flops),
            calls=task.calls,
            l1_txns=delta.get("l1_txns", 0),
            l2_txns=delta.get("l2_txns", 0),
            dram_txns=delta.get("dram_txns", 0),
            atomics_compulsory=delta.get("atomics_compulsory", 0),
            atomics_conflict=delta.get("atomics_conflict", 0),
            bytes_read=task.bytes_read,
            bytes_written=task.bytes_written,
            brick=task.brick,
            batch_index=task.batch_index,
            trace=task.trace,
        ))

    def on_sync(self, device: "Device", time_s: float) -> None:
        self.syncs.append(SyncEvent(time_s, self._active_scope()[0]))

    def on_finish(self, device: "Device", metrics: "RunMetrics") -> None:
        # The flush write-back of persistent dirty data happens here; its
        # DRAM transactions belong to no task.
        self._settle(device, "flush")
        self.finished = True

    # -- rollups ------------------------------------------------------------
    def _dram_time(self, txns: int) -> float:
        if self.spec is None or not self.spec.txn_rate:
            return 0.0
        return txns / self.spec.txn_rate

    def per_node(self) -> dict[int | None, dict]:
        """Attribution table keyed by graph node id.

        Tasks without a ``node_id`` and all residual growth (scheduler
        atomics, flush write-back) aggregate under the ``None`` key, so the
        table's column sums always equal the run totals.
        """
        table: dict[int | None, dict] = {}
        for r in self.records:
            row = table.setdefault(r.node_id, {
                "label": r.label, "num_tasks": 0, "calls": 0, "flops": 0.0,
                "busy_s": 0.0, "strategies": set(), "subgraphs": set(),
                **{k: 0 for k in _COUNTER_KEYS},
            })
            row["num_tasks"] += 1
            row["calls"] += r.calls
            row["flops"] += r.flops
            row["busy_s"] += r.duration_s
            for k in _COUNTER_KEYS:
                row[k] += getattr(r, k)
            if r.strategy:
                row["strategies"].add(r.strategy)
            if r.subgraph_index is not None:
                row["subgraphs"].add(r.subgraph_index)
        for key, residual in self.residuals.items():
            row = table.setdefault(None, {
                "label": "(residual)", "num_tasks": 0, "calls": 0, "flops": 0.0,
                "busy_s": 0.0, "strategies": set(), "subgraphs": set(),
                **{k: 0 for k in _COUNTER_KEYS},
            })
            for k in _COUNTER_KEYS:
                row[k] += residual[k]
        for row in table.values():
            row["dram_time_s"] = self._dram_time(row["dram_txns"])
        return table

    def per_subgraph(self, count: int | None = None) -> list[dict]:
        """Per-plan-entry attribution, one dict per subgraph index.

        Same keys as the historical ``Device.delta_since`` dicts the engine
        used to build by hand, so :meth:`EngineResult.attribution_table`
        renders unchanged.
        """
        indices = [r.subgraph_index for r in self.records if r.subgraph_index is not None]
        indices += [k for k in self.residuals if isinstance(k, int)]
        indices += [s.subgraph_index for s in self.syncs if s.subgraph_index is not None]
        n = count if count is not None else (max(indices) + 1 if indices else 0)
        rows = [{
            "l1_txns": 0, "l2_txns": 0, "dram_txns": 0,
            "atomics_compulsory": 0, "atomics_conflict": 0,
            "num_tasks": 0, "calls": 0, "flops": 0.0, "busy_s": 0.0,
            "syncs": 0, "overhead_s": 0.0,
        } for _ in range(n)]
        for r in self.records:
            if r.subgraph_index is None or not (0 <= r.subgraph_index < n):
                continue
            row = rows[r.subgraph_index]
            row["num_tasks"] += 1
            row["calls"] += r.calls
            row["flops"] += r.flops
            row["busy_s"] += r.duration_s
            for k in _COUNTER_KEYS:
                row[k] += getattr(r, k)
        for key, residual in self.residuals.items():
            if isinstance(key, int) and 0 <= key < n:
                for k in _COUNTER_KEYS:
                    rows[key][k] += residual[k]
                rows[key]["overhead_s"] += residual["overhead_s"]
        for s in self.syncs:
            if s.subgraph_index is not None and 0 <= s.subgraph_index < n:
                rows[s.subgraph_index]["syncs"] += 1
        for row in rows:
            row["dram_time_s"] = self._dram_time(row["dram_txns"])
        return rows

    def totals(self) -> dict:
        """Whole-run sums over records *and* residuals.

        By construction these equal the device's cumulative counters, which
        is what the reconciliation tests assert against ``RunMetrics``.
        """
        out = {k: 0 for k in _COUNTER_KEYS}
        out["num_tasks"] = len(self.records)
        out["flops"] = 0.0
        for r in self.records:
            out["flops"] += r.flops
            for k in _COUNTER_KEYS:
                out[k] += getattr(r, k)
        for residual in self.residuals.values():
            for k in _COUNTER_KEYS:
                out[k] += residual[k]
        return out

    # -- convenience --------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return max((r.worker for r in self.records), default=-1) + 1

    @property
    def span_s(self) -> float:
        return max((r.end_s for r in self.records), default=0.0)
