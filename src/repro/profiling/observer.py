"""The device observer protocol: hook points the simulated GPU announces.

A :class:`~repro.gpusim.device.Device` calls these hooks as execution
proceeds, mirroring what a CUPTI/Nsight callback subscriber sees on real
hardware.  Observers are duck-typed -- the device never imports this module
-- but subclassing :class:`DeviceObserver` documents the contract and
provides no-op defaults so observers implement only what they need.

Hook order for one run::

    on_alloc* / on_scope_begin / on_task_submit* / on_sync* /
    on_scope_end / ... / on_discard* / on_finish

``on_task_submit`` receives the *counter delta* the task produced while its
accesses were pushed through the memory hierarchy (keys ``l1_txns``,
``l2_txns``, ``dram_txns``, ``atomics_compulsory``, ``atomics_conflict``),
so per-task attribution needs no label parsing or snapshot bookkeeping.
Counter growth that happens *outside* any task (e.g. the memoized
scheduler's bulk conflict-CAS accounting) is picked up by observers at
scope boundaries and at :meth:`on_finish` (the flush write-back).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.gpusim.device import Device, RunMetrics
    from repro.gpusim.trace import Buffer, Task

__all__ = ["DeviceObserver"]


class DeviceObserver:
    """No-op base class for device execution observers."""

    def on_alloc(self, device: "Device", buffer: "Buffer") -> None:
        """A buffer was allocated."""

    def on_discard(self, device: "Device", buffer: "Buffer") -> None:
        """A buffer was discarded (dropped without DRAM write-back)."""

    def on_scope_begin(self, device: "Device", subgraph_index: int | None,
                       strategy: str | None) -> None:
        """An attribution scope (one plan subgraph) was entered."""

    def on_scope_end(self, device: "Device", subgraph_index: int | None,
                     strategy: str | None) -> None:
        """The current attribution scope was exited."""

    def on_task_submit(self, device: "Device", task: "Task",
                       delta: Mapping[str, int]) -> None:
        """A task ran through the memory hierarchy and joined the timeline."""

    def on_task_values(self, device: "Device", task: "Task | None",
                       node_id: int | None, values) -> None:
        """A functional-mode kernel produced ``values`` (a NumPy array) for
        graph node ``node_id``.  ``task`` is the producing task when the
        values are brick-granular (carrying ``brick``/``batch_index``
        identity), or None for whole-tensor fallback kernels.  Only emitted
        in functional mode; profile runs never see this hook."""

    def on_sync(self, device: "Device", time_s: float) -> None:
        """A device-wide synchronization barrier was recorded."""

    def on_finish(self, device: "Device", metrics: "RunMetrics") -> None:
        """The run completed: dirty data flushed, final metrics computed."""
