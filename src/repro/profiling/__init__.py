"""Task-timeline profiling and trace export (the paper's Nsight methodology).

The paper validates BrickDL by reading Nsight Compute counters: per-level
transaction counts, atomic traffic, and per-subgraph time breakdowns
(section 4).  This package is the reproduction's equivalent substrate: an
observer API on the simulated :class:`~repro.gpusim.device.Device`, a
default :class:`TraceCollector` that records every task with structured
identity and exact counter attribution, and exporters to Chrome-trace /
Perfetto JSON and CSV.

Typical use::

    from repro.gpusim.device import Device
    from repro.profiling import TraceCollector, write_chrome_trace

    device = Device()
    trace = device.attach(TraceCollector())
    result = engine.run(inputs=None, functional=False, device=device)
    write_chrome_trace(trace, "run.json",
                       names={n.node_id: n.name for n in graph.nodes})

or from the command line: ``repro profile resnet50 --trace run.json``.
"""

from repro.profiling.collector import AllocEvent, SyncEvent, TaskRecord, TraceCollector
from repro.profiling.observer import DeviceObserver
from repro.profiling.export import (
    chrome_trace,
    summary_csv,
    write_chrome_trace,
    write_summary_csv,
)

__all__ = [
    "DeviceObserver",
    "TraceCollector",
    "TaskRecord",
    "AllocEvent",
    "SyncEvent",
    "chrome_trace",
    "summary_csv",
    "write_chrome_trace",
    "write_summary_csv",
]
