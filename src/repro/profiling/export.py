"""Trace exporters: Chrome-trace/Perfetto JSON and CSV summaries.

``chrome_trace`` renders a collected run in the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one timeline lane (thread) per virtual worker / SM,
* one complete ("X") event per task, with the structured identity and
  counter deltas in ``args``,
* counter ("C") tracks for cumulative DRAM transactions, atomics, and live
  device memory,
* instant events for device-wide synchronization barriers.

Timestamps are microseconds of simulated time (issue-order lane clocks).
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Mapping, Sequence

from repro.profiling.collector import TraceCollector

__all__ = ["chrome_trace", "write_chrome_trace", "summary_csv", "write_summary_csv"]

_PID = 0


def _task_name(record, names: Mapping[int, str] | None) -> str:
    if names and record.node_id in names:
        return names[record.node_id]
    return record.label


def chrome_trace(collector: TraceCollector,
                 names: Mapping[int, str] | None = None,
                 counter_tracks: Mapping[str, Sequence[tuple[float, float]]] | None = None) -> dict:
    """Render the collected run as a Chrome Trace Event Format object.

    ``names`` optionally maps node ids to display names (e.g.
    ``{n.node_id: n.name for n in graph.nodes}``).

    ``counter_tracks`` optionally layers extra counter ("C") tracks onto the
    timeline: a mapping from track name to ``(time_s, value)`` samples, the
    shape :class:`repro.metrics.CounterTrackSampler` produces.  Perfetto
    renders each as its own counter lane alongside the built-in DRAM /
    atomics / device-memory tracks.
    """
    events: list[dict] = [{
        "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
        "args": {"name": "gpusim"},
    }]
    for worker in range(collector.num_workers):
        events.append({
            "ph": "M", "pid": _PID, "tid": worker, "name": "thread_name",
            "args": {"name": f"SM {worker:03d}"},
        })
        events.append({
            "ph": "M", "pid": _PID, "tid": worker, "name": "thread_sort_index",
            "args": {"sort_index": worker},
        })

    dram_cum = 0
    atomics_cum = 0
    for r in collector.records:
        args = {
            "seq": r.seq,
            "dram_txns": r.dram_txns,
            "l2_txns": r.l2_txns,
            "l1_txns": r.l1_txns,
            "flops": r.flops,
            "calls": r.calls,
            "bytes_read": r.bytes_read,
            "bytes_written": r.bytes_written,
        }
        if r.node_id is not None:
            args["node_id"] = r.node_id
        if r.subgraph_index is not None:
            args["subgraph"] = r.subgraph_index
        if r.brick is not None:
            args["brick"] = list(r.brick)
        if r.batch_index is not None:
            args["batch"] = r.batch_index
        if r.atomics_compulsory or r.atomics_conflict:
            args["atomics_compulsory"] = r.atomics_compulsory
            args["atomics_conflict"] = r.atomics_conflict
        if r.trace is not None:
            args["trace_id"], args["parent_span"] = r.trace
        events.append({
            "ph": "X", "pid": _PID, "tid": r.worker,
            "name": _task_name(r, names),
            "cat": r.strategy or "task",
            "ts": r.start_s * 1e6, "dur": r.duration_s * 1e6,
            "args": args,
        })
        dram_cum += r.dram_txns
        atomics_cum += r.atomics_compulsory + r.atomics_conflict
        ts = r.end_s * 1e6
        events.append({"ph": "C", "pid": _PID, "tid": 0, "name": "DRAM txns",
                       "ts": ts, "args": {"txns": dram_cum}})
        events.append({"ph": "C", "pid": _PID, "tid": 0, "name": "atomics",
                       "ts": ts, "args": {"txns": atomics_cum}})

    for a in collector.allocs:
        events.append({"ph": "C", "pid": _PID, "tid": 0, "name": "device memory",
                       "ts": a.time_s * 1e6, "args": {"bytes": a.live_bytes}})
    for s in collector.syncs:
        name = ("sync" if s.subgraph_index is None
                else f"sync (subgraph {s.subgraph_index})")
        events.append({"ph": "i", "pid": _PID, "tid": 0, "name": name,
                       "ts": s.time_s * 1e6, "s": "g"})

    for track, samples in (counter_tracks or {}).items():
        for t, v in samples:
            events.append({"ph": "C", "pid": _PID, "tid": 0, "name": track,
                           "ts": t * 1e6, "args": {"value": v}})

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.profiling",
                          "spec": collector.spec.name if collector.spec else None}}


def write_chrome_trace(collector: TraceCollector, path: str | pathlib.Path,
                       names: Mapping[int, str] | None = None,
                       counter_tracks: Mapping[str, Sequence[tuple[float, float]]] | None = None,
                       ) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(chrome_trace(collector, names, counter_tracks)))
    return path


_CSV_COLUMNS = ["node_id", "name", "subgraphs", "strategies", "num_tasks", "calls",
                "flops", "l1_txns", "l2_txns", "dram_txns",
                "atomics_compulsory", "atomics_conflict", "busy_s", "dram_time_s"]


def summary_csv(collector: TraceCollector,
                names: Mapping[int, str] | None = None) -> str:
    """Per-node attribution summary as CSV (one row per graph node, plus a
    final row for residual/unattributed counters)."""
    table = collector.per_node()
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_CSV_COLUMNS)
    keyed = sorted((k for k in table if k is not None))
    for node_id in keyed + ([None] if None in table else []):
        row = table[node_id]
        name = (names or {}).get(node_id) or row["label"]
        writer.writerow([
            "" if node_id is None else node_id,
            name,
            " ".join(str(i) for i in sorted(row["subgraphs"])),
            " ".join(sorted(row["strategies"])),
            row["num_tasks"], row["calls"], row["flops"],
            row["l1_txns"], row["l2_txns"], row["dram_txns"],
            row["atomics_compulsory"], row["atomics_conflict"],
            f"{row['busy_s']:.9f}", f"{row['dram_time_s']:.9f}",
        ])
    return buf.getvalue()


def write_summary_csv(collector: TraceCollector, path: str | pathlib.Path,
                      names: Mapping[int, str] | None = None) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(summary_csv(collector, names))
    return path
