"""Static halo analysis for merged subgraphs (section 3.2.1, Fig. 4).

Given a subgraph and a brick geometry on its exit activations, this analysis
answers, per member node, *which output region of that node one exit brick's
computation touches*.  It is the reverse traversal the paper describes: the
subgraph is walked backwards from the exit with a work queue, and every
node's requirement grows by that operator's halo, producing the telescoping
``B + 2p, B + 4p, ...`` padded brick sizes of Fig. 4.

Two consumers:

* the **padded-bricks executor** uses the per-node regions directly as the
  enlarged regions each brick task computes;
* the **performance model** (section 3.3.2) uses the aggregate *data growth*
  ``delta`` -- the fraction of extra activation data the padding introduces
  across the subgraph -- to choose between padded and memoized execution
  (memoized when ``delta > 15 %``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.graph.regions import Region
from repro.graph.traversal import SubgraphView

__all__ = ["HaloAnalysis", "required_regions", "padding_growth", "chain_padded_sizes"]


def required_regions(subgraph: SubgraphView, exit_id: int, out_region: Region) -> dict[int, Region]:
    """Per-node output regions needed to produce ``out_region`` of the exit.

    Returns ``{node_id: Region}`` in the node's own (absolute, unclipped)
    output coordinates, for every member node and every *entry* node that
    feeds the computation.  Implemented as the paper's queue-based reverse
    traversal, taking region hulls when a node feeds multiple consumers
    inside the subgraph (branches share the enlarged requirement).
    """
    graph = subgraph.graph
    members = set(subgraph.node_ids)
    if exit_id not in members:
        raise PlanError(f"exit {exit_id} is not a member of the subgraph")

    required: dict[int, Region] = {exit_id: out_region}
    # Reverse topological order: member ids descending (ids are topo-ordered).
    queue = sorted(members | set(subgraph.entry_ids), reverse=True)
    for nid in queue:
        if nid not in required or nid not in members:
            continue
        node = graph.node(nid)
        region = required[nid]
        input_specs = [graph.node(i).spec for i in node.inputs]
        for input_index, pred in enumerate(node.inputs):
            maps = node.op.rf_maps(input_specs, input_index)
            need = Region(m.in_interval(iv) for m, iv in zip(maps, region))
            if pred in required:
                required[pred] = required[pred].hull(need)
            else:
                required[pred] = need
    return required


def padding_growth(subgraph: SubgraphView, exit_id: int | None, brick_shape: tuple[int, ...]) -> float:
    """The paper's ``delta``: fractional activation-data growth from padding.

    Sums, over every exit node, every exit brick, and every member/entry node
    the exit's computation touches, the (clipped) region the padded strategy
    would compute or copy, and compares against the exact activation sizes.
    Corner/edge/center bricks contribute their different (clipped) padding,
    as the paper notes; multi-exit subgraphs accumulate each exit's
    (redundant) requirements, which is what the padded executor really does.

    ``exit_id`` restricts the analysis to one exit (None = all exits).
    """
    graph = subgraph.graph
    exit_ids = [exit_id] if exit_id is not None else list(subgraph.exit_ids)
    node_ids = list(subgraph.node_ids) + list(subgraph.entry_ids)

    padded_elems = 0
    for eid in exit_ids:
        extents = graph.node(eid).spec.spatial
        if len(brick_shape) != len(extents):
            raise PlanError(f"brick rank {len(brick_shape)} vs exit spatial rank {len(extents)}")
        from repro.core.bricked import BrickGrid  # local import to avoid a cycle

        grid = BrickGrid(extents, brick_shape)

        # The interval algebra is separable per spatial dimension
        # (in_interval, hull and clip all act dimension-wise), so instead of
        # running the reverse traversal for every brick (O(bricks x nodes)),
        # run it once per grid index per dimension and combine
        # multiplicatively:
        #   padded_elems(node) = prod_d ( sum_i clipped_len_{d,i}(node) ).
        per_dim_lens: list[dict[int, list[int]]] = []
        for d, (extent, b, g) in enumerate(zip(extents, brick_shape, grid.grid_shape)):
            lens: dict[int, list[int]] = {nid: [] for nid in node_ids}
            for i in range(g):
                out_iv = Region.from_bounds([i * b], [min((i + 1) * b, extent)])
                required = _required_1d(subgraph, eid, d, out_iv[0])
                for nid in node_ids:
                    if nid in required:
                        spec = graph.node(nid).spec
                        lens[nid].append(required[nid].clip(spec.spatial[d]).length)
                    else:
                        lens[nid].append(0)
            per_dim_lens.append(lens)

        for nid in node_ids:
            total = 1
            for lens in per_dim_lens:
                total *= sum(lens[nid])
            padded_elems += total

    exact_elems = 0
    for nid in node_ids:
        spec = graph.node(nid).spec
        exact_elems += int(spec.num_elements // (spec.batch * spec.channels))
    if exact_elems == 0:
        return 0.0
    return padded_elems / exact_elems - 1.0


def _required_1d(subgraph: SubgraphView, exit_id: int, dim: int, out_iv) -> dict[int, "object"]:
    """One-dimensional slice of :func:`required_regions` along ``dim``."""
    graph = subgraph.graph
    members = set(subgraph.node_ids)
    required = {exit_id: out_iv}
    for nid in sorted(members | set(subgraph.entry_ids), reverse=True):
        if nid not in required or nid not in members:
            continue
        node = graph.node(nid)
        iv = required[nid]
        input_specs = [graph.node(i).spec for i in node.inputs]
        for input_index, pred in enumerate(node.inputs):
            m = node.op.rf_maps(input_specs, input_index)[dim]
            need = m.in_interval(iv)
            required[pred] = required[pred].hull(need) if pred in required else need
    return required


def chain_padded_sizes(subgraph: SubgraphView, exit_id: int, brick_shape: tuple[int, ...]) -> list[tuple[str, tuple[int, ...]]]:
    """Human-readable per-layer padded brick sizes for a central brick.

    Reproduces Fig. 4's ``(Bh + 2px) x (Bw + 2py)``, ``(Bh + 4px) x ...``
    numbers: the input-region shape each member layer needs for one interior
    exit brick.  Returns ``[(node_name, padded_shape), ...]`` from the exit
    backwards.
    """
    graph = subgraph.graph
    exit_node = graph.node(exit_id)
    from repro.core.bricked import BrickGrid

    grid = BrickGrid(exit_node.spec.spatial, brick_shape)
    # A central brick: the grid's middle position.
    center = tuple(g // 2 for g in grid.grid_shape)
    required = required_regions(subgraph, exit_id, grid.brick_region(center))
    out = []
    for nid in sorted(required, reverse=True):
        out.append((graph.node(nid).name, required[nid].shape))
    return out


@dataclass(frozen=True)
class HaloAnalysis:
    """Cached halo analysis of one subgraph for one brick geometry."""

    subgraph: SubgraphView
    exit_id: int
    brick_shape: tuple[int, ...]
    delta: float

    @classmethod
    def analyze(cls, subgraph: SubgraphView, exit_id: int, brick_shape: tuple[int, ...]) -> "HaloAnalysis":
        return cls(
            subgraph=subgraph,
            exit_id=exit_id,
            brick_shape=tuple(brick_shape),
            delta=padding_growth(subgraph, exit_id, tuple(brick_shape)),
        )
