"""BrickDL's compile-time performance models (sections 3.3.2-3.3.3).

Two decisions are made per subgraph, both from static analysis alone:

* **Strategy** -- padded vs memoized bricks: padded bricks trade redundant
  halo computation for zero synchronization; memoized bricks trade atomics
  for zero redundancy.  The paper's rule: when the padding data growth
  ``delta`` exceeds 15 %, use memoized bricks.

* **Brick size** -- parallelism model: for ``n`` blocked dimensions of
  extents ``D_1..D_n``, candidate brick side ``B`` yields
  ``rho = prod(D_i) / B**n`` brick-parallel tasks.  More parallelism is
  better up to a threshold ``tau = 2**12``, beyond which fine-grained task
  overheads dominate; the model picks the ``B`` maximizing ``rho`` subject
  to ``rho <= tau``.  When even the coarsest brick gives ``rho < B**n``
  (tiny layers near the classifier), merged execution is skipped and the
  subgraph falls back to plain vendor-library execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.plan import Strategy

__all__ = ["PerfModelConfig", "BrickSizeDecision", "choose_brick_size", "choose_strategy"]


@dataclass(frozen=True)
class PerfModelConfig:
    """Tunables of the static performance models (paper defaults)."""

    brick_candidates: tuple[int, ...] = (4, 8, 16, 32)
    tau: int = 2 ** 12              # parallelism ceiling (section 3.3.3)
    delta_threshold: float = 0.15   # padded -> memoized switch (section 3.3.2)
    # Enough-bricks-to-fill-the-device floor used by the cuDNN-fallback rule
    # (~2 bricks per A100 SM).  The paper states the fallback as rho < B^n,
    # but its own Fig. 11 best case (16^3 bricks at 224^3, rho = 2744 <
    # 16^3) contradicts a literal reading, so the threshold is capped here.
    min_parallelism: int = 216
    # Fraction of L2 the partitioner may plan data into: caches are shared
    # with weights and the baseline working set, so planning to fill all of
    # it would thrash; half is the budget that keeps merged intermediates
    # resident in practice.
    l2_budget_fraction: float = 0.5


DEFAULT_CONFIG = PerfModelConfig()


@dataclass(frozen=True)
class BrickSizeDecision:
    """Outcome of the brick-size model for one subgraph."""

    brick: int                 # chosen brick side (uniform across dims)
    rho: float                 # resulting parallelism
    fallback: bool             # True -> insufficient parallelism, use cuDNN
    candidates: tuple[tuple[int, float], ...]  # (B, rho) table for reporting


def parallelism(extents: Sequence[int], brick: int) -> float:
    """``rho = prod(D_i) / B**n`` for ``n`` blocked dimensions."""
    n = len(extents)
    return math.prod(extents) / float(brick ** n)


def choose_brick_size(
    extents: Sequence[int],
    config: PerfModelConfig = DEFAULT_CONFIG,
    kernel_extent: int = 1,
) -> BrickSizeDecision:
    """Pick the brick side for blocked dims of the given extents.

    ``kernel_extent`` is the largest effective kernel size in the subgraph:
    the paper requires brick size greater than the filter size (section
    3.3.4), so smaller candidates are skipped.
    """
    n = len(extents)
    if n == 0:
        return BrickSizeDecision(brick=0, rho=0.0, fallback=True, candidates=())
    table = tuple((b, parallelism(extents, b)) for b in config.brick_candidates)
    eligible = [(b, r) for b, r in table if b >= kernel_extent]
    if not eligible:
        return BrickSizeDecision(brick=max(config.brick_candidates), rho=0.0, fallback=True, candidates=table)

    # Maximum rho subject to rho <= tau; if every candidate exceeds tau,
    # take the coarsest brick (minimum rho).
    within = [(b, r) for b, r in eligible if r <= config.tau]
    if within:
        brick, rho = max(within, key=lambda br: br[1])
    else:
        brick, rho = min(eligible, key=lambda br: br[1])

    # Tiny layers: too few bricks to justify fine-grained blocking (the
    # paper's "rho < B^n -> leverage cuDNN", with the device-fill cap).
    fallback = rho < min(brick ** n, config.min_parallelism)
    return BrickSizeDecision(brick=brick, rho=rho, fallback=fallback, candidates=table)


def choose_strategy(delta: float, config: PerfModelConfig = DEFAULT_CONFIG) -> Strategy:
    """Padded vs memoized from the padding data growth ``delta``."""
    return Strategy.MEMOIZED if delta > config.delta_threshold else Strategy.PADDED
