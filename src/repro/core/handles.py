"""Tensor handles: geometry + device buffer + (optional) values.

Execution strategies manipulate activations through handles so the same code
runs in two modes:

* **functional** -- a backing array is present; kernels actually compute and
  results are numerically checkable against the reference executor;
* **profile** -- no values are materialized (large benchmark configurations
  would not fit or would be too slow in NumPy); only geometry flows, and the
  handles emit the identical access streams to the simulated device.

:class:`BrickedHandle` also centralizes the translation from *regions* to
*brick accesses*: reading a halo-expanded region means reading every
overlapping brick in full (the brick is the unit of data movement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.brick import BrickMap
from repro.core.bricked import BrickedTensor, BrickGrid
from repro.errors import ExecutionError
from repro.graph.regions import Region
from repro.graph.tensorspec import TensorSpec
from repro.gpusim.trace import Buffer, Task

__all__ = ["DenseHandle", "BrickedHandle"]


@dataclass
class DenseHandle:
    """A row-major activation at a subgraph boundary."""

    spec: TensorSpec
    buffer: Buffer
    data: np.ndarray | None = None

    @property
    def functional(self) -> bool:
        return self.data is not None

    def require_data(self) -> np.ndarray:
        if self.data is None:
            raise ExecutionError(f"handle for {self.buffer.name!r} has no values (profile mode)")
        return self.data

    def _region_access(self, batch: int, region: Region) -> tuple[int, int, tuple[tuple[int, int], ...]]:
        """(offset, segment_bytes, reps) for a row-major spatial region read
        spanning all channels of one sample."""
        spec = self.spec
        item = spec.itemsize
        clipped = region.clip(spec.spatial)
        spatial = spec.spatial
        nd = len(spatial)
        plane = math.prod(spatial) * item                      # one channel
        strides = [item] * nd
        for d in range(nd - 2, -1, -1):
            strides[d] = strides[d + 1] * spatial[d + 1]
        offset = batch * spec.channels * plane + sum(iv.lo * s for iv, s in zip(clipped, strides))
        seg = clipped[-1].length * item
        reps: list[tuple[int, int]] = [(spec.channels, plane)]
        for d in range(nd - 1):
            reps.append((clipped[d].length, strides[d]))
        return offset, seg, tuple(reps)

    def emit_region_read(self, task: Task, batch: int, region: Region) -> None:
        """Record a strided read of a spatial region (all channels)."""
        clipped = region.clip(self.spec.spatial)
        if clipped.is_empty():
            return
        offset, seg, reps = self._region_access(batch, clipped)
        task.read(self.buffer, offset, seg, reps, dense=True)

    def emit_region_write(self, task: Task, batch: int, region: Region) -> None:
        clipped = region.clip(self.spec.spatial)
        if clipped.is_empty():
            return
        offset, seg, reps = self._region_access(batch, clipped)
        task.write(self.buffer, offset, seg, reps, dense=True)

    def emit_full_read(self, task: Task) -> None:
        task.read(self.buffer, 0, self.buffer.nbytes, dense=True)

    def emit_full_write(self, task: Task) -> None:
        task.write(self.buffer, 0, self.buffer.nbytes, dense=True)

    def gather(self, batch: int, region: Region, fill: float = 0.0) -> np.ndarray:
        """Dense ``(C, *region.shape)`` patch (API parity with BrickedHandle,
        so merged executors can consume dense graph inputs directly)."""
        data = self.require_data()
        shape = (self.spec.channels, *region.shape)
        out = np.full(shape, fill, dtype=self.spec.dtype)
        valid = region.clip(self.spec.spatial)
        if valid.is_empty():
            return out
        src = (batch, slice(None), *valid.slices())
        dst = (slice(None), *valid.slices(origin=[iv.lo for iv in region]))
        out[dst] = data[src]
        return out


@dataclass
class BrickedHandle:
    """A brick-layout activation bound to a device buffer."""

    spec: TensorSpec
    grid: BrickGrid
    buffer: Buffer
    data: BrickedTensor | None = None
    # Per-region physical-brick-index vectors (see _region_physical): the
    # executors resolve the same few halo regions for every batch sample and
    # every consumer, so the translation from region to brick offsets is
    # cached once per region.
    _region_phys: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def create(
        cls,
        spec: TensorSpec,
        brick_shape: tuple[int, ...],
        buffer: Buffer,
        functional: bool,
        brick_map: BrickMap | None = None,
    ) -> "BrickedHandle":
        grid = BrickGrid(spec.spatial, brick_shape)
        data = BrickedTensor(spec, brick_shape, brick_map) if functional else None
        return cls(spec=spec, grid=grid, buffer=buffer, data=data)

    @property
    def functional(self) -> bool:
        return self.data is not None

    @property
    def brick_nbytes(self) -> int:
        cached = self._region_phys.get("__brick_nbytes__")
        if cached is None:
            cached = self.spec.channels * math.prod(self.grid.brick_shape) * self.spec.itemsize
            self._region_phys["__brick_nbytes__"] = cached
        return cached

    def nbytes(self) -> int:
        return self.spec.batch * self.grid.num_bricks * self.brick_nbytes

    def physical(self, grid_pos: tuple[int, ...]) -> int:
        if self.data is not None:
            return self.data.brick_map.physical(grid_pos)
        # Profile mode: identity brick map.
        idx = 0
        for p, g in zip(grid_pos, self.grid.grid_shape):
            idx = idx * g + p
        return idx

    def brick_offset(self, batch: int, grid_pos: tuple[int, ...]) -> int:
        return (batch * self.grid.num_bricks + self.physical(grid_pos)) * self.brick_nbytes

    def _region_physical(self, region: Region) -> np.ndarray:
        """Physical brick indices (int64 vector) of the bricks overlapping
        ``region``, memoized per region."""
        phys = self._region_phys.get(region)
        if phys is None:
            plan = self.grid.overlap_plan(region)
            phys = np.fromiter((self.physical(g) for g in plan),
                               dtype=np.int64, count=len(plan))
            self._region_phys[region] = phys
        return phys

    # -- access emission ------------------------------------------------------
    def emit_region_read(self, task: Task, batch: int, region: Region) -> int:
        """Record reads of every brick overlapping ``region``; returns count.

        Each brick is one contiguous read -- the single-address-stream
        property of the layout.  Emitted as one batch: the per-brick
        ``Access`` rows are unchanged, and the task additionally carries the
        columnar span for the vectorized memory path.
        """
        phys = self._region_physical(region)
        if phys.size == 0:
            return 0
        nbytes = self.brick_nbytes
        offsets = (batch * self.grid.num_bricks + phys) * nbytes
        task.read_batch(self.buffer, offsets, nbytes)
        return int(phys.size)

    def emit_brick_read(self, task: Task, batch: int, grid_pos: tuple[int, ...]) -> None:
        task.read(self.buffer, self.brick_offset(batch, grid_pos), self.brick_nbytes)

    def emit_brick_write(self, task: Task, batch: int, grid_pos: tuple[int, ...]) -> None:
        task.write(self.buffer, self.brick_offset(batch, grid_pos), self.brick_nbytes)

    # -- values ---------------------------------------------------------------
    def gather(self, batch: int, region: Region, fill: float = 0.0) -> np.ndarray:
        if self.data is None:
            raise ExecutionError(f"gather on profile-mode handle {self.buffer.name!r}")
        return self.data.gather_region(batch, region, fill)

    def scatter(self, batch: int, region: Region, values: np.ndarray) -> None:
        if self.data is None:
            raise ExecutionError(f"scatter on profile-mode handle {self.buffer.name!r}")
        self.data.scatter_region(batch, region, values)

    def bricks(self) -> Iterator[tuple[int, ...]]:
        """All grid positions, row-major."""
        yield from self.grid.bricks_overlapping(Region.from_extents(self.grid.extents))
