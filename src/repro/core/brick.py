"""The three brick-layout data structures: Brick, BrickMap, BrickInfo.

Section 3.3.4 / Fig. 6 of the paper: a *Brick* is a small fixed-size block of
contiguously stored elements; *BrickMap* maps each brick's logical grid
position to its physical storage slot (bricks need not be stored in
row-major grid order); *BrickInfo* is an adjacency list giving, for each
physical brick, the physical indices of its logical neighbors per direction,
so neighbor access never consults the map again.

These classes mirror the C++ template library's structures faithfully --
including the indirection -- because the *benchmarked* property of the
layout (one contiguous address stream per brick, neighbor access via a
single adjacency lookup) is what the simulator's transaction accounting
measures.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import LayoutError

__all__ = ["Brick", "BrickMap", "BrickInfo", "neighbor_offsets", "morton_permutation", "morton_map"]


def neighbor_offsets(ndim: int) -> tuple[tuple[int, ...], ...]:
    """All 3^n - 1 neighbor directions for an n-dim brick grid, in the
    deterministic order used by :class:`BrickInfo` rows (Fig. 6(c))."""
    return tuple(d for d in itertools.product((-1, 0, 1), repeat=ndim) if any(d))


@dataclass
class Brick:
    """One fixed-size block of contiguously packed elements.

    ``data`` is a dense ``(channels, *brick_shape)`` array (bricks span all
    channels: BrickDL blocks batch/spatial dims only, never channels).
    Element access by in-brick index tuple goes through ``__getitem__``,
    mirroring the C++ operator overloads.
    """

    physical_index: int
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def spatial_shape(self) -> tuple[int, ...]:
        return self.data.shape[1:]

    def __getitem__(self, index_in_brick: tuple[int, ...]) -> np.ndarray:
        """Per-element access: returns the channel vector at a spatial point."""
        return self.data[(slice(None), *index_in_brick)]

    def __setitem__(self, index_in_brick: tuple[int, ...], value) -> None:
        self.data[(slice(None), *index_in_brick)] = value


class BrickMap:
    """Logical grid position -> physical storage slot (layer of indirection).

    The default is the identity (row-major grid order), but any permutation
    is legal -- e.g. a Morton/space-filling order -- and round-trips through
    :meth:`physical` / :meth:`logical`.
    """

    def __init__(self, grid_shape: Sequence[int], permutation: Sequence[int] | None = None) -> None:
        self.grid_shape = tuple(int(g) for g in grid_shape)
        if any(g < 1 for g in self.grid_shape):
            raise LayoutError(f"invalid brick grid {self.grid_shape}")
        n = math.prod(self.grid_shape)
        if permutation is None:
            self._to_physical = np.arange(n, dtype=np.int64)
        else:
            perm = np.asarray(permutation, dtype=np.int64)
            if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
                raise LayoutError("permutation must be a bijection over all bricks")
            self._to_physical = perm.copy()
        self._to_logical = np.empty(n, dtype=np.int64)
        self._to_logical[self._to_physical] = np.arange(n, dtype=np.int64)

    @property
    def num_bricks(self) -> int:
        return int(self._to_physical.shape[0])

    def flatten(self, grid_pos: Sequence[int]) -> int:
        idx = 0
        for p, g in zip(grid_pos, self.grid_shape):
            if not 0 <= p < g:
                raise LayoutError(f"grid position {tuple(grid_pos)} outside grid {self.grid_shape}")
            idx = idx * g + p
        return idx

    def unflatten(self, flat: int) -> tuple[int, ...]:
        pos = []
        for g in reversed(self.grid_shape):
            pos.append(flat % g)
            flat //= g
        return tuple(reversed(pos))

    def physical(self, grid_pos: Sequence[int]) -> int:
        """Physical slot of the brick at a logical grid position."""
        return int(self._to_physical[self.flatten(grid_pos)])

    def logical(self, physical_index: int) -> tuple[int, ...]:
        """Logical grid position of the brick stored at a physical slot."""
        return self.unflatten(int(self._to_logical[physical_index]))

    def __iter__(self) -> Iterator[tuple[tuple[int, ...], int]]:
        for flat in range(self.num_bricks):
            yield self.unflatten(flat), int(self._to_physical[flat])


def morton_permutation(grid_shape: Sequence[int]) -> np.ndarray:
    """A Morton (Z-order) storage permutation for a brick grid.

    The paper notes that "the blocks of bricks need not be physically
    stored in the conventional row-major order" (section 3.3.4); Z-order
    keeps spatially neighboring bricks close in memory in *every*
    dimension, improving the locality of halo-neighbor streams.  Returns
    the ``permutation`` argument for :class:`BrickMap`: entry ``l`` is the
    physical slot of logical brick ``l``.
    """
    grid = tuple(int(g) for g in grid_shape)
    n = math.prod(grid)
    bits = max(g - 1 for g in grid).bit_length() if n > 1 else 1

    def morton_key(pos: tuple[int, ...]) -> int:
        key = 0
        for bit in range(bits):
            for d, p in enumerate(pos):
                key |= ((p >> bit) & 1) << (bit * len(pos) + d)
        return key

    positions = list(itertools.product(*(range(g) for g in grid)))
    order = sorted(range(n), key=lambda flat: morton_key(positions[flat]))
    perm = np.empty(n, dtype=np.int64)
    for phys, logical_flat in enumerate(order):
        perm[logical_flat] = phys
    return perm


def morton_map(grid_shape: Sequence[int]) -> "BrickMap":
    """A :class:`BrickMap` storing bricks in Morton (Z-) order."""
    return BrickMap(grid_shape, morton_permutation(grid_shape))


class BrickInfo:
    """Adjacency lists: physical neighbor indices per direction (Fig. 6(c)).

    Row ``i`` holds, for the brick at *physical* slot ``i``, the physical
    slot of its logical neighbor in each of the 3^n - 1 directions (-1 where
    the neighbor falls outside the grid).
    """

    def __init__(self, brick_map: BrickMap) -> None:
        self.brick_map = brick_map
        self.directions = neighbor_offsets(len(brick_map.grid_shape))
        n = brick_map.num_bricks
        self.adjacency = np.full((n, len(self.directions)), -1, dtype=np.int64)
        grid = brick_map.grid_shape
        for grid_pos, phys in brick_map:
            for d_idx, delta in enumerate(self.directions):
                npos = tuple(p + dd for p, dd in zip(grid_pos, delta))
                if all(0 <= p < g for p, g in zip(npos, grid)):
                    self.adjacency[phys, d_idx] = brick_map.physical(npos)

    def neighbor(self, physical_index: int, direction: tuple[int, ...]) -> int:
        """Physical index of the neighbor in ``direction`` (-1 if outside)."""
        try:
            d_idx = self.directions.index(direction)
        except ValueError:
            raise LayoutError(f"unknown direction {direction} for {len(self.directions)}-dir adjacency") from None
        return int(self.adjacency[physical_index, d_idx])

    def neighbors(self, physical_index: int) -> dict[tuple[int, ...], int]:
        """All in-grid neighbors of a brick, keyed by direction."""
        row = self.adjacency[physical_index]
        return {d: int(p) for d, p in zip(self.directions, row) if p >= 0}
