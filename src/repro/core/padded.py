"""Merged execution with padded bricks (section 3.2.1).

One task per (batch sample, exit brick): a single virtual thread block
computes the *entire* merged chain for its brick, working on halo-enlarged
patches at every layer (Fig. 2(c)).  The halo data is *copied* from
neighboring bricks of the entry activations (``gather``), and the enlarged
intermediate patches are recomputed privately -- redundant flops, but zero
inter-block synchronization until the reduction at the subgraph boundary.

The emitted access stream is:

* whole-brick reads of every entry brick overlapping the enlarged region,
* one pinned read of each member operator's weights,
* write+read pairs against a per-worker scratch buffer for the intermediate
  patches (thread-block private: hits L1 while patches are small, spills to
  L2 for deep merges -- the emergent cost that makes over-deep merging lose,
  Fig. 10),
* one contiguous write of the produced exit brick.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.geometry import SubgraphGeometry
from repro.core.handles import BrickedHandle
from repro.errors import ExecutionError
from repro.graph.regions import Region
from repro.graph.traversal import SubgraphView
from repro.gpusim.device import Device
from repro.gpusim.trace import Buffer, Task, brick_token, buffer_token
from repro.kernels import apply_node_local, pad_value_for

__all__ = ["PaddedBrickExecutor"]


def _extract(
    values: np.ndarray, covered: Region, needed: Region, fill: float
) -> np.ndarray:
    """Slice ``needed`` out of a patch stored over ``covered``, filling
    out-of-coverage (implicit feature-map padding) with ``fill``."""
    if covered.contains(needed):
        return values[(slice(None), *needed.slices(origin=[iv.lo for iv in covered]))]
    out = np.full((values.shape[0], *needed.shape), fill, dtype=values.dtype)
    ov = needed.intersect(covered)
    if not ov.is_empty():
        dst = (slice(None), *ov.slices(origin=[iv.lo for iv in needed]))
        src = (slice(None), *ov.slices(origin=[iv.lo for iv in covered]))
        out[dst] = values[src]
    return out


@dataclass
class PaddedBrickExecutor:
    """Executes one merged subgraph with the padded-bricks strategy."""

    subgraph: SubgraphView
    brick_shape: tuple[int, ...]
    device: Device
    entries: dict[int, BrickedHandle]
    weight_buffers: dict[int, Buffer]
    functional: bool = True

    def __post_init__(self) -> None:
        # Memoized geometry (see repro.core.geometry): the reverse halo
        # traversal and the per-layer receptive-field resolution depend only
        # on (exit, brick), not on the batch sample, so every sample after
        # the first replays dict hits.
        self.geom = SubgraphGeometry(self.subgraph)
        self._members = set(self.subgraph.node_ids)

    def run(self) -> dict[int, BrickedHandle]:
        graph = self.subgraph.graph
        for eid in self.subgraph.entry_ids:
            if eid not in self.entries:
                raise ExecutionError(f"padded executor missing entry handle for node {eid}")

        exits: dict[int, BrickedHandle] = {}
        for enode in self.subgraph.exits:
            buf = self.device.allocate(f"{enode.name}/bricked", self._bricked_nbytes(enode.spec), transient=True)
            exits[enode.node_id] = BrickedHandle.create(enode.spec, self.brick_shape, buf, self.functional)

        scratch = self._allocate_scratch()
        batch = graph.node(self.subgraph.node_ids[0]).spec.batch

        # Redundancy accounting for the registry: elements computed on
        # enlarged patches (vs the exact output volume) and halo bytes
        # gathered from entry bricks -- the paper's delta in measured form.
        self._compute_elems = 0
        self._entry_read_bytes = 0
        task_index = 0
        for exit_id, handle in exits.items():
            for grid_pos in handle.bricks():
                for n in range(batch):
                    worker = task_index % self.device.spec.num_sms
                    self._run_brick(exit_id, handle, grid_pos, n, scratch[worker], worker)
                    task_index += 1
        reg = self.device.metrics_registry
        reg.inc("padded_compute_elems", self._compute_elems)
        reg.inc("padded_entry_read_bytes", self._entry_read_bytes)
        # One reduction/synchronization closes the subgraph (Fig. 3(b)).
        self.device.synchronize()
        return exits

    # -- internals -------------------------------------------------------------
    def _bricked_nbytes(self, spec) -> int:
        from repro.core.bricked import BrickGrid

        grid = BrickGrid(spec.spatial, self.brick_shape)
        return spec.batch * grid.num_bricks * spec.channels * math.prod(self.brick_shape) * spec.itemsize

    def _allocate_scratch(self) -> list[tuple[Buffer, dict[int, int]]]:
        """Per-worker scratch: one slot per member node, sized for the
        largest (interior) patch that node ever computes."""
        graph = self.subgraph.graph
        # Probe an interior exit brick to size the per-node patches.
        exit_id = self.subgraph.exit_ids[-1]
        exit_spec = graph.node(exit_id).spec
        from repro.core.bricked import BrickGrid

        grid = BrickGrid(exit_spec.spatial, self.brick_shape)
        center = tuple(g // 2 for g in grid.grid_shape)
        required = self.geom.required(exit_id, grid.brick_region(center))
        offsets: dict[int, int] = {}
        cursor = 0
        for nid in self.subgraph.node_ids:
            spec = graph.node(nid).spec
            patch_bytes = spec.channels * required.get(nid, Region.from_extents(self.brick_shape)).size * spec.itemsize
            offsets[nid] = cursor
            cursor += max(patch_bytes, 1)
        scratch = []
        for w in range(self.device.spec.num_sms):
            buf = self.device.allocate(f"{graph.name}/padded-scratch-{w}", cursor, transient=True)
            scratch.append((buf, offsets))
        return scratch

    def _run_brick(
        self,
        exit_id: int,
        exit_handle: BrickedHandle,
        grid_pos: tuple[int, ...],
        batch: int,
        scratch: tuple[Buffer, dict[int, int]],
        worker: int | None = None,
    ) -> None:
        graph = self.subgraph.graph
        members = self._members
        out_region = exit_handle.grid.brick_region(grid_pos, clipped=True)
        required = self.geom.required(exit_id, out_region)

        task = Task(label=f"padded/{graph.node(exit_id).name}/{grid_pos}",
                    node_id=exit_id, strategy="padded", worker=worker,
                    brick=grid_pos, batch_index=batch)
        scratch_buf, slots = scratch
        values: dict[int, np.ndarray] = {}
        covered: dict[int, Region] = {}

        # Entry reads: whole overlapping bricks (halo copies).
        for eid in self.subgraph.entry_ids:
            if eid not in required:
                continue
            self.entries[eid].emit_region_read(task, batch, required[eid])
            task.acquire(buffer_token(self.entries[eid].buffer))
            covered[eid] = required[eid].clip(graph.node(eid).spec.spatial)
            espec = graph.node(eid).spec
            self._entry_read_bytes += espec.channels * covered[eid].size * espec.itemsize
            if self.functional:
                values[eid] = self.entries[eid].gather(batch, covered[eid])

        calls = 0
        for nid in self.subgraph.node_ids:
            if nid not in required:
                continue
            node = graph.node(nid)
            spec = node.spec
            region = required[nid].clip(spec.spatial)
            if region.is_empty():
                covered[nid] = region
                continue
            needs, offsets_nd = self.geom.needs(nid, region)
            for input_index, pred in enumerate(node.inputs):
                # Intermediate patches are thread-block private (registers /
                # shared memory / L1): they never travel below the SM, but
                # their volume shows up in the L1 (global) transaction count
                # -- the paper's padded-brick overfetch.
                if pred in members:
                    need = needs[input_index]
                    pred_spec = graph.node(pred).spec
                    nbytes = pred_spec.channels * need.clip(pred_spec.spatial).size * pred_spec.itemsize
                    task.read(scratch_buf, slots[pred], min(nbytes, scratch_buf.nbytes - slots[pred]),
                              on_chip=True)

            wb = self.weight_buffers.get(nid)
            if wb is not None and wb.nbytes:
                task.read(wb, 0, wb.nbytes)

            out_bytes = spec.channels * region.size * spec.itemsize
            if nid == exit_id:
                exit_handle.emit_brick_write(task, batch, grid_pos)
            else:
                task.write(scratch_buf, slots[nid], min(out_bytes, scratch_buf.nbytes - slots[nid]),
                           on_chip=True)
            task.flops += self.geom.flops(nid, spec.channels * region.size)
            self._compute_elems += spec.channels * region.size
            calls += 1

            if self.functional:
                fill = pad_value_for(node.op)
                patches = []
                for need, pred in zip(needs, node.inputs):
                    pred_covered = covered[pred]
                    patches.append(_extract(values[pred], pred_covered, need, fill))
                values[nid] = apply_node_local(
                    node.op, patches, node.weights, region.shape,
                    offsets_nd if offsets_nd else (0,) * len(region),
                )
            covered[nid] = region

        task.calls = max(calls, 1)
        # Exits other than `exit_id` are materialized by their own brick loops.
        if self.functional and exit_id in values:
            exit_handle.scatter(batch, covered[exit_id], values[exit_id])
        task.release(brick_token(exit_handle.buffer,
                                 exit_handle.brick_offset(batch, grid_pos)))
        task.release(buffer_token(exit_handle.buffer))
        self.device.submit(task)
        if self.functional:
            for nid in self.subgraph.node_ids:
                if nid in values:
                    self.device.note_values(task, nid, values[nid])
