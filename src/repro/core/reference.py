"""Naive layer-by-layer reference executor.

Executes a graph exactly as Fig. 2(a)'s naive version: one full sweep per
operator, every activation fully materialized.  It performs no blocking and
collects no metrics -- it exists purely as numerical ground truth.  Every
other execution system in the library (padded bricks, memoized bricks, tiled
cuDNN baseline, fusion baselines) is tested for output equality against it.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.graph.ir import Graph
from repro.graph.traversal import topological_order
from repro.kernels import apply_node_full

__all__ = ["ReferenceExecutor"]


class ReferenceExecutor:
    """Ground-truth executor: full-tensor, operator-at-a-time."""

    def __init__(self, graph: Graph) -> None:
        graph.validate()
        graph.init_weights()
        self.graph = graph

    def run(self, inputs: Mapping[str, np.ndarray] | np.ndarray) -> dict[str, np.ndarray]:
        """Execute the graph; returns ``{output_node_name: activation}``.

        ``inputs`` may be a single array (bound to the unique graph input) or
        a mapping from input-node name to array.
        """
        feeds = self._normalize_inputs(inputs)
        values: dict[int, np.ndarray] = {}
        for node in topological_order(self.graph):
            if node.is_input:
                values[node.node_id] = feeds[node.name]
                continue
            args = [values[i] for i in node.inputs]
            values[node.node_id] = apply_node_full(node.op, args, node.weights)
        return {n.name: values[n.node_id] for n in self.graph.output_nodes}

    def run_all(self, inputs: Mapping[str, np.ndarray] | np.ndarray) -> dict[str, np.ndarray]:
        """Like :meth:`run` but returns every node's activation (for tests)."""
        feeds = self._normalize_inputs(inputs)
        values: dict[int, np.ndarray] = {}
        for node in topological_order(self.graph):
            if node.is_input:
                values[node.node_id] = feeds[node.name]
            else:
                args = [values[i] for i in node.inputs]
                values[node.node_id] = apply_node_full(node.op, args, node.weights)
        return {n.name: values[n.node_id] for n in self.graph.nodes}

    def _normalize_inputs(self, inputs: Mapping[str, np.ndarray] | np.ndarray) -> dict[str, np.ndarray]:
        input_nodes = self.graph.input_nodes
        if isinstance(inputs, np.ndarray):
            if len(input_nodes) != 1:
                raise ExecutionError(
                    f"graph {self.graph.name!r} has {len(input_nodes)} inputs; pass a mapping"
                )
            inputs = {input_nodes[0].name: inputs}
        feeds: dict[str, np.ndarray] = {}
        for node in input_nodes:
            if node.name not in inputs:
                raise ExecutionError(f"missing input {node.name!r}")
            arr = np.asarray(inputs[node.name], dtype=node.spec.dtype)
            if arr.shape != node.spec.shape:
                raise ExecutionError(
                    f"input {node.name!r}: expected shape {node.spec.shape}, got {arr.shape}"
                )
            feeds[node.name] = arr
        return feeds
