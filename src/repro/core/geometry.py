"""Memoized per-subgraph brick geometry: the executor hot-path cache.

Profiling the per-task hot path shows the simulator's wall clock is not
dominated by the memory model but by *geometry recomputation*: every brick
task re-derives its receptive-field maps, need regions, per-input offsets
and flop counts, and the same ``(node, grid position)`` pair is resolved
several times per brick (dependency scan, sync stamping, task emission).

:class:`SubgraphGeometry` memoizes those pure derivations per subgraph.  All
results are value-identical to the uncached computation by construction --
the inputs (graph topology, operator receptive fields, brick grids) are
immutable for the lifetime of one executor -- so the emitted access streams
are bit-identical whether or not the cache is hit, independent of the
``REPRO_SIM_PATH`` accounting switch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.halo import required_regions
from repro.graph.regions import Region

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.graph.traversal import SubgraphView

__all__ = ["SubgraphGeometry"]


class SubgraphGeometry:
    """Pure-geometry memo tables for one subgraph execution."""

    def __init__(self, subgraph: "SubgraphView") -> None:
        self.subgraph = subgraph
        self.graph = subgraph.graph
        self._input_specs: dict[int, list] = {}
        self._rf: dict[tuple[int, int], tuple] = {}
        self._needs: dict[tuple[int, Region], tuple] = {}
        self._flops: dict[tuple[int, int], float] = {}
        self._required: dict[tuple[int, Region], dict[int, Region]] = {}

    def input_specs(self, nid: int) -> list:
        specs = self._input_specs.get(nid)
        if specs is None:
            graph = self.graph
            specs = [graph.node(i).spec for i in graph.node(nid).inputs]
            self._input_specs[nid] = specs
        return specs

    def rf_maps(self, nid: int, input_index: int):
        key = (nid, input_index)
        maps = self._rf.get(key)
        if maps is None:
            maps = self.graph.node(nid).op.rf_maps(self.input_specs(nid), input_index)
            self._rf[key] = maps
        return maps

    def needs(self, nid: int, region: Region) -> tuple[tuple[Region, ...],
                                                       tuple[tuple[int, ...], ...]]:
        """Per-input need regions and local patch offsets for one output
        region of ``nid`` (the per-brick receptive-field resolution)."""
        key = (nid, region)
        cached = self._needs.get(key)
        if cached is None:
            node = self.graph.node(nid)
            needs = []
            offsets = []
            for input_index in range(len(node.inputs)):
                maps = self.rf_maps(nid, input_index)
                need = Region(m.in_interval(iv) for m, iv in zip(maps, region))
                needs.append(need)
                offsets.append(tuple(
                    m.local_out_offset(iv.lo, niv.lo)
                    for m, iv, niv in zip(maps, region, need)))
            cached = (tuple(needs), tuple(offsets))
            self._needs[key] = cached
        return cached

    def flops(self, nid: int, out_elems: int) -> float:
        key = (nid, out_elems)
        value = self._flops.get(key)
        if value is None:
            value = self.graph.node(nid).op.flops(self.input_specs(nid), out_elems)
            self._flops[key] = value
        return value

    def required(self, exit_id: int, out_region: Region) -> dict[int, Region]:
        """Memoized :func:`repro.core.halo.required_regions`."""
        key = (exit_id, out_region)
        req = self._required.get(key)
        if req is None:
            req = required_regions(self.subgraph, exit_id, out_region)
            self._required[key] = req
        return req
