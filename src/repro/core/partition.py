"""DNN graph partitioning (section 3.3.1).

The partitioner walks the operator graph and groups consecutive mergeable
operators into subgraphs subject to three rules from the paper:

1. **On-chip residency** -- the data footprint of merged execution (member
   activations plus entry activations plus memo state) must fit the GPU L2
   cache (40 MB on A100), so intermediate bricks written by one layer are
   still resident when the next layer's bricks consume them.
2. **Reduction tails** -- a spatially reducing operator (pooling) closes its
   subgraph: after a reduction the layer shrinks, and carrying padding or
   atomics across the shrink is wasted overhead.
3. **Global boundaries** -- operators that need the whole activation
   (global pooling, flatten/dense heads, and any op without the
   ``alpha X + beta`` block contract) become single-node subgraphs executed
   un-bricked by the vendor-library fallback.

Node ids are a topological order and any contiguous id range is
dependency-convex (every path between two members stays inside the range),
so greedy contiguous grouping is safe even for branchy graphs (ResNet skip
connections, Inception modules).
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.ir import Graph, Node
from repro.graph.traversal import SubgraphView, subgraph_view
from repro.gpusim.spec import A100, GPUSpec
from repro.core.perfmodel import DEFAULT_CONFIG, PerfModelConfig

__all__ = ["partition_graph", "merged_footprint_bytes", "memo_state_bytes"]


def memo_state_bytes(
    graph: Graph,
    member_ids: Sequence[int],
    brick_shape: Sequence[int] | int,
) -> int:
    """Memo-state bytes: one tag byte per (batch, brick) of every member.

    Mirrors the memoized executor's allocation exactly
    (``bytearray(batch * grid_bricks)`` per member), so the plan verifier
    can cross-check recorded footprints against this recomputation.
    ``brick_shape`` is the per-dimension brick side, or a single side applied
    uniformly (the partitioner's estimate before the brick-size model runs).
    """
    import math

    total = 0
    for nid in member_ids:
        spec = graph.node(nid).spec
        if not spec.spatial:
            continue
        if isinstance(brick_shape, int):
            sides: Sequence[int] = (brick_shape,) * len(spec.spatial)
        else:
            sides = brick_shape
        clamped = tuple(min(int(b), e) for b, e in zip(sides, spec.spatial))
        bricks = math.prod(-(-e // b) for e, b in zip(spec.spatial, clamped))
        total += spec.batch * bricks
    return total


def merged_footprint_bytes(
    graph: Graph,
    member_ids: Sequence[int],
    entry_ids: Sequence[int],
    brick_shape: Sequence[int] | int | None = None,
) -> int:
    """On-chip working set of merged execution over ``member_ids``.

    Memoized execution keeps every member's bricked activation live until
    the subgraph completes (bricks are consumed asynchronously), so the
    footprint is the sum of member activations plus the entry activations
    being read, plus the memo-state arrays (one tag byte per brick, from the
    actual brick count of the candidate -- ``brick_shape`` defaults to the
    finest brick candidate, the largest state the brick-size model can
    later pick).
    """
    total = 0
    for nid in list(member_ids) + list(entry_ids):
        total += graph.node(nid).spec.nbytes
    if brick_shape is None:
        brick_shape = min(DEFAULT_CONFIG.brick_candidates)
    total += memo_state_bytes(graph, member_ids, brick_shape)
    return total


def _is_global(node: Node) -> bool:
    return node.op.is_global or not node.op.is_local


def partition_graph(
    graph: Graph,
    spec: GPUSpec = A100,
    config: PerfModelConfig = DEFAULT_CONFIG,
    max_layers: int | None = None,
    layer_schedule: Sequence[int] | None = None,
) -> list[SubgraphView]:
    """Partition ``graph`` into subgraphs for merged execution.

    ``max_layers`` optionally caps the number of operators per merged
    subgraph.  ``layer_schedule`` forces exact group sizes in order (cycling
    the last entry), which is how the microbenchmarks realize the paper's
    2+2+2 / 3+3 / 4+2 / 6 merge configurations of Fig. 10; when given, the
    footprint and reduction rules are suspended (the sweep deliberately
    explores configurations the model would reject).
    """
    graph.validate()
    budget = int(spec.l2_bytes * config.l2_budget_fraction)
    views: list[SubgraphView] = []
    current: list[int] = []
    schedule = list(layer_schedule) if layer_schedule else None
    schedule_pos = 0

    def close() -> None:
        nonlocal schedule_pos
        if current:
            views.append(subgraph_view(graph, current))
            current.clear()
            schedule_pos += 1

    def quota() -> int | None:
        if schedule is None:
            return max_layers
        return schedule[min(schedule_pos, len(schedule) - 1)]

    for node in graph.nodes:
        if node.is_input:
            continue
        if _is_global(node):
            close()
            views.append(subgraph_view(graph, [node.node_id]))
            continue

        candidate = current + [node.node_id]
        if schedule is None:
            entries = _entries_of(graph, candidate)
            footprint = merged_footprint_bytes(
                graph, candidate, entries, min(config.brick_candidates))
            if current and footprint > budget:
                close()
                candidate = [node.node_id]
        cap = quota()
        if cap is not None and len(candidate) > cap:
            close()
            candidate = [node.node_id]
        current[:] = candidate

        if schedule is not None:
            if len(current) >= quota():
                close()
            continue

        # Rule 2: resolution changes end their subgraph -- pooling and
        # strided convolutions shrink the layer (the paper: "the analysis
        # typically places the last node in a subgraph as a reduction
        # operation"), and transposed convolutions grow it; either way the
        # brick grid changes regime, so the subgraph closes.  Small halo
        # shrinkage from unpadded convolutions does not count.
        if node.op.is_reduction or _changes_resolution(graph, node):
            close()

    close()
    return views


def _changes_resolution(graph: Graph, node: Node) -> bool:
    import math

    out_vol = math.prod(node.spec.spatial) if node.spec.spatial else 0
    for i in node.inputs:
        spec = graph.node(i).spec
        if not spec.spatial:
            continue
        in_vol = math.prod(spec.spatial)
        if out_vol < 0.6 * in_vol or out_vol > 1.5 * in_vol:
            return True
    return False


def _entries_of(graph: Graph, member_ids: Sequence[int]) -> list[int]:
    members = set(member_ids)
    entries: list[int] = []
    for nid in member_ids:
        for i in graph.node(nid).inputs:
            if i not in members and i not in entries:
                entries.append(i)
    return entries
