"""Merged execution with recursive memoized bricks (section 3.2.2).

Every (node, brick) in the subgraph is computed **exactly once** and cached
in a bricked memo tensor.  Dependencies are resolved top-down: a virtual
thread block working on an exit brick backtracks through the layers,
computing whatever dependent bricks are still missing -- Fig. 2(d)'s
recursive ``compConv2D``.

Concurrency is simulated with a deterministic round-robin scheduler over
``num_sms`` virtual workers.  Each brick carries the paper's three-state tag:

* ``0`` not started -- a worker CASes it to 1 and owns it (compulsory atomic),
* ``1`` in progress -- another worker observing this records a *conflict*
  atomic and either moves on to a different state-0 dependency or stalls,
* ``2`` complete -- with a release CAS (the second compulsory atomic).

A brick's computation occupies its worker for a number of scheduler turns
proportional to the modeled kernel time, so overlapping workers genuinely
collide on shared halo bricks: the conflict counts of Figs. 8/10/11 are an
emergent property of the schedule, not an input.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.geometry import SubgraphGeometry
from repro.core.handles import BrickedHandle
from repro.errors import ExecutionError
from repro.graph.regions import Region
from repro.graph.traversal import SubgraphView
from repro.gpusim.device import Device
from repro.gpusim.trace import Buffer, Task, brick_token, buffer_token
from repro.kernels import apply_node_local, pad_value_for

__all__ = ["MemoizedBrickExecutor", "HALO_NEIGHBORHOOD_BRICKS"]

_NOT_STARTED, _IN_PROGRESS, _COMPLETE = 0, 1, 2

# A brick's concurrent dependency set: itself plus its halo neighbors -- the
# ~27 bricks of a 3x3x3 spatial neighborhood (fewer in 2-D, but 27 is the
# paper's 3-D working regime and a safe upper bound).  The coalescing window
# spans one such neighborhood per concurrently resident worker.
HALO_NEIGHBORHOOD_BRICKS = 27


@dataclass
class _Frame:
    """One owned brick on a worker's recursion stack."""

    nid: int
    gpos: tuple[int, ...]
    batch: int
    deps: list[tuple[int, tuple[int, ...]]] | None = None
    blocked: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)


class MemoizedBrickExecutor:
    """Executes one merged subgraph with the memoized-bricks strategy."""

    def __init__(
        self,
        subgraph: SubgraphView,
        brick_shape: tuple[int, ...],
        device: Device,
        entries: dict[int, BrickedHandle],
        weight_buffers: dict[int, Buffer],
        functional: bool = True,
    ) -> None:
        self.subgraph = subgraph
        self.brick_shape = tuple(brick_shape)
        self.device = device
        self.entries = entries
        self.weight_buffers = weight_buffers
        self.functional = functional
        self.graph = subgraph.graph
        self.members = set(subgraph.node_ids)
        self.geom = SubgraphGeometry(subgraph)
        for eid in subgraph.entry_ids:
            if eid not in entries:
                raise ExecutionError(f"memoized executor missing entry handle for node {eid}")

        # Memo storage: a bricked tensor per member node.
        self.memo: dict[int, BrickedHandle] = {}
        self.states: dict[int, bytearray] = {}
        for nid in subgraph.node_ids:
            node = self.graph.node(nid)
            grid_bricks = math.prod(-(-e // b) for e, b in zip(node.spec.spatial, self.brick_shape))
            nbytes = node.spec.batch * grid_bricks * node.spec.channels * math.prod(self.brick_shape) * node.spec.itemsize
            buf = self.device.allocate(f"{node.name}/memo", nbytes, transient=True)
            self.memo[nid] = BrickedHandle.create(node.spec, self.brick_shape, buf, self.functional)
            self.states[nid] = bytearray(node.spec.batch * grid_bricks)
        # Per-brick geometry memo tables (see repro.core.geometry): the
        # scheduler resolves each (node, grid position) several times -- the
        # dependency scan, the sync stamping, and the task emission -- and
        # every batch sample repeats the same geometry, so these tables turn
        # the per-brick region algebra into dict hits.
        self._tmpl: dict[tuple[int, tuple[int, ...]], tuple] = {}
        self._dep_cache: dict[tuple[int, tuple[int, ...]],
                              list[tuple[int, tuple[int, ...]]]] = {}
        self._flat_geom = {nid: (h.grid.grid_shape, h.grid.num_bricks)
                           for nid, h in self.memo.items()}

        # Scheduler time quantum: set adaptively from the first task so a
        # brick computation spans a handful of rounds regardless of scale
        # (one round = one action per virtual worker).
        self._quantum: float | None = None
        self.total_conflicts = 0
        self.total_compulsory = 0
        self.total_visits = 0
        # Memoization effectiveness: completed-tag observations (a consumer
        # found its dependency already computed -- the "reuse" the strategy
        # exists for) and protocol-coalesced brick re-reads (certified L2
        # hits).  Both feed the metrics registry at the end of the run.
        self.total_reuses = 0
        self.coalesced_reads = 0
        # Consumer-coalescing brick LRU: the 3-state protocol synchronizes a
        # brick's consumers around its completion and the 108 workers run
        # truly concurrently, so re-reads within the *concurrent* working
        # window hit L2.  A strictly serialized replay of the worker streams
        # would charge them as capacity misses, so the executor tracks brick
        # recency itself, with an effective capacity of ``coalesce_factor``
        # concurrent L2 windows (see DESIGN.md, "consumer coalescing").
        # Window size: the fleet's concurrent dependency sets (one ~27-brick
        # halo neighborhood per worker), floored by a multiple of the L2's
        # own brick capacity.
        max_brick_bytes = max(h.brick_nbytes for h in self.memo.values())
        l2_bricks = device.spec.l2_bytes // max(1, max_brick_bytes)
        # Deeper merged regions interleave more layers' bricks through the
        # same concurrent window, diluting per-layer residency: the window
        # shrinks with the square root of the merge depth.
        depth = max(1, subgraph.depth)
        wave = int(HALO_NEIGHBORHOOD_BRICKS * device.spec.num_sms * min(1.0, 3.0 / depth))
        self._recent_capacity = max(8 * l2_bricks, wave, 64)
        self._recent: "OrderedDict[tuple[int, int], None]" = OrderedDict()
        self._round = 0
        self._busy_rounds = 0
        self._durations: list[float] = []

    # -- public ----------------------------------------------------------------
    def run(self) -> dict[int, BrickedHandle]:
        goals = self._sink_goals()
        num_workers = self.device.spec.num_sms
        # Clustered assignment: each worker owns a contiguous chunk of exit
        # bricks (the paper's clustered thread blocks).
        chunks: list[list[tuple[int, tuple[int, ...], int]]] = [[] for _ in range(num_workers)]
        per = -(-len(goals) // num_workers) if goals else 1
        for i, g in enumerate(goals):
            chunks[min(i // per, num_workers - 1)].append(g)

        workers = [_WorkerState(index=i, queue=list(reversed(chunk)))
                   for i, chunk in enumerate(chunks)]
        self._workers = workers
        active = [w for w in workers if w.queue]

        while active:
            self._round += 1
            if any(w.busy for w in active):
                self._busy_rounds += 1
            still = []
            for w in active:
                self._step(w)
                if w.queue or w.stack or w.busy:
                    still.append(w)
            active = still
        # Scheduler-level atomic conflicts and memo-table visits feed the
        # device's counters (compulsory atomics ride on the tasks).
        self.device.atomics.conflict += self.total_conflicts
        self.device.add_overhead(self.total_visits * self.device.spec.memo_visit_s / max(1, self.device.spec.num_sms))
        # Dependency-stall overhead: the simulated wall clock (rounds x
        # quantum) exceeds the ideal independent-task makespan when workers
        # stall on in-progress bricks -- the recursion serialization that
        # grows with merge depth (the paper's "Other" time: recursion,
        # synchronization, stalls).
        if self._quantum is not None and self._workers:
            # Stall turns are discounted: an SM whose resident block spins on
            # a tag runs its other resident thread blocks meanwhile (A100 SMs
            # hold many blocks), so only ~1/4 of stall time surfaces as lost
            # wall-clock.
            wall = max(w.busy_turns + w.stall_turns / 4.0 for w in self._workers) * self._quantum
            ideal = sum(self._durations) / max(1, self.device.spec.num_sms)
            if wall > ideal:
                self.device.add_overhead(wall - ideal)
        reg = self.device.metrics_registry
        reg.inc("memo_cas_retries", self.total_conflicts)
        reg.inc("memo_compulsory_cas", self.total_compulsory)
        reg.inc("memo_table_visits", self.total_visits)
        reg.inc("memo_bricks_computed", len(self._durations))
        reg.inc("memo_bricks_reused", self.total_reuses)
        reg.inc("memo_coalesced_reads", self.coalesced_reads)
        self.device.synchronize()  # reduction across bricks at subgraph end
        return {eid: self.memo[eid] for eid in self.subgraph.exit_ids}

    # -- scheduling ---------------------------------------------------------
    def _step(self, w: "_WorkerState") -> None:
        if w.busy > 0:
            w.busy -= 1
            w.busy_turns += 1
            if w.busy == 0:
                nid, gpos, batch = w.computing
                self._set_state(nid, gpos, batch, _COMPLETE)
                w.stack.pop()
            return

        if not w.stack:
            while w.queue:
                nid, gpos, batch = w.queue.pop()
                state = self._get_state(nid, gpos, batch)
                self.total_visits += 1
                if state == _NOT_STARTED:
                    self._acquire(w, nid, gpos, batch)
                    return
                if state == _IN_PROGRESS:
                    # Our exit brick is being produced by another worker;
                    # spin on it (conflict CAS) until it completes.
                    self.total_conflicts += self._spins_per_turn()
                    w.stall_turns += 1
                    w.queue.append((nid, gpos, batch))
                    return
                # _COMPLETE: someone already made it; take the next goal.
                self.total_reuses += 1
            return

        frame = w.stack[-1]
        if frame.deps is None:
            frame.deps = self._dependencies(frame.nid, frame.gpos, frame.batch)

        # Scan pending dependencies; prefer state-0 work (descend), remember
        # in-progress blocks for later, and only stall when nothing else is
        # runnable.  Unscanned deps are retained for the next turn.
        pending = frame.blocked + frame.deps
        keep: list[tuple[int, tuple[int, ...]]] = []
        for idx, dep in enumerate(pending):
            dnid, dgpos = dep
            state = self._get_state(dnid, dgpos, frame.batch)
            self.total_visits += 1
            if state == _COMPLETE:
                self.total_reuses += 1
                continue
            if state == _IN_PROGRESS:
                self.total_conflicts += self._spins_per_turn()
                keep.append(dep)
                continue
            # state 0: descend into this dependency this turn; everything not
            # yet scanned stays pending.
            frame.blocked = keep + pending[idx + 1:]
            frame.deps = []
            self._acquire(w, dnid, dgpos, frame.batch)
            return
        frame.blocked = keep
        frame.deps = []
        if keep:
            w.stall_turns += 1
            return  # stall this turn; owners are progressing elsewhere
        # All dependencies complete: compute this brick.
        self._start_compute(w, frame)

    def _spins_per_turn(self) -> int:
        """Conflict CAS issued while stalled for one scheduler turn.

        A stalled thread block re-issues its CAS at the hardware spin
        interval; one scheduler turn spans one time quantum.
        """
        if self._quantum is None:
            return 1
        return max(1, round(self._quantum / self.device.spec.spin_interval_s))

    def _acquire(self, w: "_WorkerState", nid: int, gpos: tuple[int, ...], batch: int) -> None:
        self._set_state(nid, gpos, batch, _IN_PROGRESS)
        self.total_compulsory += 2  # acquire now, release at completion
        w.stack.append(_Frame(nid=nid, gpos=gpos, batch=batch))

    def _brick_geom(self, nid: int, gpos: tuple[int, ...]) -> tuple:
        """(region, needs, offsets, flops) for one brick, memoized.

        Pure geometry -- identical for every batch sample and every
        resolution of the same (node, grid position) pair."""
        key = (nid, gpos)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            node = self.graph.node(nid)
            region = self.memo[nid].grid.brick_region(gpos, clipped=True)
            needs, offsets = self.geom.needs(nid, region)
            flops = self.geom.flops(nid, node.spec.channels * region.size)
            tmpl = (region, needs, offsets, flops)
            self._tmpl[key] = tmpl
        return tmpl

    def _start_compute(self, w: "_WorkerState", frame: _Frame) -> None:
        node = self.graph.node(frame.nid)
        handle = self.memo[frame.nid]
        # One need region and offset tuple per input: inputs may have
        # differing halos, so each patch is aligned by its own
        # receptive-field offsets.
        region, needs, offsets, flops = self._brick_geom(frame.nid, frame.gpos)

        task = Task(label=f"memo/{node.name}/{frame.gpos}", node_id=frame.nid,
                    strategy="memoized", worker=w.index,
                    brick=frame.gpos, batch_index=frame.batch)
        for input_index, pred in enumerate(node.inputs):
            source = self.memo.get(pred) or self.entries.get(pred)
            if source is None:
                raise ExecutionError(f"no source handle for predecessor {pred}")
            self._read_bricks(task, source, frame.batch, needs[input_index])
        wb = self.weight_buffers.get(frame.nid)
        if wb is not None and wb.nbytes:
            task.read(wb, 0, wb.nbytes)
        own_offset = handle.brick_offset(frame.batch, frame.gpos)
        handle.emit_brick_write(task, frame.batch, frame.gpos)
        self._touch((handle.buffer.buffer_id, own_offset))
        self._stamp_sync(task, frame, own_offset)
        task.flops = flops
        task.atomics_compulsory = 2
        task.visits = 0  # visits are tracked globally by the scheduler

        if self.functional:
            fill = pad_value_for(node.op)
            patches = []
            for need, pred in zip(needs, node.inputs):
                source = self.memo.get(pred) or self.entries.get(pred)
                patches.append(source.gather(frame.batch, need, fill))
            values = apply_node_local(node.op, patches, node.weights, region.shape, offsets)
            handle.scatter(frame.batch, region, values)

        self.device.submit(task)
        if self.functional:
            self.device.note_values(task, frame.nid, values)
        duration = self.device.spec.task_time(task.flops, task.calls)
        self._durations.append(duration)
        if self._quantum is None:
            self._quantum = max(self.device.spec.call_overhead_s, duration / 4.0)
        w.busy = max(1, round(duration / self._quantum))
        w.computing = (frame.nid, frame.gpos, frame.batch)

    def _stamp_sync(self, task: Task, frame: _Frame, own_offset: int) -> None:
        """Stamp the protocol's happens-before edges on a brick task.

        Acquires: the tag-checked member dependency bricks (the consumer
        side of each dep's completion CAS) plus the whole-buffer token of
        every entry source read (kernel-launch ordering against the layout
        conversion that produced it).  Releases: this brick's own completion
        CAS and its memo buffer's whole-buffer token.  These mirror exactly
        what the simulated protocol synchronizes with -- the execution
        sanitizer's race detector trusts nothing else.
        """
        handle = self.memo[frame.nid]
        for dnid, dgpos in self._dependencies(frame.nid, frame.gpos, frame.batch):
            dep = self.memo[dnid]
            task.acquire(brick_token(dep.buffer, dep.brick_offset(frame.batch, dgpos)))
        for pred in self.graph.node(frame.nid).inputs:
            if pred not in self.members:
                source = self.entries.get(pred)
                if source is not None:
                    task.acquire(buffer_token(source.buffer))
        task.release(brick_token(handle.buffer, own_offset))
        task.release(buffer_token(handle.buffer))

    def _touch(self, key: tuple[int, int]) -> bool:
        """Refresh a brick in the recency LRU; returns True if it was hot."""
        hot = key in self._recent
        if hot:
            self._recent.move_to_end(key)
        else:
            self._recent[key] = None
            if len(self._recent) > self._recent_capacity:
                self._recent.popitem(last=False)
        return hot

    def _read_bricks(self, task: Task, source, batch: int, need: Region) -> None:
        """Emit dep-brick reads, coalescing protocol-synchronized re-reads.

        Dense graph inputs are read directly with strided accesses (BrickDL
        forms bricks as the first layer's tasks stream the input)."""
        if not isinstance(source, BrickedHandle):
            source.emit_region_read(task, batch, need)
            return
        # Brick offsets come from the handle's cached per-region physical
        # vector; the per-brick read rows stay individual (the hot flag is
        # scheduler state, so rows within one region genuinely differ).
        phys = source._region_physical(need)
        if phys.size == 0:
            return
        nbytes = source.brick_nbytes
        buffer = source.buffer
        bid = buffer.buffer_id
        for offset in ((batch * source.grid.num_bricks + phys) * nbytes).tolist():
            hot = self._touch((bid, offset))
            if hot:
                self.coalesced_reads += 1
            task.read(buffer, offset, nbytes, assume_l2=hot)

    # -- dependencies -----------------------------------------------------------
    def _dependencies(self, nid: int, gpos: tuple[int, ...], batch: int) -> list[tuple[int, tuple[int, ...]]]:
        """Member bricks this brick reads (entries are always available).

        Batch-independent, so the result is memoized per (node, grid
        position) and shared between the dependency scan and the sync
        stamping.  Callers must not mutate the returned list."""
        key = (nid, gpos)
        deps = self._dep_cache.get(key)
        if deps is None:
            node = self.graph.node(nid)
            _, needs, _, _ = self._brick_geom(nid, gpos)
            deps = []
            for input_index, pred in enumerate(node.inputs):
                if pred not in self.members:
                    continue
                for dep_pos in self.memo[pred].grid.overlap_plan(needs[input_index]):
                    deps.append((pred, dep_pos))
            self._dep_cache[key] = deps
        return deps

    # -- state ---------------------------------------------------------------
    def _flat(self, nid: int, gpos: tuple[int, ...], batch: int) -> int:
        grid, num_bricks = self._flat_geom[nid]
        idx = 0
        for p, g in zip(gpos, grid):
            idx = idx * g + p
        return batch * num_bricks + idx

    def _get_state(self, nid: int, gpos: tuple[int, ...], batch: int) -> int:
        return self.states[nid][self._flat(nid, gpos, batch)]

    def _set_state(self, nid: int, gpos: tuple[int, ...], batch: int, state: int) -> None:
        self.states[nid][self._flat(nid, gpos, batch)] = state

    def _sink_goals(self) -> list[tuple[int, tuple[int, ...], int]]:
        """Exit bricks in spatially clustered order.

        Goals are sorted by coarse cubic cluster so each worker's contiguous
        chunk is a compact spatial block rather than a row-major stripe:
        dependent bricks are then shared mostly *within* a chunk (short L2
        reuse distances) instead of across distant workers.
        """
        goals = []
        batch = self.graph.node(self.subgraph.node_ids[0]).spec.batch
        num_workers = max(1, self.device.spec.num_sms)
        for eid in self.subgraph.exit_ids:
            handle = self.memo[eid]
            grid = handle.grid.grid_shape
            nd = len(grid)
            total = handle.grid.num_bricks
            # Cluster side so that one cluster is roughly one worker's share.
            share = max(1, total // num_workers)
            side = max(1, round(share ** (1.0 / nd)))
            def cluster_key(gpos: tuple[int, ...]) -> tuple:
                return (tuple(p // side for p in gpos), gpos)
            for gpos in sorted(handle.bricks(), key=cluster_key):
                for n in range(batch):
                    goals.append((eid, gpos, n))
        return goals


@dataclass
class _WorkerState:
    index: int
    queue: list[tuple[int, tuple[int, ...], int]]
    stack: list[_Frame] = field(default_factory=list)
    busy: int = 0
    computing: tuple[int, tuple[int, ...], int] | None = None
    busy_turns: int = 0    # turns spent computing bricks
    stall_turns: int = 0   # turns spent spinning on in-progress bricks
