"""BrickDL core: the paper's contribution.

* :mod:`repro.core.brick` / :mod:`repro.core.bricked` -- the brick data
  layout (Brick, BrickMap, BrickInfo; section 3.3.4),
* :mod:`repro.core.halo` -- static halo analysis (section 3.2.1),
* :mod:`repro.core.padded` / :mod:`repro.core.memoized` -- the two merged
  execution strategies (sections 3.2.1-3.2.2),
* :mod:`repro.core.partition` -- DNN graph partitioning (section 3.3.1),
* :mod:`repro.core.perfmodel` -- strategy / brick-size performance models
  (sections 3.3.2-3.3.3),
* :mod:`repro.core.wavefront` -- time-skewed wavefront execution (the
  section-6 extension),
* :mod:`repro.core.tuner` -- empirical per-subgraph tuning vs the models,
* :mod:`repro.core.engine` -- the user-facing BrickDL engine,
* :mod:`repro.core.reference` -- naive layer-by-layer ground truth.
"""

from repro.core.brick import Brick, BrickInfo, BrickMap, morton_map
from repro.core.bricked import BrickedTensor, BrickGrid
from repro.core.engine import BrickDLEngine, EngineResult
from repro.core.partition import partition_graph
from repro.core.perfmodel import PerfModelConfig, choose_brick_size, choose_strategy
from repro.core.plan import ExecutionPlan, Strategy, SubgraphPlan
from repro.core.reference import ReferenceExecutor
from repro.core.tuner import tune_plan

__all__ = [
    "Brick",
    "BrickMap",
    "BrickInfo",
    "BrickGrid",
    "BrickedTensor",
    "BrickDLEngine",
    "EngineResult",
    "partition_graph",
    "PerfModelConfig",
    "choose_brick_size",
    "choose_strategy",
    "ExecutionPlan",
    "SubgraphPlan",
    "Strategy",
    "ReferenceExecutor",
    "morton_map",
    "tune_plan",
]
