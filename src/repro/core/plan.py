"""Execution plan data structures.

Compilation (static analysis) turns a :class:`~repro.graph.ir.Graph` into an
:class:`ExecutionPlan`: an ordered list of :class:`SubgraphPlan` entries,
each carrying the subgraph view, the chosen merged-execution
:class:`Strategy`, the brick shape, and the analysis artifacts
(``delta``, parallelism ``rho``) that justified the choice -- so benchmarks
and tests can interrogate *why* the model decided what it did.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.graph.ir import Graph
from repro.graph.traversal import SubgraphView

__all__ = ["Strategy", "SubgraphPlan", "ExecutionPlan"]


class Strategy(enum.Enum):
    """How a subgraph is executed."""

    PADDED = "padded"        # merged execution, padded bricks (section 3.2.1)
    MEMOIZED = "memoized"    # merged execution, memoized bricks (section 3.2.2)
    WAVEFRONT = "wavefront"  # merged execution, time-skewed waves (section 6 extension)
    CUDNN = "cudnn"          # vendor-library fallback: tiny layers / global ops


@dataclass(frozen=True)
class SubgraphPlan:
    """One partition of the graph and its execution decision."""

    index: int
    subgraph: SubgraphView
    strategy: Strategy
    brick_shape: tuple[int, ...] = ()
    delta: float = 0.0            # padding data growth (drives padded/memoized)
    rho: float = 0.0              # parallelism of the brick-size model
    footprint_bytes: int = 0      # analyzed on-chip working set
    reason: str = ""              # human-readable model justification

    @property
    def is_merged(self) -> bool:
        return self.strategy in (Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT)

    @property
    def num_layers(self) -> int:
        return len(self.subgraph)

    def describe(self) -> str:
        names = [self.subgraph.graph.node(i).name for i in self.subgraph.node_ids]
        brick = "x".join(map(str, self.brick_shape)) if self.brick_shape else "-"
        return (
            f"subgraph {self.index}: {len(names)} ops [{names[0]} .. {names[-1]}] "
            f"-> {self.strategy.value} (brick {brick}, delta={self.delta:.1%}, "
            f"rho={self.rho:.0f}) {self.reason}"
        )


@dataclass
class ExecutionPlan:
    """The compiled plan for a whole graph."""

    graph: Graph
    subgraphs: list[SubgraphPlan] = field(default_factory=list)

    @property
    def merged_count(self) -> int:
        return sum(1 for s in self.subgraphs if s.is_merged)

    def digest(self) -> str:
        """Stable digest of the plan's decisions (not its timings).

        The same fingerprint the run manifests record, so a serving-layer
        plan-cache entry, a ``BENCH_*.json`` baseline, and a perf diff all
        talk about plans in one currency.
        """
        from repro.metrics.manifest import plan_digest

        return plan_digest(self)

    def summary(self) -> str:
        lines = [f"ExecutionPlan for {self.graph.name!r}: {len(self.subgraphs)} subgraphs "
                 f"({self.merged_count} merged)"]
        lines += ["  " + s.describe() for s in self.subgraphs]
        return "\n".join(lines)
