"""Merged execution with time-skewed wavefronts (paper section 6).

The paper's discussion points at wavefront parallelization and "skewed cuts
across layers" as the next data-movement optimization beyond padded and
memoized bricks.  This module implements that extension: a third merged
execution strategy that schedules bricks on a **time-skewed wavefront**,
the classic stencil technique (Wolfe 1986; Wellein et al. 2009) adapted to
operator chains whose computation changes per layer.

For a stride-preserving chain of ``L`` layers, brick ``g`` of layer ``l``
lands on wave ``w = g_0 + l * s`` where ``g_0`` is the brick's index along
the skew dimension and the skew factor ``s`` exceeds the halo reach in
bricks.  The executor derives waves by dependency longest-path (first-layer
bricks staggered by ``g_0``, every other brick one wave after its latest
member dependency), which reproduces that static placement for stride-1
chains and stays exact for downsampling layers, where the dependency
distance grows with position and no constant skew is safe.  Either way,
every dependency lands on an earlier wave *by construction*:

* like memoized bricks, every (layer, brick) is computed exactly once --
  no redundant halo computation;
* unlike memoized bricks, the schedule is static -- **no tags, no atomic
  CAS, no recursion**; the cost moves into one device synchronization per
  wave and reduced parallelism on the skew boundary waves.

The strategy applies to *chain* subgraphs (each member consumes at most one
member; branches would need multi-dimensional skewing).  The engine falls
back to memoized bricks for non-chains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.geometry import SubgraphGeometry
from repro.core.handles import BrickedHandle, DenseHandle
from repro.errors import ExecutionError
from repro.graph.regions import Interval
from repro.graph.traversal import SubgraphView
from repro.gpusim.device import Device
from repro.gpusim.trace import Buffer, Task, brick_token, buffer_token
from repro.kernels import apply_node_local, pad_value_for

__all__ = ["WavefrontBrickExecutor", "is_chain_subgraph", "skew_factor"]


def is_chain_subgraph(subgraph: SubgraphView) -> bool:
    """True when every member consumes at most one member (a linear chain)."""
    members = set(subgraph.node_ids)
    graph = subgraph.graph
    for nid in subgraph.node_ids:
        node = graph.node(nid)
        member_preds = [i for i in node.inputs if i in members]
        if len(member_preds) > 1:
            return False
        member_consumers = [c for c in graph.consumers(nid) if c in members]
        if len(member_consumers) > 1:
            return False
    return True


def skew_factor(subgraph: SubgraphView, brick_shape: tuple[int, ...]) -> int:
    """Skew so every layer's halo reach (in bricks, along dim 0) is covered.

    For a brick of side ``B`` and an operator whose output interval of size
    ``B`` needs ``B + 2p`` input elements, the reach is ``ceil(p / B)``
    bricks; the skew must exceed the largest per-layer reach.
    """
    graph = subgraph.graph
    reach = 0
    for nid in subgraph.node_ids:
        node = graph.node(nid)
        input_specs = [graph.node(i).spec for i in node.inputs]
        for idx in range(len(node.inputs)):
            m = node.op.rf_maps(input_specs, idx)[0]
            probe = m.in_interval(Interval(0, brick_shape[0]))
            lo_reach = max(0, -probe.lo)
            hi_reach = max(0, probe.hi - brick_shape[0])
            reach = max(reach, -(-lo_reach // brick_shape[0]), -(-hi_reach // brick_shape[0]))
    return reach + 1


@dataclass
class WavefrontBrickExecutor:
    """Executes one merged *chain* subgraph on time-skewed wavefronts."""

    subgraph: SubgraphView
    brick_shape: tuple[int, ...]
    device: Device
    entries: dict[int, BrickedHandle | DenseHandle]
    weight_buffers: dict[int, Buffer]
    functional: bool = True

    def __post_init__(self) -> None:
        if not is_chain_subgraph(self.subgraph):
            raise ExecutionError(
                f"wavefront execution requires a chain subgraph; "
                f"{self.subgraph.describe()} has branches"
            )
        for eid in self.subgraph.entry_ids:
            if eid not in self.entries:
                raise ExecutionError(f"wavefront executor missing entry handle for node {eid}")
        graph = self.subgraph.graph
        self.memo: dict[int, BrickedHandle] = {}
        for nid in self.subgraph.node_ids:
            node = graph.node(nid)
            grid_bricks = math.prod(-(-e // b) for e, b in zip(node.spec.spatial, self.brick_shape))
            nbytes = (node.spec.batch * grid_bricks * node.spec.channels
                      * math.prod(self.brick_shape) * node.spec.itemsize)
            buf = self.device.allocate(f"{node.name}/wave", nbytes, transient=True)
            self.memo[nid] = BrickedHandle.create(node.spec, self.brick_shape, buf, self.functional)
        self.skew = skew_factor(self.subgraph, self.brick_shape)
        self.num_waves = 0
        # Per-brick geometry memo (see repro.core.geometry): the wave
        # placement pass and the per-sample compute pass resolve the same
        # (node, grid position) regions, so the receptive-field algebra runs
        # once per brick rather than once per resolution.
        self.geom = SubgraphGeometry(self.subgraph)
        self._tmpl: dict[tuple[int, tuple[int, ...]], tuple] = {}

    def _brick_geom(self, nid: int, gpos: tuple[int, ...]) -> tuple:
        """(region, needs, offsets, flops) for one brick, memoized."""
        key = (nid, gpos)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            node = self.subgraph.graph.node(nid)
            region = self.memo[nid].grid.brick_region(gpos, clipped=True)
            needs, offsets = self.geom.needs(nid, region)
            flops = self.geom.flops(nid, node.spec.channels * region.size)
            tmpl = (region, needs, offsets, flops)
            self._tmpl[key] = tmpl
        return tmpl

    def run(self) -> dict[int, BrickedHandle]:
        graph = self.subgraph.graph
        batch = graph.node(self.subgraph.node_ids[0]).spec.batch

        # Wave membership by dependency longest-path: a first-layer brick
        # runs on wave ``g[0]`` (the classic stagger along the skew dim);
        # every other brick runs one wave after the latest member brick it
        # reads.  For stride-1 chains this reproduces the static
        # ``g[0] + l * skew`` placement; for downsampling layers (pooling,
        # strided convs) -- where the dependency distance grows with
        # position and *no* constant skew is safe -- it remains exact by
        # construction.
        max_wave = 0
        waves: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
        wave_of: dict[tuple[int, tuple[int, ...]], int] = {}
        for nid in self.subgraph.node_ids:
            handle = self.memo[nid]
            node = graph.node(nid)
            member_pred = next((i for i in node.inputs if i in self.memo), None)
            idx = node.inputs.index(member_pred) if member_pred is not None else -1
            for gpos in handle.bricks():
                if member_pred is None:
                    w = gpos[0]
                else:
                    _, needs, _, _ = self._brick_geom(nid, gpos)
                    source = self.memo[member_pred]
                    dep_waves = [wave_of[(member_pred, dp)]
                                 for dp in source.grid.overlap_plan(needs[idx])]
                    w = max(dep_waves) + 1 if dep_waves else 0
                wave_of[(nid, gpos)] = w
                waves.setdefault(w, []).append((nid, gpos))
                max_wave = max(max_wave, w)

        for w in range(max_wave + 1):
            for nid, gpos in waves.get(w, ()):
                for n in range(batch):
                    self._compute_brick(nid, gpos, n)
            # The wave boundary is the synchronization point (in place of
            # the memoized strategy's per-brick atomics).
            self.device.synchronize()
        self.num_waves = max_wave + 1
        reg = self.device.metrics_registry
        reg.inc("wavefront_waves", self.num_waves)
        reg.gauge("wavefront_skew").set(self.skew)
        return {eid: self.memo[eid] for eid in self.subgraph.exit_ids}

    def _compute_brick(self, nid: int, gpos: tuple[int, ...], batch: int) -> None:
        graph = self.subgraph.graph
        node = graph.node(nid)
        handle = self.memo[nid]
        # Per-input needs/offsets: inputs may carry differing halos (skip
        # adds); the geometry is shared with the wave-placement pass.
        region, needs, offsets, flops = self._brick_geom(nid, gpos)
        if region.is_empty():
            return

        task = Task(label=f"wave/{node.name}/{gpos}", node_id=nid, strategy="wavefront",
                    brick=gpos, batch_index=batch)
        for input_index, pred in enumerate(node.inputs):
            need = needs[input_index]
            source = self.memo.get(pred) or self.entries.get(pred)
            if source is None:
                raise ExecutionError(f"no source handle for predecessor {pred}")
            if isinstance(source, BrickedHandle):
                # Producer bricks completed on earlier waves; the wave
                # schedule keeps the producing front L2-hot.  Member deps
                # deliberately carry NO acquire edges: the per-wave barrier
                # is the protocol, so a broken skew factor surfaces as a
                # happens-before race under the sanitizer.  All dep-brick
                # reads are uniform, so they go out as one batch.
                phys = source._region_physical(need)
                if phys.size:
                    nbytes = source.brick_nbytes
                    task.read_batch(
                        source.buffer,
                        (batch * source.grid.num_bricks + phys) * nbytes,
                        nbytes)
                if pred not in self.memo:
                    task.acquire(buffer_token(source.buffer))
            else:
                source.emit_region_read(task, batch, need)
                task.acquire(buffer_token(source.buffer))
        wb = self.weight_buffers.get(nid)
        if wb is not None and wb.nbytes:
            task.read(wb, 0, wb.nbytes)
        own_offset = handle.brick_offset(batch, gpos)
        handle.emit_brick_write(task, batch, gpos)
        task.flops = flops

        if self.functional:
            fill = pad_value_for(node.op)
            patches = []
            for need, pred in zip(needs, node.inputs):
                source = self.memo.get(pred) or self.entries.get(pred)
                patches.append(source.gather(batch, need, fill))
            values = apply_node_local(node.op, patches, node.weights, region.shape, offsets)
            handle.scatter(batch, region, values)
        task.release(brick_token(handle.buffer, own_offset))
        task.release(buffer_token(handle.buffer))
        self.device.submit(task)
        if self.functional:
            self.device.note_values(task, nid, values)
