"""The BrickDL engine: compile a graph, execute the plan.

``compile`` runs the static analyses of section 3.3 in order: graph
partitioning (L2-footprint + reduction/global boundaries), the brick-size
model (``rho <= tau``), and the padded-vs-memoized strategy model
(``delta > 15 %``), producing an :class:`~repro.core.plan.ExecutionPlan`.

``run`` executes the plan on a simulated device: merged subgraphs go through
the padded- or memoized-brick executors on brick-layout activations; global
operators and insufficient-parallelism subgraphs fall back to the tiled
vendor-library path (section 3.3.3).  Activations crossing representation
boundaries are converted explicitly -- the paper's "cost of creating bricks",
which the metrics include.

Like all executors in this library, the engine runs either *functionally*
(numerics checkable against :class:`~repro.core.reference.ReferenceExecutor`)
or in *profile* mode (access streams and timing only).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.bricked import BrickedTensor
from repro.core.halo import padding_growth
from repro.core.handles import BrickedHandle, DenseHandle
from repro.core.memoized import MemoizedBrickExecutor
from repro.core.padded import PaddedBrickExecutor
from repro.core.partition import merged_footprint_bytes, partition_graph
from repro.core.perfmodel import (
    DEFAULT_CONFIG,
    PerfModelConfig,
    choose_brick_size,
    choose_strategy,
    parallelism,
)
from repro.core.plan import ExecutionPlan, Strategy, SubgraphPlan
from repro.core.reference import ReferenceExecutor
from repro.errors import ExecutionError, PlanError
from repro.graph.ir import Graph, Node
from repro.graph.regions import Region
from repro.graph.ops import Conv, ConvTranspose, FusedOp, Pool
from repro.graph.traversal import SubgraphView
from repro.gpusim.device import Device, RunMetrics
from repro.gpusim.spec import A100, GPUSpec
from repro.gpusim.trace import Task, buffer_token

__all__ = ["BrickDLEngine", "EngineResult"]


@dataclass
class EngineResult:
    """Outputs and metrics of one engine execution.

    ``per_subgraph`` attributes counter growth to each plan entry (the
    automatic analogue of the paper's ResNet-50 case study): a list aligned
    with ``plan.subgraphs`` of dicts with ``dram_txns``, ``flops``,
    ``atomics_*``, ``num_tasks``, ``dram_time_s`` etc., rolled up from the
    run's :class:`~repro.profiling.TraceCollector` (``trace``), which also
    holds the full per-task timeline for export.
    """

    outputs: dict[str, np.ndarray] | None
    metrics: RunMetrics
    plan: ExecutionPlan
    per_subgraph: list[dict] = field(default_factory=list)
    trace: "TraceCollector | None" = None
    # When the engine ran with ``sanitize=True``: the execution sanitizer's
    # AnalysisReport (shadow memory, happens-before, numeric screening).
    sanitizer_report: "AnalysisReport | None" = None
    # The device's hierarchical metrics registry for the run (labels:
    # model/strategy/brick/subgraph/node), consumed by run manifests and the
    # exporters in :mod:`repro.metrics`.
    registry: "MetricsRegistry | None" = None

    @property
    def total_time(self) -> float:
        return self.metrics.total_time

    def attribution_table(self) -> str:
        """A readable per-subgraph cost table."""
        from repro.bench.reporting import format_table

        rows = []
        for sub, d in zip(self.plan.subgraphs, self.per_subgraph):
            rows.append([
                sub.index, sub.strategy.value, len(sub.subgraph),
                d["num_tasks"], f"{d['flops'] / 1e9:.3f}",
                d["dram_txns"], f"{d['dram_time_s'] * 1e3:.3f}",
                d["atomics_compulsory"] + d["atomics_conflict"],
            ])
        return format_table(
            ["subgraph", "strategy", "ops", "tasks", "GFLOP", "DRAM txns",
             "DRAM ms", "atomics"], rows,
            title=f"per-subgraph attribution: {self.plan.graph.name}")

    def node_attribution_table(self) -> str:
        """A readable per-node cost table from the collected trace."""
        from repro.bench.reporting import format_table

        if self.trace is None:
            return "(no trace collected)"
        names = {n.node_id: n.name for n in self.plan.graph.nodes}
        table = self.trace.per_node()
        rows = []
        order = sorted((k for k in table if k is not None))
        for nid in order + ([None] if None in table else []):
            d = table[nid]
            rows.append([
                "-" if nid is None else nid,
                names.get(nid, d["label"]),
                "/".join(sorted(d["strategies"])) or "-",
                d["num_tasks"], f"{d['flops'] / 1e9:.3f}",
                d["dram_txns"], f"{d['dram_time_s'] * 1e3:.3f}",
                d["atomics_compulsory"] + d["atomics_conflict"],
            ])
        return format_table(
            ["node", "name", "strategy", "tasks", "GFLOP", "DRAM txns",
             "DRAM ms", "atomics"], rows,
            title=f"per-node attribution: {self.plan.graph.name}")


def _max_kernel_extent(graph: Graph, node_ids) -> int:
    """Largest *effective* kernel extent among member ops: the brick side
    must be at least the filter footprint (section 3.3.4).  Dilation widens
    the footprint -- a rate-4 dilated 3x3 spans 9 elements, and bricks
    smaller than that drown in neighbor dependencies."""
    k = 1
    for nid in node_ids:
        op = graph.node(nid).op
        if isinstance(op, FusedOp):
            op = op.primary  # pointwise epilogues never widen the footprint
        if isinstance(op, (Conv, ConvTranspose, Pool)):
            dil = getattr(op, "dilation", (1,) * len(op.kernel))
            k = max(k, max((kk - 1) * d + 1 for kk, d in zip(op.kernel, dil)))
    return k


class BrickDLEngine:
    """Compile-and-run facade for BrickDL merged execution."""

    def __init__(
        self,
        graph: Graph,
        spec: GPUSpec = A100,
        config: PerfModelConfig = DEFAULT_CONFIG,
        strategy_override: Strategy | None = None,
        brick_override: int | None = None,
        max_layers: int | None = None,
        layer_schedule: tuple[int, ...] | None = None,
        strict: bool = False,
        sanitize: bool = False,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.spec = spec
        self.config = config
        self.strategy_override = strategy_override
        self.brick_override = brick_override
        self.max_layers = max_layers
        self.layer_schedule = layer_schedule
        self.strict = strict
        self.sanitize = sanitize
        # Set by ``compile(optimize=True)``: the rewrite runner's report
        # (rules fired, per-step validation), consumed by run manifests.
        self.rewrite_report: "RewriteReport | None" = None

    def for_batch(self, batch: int) -> "BrickDLEngine":
        """An engine over this graph rebatched to ``batch`` samples.

        The serving layer's dynamic batcher compiles one plan per batch
        bucket: batch size changes activation volumes, which moves the
        L2-footprint partitioning and therefore the whole plan (section 3.3).
        Weights are shared with the base graph, so batched outputs stay
        bit-identical to single-shot runs of the original.
        """
        from repro.graph.transforms import rebatch_graph

        return BrickDLEngine(
            rebatch_graph(self.graph, batch),
            spec=self.spec,
            config=self.config,
            strategy_override=self.strategy_override,
            brick_override=self.brick_override,
            max_layers=self.max_layers,
            layer_schedule=self.layer_schedule,
            strict=self.strict,
            sanitize=self.sanitize,
        )

    # -- compilation -----------------------------------------------------------
    def compile(self, optimize: bool = False, rules=None) -> ExecutionPlan:
        """Compile the (optionally rewritten) graph into an execution plan.

        ``optimize=True`` first runs the :mod:`repro.rewrite` rule batches
        (``rules`` overrides the default :class:`~repro.rewrite.RuleRunner`)
        and swaps in the rewritten graph.  Every rule application is
        translation-validated -- statically always, and differentially
        (original vs rewritten through the reference executor) in strict
        mode -- and an unsound rewrite aborts compilation.
        """
        if optimize:
            self._optimize_graph(rules)
        views = partition_graph(
            self.graph, self.spec, self.config, self.max_layers, self.layer_schedule
        )
        plan = ExecutionPlan(self.graph)
        for index, view in enumerate(views):
            plan.subgraphs.append(self._decide(index, view))
        if self.strict:
            self._strict_check_plan(plan)
        return plan

    def _optimize_graph(self, rules) -> None:
        """Run the rewrite rule batches; adopt the validated result."""
        # Imported lazily: repro.rewrite's validator depends on this module.
        from repro.errors import RewriteError
        from repro.rewrite import RuleRunner, default_batches

        if isinstance(rules, RuleRunner):
            runner = rules
        else:
            runner = RuleRunner(rules if rules is not None else default_batches(),
                                validate="full" if self.strict else "static")
        report = runner.run(self.graph)
        if not report.ok:
            raise RewriteError(
                "graph rewriting failed translation validation:\n"
                + "\n".join(d.render() for d in report.validation.errors))
        self.rewrite_report = report
        self.graph = report.graph

    def _strict_check_plan(self, plan: ExecutionPlan) -> None:
        """Strict mode: run the analysis passes over the freshly compiled
        plan and refuse to hand out one that fails its own invariants."""
        # Imported lazily: repro.analysis depends on this module.
        from repro.analysis import analyze_effects, lint_graph, verify_plan

        report = lint_graph(self.graph)
        report.extend(verify_plan(
            plan, self.spec, self.config,
            strategy_override=self.strategy_override,
            brick_override=self.brick_override,
            layer_schedule=self.layer_schedule,
        ))
        # Schedule-independent proofs: race freedom over all interleavings
        # and exactly-once write coverage for the plan about to be handed out.
        report.extend(analyze_effects(plan, self.spec, self.config))
        if not report.ok:
            raise PlanError(
                "strict compile failed verification:\n"
                + "\n".join(d.render() for d in report.errors)
            )

    def _decide(self, index: int, view: SubgraphView) -> SubgraphPlan:
        graph = self.graph
        only = graph.node(view.node_ids[0]) if len(view) == 1 else None
        if only is not None and (only.op.is_global or not only.op.is_local):
            return SubgraphPlan(index=index, subgraph=view, strategy=Strategy.CUDNN,
                                reason="global operator")

        exit_id = view.exit_ids[-1]
        exit_spec = graph.node(exit_id).spec
        if not exit_spec.spatial:
            return SubgraphPlan(index=index, subgraph=view, strategy=Strategy.CUDNN,
                                reason="no spatial dims")
        # Parallelism is judged on the *narrowest* member activation: a
        # subgraph is only worth bricking if even its smallest layer still
        # offers enough brick-level parallelism ("towards the end of a DNN
        # graph, tiny layer sizes do not benefit from merged execution",
        # section 3.3.3).
        narrowest = min(
            (graph.node(nid).spec.spatial for nid in view.node_ids
             if graph.node(nid).spec.spatial_ndim == exit_spec.spatial_ndim),
            key=lambda sp: math.prod(sp),
        )
        kernel_extent = _max_kernel_extent(graph, view.node_ids)
        if self.brick_override is not None:
            brick = self.brick_override
            rho = parallelism(narrowest, brick)
            fallback = False
        else:
            decision = choose_brick_size(narrowest, self.config, kernel_extent)
            brick, rho, fallback = decision.brick, decision.rho, decision.fallback
        if fallback:
            return SubgraphPlan(index=index, subgraph=view, strategy=Strategy.CUDNN,
                                rho=rho, reason="insufficient brick parallelism")

        brick_shape = tuple(min(brick, e) for e in exit_spec.spatial)
        delta = padding_growth(view, None, brick_shape)
        strategy = self.strategy_override or choose_strategy(delta, self.config)
        footprint = merged_footprint_bytes(graph, view.node_ids, view.entry_ids, brick_shape)
        reason = f"delta {'>' if delta > self.config.delta_threshold else '<='} {self.config.delta_threshold:.0%}"
        return SubgraphPlan(
            index=index, subgraph=view, strategy=strategy, brick_shape=brick_shape,
            delta=delta, rho=rho, footprint_bytes=footprint, reason=reason,
        )

    # -- execution ----------------------------------------------------------
    def run(
        self,
        inputs: Mapping[str, np.ndarray] | np.ndarray | None = None,
        functional: bool = True,
        device: Device | None = None,
        plan: ExecutionPlan | None = None,
        trace_ctx=None,
    ) -> EngineResult:
        from repro.profiling import TraceCollector

        graph = self.graph
        plan = plan if plan is not None else self.compile()
        device = device if device is not None else Device(self.spec)
        device.metrics_registry.set_base(model=graph.name)
        if trace_ctx is not None:
            # Serve-layer distributed tracing (repro.obs): every task this
            # run submits is stamped with the execute span's context.
            device.set_trace_context(trace_ctx.trace_id, trace_ctx.span_id)
        collector = next((o for o in device.observers if isinstance(o, TraceCollector)), None)
        if collector is None:
            collector = device.attach(TraceCollector())
        sanitizer = None
        if self.sanitize:
            from repro.sanitize import ExecutionSanitizer

            sanitizer = next((o for o in device.observers
                              if isinstance(o, ExecutionSanitizer)), None)
            if sanitizer is None:
                sanitizer = device.attach(ExecutionSanitizer(graph))
        if functional:
            graph.init_weights()

        boundary: dict[int, DenseHandle | BrickedHandle] = {}
        for node in graph.input_nodes:
            buf = device.allocate(f"{graph.name}/{node.name}", node.spec.nbytes)
            data = self._bind_input(node, inputs) if functional else None
            boundary[node.node_id] = DenseHandle(node.spec, buf, data)

        weight_buffers = self._allocate_weights(device)
        remaining = {n.node_id: len(graph.consumers(n.node_id)) for n in graph.nodes}
        for n in graph.output_nodes:
            remaining[n.node_id] += 1

        for sub in plan.subgraphs:
            brick = "x".join(str(b) for b in sub.brick_shape) or None
            with device.scope(subgraph_index=sub.index, strategy=sub.strategy.value,
                              brick=brick):
                for nid in sub.subgraph.node_ids:
                    wb = weight_buffers.get(nid)
                    if wb is not None:
                        device.memory.pin(wb)
                if sub.strategy is Strategy.CUDNN:
                    self._run_fallback(device, sub, boundary, weight_buffers, functional)
                else:
                    self._run_merged(device, sub, boundary, weight_buffers, functional)
                for nid in sub.subgraph.node_ids:
                    wb = weight_buffers.get(nid)
                    if wb is not None:
                        device.memory.unpin(wb)
                self._retire(device, sub, boundary, remaining)

        # Graph outputs are materialized densely (and charged) in both modes.
        for node in graph.output_nodes:
            self._ensure_dense(device, node.node_id, boundary, functional)
        outputs = None
        if functional:
            outputs = {n.name: boundary[n.node_id].require_data() for n in graph.output_nodes}
        metrics = device.finish()
        if self.strict:
            from repro.analysis import replay_trace

            report = replay_trace(plan, collector.records)
            if not report.ok:
                raise ExecutionError(
                    "strict run failed trace replay:\n"
                    + "\n".join(d.render() for d in report.errors)
                )
        san_report = sanitizer.report() if sanitizer is not None else None
        if self.strict and san_report is not None and not san_report.ok:
            raise ExecutionError(
                "strict run failed sanitizer checks:\n"
                + "\n".join(d.render() for d in san_report.errors)
            )
        return EngineResult(outputs=outputs, metrics=metrics, plan=plan,
                            per_subgraph=collector.per_subgraph(len(plan.subgraphs)),
                            trace=collector, sanitizer_report=san_report,
                            registry=device.metrics_registry)

    # -- merged subgraphs ---------------------------------------------------
    def _run_merged(self, device, sub: SubgraphPlan, boundary, weight_buffers, functional) -> None:
        entries: dict[int, BrickedHandle | DenseHandle] = {}
        for eid in sub.subgraph.entry_ids:
            handle = boundary[eid]
            if isinstance(handle, DenseHandle):
                # Dense entries (graph inputs) are consumed directly: brick
                # tasks stream their regions out of the row-major tensor, so
                # no separate layout-conversion pass is charged.
                entries[eid] = handle
            else:
                entries[eid] = self._ensure_bricked(device, eid, sub.brick_shape, boundary, functional)
        strategy = sub.strategy
        if strategy is Strategy.WAVEFRONT:
            from repro.core.wavefront import WavefrontBrickExecutor, is_chain_subgraph

            if not is_chain_subgraph(sub.subgraph):
                strategy = Strategy.MEMOIZED  # branches need the dynamic runtime
        if strategy is Strategy.PADDED:
            executor = PaddedBrickExecutor(
                subgraph=sub.subgraph, brick_shape=sub.brick_shape, device=device,
                entries=entries, weight_buffers=weight_buffers, functional=functional,
            )
            exits = executor.run()
        elif strategy is Strategy.WAVEFRONT:
            from repro.core.wavefront import WavefrontBrickExecutor

            executor = WavefrontBrickExecutor(
                subgraph=sub.subgraph, brick_shape=sub.brick_shape, device=device,
                entries=entries, weight_buffers=weight_buffers, functional=functional,
            )
            exits = executor.run()
            for nid, handle in executor.memo.items():
                if nid not in exits:
                    device.discard(handle.buffer)
        else:
            executor = MemoizedBrickExecutor(
                sub.subgraph, sub.brick_shape, device, entries, weight_buffers, functional,
            )
            exits = executor.run()
            # Interior memo tensors die with the subgraph: discard without
            # write-back (they never leave L2 -- the merged-execution payoff).
            for nid, handle in executor.memo.items():
                if nid not in exits:
                    device.discard(handle.buffer)
        boundary.update(exits)

    # -- vendor-library fallback ------------------------------------------------
    def _run_fallback(self, device, sub: SubgraphPlan, boundary, weight_buffers, functional) -> None:
        """Un-bricked execution of a subgraph via tiled vendor-library calls,
        with the same conv+pointwise fusion the cuDNN baseline enjoys."""
        # Imported here: repro.baselines also consumes repro.core (handles),
        # so the engine pulls the shared tiled machinery in lazily.
        from repro.baselines.tiled import (
            adaptive_tiles,
            compute_group_values,
            run_group_global,
            run_group_tiled,
        )

        graph = self.graph
        values: dict[int, np.ndarray] = {}
        for group in self._fallback_groups(sub):
            node = group.output
            handles: dict[int, DenseHandle] = {}
            group_ids = {n.node_id for n in group.nodes}
            for gnode in group.nodes:
                for pred in gnode.inputs:
                    if pred in group_ids:
                        continue
                    handles[pred] = self._ensure_dense(device, pred, boundary, functional)
                    if functional:
                        values[pred] = handles[pred].require_data()
            out_buf = device.allocate(f"{graph.name}/{node.name}", node.spec.nbytes)
            out_data = compute_group_values(graph, group, values) if functional else None
            out_handle = DenseHandle(node.spec, out_buf, out_data)
            if functional:
                values[node.node_id] = out_data
            if group.primary.op.is_global or not node.spec.spatial:
                run_group_global(device, graph, group, handles, out_handle, weight_buffers, label="fallback")
            else:
                tile = 16 if node.spec.spatial_ndim >= 3 else 32
                tiles = adaptive_tiles(node.spec.spatial, tile, device.spec.num_sms)
                run_group_tiled(device, graph, group, handles, out_handle, tiles, weight_buffers, label="fallback")
            if functional:
                device.note_values(None, node.node_id, out_data)
            device.synchronize()
            for gnode in group.nodes:
                boundary[gnode.node_id] = out_handle

    def _fallback_groups(self, sub: SubgraphPlan) -> list:
        """Conv+pointwise fusion groups restricted to the subgraph members."""
        from repro.baselines.fusion import FusionGroup

        graph = self.graph
        members = set(sub.subgraph.node_ids)
        groups: list[FusionGroup] = []
        absorbed: set[int] = set()
        for nid in sub.subgraph.node_ids:
            if nid in absorbed:
                continue
            node = graph.node(nid)
            group = FusionGroup(primary=node)
            current = node
            while True:
                consumers = [c for c in graph.consumers(current)]
                if len(consumers) != 1 or consumers[0] not in members:
                    break
                nxt = graph.node(consumers[0])
                if not nxt.op.is_pointwise:
                    break
                others = [i for i in nxt.inputs if i != current.node_id]
                if any(i >= group.primary.node_id for i in others):
                    break
                group.fused.append(nxt)
                absorbed.add(nxt.node_id)
                current = nxt
            groups.append(group)
        return groups

    # -- representation management ------------------------------------------------
    def _ensure_bricked(self, device, nid: int, brick_shape, boundary, functional) -> BrickedHandle:
        handle = boundary[nid]
        if isinstance(handle, BrickedHandle) and handle.grid.brick_shape == tuple(brick_shape):
            return handle
        node = self.graph.node(nid)
        shape = tuple(min(b, e) for b, e in zip(brick_shape, node.spec.spatial))
        nbricks = math.prod(-(-e // b) for e, b in zip(node.spec.spatial, shape))
        nbytes = node.spec.batch * nbricks * node.spec.channels * math.prod(shape) * node.spec.itemsize
        buf = device.allocate(f"{node.name}/bricked", nbytes, transient=True)
        new = BrickedHandle.create(node.spec, shape, buf, functional)
        # Brick creation cost (the paper notes it is minimal): one sweep of
        # the source plus per-brick writes so the brick-class residency model
        # sees the new layout.
        task = Task(label=f"to-bricks/{node.name}", node_id=nid)
        task.read(handle.buffer, 0, handle.buffer.nbytes, dense=True)
        task.acquire(buffer_token(handle.buffer))
        phys = new._region_physical(Region.from_extents(new.grid.extents))
        per_brick = new.brick_nbytes
        for n in range(node.spec.batch):
            task.write_batch(buf, (n * new.grid.num_bricks + phys) * per_brick, per_brick)
        # No barrier separates this conversion from the consuming brick
        # tasks: the whole-buffer token is the launch-ordering edge the
        # executors acquire.
        task.release(buffer_token(buf))
        device.submit(task)
        if functional:
            dense = handle.require_data() if isinstance(handle, DenseHandle) else handle.data.to_dense()
            new.data = BrickedTensor.from_dense(dense, shape)
        boundary[nid] = new
        return new

    def _ensure_dense(self, device, nid: int, boundary, functional) -> DenseHandle:
        handle = boundary[nid]
        if isinstance(handle, DenseHandle):
            return handle
        node = self.graph.node(nid)
        # Graph outputs must survive the run (and be charged at flush);
        # intermediate dense copies die with their consumers.
        is_output = nid in {n.node_id for n in self.graph.output_nodes}
        buf = device.allocate(f"{node.name}/dense", node.spec.nbytes, transient=not is_output)
        task = Task(label=f"from-bricks/{node.name}", node_id=nid)
        phys = handle._region_physical(Region.from_extents(handle.grid.extents))
        per_brick = handle.brick_nbytes
        for n in range(node.spec.batch):
            task.read_batch(handle.buffer, (n * handle.grid.num_bricks + phys) * per_brick, per_brick)
        task.acquire(buffer_token(handle.buffer))
        task.write(buf, 0, node.spec.nbytes, dense=True)
        task.release(buffer_token(buf))
        device.submit(task)
        data = handle.data.to_dense() if functional else None
        new = DenseHandle(node.spec, buf, data)
        boundary[nid] = new
        return new

    def _dense_values(self, device, node: Node, boundary) -> np.ndarray:
        handle = self._ensure_dense(device, node.node_id, boundary, functional=True)
        return handle.require_data()

    def _retire(self, device, sub: SubgraphPlan, boundary, remaining) -> None:
        """Release boundary buffers whose consumers have all executed."""
        members = set(sub.subgraph.node_ids)
        outputs = {n.node_id for n in self.graph.output_nodes}
        for eid in sub.subgraph.entry_ids:
            consumed = sum(1 for nid in members for i in self.graph.node(nid).inputs if i == eid)
            remaining[eid] -= consumed
            if remaining[eid] <= 0 and eid not in outputs and eid in boundary:
                handle = boundary[eid]
                if handle.buffer.transient:
                    device.discard(handle.buffer)

    # -- shared helpers ------------------------------------------------------
    def _bind_input(self, node: Node, inputs) -> np.ndarray:
        if inputs is None:
            raise ExecutionError("functional run requires input arrays")
        arr = inputs if isinstance(inputs, np.ndarray) else inputs[node.name]
        arr = np.asarray(arr, dtype=node.spec.dtype)
        if arr.shape != node.spec.shape:
            raise ExecutionError(f"input {node.name!r}: expected {node.spec.shape}, got {arr.shape}")
        return arr

    def _allocate_weights(self, device: Device):
        buffers = {}
        for node in self.graph.nodes:
            if node.is_input:
                continue
            input_specs = [self.graph.node(i).spec for i in node.inputs]
            nbytes = node.op.weight_bytes(input_specs)
            if nbytes:
                buffers[node.node_id] = device.allocate(f"{self.graph.name}/{node.name}/w", nbytes)
        return buffers
