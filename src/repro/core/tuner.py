"""Empirical plan tuning: sweep strategies and brick sizes per subgraph.

BrickDL chooses its merged-execution strategy and brick size with *static*
models (sections 3.3.2-3.3.3).  The paper's microbenchmark study closes by
noting that the optimal choice "depends on the problem specifications and
hardware characteristics" -- which is an invitation to tune empirically.
This module does exactly that, in the spirit of the autotuning systems the
paper cites (Ansor, FlexTensor): each merged subgraph is profiled in
isolation under every candidate (strategy x brick) configuration on the
simulated device, and the plan is rewritten with the measured-best choice.

The tuner doubles as the validation harness for the static models: the
``agreement`` report says how often the delta-threshold and tau models pick
the measured winner (see ``benchmarks/bench_tuner.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import BrickDLEngine
from repro.core.perfmodel import DEFAULT_CONFIG, PerfModelConfig
from repro.core.plan import ExecutionPlan, Strategy, SubgraphPlan
from repro.graph.ir import Graph
from repro.graph.traversal import materialize_subgraph
from repro.gpusim.device import Device
from repro.gpusim.spec import A100, GPUSpec

__all__ = ["PruneHook", "TunedChoice", "TuningReport", "tune_plan"]

MERGED_STRATEGIES = (Strategy.PADDED, Strategy.MEMOIZED, Strategy.WAVEFRONT)

# prune(sub, strategy, brick, spec, config, best_time) -> True to skip the
# candidate without simulating it.  Hooks must be *winner-preserving*: only
# skip candidates provably unable to beat ``best_time`` (the tuner replaces
# the incumbent only on strictly smaller measured time).
PruneHook = Callable[
    [SubgraphPlan, Strategy, int, GPUSpec, PerfModelConfig, "float | None"], bool
]


@dataclass(frozen=True)
class TunedChoice:
    """Measured-best configuration for one subgraph."""

    index: int
    strategy: Strategy
    brick: int
    time: float
    model_strategy: Strategy
    model_brick: int
    model_time: float

    @property
    def model_agrees_strategy(self) -> bool:
        return self.strategy is self.model_strategy

    @property
    def model_agrees_brick(self) -> bool:
        return self.brick == self.model_brick

    @property
    def gain_over_model(self) -> float:
        """Fractional time saved by tuning vs the static-model choice."""
        if self.model_time <= 0:
            return 0.0
        return 1.0 - self.time / self.model_time


@dataclass
class TuningReport:
    """Outcome of tuning a whole plan."""

    choices: list[TunedChoice] = field(default_factory=list)
    # Candidates skipped without simulation by the prune hook.
    pruned: int = 0

    @property
    def strategy_agreement(self) -> float:
        if not self.choices:
            return 1.0
        return sum(c.model_agrees_strategy for c in self.choices) / len(self.choices)

    @property
    def brick_agreement(self) -> float:
        if not self.choices:
            return 1.0
        return sum(c.model_agrees_brick for c in self.choices) / len(self.choices)

    def summary(self) -> str:
        pruned = f", {self.pruned} candidates pruned without simulation" if self.pruned else ""
        lines = [
            f"Tuned {len(self.choices)} subgraphs: strategy agreement "
            f"{self.strategy_agreement:.0%}, brick agreement {self.brick_agreement:.0%}"
            f"{pruned}"
        ]
        for c in self.choices:
            mark = "=" if c.model_agrees_strategy and c.model_agrees_brick else "!"
            lines.append(
                f"  [{mark}] subgraph {c.index}: tuned {c.strategy.value}/B{c.brick} "
                f"({c.time * 1e3:.3f} ms) vs model {c.model_strategy.value}/B{c.model_brick} "
                f"({c.model_time * 1e3:.3f} ms, tuning gain {c.gain_over_model:+.1%})"
            )
        return "\n".join(lines)


def _profile_subgraph(
    sub: SubgraphPlan,
    strategy: Strategy,
    brick: int,
    spec: GPUSpec,
    config: PerfModelConfig,
) -> float | None:
    """Simulated time of one subgraph under one configuration (None = inapplicable)."""
    from repro.bench.harness import adapt_sectors
    from repro.core.wavefront import is_chain_subgraph

    if strategy is Strategy.WAVEFRONT and not is_chain_subgraph(sub.subgraph):
        return None
    model = materialize_subgraph(sub.subgraph, name=f"tune/sub{sub.index}")
    engine = BrickDLEngine(
        model, spec=spec, config=config,
        strategy_override=strategy, brick_override=brick,
        layer_schedule=(len(sub.subgraph),),
    )
    plan = engine.compile()
    device = Device(adapt_sectors(spec, plan))
    result = engine.run(inputs=None, functional=False, device=device, plan=plan)
    return result.metrics.total_time


def tune_plan(
    graph: Graph,
    spec: GPUSpec = A100,
    config: PerfModelConfig = DEFAULT_CONFIG,
    bricks: tuple[int, ...] | None = None,
    strategies: tuple[Strategy, ...] = MERGED_STRATEGIES,
    prune: PruneHook | bool | None = None,
) -> tuple[ExecutionPlan, TuningReport]:
    """Compile ``graph`` and replace each merged subgraph's configuration
    with the measured-best (strategy, brick); returns the tuned plan and a
    report comparing against the static models.

    ``prune`` controls candidate pruning: ``None`` (the default) skips
    candidates whose static effect-analysis time lower bound already meets
    the incumbent's measured time (:func:`repro.analysis.effect_prune` --
    provably winner-preserving), ``False`` disables pruning, and a callable
    supplies a custom :data:`PruneHook`.
    """
    if prune is None or prune is True:
        from repro.analysis.effects import effect_prune

        prune_hook: PruneHook | None = effect_prune
    elif prune is False:
        prune_hook = None
    else:
        prune_hook = prune
    bricks = bricks if bricks is not None else config.brick_candidates
    base_plan = BrickDLEngine(graph, spec=spec, config=config).compile()
    report = TuningReport()

    tuned_subgraphs: list[SubgraphPlan] = []
    for sub in base_plan.subgraphs:
        if not sub.is_merged:
            tuned_subgraphs.append(sub)
            continue
        model_brick = max(sub.brick_shape)
        model_time = _profile_subgraph(sub, sub.strategy, model_brick, spec, config)
        best = (sub.strategy, model_brick, model_time)
        for strategy in strategies:
            for brick in bricks:
                if brick < max(1, min(sub.brick_shape)) // 4:
                    continue
                if (strategy, brick) == (sub.strategy, model_brick):
                    continue
                if (prune_hook is not None
                        and prune_hook(sub, strategy, brick, spec, config, best[2])):
                    report.pruned += 1
                    continue
                t = _profile_subgraph(sub, strategy, brick, spec, config)
                if t is not None and t < best[2]:
                    best = (strategy, brick, t)
        strategy, brick, time = best
        report.choices.append(TunedChoice(
            index=sub.index, strategy=strategy, brick=brick, time=time,
            model_strategy=sub.strategy, model_brick=model_brick, model_time=model_time,
        ))
        exit_spec = graph.node(sub.subgraph.exit_ids[-1]).spec
        tuned_subgraphs.append(SubgraphPlan(
            index=sub.index, subgraph=sub.subgraph, strategy=strategy,
            brick_shape=tuple(min(brick, e) for e in exit_spec.spatial),
            delta=sub.delta, rho=sub.rho, footprint_bytes=sub.footprint_bytes,
            reason=f"tuned (model said {sub.strategy.value}/B{model_brick})",
        ))

    return ExecutionPlan(graph, tuned_subgraphs), report
