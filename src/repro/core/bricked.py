"""Bricked activation tensors: dense <-> fine-grained blocked layout.

A :class:`BrickedTensor` stores an ``(N, C, *spatial)`` activation as a grid
of bricks, each a contiguous ``(C, *brick_shape)`` block (BrickDL blocks
along batch and spatial dimensions, never channels -- section 3.2).  Bricks
whose extent overhangs the feature map are masked with zeros (section 3.3.4).

The storage order of bricks is governed by a :class:`~repro.core.brick.BrickMap`
(identity by default), and neighbor access uses
:class:`~repro.core.brick.BrickInfo` adjacency, exactly as in the paper's
Fig. 6.  The class also provides the two primitives the merged executors
need:

* :meth:`gather_region` -- assemble a dense patch for an arbitrary absolute
  region from the bricks it overlaps (with a neutral fill value beyond the
  feature map): this is the *padded-brick* halo copy;
* :meth:`scatter_region` -- write a computed dense patch back into bricks.

Each brick's bytes are contiguous in the underlying buffer, which is what
gives the layout its single-address-stream property in the simulator.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import LayoutError
from repro.core.brick import Brick, BrickInfo, BrickMap
from repro.graph.regions import Interval, Region
from repro.graph.tensorspec import TensorSpec

__all__ = ["BrickGrid", "BrickedTensor"]


@dataclass(frozen=True)
class BrickGrid:
    """Geometry of a brick decomposition of a spatial domain."""

    extents: tuple[int, ...]
    brick_shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.extents) != len(self.brick_shape):
            raise LayoutError(f"rank mismatch: extents {self.extents} vs brick {self.brick_shape}")
        if any(b < 1 for b in self.brick_shape) or any(e < 1 for e in self.extents):
            raise LayoutError(f"invalid grid geometry: {self}")
        # Derived geometry is read on every brick lookup in the executor hot
        # path; compute it once (the dataclass is frozen, hence the setattr).
        grid = tuple(-(-e // b) for e, b in zip(self.extents, self.brick_shape))
        object.__setattr__(self, "_grid_shape", grid)
        object.__setattr__(self, "_num_bricks", math.prod(grid))
        object.__setattr__(self, "_overlap_plans", {})

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return self._grid_shape

    @property
    def num_bricks(self) -> int:
        return self._num_bricks

    @property
    def ndim(self) -> int:
        return len(self.extents)

    def brick_region(self, grid_pos: Sequence[int], clipped: bool = False) -> Region:
        """Absolute region covered by the brick at ``grid_pos``."""
        if clipped:
            # Brick origins are never negative, so clipping only trims the
            # high side (overhanging boundary bricks).
            return Region(
                Interval(p * b, min(p * b + b, e))
                for p, b, e in zip(grid_pos, self.brick_shape, self.extents)
            )
        return Region(
            Interval(p * b, p * b + b) for p, b in zip(grid_pos, self.brick_shape)
        )

    def bricks_overlapping(self, region: Region) -> Iterator[tuple[int, ...]]:
        """Grid positions of all bricks intersecting ``region`` (clipped to
        the feature map: out-of-map halo has no brick to read)."""
        yield from self.overlap_plan(region)

    def overlap_plan(self, region: Region) -> tuple[tuple[int, ...], ...]:
        """Materialized (and memoized) :meth:`bricks_overlapping` result.

        Executors resolve the same halo regions once per brick per batch
        sample; the distinct regions per grid are few, so caching the
        materialized tuples removes the region algebra from the hot path.
        """
        plan = self._overlap_plans.get(region)
        if plan is None:
            clipped = region.clip(self.extents)
            if clipped.is_empty():
                plan = ()
            else:
                ranges = [
                    range(max(0, iv.lo // b), min(g, -(-iv.hi // b)))
                    for iv, b, g in zip(clipped, self.brick_shape, self._grid_shape)
                ]
                plan = tuple(itertools.product(*ranges))
            self._overlap_plans[region] = plan
        return plan

    def grid_region_for(self, region: Region) -> Region:
        """The brick-grid-coordinate box covering ``region`` (clipped)."""
        clipped = region.clip(self.extents)
        return Region(
            Interval(max(0, iv.lo // b), min(g, -(-iv.hi // b)))
            for iv, b, g in zip(clipped, self.brick_shape, self.grid_shape)
        )


class BrickedTensor:
    """An activation stored in the brick data layout."""

    def __init__(
        self,
        spec: TensorSpec,
        brick_shape: Sequence[int],
        brick_map: BrickMap | None = None,
    ) -> None:
        if spec.spatial_ndim != len(tuple(brick_shape)):
            raise LayoutError(f"brick rank {len(tuple(brick_shape))} vs spatial rank {spec.spatial_ndim}")
        self.spec = spec
        self.grid = BrickGrid(spec.spatial, tuple(int(b) for b in brick_shape))
        self.brick_map = brick_map if brick_map is not None else BrickMap(self.grid.grid_shape)
        if self.brick_map.grid_shape != self.grid.grid_shape:
            raise LayoutError(
                f"brick map grid {self.brick_map.grid_shape} does not match {self.grid.grid_shape}"
            )
        self.brick_info = BrickInfo(self.brick_map)
        # One contiguous slab: (N, num_bricks, C, *brick_shape).
        self.storage = np.zeros(
            (spec.batch, self.grid.num_bricks, spec.channels, *self.grid.brick_shape),
            dtype=spec.dtype,
        )

    # -- geometry -----------------------------------------------------------
    @property
    def brick_shape(self) -> tuple[int, ...]:
        return self.grid.brick_shape

    @property
    def num_bricks(self) -> int:
        return self.grid.num_bricks

    @property
    def brick_nbytes(self) -> int:
        """Bytes of one brick: C * prod(brick_shape) * itemsize (contiguous)."""
        return self.spec.channels * math.prod(self.grid.brick_shape) * self.spec.itemsize

    @property
    def nbytes(self) -> int:
        return self.storage.nbytes

    def byte_offset(self, batch: int, physical_index: int) -> int:
        """Byte offset of a brick inside this tensor's buffer."""
        return (batch * self.grid.num_bricks + physical_index) * self.brick_nbytes

    def brick(self, batch: int, grid_pos: Sequence[int]) -> Brick:
        phys = self.brick_map.physical(grid_pos)
        return Brick(phys, self.storage[batch, phys])

    # -- dense conversion -----------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        array: np.ndarray,
        brick_shape: Sequence[int],
        brick_map: BrickMap | None = None,
    ) -> "BrickedTensor":
        """Decompose a dense ``(N, C, *spatial)`` array into bricks."""
        n, c = array.shape[:2]
        spatial = array.shape[2:]
        spec = TensorSpec(n, c, spatial, array.dtype)
        bt = cls(spec, brick_shape, brick_map)
        g, b = bt.grid.grid_shape, bt.grid.brick_shape
        nd = len(b)
        padded_spatial = tuple(gg * bb for gg, bb in zip(g, b))
        if padded_spatial != spatial:
            pad = [(0, 0), (0, 0)] + [(0, ps - s) for ps, s in zip(padded_spatial, spatial)]
            array = np.pad(array, pad)
        # (N, C, G1, B1, G2, B2, ...) -> (N, G1, G2, ..., C, B1, B2, ...)
        split_shape = (n, c) + tuple(x for gb in zip(g, b) for x in gb)
        v = array.reshape(split_shape)
        grid_axes = tuple(2 + 2 * i for i in range(nd))
        brick_axes = tuple(3 + 2 * i for i in range(nd))
        v = v.transpose((0,) + grid_axes + (1,) + brick_axes)
        logical = v.reshape(n, bt.grid.num_bricks, c, *b)
        # Physical slot p holds the logical brick brick_map.logical(p).
        order = bt.brick_map._to_logical
        bt.storage[...] = logical[:, order]
        return bt

    def to_dense(self) -> np.ndarray:
        """Reassemble the dense activation (mask padding removed)."""
        n, c = self.spec.batch, self.spec.channels
        g, b = self.grid.grid_shape, self.grid.brick_shape
        nd = len(b)
        logical = self.storage[:, self.brick_map._to_physical]
        v = logical.reshape((n,) + g + (c,) + b)
        # (N, G1.., C, B1..) -> (N, C, G1, B1, G2, B2, ...)
        perm = (0, 1 + nd) + tuple(x for i in range(nd) for x in (1 + i, 2 + nd + i))
        v = v.transpose(perm)
        padded_spatial = tuple(gg * bb for gg, bb in zip(g, b))
        dense = v.reshape((n, c) + padded_spatial)
        crop = (slice(None), slice(None)) + tuple(slice(0, s) for s in self.spec.spatial)
        return np.ascontiguousarray(dense[crop])

    # -- region primitives -----------------------------------------------------
    def gather_region(self, batch: int, region: Region, fill: float = 0.0) -> np.ndarray:
        """Dense ``(C, *region.shape)`` patch of an absolute region.

        Parts of the region beyond the feature map get ``fill`` (implicit
        zero padding of convolutions; ``-inf`` for max pooling).  This is the
        halo *copy* of the padded-bricks strategy (section 3.2.1).
        """
        shape = (self.spec.channels, *region.shape)
        out = np.full(shape, fill, dtype=self.spec.dtype)
        if region.is_empty():
            return out
        valid = region.clip(self.spec.spatial)
        if fill != 0.0 and not valid.is_empty():
            # Mask padding inside overhanging bricks is zero, not `fill`.
            out[(slice(None), *valid.slices(origin=[iv.lo for iv in region]))] = 0.0
        for grid_pos in self.grid.bricks_overlapping(region):
            brick_region = self.grid.brick_region(grid_pos, clipped=True)
            overlap = brick_region.intersect(valid)
            if overlap.is_empty():
                continue
            phys = self.brick_map.physical(grid_pos)
            brick_origin = [iv.lo for iv in self.grid.brick_region(grid_pos)]
            src = (slice(None), *overlap.slices(origin=brick_origin))
            dst = (slice(None), *overlap.slices(origin=[iv.lo for iv in region]))
            out[dst] = self.storage[batch, phys][src]
        return out

    def scatter_region(self, batch: int, region: Region, values: np.ndarray) -> None:
        """Write a dense ``(C, *region.shape)`` patch into the bricks."""
        if values.shape != (self.spec.channels, *region.shape):
            raise LayoutError(f"scatter shape {values.shape} vs region {region.shape}")
        valid = region.clip(self.spec.spatial)
        if valid.is_empty():
            return
        for grid_pos in self.grid.bricks_overlapping(valid):
            brick_region = self.grid.brick_region(grid_pos, clipped=True)
            overlap = brick_region.intersect(valid)
            if overlap.is_empty():
                continue
            phys = self.brick_map.physical(grid_pos)
            brick_origin = [iv.lo for iv in self.grid.brick_region(grid_pos)]
            dst = (slice(None), *overlap.slices(origin=brick_origin))
            src = (slice(None), *overlap.slices(origin=[iv.lo for iv in region]))
            self.storage[batch, phys][dst] = values[src]
