"""Gradient graphs: merged execution for the backward pass.

The paper restricts BrickDL to inference and points at training as the
extension ("merged execution can be extended to enable fine-grained hybrid
model parallelism for distributed DNN *training*", section 5.2).  The key
observation making that extension almost free in this codebase: **the
input-gradient (VJP) of every mergeable operator is itself a mergeable
operator**:

| forward | backward (w.r.t. input) |
|---|---|
| ``Conv(W)`` | ``ConvTranspose(W)`` (same weights, swapped in/out channels) |
| ``ConvTranspose(W)`` | ``Conv(W)`` |
| ``BatchNorm(scale, shift)`` | ``BatchNorm(scale, 0)`` |
| ``Bias`` | identity |
| ``relu`` / ``leaky_relu`` | ``Mul`` by the activation mask (a graph input) |
| ``Add`` | gradient fan-out (re-joined with ``Add`` at fan-in points) |
| ``AvgPool`` | ``ConvTranspose`` with the uniform kernel / k |
| ``Mul`` (by a constant-input mask) | ``Mul`` by the same mask |

:func:`build_input_gradient_graph` therefore emits an ordinary
:class:`~repro.graph.ir.Graph` -- which the partitioner, the performance
models, padded/memoized/wavefront executors, the baselines, and the
distributed runner all execute unchanged.  Backward graphs are chains of
transposed convolutions, precisely the operator mix DeepCAM's decoder
exercises in the forward direction.

Scope: operators whose VJP needs data-dependent state beyond an activation
mask (max pooling's argmax, softmax's Jacobian) and the global classifier
heads are out of scope -- gradient graphs are built for convolutional
trunks, the part of the network where merged execution matters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, UnsupportedOpError
from repro.graph.ir import Graph, Node
from repro.graph.ops import (
    Activation,
    Add,
    BatchNorm,
    Bias,
    Conv,
    ConvTranspose,
    Mul,
    Pool,
)

__all__ = ["build_input_gradient_graph", "gradient_feeds", "activation_mask"]


def activation_mask(op: Activation, pre_activation: np.ndarray) -> np.ndarray:
    """The elementwise derivative of an activation at ``pre_activation``."""
    if op.fn == "relu":
        return (pre_activation > 0).astype(pre_activation.dtype)
    if op.fn == "leaky_relu":
        slope = pre_activation.dtype.type(op.negative_slope)
        return np.where(pre_activation > 0, pre_activation.dtype.type(1.0), slope)
    raise UnsupportedOpError(f"no activation mask for {op.fn!r} (relu family only)")


def _conv_vjp_weights(node: Node) -> dict[str, np.ndarray]:
    """Conv weights reinterpreted for the transposed (gradient) direction.

    ``ConvTranspose`` stores weights as ``(C_in, C_out, *K)``; the VJP of a
    conv with weights ``(O, C, *K)`` is a transposed conv using the *same*
    array read as ``(C_in=O, C_out=C, *K)`` -- no flip, no copy.
    """
    return {"weight": node.weights["weight"]}


def _convtranspose_vjp_weights(node: Node) -> dict[str, np.ndarray]:
    w = node.weights["weight"]  # (C_in, C_out, *K)
    # VJP is a plain conv with weights (O=C_in, C=C_out, *K), kernel flipped
    # twice = unflipped: conv_forward correlates, conv_transpose_full flips,
    # so the round trip uses the raw array with axes 0,1 kept.
    return {"weight": w}


def build_input_gradient_graph(graph: Graph, wrt_output: str | None = None) -> Graph:
    """The VJP graph: d(output)/d(input) contracted with an upstream grad.

    Inputs of the returned graph:

    * ``grad/<output>`` -- the upstream gradient (same spec as the forward
      output),
    * ``mask/<node>`` -- one activation-derivative mask per relu-family node
      (produce them from the forward run with :func:`gradient_feeds`).

    Output: ``grad/<input>`` with the forward input's spec.
    """
    graph.validate()
    graph.init_weights()
    out_node = graph.node(wrt_output) if wrt_output else graph.output_nodes[0]
    in_node = graph.input_nodes[0]

    bwd = Graph(f"{graph.name}/grad")
    upstream = bwd.input(out_node.spec, name=f"grad/{out_node.name}")

    # Accumulated gradient per forward node (built walking the forward graph
    # in reverse; fan-out joins via Add).
    grads: dict[int, Node] = {out_node.node_id: upstream}

    def accumulate(nid: int, g: Node) -> None:
        if nid in grads:
            grads[nid] = bwd.add(Add(), [grads[nid], g],
                                 name=f"gsum/{graph.node(nid).name}/{g.node_id}")
        else:
            grads[nid] = g

    for node in reversed(graph.nodes):
        if node.is_input or node.node_id not in grads:
            continue
        g = grads[node.node_id]
        op = node.op
        if isinstance(op, Conv):
            if op.groups != 1:
                raise UnsupportedOpError("grouped-conv gradients not supported")
            in_spec = graph.node(node.inputs[0]).spec
            out_pad = tuple(
                xin - ((xout - 1) * st + k - 2 * pd)
                for xin, xout, st, k, pd in zip(in_spec.spatial, node.spec.spatial,
                                                op.stride, op.kernel, op.padding)
            )
            vjp = bwd.add(
                ConvTranspose(out_channels=node.weights["weight"].shape[1],
                              kernel=op.kernel, stride=op.stride, padding=op.padding,
                              bias=False, output_padding=out_pad),
                [g], name=f"g/{node.name}")
            if max(op.dilation) > 1:
                raise UnsupportedOpError("dilated-conv gradients not supported")
            vjp.weights = _conv_vjp_weights(node)
            accumulate(node.inputs[0], vjp)
        elif isinstance(op, ConvTranspose):
            vjp = bwd.add(
                Conv(out_channels=node.weights["weight"].shape[0], kernel=op.kernel,
                     stride=op.stride, padding=op.padding, bias=False),
                [g], name=f"g/{node.name}")
            vjp.weights = _convtranspose_vjp_weights(node)
            accumulate(node.inputs[0], vjp)
        elif isinstance(op, BatchNorm):
            vjp = bwd.add(BatchNorm(), [g], name=f"g/{node.name}")
            scale = node.weights["scale"]
            vjp.weights = {"scale": scale, "shift": np.zeros_like(scale)}
            accumulate(node.inputs[0], vjp)
        elif isinstance(op, Bias):
            accumulate(node.inputs[0], g)
        elif isinstance(op, Activation):
            if op.fn not in ("relu", "leaky_relu"):
                raise UnsupportedOpError(f"gradient of activation {op.fn!r} not supported")
            pred_spec = graph.node(node.inputs[0]).spec
            mask = bwd.input(pred_spec, name=f"mask/{node.name}")
            vjp = bwd.add(Mul(), [g, mask], name=f"g/{node.name}")
            accumulate(node.inputs[0], vjp)
        elif isinstance(op, Add):
            for pred in node.inputs:
                accumulate(pred, g)
        elif isinstance(op, Mul):
            # Supported when one operand is a graph input (a mask): the
            # gradient w.r.t. the other operand multiplies by it.
            preds = [graph.node(i) for i in node.inputs]
            data_preds = [p for p in preds if not p.is_input]
            if len(data_preds) != 1:
                raise UnsupportedOpError("Mul gradients need exactly one non-input operand")
            mask_pred = next(p for p in preds if p.is_input)
            mask = bwd.input(mask_pred.spec, name=f"mask/{node.name}")
            vjp = bwd.add(Mul(), [g, mask], name=f"g/{node.name}")
            accumulate(data_preds[0].node_id, vjp)
        elif isinstance(op, Pool):
            if op.mode != "avg":
                raise UnsupportedOpError("max-pool gradients need argmax state (unsupported)")
            k = op.kernel
            in_spec = graph.node(node.inputs[0]).spec
            out_pad = tuple(
                xin - ((xout - 1) * st + kk - 2 * pd)
                for xin, xout, st, kk, pd in zip(in_spec.spatial, node.spec.spatial,
                                                 op.stride, k, op.padding)
            )
            vjp = bwd.add(
                ConvTranspose(out_channels=node.spec.channels, kernel=k,
                              stride=op.stride, padding=op.padding, bias=False,
                              output_padding=out_pad),
                [g], name=f"g/{node.name}")
            c = node.spec.channels
            w = np.zeros((c, c) + tuple(k), np.float32)
            uniform = 1.0 / float(np.prod(k))
            for ch in range(c):
                w[ch, ch] = uniform
            vjp.weights = {"weight": w}
            accumulate(node.inputs[0], vjp)
        else:
            raise UnsupportedOpError(
                f"no VJP for {op.kind!r}; gradient graphs cover convolutional trunks"
            )

    if in_node.node_id not in grads:
        raise GraphError("the forward input does not influence the requested output")
    bwd.mark_output(grads[in_node.node_id])
    bwd.validate()
    return bwd


def gradient_feeds(graph: Graph, forward_values: dict[str, np.ndarray],
                   upstream: np.ndarray, wrt_output: str | None = None) -> dict[str, np.ndarray]:
    """Assemble the backward graph's input dict from a forward run.

    ``forward_values`` is :meth:`ReferenceExecutor.run_all` output (or any
    executor's full activation map)."""
    out_node = graph.node(wrt_output) if wrt_output else graph.output_nodes[0]
    feeds: dict[str, np.ndarray] = {f"grad/{out_node.name}": upstream}
    for node in graph.nodes:
        if isinstance(node.op, Activation) and node.op.fn in ("relu", "leaky_relu"):
            pre = forward_values[graph.node(node.inputs[0]).name]
            feeds[f"mask/{node.name}"] = activation_mask(node.op, pre)
    return feeds
