"""Jacobi heat-equation time stepping as a merged conv chain.

One explicit Euler step of the heat equation on a uniform grid is a fixed
(2n+1)-point stencil:

    u' = u + alpha * laplacian(u)

which is exactly a convolution with prescribed coefficients.  A run of
``steps`` time steps is therefore a chain of ``steps`` identical
convolutions -- the precise structure BrickDL's merged execution targets
(the paper's section 5.3 relates merged execution to space-time tiling of
stencils; here the relationship is made executable).

Boundary condition: fixed zero (Dirichlet), realized by the convolution's
implicit zero padding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.graph.tensorspec import TensorSpec

__all__ = ["stencil_weights", "build_heat_graph", "reference_heat"]


def stencil_weights(ndim: int, alpha: float, dtype=np.float32) -> np.ndarray:
    """The (1, 1, 3, 3[, 3]) Jacobi update kernel: identity + alpha * Laplacian."""
    if ndim not in (2, 3):
        raise ShapeError(f"heat stencil supports 2-D/3-D grids, got {ndim}")
    w = np.zeros((1, 1) + (3,) * ndim, dtype=dtype)
    center = (0, 0) + (1,) * ndim
    w[center] = 1.0 - 2.0 * ndim * alpha
    for d in range(ndim):
        for side in (0, 2):
            idx = [0, 0] + [1] * ndim
            idx[2 + d] = side
            w[tuple(idx)] = alpha
    return w


def build_heat_graph(steps: int, size: int, ndim: int = 2, alpha: float = 0.1) -> Graph:
    """A chain of ``steps`` fixed-weight Jacobi convolutions.

    The stencil coefficients are installed directly on the nodes (weights
    set before :meth:`Graph.init_weights`, which never overwrites existing
    weights), so the graph computes real physics, not random filters.
    """
    if not 0.0 < alpha <= 1.0 / (2 * ndim):
        raise ShapeError(f"alpha={alpha} is unstable for {ndim}-D explicit Euler")
    b = GraphBuilder(f"heat{ndim}d_{steps}x{size}", TensorSpec(1, 1, (size,) * ndim))
    w = stencil_weights(ndim, alpha)
    for i in range(1, steps + 1):
        node = b.conv(1, 3, padding=1, bias=False, name=f"step{i}")
        node.weights = {"weight": w}
    return b.finish()


def reference_heat(u0: np.ndarray, steps: int, alpha: float = 0.1) -> np.ndarray:
    """Direct NumPy Jacobi stepping (ground truth for the graph version).

    ``u0`` is the bare grid (no batch/channel axes).  Zero Dirichlet
    boundaries, matching the convolution's implicit zero padding.
    """
    ndim = u0.ndim
    u = u0.astype(np.float32).copy()
    for _ in range(steps):
        lap = -2.0 * ndim * u
        for d in range(ndim):
            shifted_fwd = np.zeros_like(u)
            shifted_bwd = np.zeros_like(u)
            src_fwd = [slice(None)] * ndim
            dst_fwd = [slice(None)] * ndim
            src_fwd[d] = slice(1, None)
            dst_fwd[d] = slice(None, -1)
            shifted_fwd[tuple(dst_fwd)] = u[tuple(src_fwd)]
            shifted_bwd[tuple(src_fwd)] = u[tuple(dst_fwd)]
            lap = lap + shifted_fwd + shifted_bwd
        u = u + np.float32(alpha) * lap
    return u
