"""Structured-grid HPC computations on the BrickDL runtime (paper section 6).

The paper closes by observing that merged execution with bricks "also
applies to the sequences of computations on structured grids found in HPC
codes, including layered computations such as multigrid".  This subpackage
demonstrates that claim concretely: stencil time-stepping and a geometric
multigrid V-cycle are expressed as DNN graphs whose convolutions carry
*fixed* stencil coefficients, and then executed -- merged, bricked,
numerically exactly -- by the same engine that runs ResNet-50.

* :mod:`repro.stencil.heat` -- Jacobi heat-equation time stepping (2-D and
  3-D), with a direct NumPy reference implementation;
* :mod:`repro.stencil.multigrid` -- a two-level V-cycle (smooth, restrict,
  coarse-smooth, prolongate, correct) for the 2-D Poisson problem.
"""

from repro.stencil.heat import build_heat_graph, reference_heat, stencil_weights
from repro.stencil.multigrid import build_vcycle_graph, reference_vcycle

__all__ = [
    "build_heat_graph",
    "reference_heat",
    "stencil_weights",
    "build_vcycle_graph",
    "reference_vcycle",
]
