"""A two-level geometric multigrid V-cycle as a BrickDL graph.

The paper's closing section names "layered computations such as multi-grid"
as a target for merged execution.  This module builds a complete two-level
V-cycle for the 2-D Poisson problem ``A u = f`` (5-point Laplacian, zero
Dirichlet boundaries) out of fixed-weight graph operators:

* **smoothing** -- weighted-Jacobi sweeps expressed as 2-channel
  convolutions carrying the ``(u, f)`` pair (channel 0 is updated, channel
  1 passes ``f`` through),
* **residual** -- ``r = f - A u`` as a 2->1-channel convolution,
* **restriction** -- full-weighting 3x3 stride-2 convolution,
* **coarse smoothing** -- Jacobi on the error equation ``A e = r``,
* **prolongation** -- bilinear 4x4 stride-2 transposed convolution,
* **correction** -- an elementwise Add, followed by post-smoothing.

The same graph runs under the naive reference executor, both merged brick
strategies, and the tiled baseline -- numerically identically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph
from repro.graph.tensorspec import TensorSpec

__all__ = ["build_vcycle_graph", "reference_vcycle"]

_OMEGA = 0.8  # weighted-Jacobi damping


def _smooth_weights(omega: float = _OMEGA) -> np.ndarray:
    """(2, 2, 3, 3): channel 0 <- jacobi(u, f), channel 1 <- f."""
    w = np.zeros((2, 2, 3, 3), np.float32)
    # u' = (1 - omega) u + omega/4 (f + sum of u neighbors)
    w[0, 0, 1, 1] = 1.0 - omega
    for (i, j) in ((0, 1), (2, 1), (1, 0), (1, 2)):
        w[0, 0, i, j] = omega / 4.0
    w[0, 1, 1, 1] = omega / 4.0
    w[1, 1, 1, 1] = 1.0  # pass f through
    return w


def _residual_weights() -> np.ndarray:
    """(1, 2, 3, 3): r = f - A u = f - (4u - sum of neighbors)."""
    w = np.zeros((1, 2, 3, 3), np.float32)
    w[0, 0, 1, 1] = -4.0
    for (i, j) in ((0, 1), (2, 1), (1, 0), (1, 2)):
        w[0, 0, i, j] = 1.0
    w[0, 1, 1, 1] = 1.0
    return w


def _restrict_weights() -> np.ndarray:
    """(1, 1, 3, 3) full weighting."""
    k = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], np.float32) / 16.0
    return k.reshape(1, 1, 3, 3)


def _pair_weights() -> np.ndarray:
    """(2, 1, 1, 1): lift r to the (e=0, r) pair."""
    w = np.zeros((2, 1, 1, 1), np.float32)
    w[1, 0, 0, 0] = 1.0
    return w


def _take_channel(index: int) -> np.ndarray:
    """(1, 2, 1, 1): extract one channel of a pair."""
    w = np.zeros((1, 2, 1, 1), np.float32)
    w[0, index, 0, 0] = 1.0
    return w


def _prolong_weights() -> np.ndarray:
    """(1, 1, 4, 4) bilinear prolongation (stride 2, padding 1)."""
    k1 = np.array([1.0, 3.0, 3.0, 1.0], np.float32) / 4.0
    return np.outer(k1, k1).reshape(1, 1, 4, 4)


def build_vcycle_graph(size: int, pre_smooth: int = 2, coarse_smooth: int = 4,
                       post_smooth: int = 2, omega: float = _OMEGA) -> Graph:
    """Two-level V-cycle on an ``size x size`` fine grid (``size`` even).

    Input: 2 channels, ``(u0, f)``.  Output node ``"u_out"``: the corrected,
    post-smoothed iterate.
    """
    if size % 2:
        raise ShapeError("V-cycle fine grid must have even extent")
    b = GraphBuilder(f"vcycle_{size}", TensorSpec(1, 2, (size, size)))

    pair = b.current
    for i in range(pre_smooth):
        pair = b.conv(2, 3, padding=1, bias=False, src=pair, name=f"pre_smooth{i}")
        pair.weights = {"weight": _smooth_weights(omega)}

    r = b.conv(1, 3, padding=1, bias=False, src=pair, name="residual")
    r.weights = {"weight": _residual_weights()}
    rc = b.conv(1, 3, stride=2, padding=1, bias=False, src=r, name="restrict")
    rc.weights = {"weight": _restrict_weights()}

    coarse = b.conv(2, 1, bias=False, src=rc, name="lift_pair")
    coarse.weights = {"weight": _pair_weights()}
    for i in range(coarse_smooth):
        coarse = b.conv(2, 3, padding=1, bias=False, src=coarse, name=f"coarse_smooth{i}")
        coarse.weights = {"weight": _smooth_weights(omega)}
    e_c = b.conv(1, 1, bias=False, src=coarse, name="take_error")
    e_c.weights = {"weight": _take_channel(0)}

    e_f = b.deconv(1, 4, stride=2, padding=1, src=e_c, name="prolong")
    e_f.weights = {"weight": _prolong_weights().transpose(1, 0, 2, 3).copy()}

    u_pre = b.conv(1, 1, bias=False, src=pair, name="take_u")
    u_pre.weights = {"weight": _take_channel(0)}
    corrected = b.add(u_pre, e_f, name="correct")

    f_chan = b.conv(1, 1, bias=False, src=pair, name="take_f")
    f_chan.weights = {"weight": _take_channel(1)}
    pair2 = b.concat([corrected, f_chan], name="repair")
    for i in range(post_smooth):
        pair2 = b.conv(2, 3, padding=1, bias=False, src=pair2, name=f"post_smooth{i}")
        pair2.weights = {"weight": _smooth_weights(omega)}
    out = b.conv(1, 1, bias=False, src=pair2, name="u_out")
    out.weights = {"weight": _take_channel(0)}
    return b.finish()


# ---------------------------------------------------------------------------
# Direct NumPy reference
# ---------------------------------------------------------------------------

def _jacobi(u: np.ndarray, f: np.ndarray, sweeps: int, omega: float) -> np.ndarray:
    for _ in range(sweeps):
        padded = np.pad(u, 1)
        neighbors = (padded[:-2, 1:-1] + padded[2:, 1:-1] +
                     padded[1:-1, :-2] + padded[1:-1, 2:])
        u = (1.0 - omega) * u + (omega / 4.0) * (f + neighbors)
    return u.astype(np.float32)


def _apply_a(u: np.ndarray) -> np.ndarray:
    padded = np.pad(u, 1)
    neighbors = (padded[:-2, 1:-1] + padded[2:, 1:-1] +
                 padded[1:-1, :-2] + padded[1:-1, 2:])
    return 4.0 * u - neighbors


def _restrict(r: np.ndarray) -> np.ndarray:
    k = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], np.float32) / 16.0
    padded = np.pad(r, 1)
    n = r.shape[0] // 2
    out = np.zeros((n, n), np.float32)
    for i in range(n):
        for j in range(n):
            out[i, j] = (padded[2 * i:2 * i + 3, 2 * j:2 * j + 3] * k).sum()
    return out


def _prolong(e: np.ndarray, fine: int) -> np.ndarray:
    k1 = np.array([1.0, 3.0, 3.0, 1.0], np.float32) / 4.0
    k = np.outer(k1, k1)
    n = e.shape[0]
    full = np.zeros(((n - 1) * 2 + 4, (n - 1) * 2 + 4), np.float32)
    for i in range(n):
        for j in range(n):
            full[2 * i:2 * i + 4, 2 * j:2 * j + 4] += e[i, j] * k
    return full[1:1 + fine, 1:1 + fine]


def reference_vcycle(u0: np.ndarray, f: np.ndarray, pre_smooth: int = 2,
                     coarse_smooth: int = 4, post_smooth: int = 2,
                     omega: float = _OMEGA) -> np.ndarray:
    """Direct NumPy two-level V-cycle matching :func:`build_vcycle_graph`."""
    u = _jacobi(u0.astype(np.float32), f.astype(np.float32), pre_smooth, omega)
    r = f - _apply_a(u)
    rc = _restrict(r)
    e = _jacobi(np.zeros_like(rc), rc, coarse_smooth, omega)
    u = u + _prolong(e, u.shape[0])
    return _jacobi(u, f, post_smooth, omega)
