"""Command-line interface: inspect models, plans, runs, and experiments.

Usage::

    python -m repro.cli models
    python -m repro.cli plan resnet50 --image-size 224
    python -m repro.cli run darknet53 --strategy memoized --compare
    python -m repro.cli profile resnet50 --trace run.json --csv run.csv
    python -m repro.cli lint resnet50 --protocol --run --sanitize
    python -m repro.cli lint resnet50 --rewrites
    python -m repro.cli rewrite resnet50 --reduced --validate
    python -m repro.cli sanitize vgg16 --reduced --strategy memoized
    python -m repro.cli tune vgg16 --image-size 96
    python -m repro.cli fig 10            # run an evaluation figure driver
    python -m repro.cli metrics record vgg16 --reduced --strategy padded
    python -m repro.cli metrics diff baseline.json fresh.json
    python -m repro.cli serve mobilenet_v1 --requests 8 --devices 2
    python -m repro.cli loadgen mobilenet_v1 --requests 200 --devices 2 --verify 5
    python -m repro.cli microbench
"""

from __future__ import annotations

import argparse
import sys

from repro.gpusim.spec import A100


def _build_model(args) -> "Graph":
    from repro.models import zoo

    kwargs = {}
    if args.model == "resnet3d34":
        if args.image_size:
            kwargs["clip"] = (max(4, args.image_size // 14), args.image_size, args.image_size)
    elif args.image_size:
        kwargs["image_size"] = args.image_size
    if getattr(args, "reduced", False):
        return zoo.build(args.model, reduced=True)
    return zoo.build(args.model, **kwargs)


def cmd_models(args) -> int:
    from repro.models import MODELS, build

    print(f"{'model':14s} {'nodes':>6s} {'GFLOP':>8s} {'act MB':>8s} {'params MB':>10s}")
    for name in MODELS:
        g = build(name)
        g.init_weights()
        print(f"{name:14s} {len(g):6d} {g.total_flops() / 1e9:8.2f} "
              f"{g.activation_bytes() / 1e6:8.1f} {g.weight_bytes() / 1e6:10.1f}")
    return 0


def cmd_plan(args) -> int:
    from repro.core.engine import BrickDLEngine

    graph = _build_model(args)
    engine = BrickDLEngine(graph, strategy_override=_strategy(args), brick_override=args.brick)
    print(engine.compile().summary())
    return 0


def cmd_run(args) -> int:
    from repro.bench.harness import adapt_sectors
    from repro.core.engine import BrickDLEngine
    from repro.gpusim.device import Device
    from repro.gpusim.report import profile_report

    graph = _build_model(args)
    engine = BrickDLEngine(graph, strategy_override=_strategy(args), brick_override=args.brick)
    plan = engine.compile()
    device = Device(adapt_sectors(A100, plan))
    result = engine.run(inputs=None, functional=False, device=device, plan=plan)
    print(profile_report(result.metrics, A100, title=f"{args.model} / brickdl"))
    if args.per_subgraph:
        print()
        print(result.attribution_table())

    if args.compare:
        from repro.baselines import CudnnBaseline

        base = CudnnBaseline(_build_model(args)).run(functional=False)
        print()
        print(profile_report(base.metrics, A100, title=f"{args.model} / cudnn baseline"))
        ratio = result.metrics.total_time / base.metrics.total_time
        print(f"\nbrickdl vs cudnn: {ratio:.3f}x total time "
              f"({(1 - ratio) * 100:+.1f}%), "
              f"{(1 - result.metrics.memory.dram_txns / base.metrics.memory.dram_txns) * 100:+.1f}% DRAM txns")
    return 0


def cmd_profile(args) -> int:
    from repro.bench.harness import adapt_sectors
    from repro.core.engine import BrickDLEngine
    from repro.gpusim.device import Device
    from repro.gpusim.report import profile_report
    from repro.profiling import TraceCollector, write_chrome_trace, write_summary_csv

    graph = _build_model(args)
    engine = BrickDLEngine(graph, strategy_override=_strategy(args), brick_override=args.brick)
    plan = engine.compile()
    device = Device(adapt_sectors(A100, plan))
    trace = device.attach(TraceCollector())
    result = engine.run(inputs=None, functional=False, device=device, plan=plan)
    print(profile_report(result.metrics, A100, title=f"{args.model} / brickdl"))
    print()
    print(result.attribution_table())
    if args.per_node:
        print()
        print(result.node_attribution_table())
    names = {n.node_id: n.name for n in graph.nodes}
    if args.trace:
        path = write_chrome_trace(trace, args.trace, names=names)
        print(f"\nwrote Chrome trace ({len(trace.records)} tasks, "
              f"{trace.num_workers} lanes) to {path}")
    if args.csv:
        path = write_summary_csv(trace, args.csv, names=names)
        print(f"wrote per-node summary to {path}")
    return 0


def _sanitized_run(graph, plan, strategy, brick):
    """One functional run with the execution sanitizer attached; returns the
    engine result (carrying ``sanitizer_report``)."""
    import numpy as np

    from repro.bench.harness import adapt_sectors
    from repro.core.engine import BrickDLEngine
    from repro.gpusim.device import Device

    engine = BrickDLEngine(graph, strategy_override=strategy,
                           brick_override=brick, sanitize=True)
    device = Device(adapt_sectors(A100, plan))
    rng = np.random.default_rng(0)
    inputs = {n.name: rng.standard_normal(n.spec.shape).astype(n.spec.dtype)
              for n in graph.input_nodes}
    return engine.run(inputs=inputs, functional=True, device=device, plan=plan)


def cmd_sanitize(args) -> int:
    """Dynamic analysis: run the model functionally with the sanitizer suite
    attached (shadow memory, happens-before races, numeric screening)."""
    from repro.core.engine import BrickDLEngine

    graph = _build_model(args)
    strategy = _strategy(args)
    plan = BrickDLEngine(graph, strategy_override=strategy,
                         brick_override=args.brick).compile()
    result = _sanitized_run(graph, plan, strategy, args.brick)
    report = result.sanitizer_report
    print(report.summary(f"{args.model}: sanitized run, "
                         f"{result.metrics.num_tasks} tasks, "
                         f"{len(plan.subgraphs)} subgraphs"))
    return 1 if report.errors else 0


def cmd_lint(args) -> int:
    """Static analysis: lint the graph, verify the compiled plan, model-check
    the memoization protocol, and optionally replay a run's trace."""
    from repro.analysis import (
        GridModel,
        ProtocolModel,
        explore_protocol,
        lint_graph,
        replay_tasks_from_chrome_trace,
        replay_trace,
        verify_plan,
    )
    from repro.core.engine import BrickDLEngine

    graph = _build_model(args)
    strategy = _strategy(args)
    engine = BrickDLEngine(graph, strategy_override=strategy, brick_override=args.brick)
    plan = engine.compile()

    report = lint_graph(graph)
    report.extend(verify_plan(plan, engine.spec, engine.config,
                              strategy_override=strategy,
                              brick_override=args.brick))
    if args.protocol:
        report.extend(explore_protocol(GridModel(), ProtocolModel()))
    if args.replay:
        import json
        import pathlib

        doc = json.loads(pathlib.Path(args.replay).read_text())
        report.extend(replay_trace(plan, replay_tasks_from_chrome_trace(doc)))
    elif args.run:
        from repro.bench.harness import adapt_sectors
        from repro.gpusim.device import Device
        from repro.profiling import TraceCollector

        device = Device(adapt_sectors(A100, plan))
        trace = device.attach(TraceCollector())
        engine.run(inputs=None, functional=False, device=device, plan=plan)
        report.extend(replay_trace(plan, trace.records))
    if args.sanitize:
        result = _sanitized_run(graph, plan, strategy, args.brick)
        report.extend(result.sanitizer_report)
    if args.effects or args.baseline:
        from repro.analysis import analyze_effects, check_manifest_bracket

        effect_report = analyze_effects(plan, engine.spec, engine.config)
        report.extend(effect_report)
        if args.baseline:
            from repro.metrics.manifest import RunManifest

            report.extend(check_manifest_bracket(
                effect_report, RunManifest.load(args.baseline)))
    if args.rewrites:
        # Dry run: apply the default rule batches to a throwaway copy of the
        # graph and report which rules would fire, in the same Diagnostic
        # currency.  Static validation findings ride along (and gate the
        # exit code like any other error).
        from repro.analysis import Diagnostic, Severity
        from repro.rewrite import RuleRunner, default_batches

        rewrite_report = RuleRunner(default_batches(), validate="static").run(graph)
        report.extend(rewrite_report.validation)
        for step in rewrite_report.steps:
            detail = f"; {step.rewrite.detail}" if step.rewrite.detail else ""
            report.add(Diagnostic(
                pass_name="rewrite-validate", code="rewrite.would-fire",
                severity=Severity.INFO,
                message=f"rule {step.rule!r} would fire: {step.nodes_before} -> "
                        f"{step.nodes_after} nodes{detail}"))
        if not rewrite_report.steps:
            report.add(Diagnostic(
                pass_name="rewrite-validate", code="rewrite.no-op",
                severity=Severity.INFO,
                message="no rewrite rule fires on this graph"))

    print(report.summary(f"{args.model}: {len(graph)} nodes, "
                         f"{len(plan.subgraphs)} subgraphs"))
    for d in report.diagnostics:
        print(d.render())
    return 1 if report.errors else 0


def _rewrite_batches(rules_csv: str | None):
    """--rules NAME[,NAME...] -> rule batches (None = the default pipeline)."""
    if not rules_csv:
        return None
    from repro.rewrite import batches_from_names

    return batches_from_names(n.strip() for n in rules_csv.split(",") if n.strip())


def cmd_rewrite(args) -> int:
    """Apply the rewrite rule batches and translation-validate every step;
    exit nonzero if any application is proved unsound."""
    from repro.rewrite import RuleRunner, default_batches

    graph = _build_model(args)
    batches = _rewrite_batches(args.rules) or default_batches()
    runner = RuleRunner(batches, validate="full" if args.validate else "static")
    report = runner.run(graph)
    print(f"{args.model}: {len(graph)} nodes")
    print(report.summary())
    return 0 if report.ok else 1


def cmd_tune(args) -> int:
    from repro.core.tuner import tune_plan

    graph = _build_model(args)
    _, report = tune_plan(graph)
    print(report.summary())
    return 0


def cmd_fig(args) -> int:
    import pathlib

    from repro.bench import figures

    # Persist by default: the rendered table plus one run manifest per
    # BrickDL configuration (plan/spec provenance) land next to each other
    # under --out.  --no-save restores the old print-only behavior.
    out_dir = None if args.no_save else pathlib.Path(args.out) / f"fig{args.number}"

    if args.number == 7:
        result = figures.fig7_end_to_end(manifest_dir=out_dir)
        text = figures.fig7_summary_table(result)
    elif args.number == 8:
        text = figures.fig8_resnet_case_study(manifest_dir=out_dir).render()
    elif args.number == 9:
        text = figures.fig9_data_movement(figures.fig8_resnet_case_study(manifest_dir=out_dir))
    elif args.number == 10:
        text = figures.fig10_subgraph_size(manifest_dir=out_dir).render()
    elif args.number == 11:
        text = figures.fig11_brick_size(manifest_dir=out_dir).render()
    else:
        print(f"no driver for figure {args.number} (evaluation figures are 7-11)", file=sys.stderr)
        return 2
    print(text)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        table_path = out_dir / f"fig{args.number}.txt"
        table_path.write_text(text + "\n")
        manifests = sorted(out_dir.glob("*.manifest.json"))
        print(f"\nwrote {table_path} and {len(manifests)} run manifest(s) to {out_dir}/")
    return 0


def cmd_metrics(args) -> int:
    from repro.metrics import RunManifest

    if args.action == "record":
        from repro.bench.harness import record_bench_manifest
        from repro.core.plan import Strategy

        strategy = Strategy(args.strategy) if args.strategy else None
        build_kwargs = {}
        if args.reduced:
            build_kwargs["reduced"] = True
        if args.image_size:
            build_kwargs["image_size"] = args.image_size
        manifest, path = record_bench_manifest(
            args.model, out_dir=args.out, strategy=strategy, brick=args.brick,
            label=args.label, sim_path=args.sim_path,
            optimize=args.optimize, rules=_rewrite_batches(args.rules),
            **build_kwargs)
        print(manifest.summary())
        rw = manifest.rewrite
        if rw:
            fired = ", ".join(f"{k}x{v}" for k, v in rw.get("rules_fired", {}).items())
            print(f"  rewrite: {rw.get('nodes_before')} -> {rw.get('nodes_after')} "
                  f"nodes ({fired or 'no rule fired'}), "
                  f"validated={rw.get('validated')}")
        wall = manifest.wall
        if wall:
            print(f"  sim: {wall.get('sim_wall_s', 0.0):.3f} s wall "
                  f"({wall.get('sim_path', '?')} path)")
        print(f"wrote {path}")
        return 0

    if args.action == "report":
        for name in args.manifests:
            manifest = RunManifest.load(name)
            print(manifest.summary())
            run = manifest.bottleneck.get("run", {})
            if run:
                shares = run.get("shares", {})
                print("  components: " + "  ".join(
                    f"{k}={shares.get(k, 0.0):.1%}" for k in ("dram", "compute", "atomic", "idle")))
                roof = run.get("roofline", {})
                if roof:
                    print(f"  roofline: AI={roof.get('arithmetic_intensity', 0.0):.2f} flop/B "
                          f"(ridge {roof.get('ridge_intensity', 0.0):.2f}), "
                          f"achieved {roof.get('achieved_flops', 0.0) / 1e9:.1f} / "
                          f"attainable {roof.get('attainable_flops', 0.0) / 1e9:.1f} GFLOP/s")
                print(f"  speedup ceiling (remove {run.get('bound', '?')}): "
                      f"{run.get('speedup_ceiling', 1.0):.2f}x")
            if args.verbose and manifest.plan.get("subgraphs"):
                for sub in manifest.plan["subgraphs"]:
                    brick = "x".join(str(b) for b in sub.get("brick", [])) or "-"
                    print(f"    subgraph {sub['index']}: {sub['strategy']:9s} "
                          f"brick={brick:9s} ops={sub['num_ops']}")
        return 0

    # diff: the perf-smoke gate.  Exit 1 iff a tolerated metric regressed.
    from repro.metrics import diff_manifests

    tolerances = {}
    for item in args.tolerance or ():
        name, _, value = item.partition("=")
        if not _ or not name:
            print(f"--tolerance expects NAME=FRACTION, got {item!r}", file=sys.stderr)
            return 2
        tolerances[name] = float(value)
    report = diff_manifests(RunManifest.load(args.base), RunManifest.load(args.new),
                            tolerances=tolerances or None)
    print(report.render(verbose=args.verbose))
    if getattr(args, "require_identical", False):
        # Equivalence mode (scalar vs vectorized sim path): every metric must
        # be bit-equal; tolerances do not apply.
        moved = [d for d in report.deltas if d.new != d.base]
        missing = [w for w in report.warnings if "only in" in w]
        for d in moved:
            print(f"not identical: {d.name}: {d.base:g} != {d.new:g}", file=sys.stderr)
        for w in missing:
            print(f"not identical: {w}", file=sys.stderr)
        return 1 if moved or missing else 0
    return 1 if report.regressions else 0


def _serve_build_kwargs(args) -> dict:
    kwargs = {}
    if not args.full:
        kwargs["reduced"] = True
    if args.image_size:
        kwargs.pop("reduced", None)
        kwargs["image_size"] = args.image_size
    return kwargs


def _parse_straggler(value: str | None) -> tuple[int | None, float]:
    """``DEV:MS`` -> (device index, delay seconds); ``None`` -> no straggler."""
    if value is None:
        return None, 0.0
    dev, sep, ms = value.partition(":")
    if not sep:
        raise SystemExit(f"--straggler expects DEV:MS, got {value!r}")
    return int(dev), float(ms) / 1e3


def _parse_autoscale(value: str | None) -> "tuple[int, int] | None":
    """``MIN:MAX`` -> autoscaler device bounds; ``None`` -> fixed fleet."""
    if value is None:
        return None
    lo, sep, hi = value.partition(":")
    if not sep:
        raise SystemExit(f"--autoscale expects MIN:MAX, got {value!r}")
    return int(lo), int(hi)


def _obs_kwargs(args) -> dict:
    """Tracing / SLO / fault-injection kwargs shared by serve and loadgen."""
    straggler_device, straggler_delay_s = _parse_straggler(args.straggler)
    return {
        "trace": args.trace,
        "straggler_device": straggler_device,
        "straggler_delay_s": straggler_delay_s,
        "slo_objective": args.slo_objective,
        "slo_latency_target_s": (None if args.slo_latency_ms is None
                                 else args.slo_latency_ms / 1e3),
        "batching": args.batching,
        "autoscale": _parse_autoscale(args.autoscale),
    }


def _print_obs_summary(args, server) -> None:
    """After a traced serve run: where the artifacts landed, what fired."""
    if args.trace:
        print(f"wrote span log to {args.trace}")
    slo = server.stats().get("slo", {})
    for alert in slo.get("alerts", ()):
        print(f"SLO BURN ALERT: window {alert['short_window_s']:g}s/"
              f"{alert['long_window_s']:g}s burn "
              f"{alert['short_burn']:.1f}x/{alert['long_burn']:.1f}x "
              f"(threshold {alert['threshold']:g}x)")
    if server.recorder is not None:
        for reason, path in sorted(server.recorder.paths.items()):
            print(f"flight-recorder dump ({reason}): {path}")


def cmd_serve(args) -> int:
    """Start the async server and run a short closed-loop demo against it."""
    from repro.bench.harness import run_serve_loadgen

    report, server = run_serve_loadgen(
        args.model, requests=args.requests, devices=args.devices,
        mode="closed", concurrency=min(4, args.requests or 1),
        max_batch=args.max_batch, max_wait_s=args.max_wait_ms / 1e3,
        queue_depth=args.queue_depth, cache_capacity=args.cache_capacity,
        functional=not args.profile, strategy=_strategy(args),
        brick=args.brick, timeout_s=None if args.timeout_ms is None else args.timeout_ms / 1e3,
        seed=args.seed, manifest=args.manifest,
        **_obs_kwargs(args), **_serve_build_kwargs(args))
    stats = server.stats()
    print(f"served {stats['requests']['completed']} requests on "
          f"{args.devices} simulated device(s): "
          f"p50 {stats['latency_s']['p50'] * 1e3:.1f} ms, "
          f"p99 {stats['latency_s']['p99'] * 1e3:.1f} ms, "
          f"plan cache {stats['plan_cache']['hits']}/{stats['plan_cache']['hits'] + stats['plan_cache']['misses']} hits "
          f"({stats['plan_cache']['size']} entries)")
    for entry in server.cache.snapshot():
        print(f"  bucket {entry['batch_bucket']:3d}: plan {entry['plan_digest']} "
              f"({entry['subgraphs']} subgraphs, "
              f"strategy {entry['strategy'] or 'model-chosen'}, "
              f"{entry['uses']} reuses)")
    _print_obs_summary(args, server)
    if args.manifest:
        print(f"wrote serving manifest to {args.manifest}")
    return 0


def cmd_loadgen(args) -> int:
    """Drive the serving layer with open-loop Poisson or closed-loop traffic."""
    from repro.bench.harness import run_serve_loadgen

    report, server = run_serve_loadgen(
        args.model, requests=args.requests, devices=args.devices,
        mode=args.mode, rate=args.rate, concurrency=args.concurrency,
        max_batch=args.max_batch, max_wait_s=args.max_wait_ms / 1e3,
        queue_depth=args.queue_depth, cache_capacity=args.cache_capacity,
        saturation_policy=args.on_saturation,
        functional=not args.profile, strategy=_strategy(args),
        brick=args.brick, timeout_s=None if args.timeout_ms is None else args.timeout_ms / 1e3,
        seed=args.seed, verify=args.verify, manifest=args.manifest,
        latency_csv=args.latency_csv,
        **_obs_kwargs(args), **_serve_build_kwargs(args))
    print(report.render())
    _print_obs_summary(args, server)
    if args.latency_csv:
        print(f"wrote per-request latency rows to {args.latency_csv}")
    if args.manifest:
        print(f"\nwrote serving manifest to {args.manifest}")
    return 0


def cmd_top(args) -> int:
    """Live serve-fleet dashboard: traffic runs while the terminal refreshes."""
    from repro.models import zoo
    from repro.obs import run_top
    from repro.serve import InferenceServer, ServeConfig

    straggler_device, straggler_delay_s = _parse_straggler(args.straggler)
    graph = zoo.build(args.model, **_serve_build_kwargs(args))
    config = ServeConfig(
        devices=args.devices, max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3, queue_depth=args.queue_depth,
        cache_capacity=args.cache_capacity,
        functional=not args.profile, strategy=_strategy(args),
        brick=args.brick,
        slo_objective=args.slo_objective,
        slo_latency_target_s=(None if args.slo_latency_ms is None
                              else args.slo_latency_ms / 1e3),
        straggler_device=straggler_device,
        straggler_delay_s=straggler_delay_s,
    )
    server = InferenceServer(graph, config=config)
    report = run_top(server, refresh_s=args.refresh_ms / 1e3,
                     requests=args.requests, mode=args.mode, rate=args.rate,
                     concurrency=args.concurrency, seed=args.seed)
    print(report.render())
    return 0


def cmd_scenario(args) -> int:
    """Run (or list) the deterministic fleet-serving scenario packs."""
    from repro.serve.scenarios import SCENARIOS, run_scenario

    if args.action == "list":
        for name, s in sorted(SCENARIOS.items()):
            print(f"{name:12s} {s.description}")
        return 0
    report = run_scenario(
        args.name, seed=args.seed, batching=args.batching,
        requests=args.requests, verify=args.verify,
        reduced=not args.full, manifest_path=args.manifest,
        trace_path=args.trace)
    print(report.render())
    if args.manifest:
        print(f"wrote scenario manifest to {args.manifest}")
    if args.check:
        violations = report.check()
        for v in violations:
            print(f"objective violated: {v}", file=sys.stderr)
        return 1 if violations else 0
    return 0


def cmd_trace(args) -> int:
    """Inspect a serve span log: span trees, completeness, Perfetto export."""
    import json

    from repro.obs import (check_completeness, list_traces, load_entries,
                           merged_chrome_trace, render_span_tree)

    entries = load_entries(args.log)
    if args.action == "check":
        report = check_completeness(entries)
        print(report.summary())
        return 0 if report.ok else 1
    if args.action == "export":
        doc = merged_chrome_trace(entries)
        with open(args.out, "w") as fh:
            json.dump(doc, fh)
        print(f"wrote {len(doc['traceEvents'])} trace events to {args.out}")
        return 0
    # show: one trace's span tree, or the trace listing.
    if args.trace_id:
        print(render_span_tree(entries, args.trace_id))
        return 0
    rows = list_traces(entries)
    for row in rows[: args.limit]:
        print(f"{row['trace_id']}  root={row['root'] or '?':<10s} "
              f"status={row['status']:<16s} spans={row['spans']:<4d} "
              f"tasks={row['tasks']:<5d} "
              f"duration={row['duration_ms']:8.2f} ms")
    if len(rows) > args.limit:
        print(f"... {len(rows) - args.limit} more "
              f"(--limit {len(rows)} to see all)")
    return 0


def cmd_microbench(args) -> int:
    from repro.bench.microbench import atomic_microbenchmark, compute_microbenchmark

    a = atomic_microbenchmark()
    c = compute_microbenchmark()
    print(f"T_atomic = {a.time_per_atomic_ns:.2f} ns   (paper: 87.45 ns)")
    print(f"T_brick  = {c.time_per_call_us:.2f} us   (paper: 6.72 us, 8^3 brick / 3^3 filter)")
    return 0


def _strategy(args):
    from repro.core.plan import Strategy

    if not getattr(args, "strategy", None):
        return None
    return Strategy(args.strategy)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(fn=cmd_models)

    for name, fn, help_ in (("plan", cmd_plan, "show the compiled execution plan"),
                            ("run", cmd_run, "profile a model on the simulated A100"),
                            ("profile", cmd_profile,
                             "run with the trace collector; export timeline + attribution"),
                            ("tune", cmd_tune, "empirically tune strategies/bricks per subgraph"),
                            ("lint", cmd_lint,
                             "static analysis: lint the graph and verify the plan invariants"),
                            ("sanitize", cmd_sanitize,
                             "dynamic analysis: run with the execution sanitizer suite attached")):
        sp = sub.add_parser(name, help=help_)
        sp.add_argument("model")
        sp.add_argument("--image-size", type=int, default=None)
        sp.add_argument("--reduced", action="store_true", help="use the test-scale config")
        sp.add_argument("--strategy", choices=["padded", "memoized", "wavefront"], default=None)
        sp.add_argument("--brick", type=int, default=None)
        if name == "run":
            sp.add_argument("--compare", action="store_true", help="also run the cuDNN baseline")
            sp.add_argument("--per-subgraph", action="store_true",
                            help="attribute counters to each plan subgraph")
        if name == "lint":
            sp.add_argument("--protocol", action="store_true",
                            help="also model-check the memoization tag protocol")
            sp.add_argument("--run", action="store_true",
                            help="also execute the plan and replay-check its trace")
            sp.add_argument("--replay", default=None, metavar="TRACE.json",
                            help="replay-check an exported Chrome-trace JSON")
            sp.add_argument("--sanitize", action="store_true",
                            help="also execute functionally with the sanitizer suite")
            sp.add_argument("--rewrites", action="store_true",
                            help="dry-run the default rewrite rules and report "
                                 "which would fire (statically validated)")
            sp.add_argument("--effects", action="store_true",
                            help="also run the static effect analysis: race-freedom "
                                 "and exactly-once coverage proofs plus DRAM/L2 "
                                 "traffic bounds (no device execution)")
            sp.add_argument("--baseline", default=None, metavar="MANIFEST.json",
                            help="with --effects: assert the static DRAM bounds "
                                 "bracket this measured run manifest")
        if name == "profile":
            sp.add_argument("--trace", default=None, metavar="OUT.json",
                            help="write a Chrome-trace/Perfetto JSON timeline")
            sp.add_argument("--csv", default=None, metavar="OUT.csv",
                            help="write the per-node attribution summary as CSV")
            sp.add_argument("--per-node", action="store_true",
                            help="print the per-node attribution table")
        sp.set_defaults(fn=fn)

    rw = sub.add_parser(
        "rewrite", help="apply the graph-rewrite rules with translation validation")
    rw.add_argument("model")
    rw.add_argument("--image-size", type=int, default=None)
    rw.add_argument("--reduced", action="store_true", help="use the test-scale config")
    rw.add_argument("--rules", default=None, metavar="NAME[,NAME...]",
                    help="comma-separated registry rule names "
                         "(default: the seed pipeline)")
    rw.add_argument("--validate", action="store_true",
                    help="also discharge the differential obligation (original vs "
                         "rewritten through the reference executor, bit-identical); "
                         "default validation is static-only")
    rw.set_defaults(fn=cmd_rewrite)

    fig = sub.add_parser("fig", help="run an evaluation-figure driver (7-11)")
    fig.add_argument("number", type=int)
    fig.add_argument("--out", default="results", metavar="DIR",
                     help="directory for the rendered table + run manifests "
                          "(default: results/fig<N>/)")
    fig.add_argument("--no-save", action="store_true",
                     help="print only; do not persist the table or manifests")
    fig.set_defaults(fn=cmd_fig)

    met = sub.add_parser(
        "metrics", help="record / report / diff run manifests (the perf gate)")
    msub = met.add_subparsers(dest="action", required=True)
    rec = msub.add_parser("record", help="run a zoo model and write BENCH_<model>.json")
    rec.add_argument("model")
    rec.add_argument("--strategy", choices=["padded", "memoized", "wavefront"], default=None)
    rec.add_argument("--brick", type=int, default=None)
    rec.add_argument("--image-size", type=int, default=None)
    rec.add_argument("--reduced", action="store_true", help="use the test-scale config")
    rec.add_argument("--out", default=".", metavar="DIR",
                     help="directory for the manifest (default: cwd)")
    rec.add_argument("--sim-path", choices=["scalar", "vectorized"], default=None,
                     help="memory-accounting path (default: REPRO_SIM_PATH or vectorized)")
    rec.add_argument("--label", default=None,
                     help="manifest label / filename suffix (default: the strategy)")
    rec.add_argument("--optimize", action="store_true",
                     help="run the validated graph-rewrite pipeline before compiling")
    rec.add_argument("--rules", default=None, metavar="NAME[,NAME...]",
                     help="rewrite with these registry rules only (implies --optimize)")
    rec.set_defaults(fn=cmd_metrics)
    rep = msub.add_parser("report", help="summarize recorded manifests")
    rep.add_argument("manifests", nargs="+", metavar="MANIFEST.json")
    rep.add_argument("--verbose", action="store_true",
                     help="also list per-subgraph plan decisions")
    rep.set_defaults(fn=cmd_metrics)
    dif = msub.add_parser(
        "diff", help="compare two manifests; exit 1 on tolerance-gated regression")
    dif.add_argument("base", metavar="BASE.json")
    dif.add_argument("new", metavar="NEW.json")
    dif.add_argument("--tolerance", action="append", metavar="NAME=FRACTION",
                     help="override a metric tolerance, e.g. memory.dram_txns=0.1 "
                          "(repeatable)")
    dif.add_argument("--verbose", action="store_true",
                     help="list every compared metric, not just movements")
    dif.add_argument("--require-identical", action="store_true",
                     help="exit 1 unless every metric is bit-equal "
                          "(the scalar/vectorized sim-path equivalence gate)")
    dif.set_defaults(fn=cmd_metrics)

    for name, fn, help_ in (
            ("serve", cmd_serve,
             "start the async batching server and demo it with a few requests"),
            ("loadgen", cmd_loadgen,
             "drive the serving layer with Poisson / closed-loop traffic")):
        sp = sub.add_parser(name, help=help_)
        sp.add_argument("model")
        sp.add_argument("--requests", type=int, default=8 if name == "serve" else 200)
        sp.add_argument("--devices", type=int, default=2,
                        help="simulated device fleet size")
        sp.add_argument("--max-batch", type=int, default=8)
        sp.add_argument("--max-wait-ms", type=float, default=20.0,
                        help="dynamic batcher hold on the head request")
        sp.add_argument("--queue-depth", type=int, default=64)
        sp.add_argument("--cache-capacity", type=int, default=16,
                        help="compiled-plan LRU entries")
        sp.add_argument("--timeout-ms", type=float, default=None,
                        help="per-request queueing deadline")
        sp.add_argument("--strategy", choices=["padded", "memoized", "wavefront"],
                        default=None)
        sp.add_argument("--brick", type=int, default=None)
        sp.add_argument("--profile", action="store_true",
                        help="profile mode: access streams/timing only, no outputs")
        sp.add_argument("--full", action="store_true",
                        help="serve the paper-scale model (default: reduced config)")
        sp.add_argument("--image-size", type=int, default=None)
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--manifest", default=None, metavar="OUT.json",
                        help="write the serving-session run manifest")
        sp.add_argument("--trace", default=None, metavar="SPANS.jsonl",
                        help="trace every request end-to-end; write the span "
                             "log here (flight-recorder dumps land beside it)")
        sp.add_argument("--straggler", default=None, metavar="DEV:MS",
                        help="inject MS ms of wall delay on device DEV "
                             "(fault injection for the SLO/flight-recorder path)")
        sp.add_argument("--slo-objective", type=float, default=0.99,
                        help="deadline-attainment objective (default 0.99)")
        sp.add_argument("--slo-latency-ms", type=float, default=None,
                        help="count a request as SLO-bad unless it completes "
                             "within this latency (default: deadline only)")
        sp.add_argument("--batching", choices=["head", "edf"], default="head",
                        help="batch formation order: head-anchored arrival "
                             "order, or earliest-deadline-first")
        sp.add_argument("--autoscale", default=None, metavar="MIN:MAX",
                        help="autoscale the device fleet between MIN and MAX "
                             "from queue-depth/burn signals")
        if name == "loadgen":
            sp.add_argument("--mode", choices=["poisson", "closed"], default="poisson")
            sp.add_argument("--rate", type=float, default=100.0,
                            help="open-loop arrival rate (requests/second)")
            sp.add_argument("--concurrency", type=int, default=8,
                            help="closed-loop clients")
            sp.add_argument("--on-saturation", choices=["degrade", "reject"],
                            default="degrade")
            sp.add_argument("--verify", type=int, default=0, metavar="K",
                            help="re-check K responses bit-identical to single-shot runs")
            sp.add_argument("--latency-csv", default=None, metavar="OUT.csv",
                            help="write one row per request: arrival/admitted/"
                                 "batched/completed, deadline attainment, trace id")
        sp.set_defaults(fn=fn)

    top = sub.add_parser(
        "top", help="live dashboard: serve synthetic traffic and watch the fleet")
    top.add_argument("model")
    top.add_argument("--requests", type=int, default=400)
    top.add_argument("--devices", type=int, default=2)
    top.add_argument("--max-batch", type=int, default=8)
    top.add_argument("--max-wait-ms", type=float, default=20.0)
    top.add_argument("--queue-depth", type=int, default=64)
    top.add_argument("--cache-capacity", type=int, default=16)
    top.add_argument("--strategy", choices=["padded", "memoized", "wavefront"],
                     default=None)
    top.add_argument("--brick", type=int, default=None)
    top.add_argument("--profile", action="store_true",
                     help="profile mode: access streams/timing only, no outputs")
    top.add_argument("--full", action="store_true")
    top.add_argument("--image-size", type=int, default=None)
    top.add_argument("--seed", type=int, default=0)
    top.add_argument("--mode", choices=["poisson", "closed"], default="poisson")
    top.add_argument("--rate", type=float, default=100.0)
    top.add_argument("--concurrency", type=int, default=8)
    top.add_argument("--refresh-ms", type=float, default=500.0,
                     help="dashboard refresh period")
    top.add_argument("--straggler", default=None, metavar="DEV:MS")
    top.add_argument("--slo-objective", type=float, default=0.99)
    top.add_argument("--slo-latency-ms", type=float, default=None)
    top.set_defaults(fn=cmd_top)

    sc = sub.add_parser(
        "scenario",
        help="deterministic fleet-serving scenarios (diurnal / burst / "
             "heavy-tail / straggler / multitenant)")
    ssub = sc.add_subparsers(dest="action", required=True)
    slist = ssub.add_parser("list", help="list the scenario pack")
    slist.set_defaults(fn=cmd_scenario)
    srun = ssub.add_parser(
        "run", help="replay one scenario in virtual time; print its report")
    srun.add_argument("name")
    srun.add_argument("--seed", type=int, default=0)
    srun.add_argument("--batching", choices=["head", "edf"], default=None,
                      help="override the interactive class's batching mode")
    srun.add_argument("--requests", type=int, default=None,
                      help="override the scenario's request count")
    srun.add_argument("--verify", type=int, default=0, metavar="K",
                      help="re-check K responses bit-identical to "
                           "single-shot runs (forces functional mode)")
    srun.add_argument("--check", action="store_true",
                      help="evaluate the scenario's objectives; exit 1 on "
                           "any violation (the CI conformance gate)")
    srun.add_argument("--full", action="store_true",
                      help="serve paper-scale models (default: reduced)")
    srun.add_argument("--manifest", default=None, metavar="OUT.json")
    srun.add_argument("--trace", default=None, metavar="SPANS.jsonl")
    srun.set_defaults(fn=cmd_scenario)

    tr = sub.add_parser(
        "trace", help="inspect a serve span log (show / check / export)")
    tsub = tr.add_subparsers(dest="action", required=True)
    tshow = tsub.add_parser("show", help="list traces, or print one span tree")
    tshow.add_argument("log", metavar="SPANS.jsonl")
    tshow.add_argument("--trace-id", default=None,
                       help="render this trace's span tree")
    tshow.add_argument("--limit", type=int, default=20,
                       help="max traces to list (default 20)")
    tshow.set_defaults(fn=cmd_trace)
    tcheck = tsub.add_parser(
        "check", help="verify span-tree completeness; exit 1 on problems")
    tcheck.add_argument("log", metavar="SPANS.jsonl")
    tcheck.set_defaults(fn=cmd_trace)
    texp = tsub.add_parser(
        "export", help="merge serve + device spans into Perfetto JSON")
    texp.add_argument("log", metavar="SPANS.jsonl")
    texp.add_argument("--out", required=True, metavar="OUT.json")
    texp.set_defaults(fn=cmd_trace)

    sub.add_parser("microbench", help="the section 4.3 calibration scalars").set_defaults(fn=cmd_microbench)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro plan ... | head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
