"""Command-line interface: inspect models, plans, runs, and experiments.

Usage::

    python -m repro.cli models
    python -m repro.cli plan resnet50 --image-size 224
    python -m repro.cli run darknet53 --strategy memoized --compare
    python -m repro.cli profile resnet50 --trace run.json --csv run.csv
    python -m repro.cli lint resnet50 --protocol --run --sanitize
    python -m repro.cli sanitize vgg16 --reduced --strategy memoized
    python -m repro.cli tune vgg16 --image-size 96
    python -m repro.cli fig 10            # run an evaluation figure driver
    python -m repro.cli microbench
"""

from __future__ import annotations

import argparse
import sys

from repro.gpusim.spec import A100


def _build_model(args) -> "Graph":
    from repro.models import zoo

    kwargs = {}
    if args.model == "resnet3d34":
        if args.image_size:
            kwargs["clip"] = (max(4, args.image_size // 14), args.image_size, args.image_size)
    elif args.image_size:
        kwargs["image_size"] = args.image_size
    if getattr(args, "reduced", False):
        return zoo.build(args.model, reduced=True)
    return zoo.build(args.model, **kwargs)


def cmd_models(args) -> int:
    from repro.models import MODELS, build

    print(f"{'model':14s} {'nodes':>6s} {'GFLOP':>8s} {'act MB':>8s} {'params MB':>10s}")
    for name in MODELS:
        g = build(name)
        g.init_weights()
        print(f"{name:14s} {len(g):6d} {g.total_flops() / 1e9:8.2f} "
              f"{g.activation_bytes() / 1e6:8.1f} {g.weight_bytes() / 1e6:10.1f}")
    return 0


def cmd_plan(args) -> int:
    from repro.core.engine import BrickDLEngine

    graph = _build_model(args)
    engine = BrickDLEngine(graph, strategy_override=_strategy(args), brick_override=args.brick)
    print(engine.compile().summary())
    return 0


def cmd_run(args) -> int:
    from repro.bench.harness import adapt_sectors
    from repro.core.engine import BrickDLEngine
    from repro.gpusim.device import Device
    from repro.gpusim.report import profile_report

    graph = _build_model(args)
    engine = BrickDLEngine(graph, strategy_override=_strategy(args), brick_override=args.brick)
    plan = engine.compile()
    device = Device(adapt_sectors(A100, plan))
    result = engine.run(inputs=None, functional=False, device=device, plan=plan)
    print(profile_report(result.metrics, A100, title=f"{args.model} / brickdl"))
    if args.per_subgraph:
        print()
        print(result.attribution_table())

    if args.compare:
        from repro.baselines import CudnnBaseline

        base = CudnnBaseline(_build_model(args)).run(functional=False)
        print()
        print(profile_report(base.metrics, A100, title=f"{args.model} / cudnn baseline"))
        ratio = result.metrics.total_time / base.metrics.total_time
        print(f"\nbrickdl vs cudnn: {ratio:.3f}x total time "
              f"({(1 - ratio) * 100:+.1f}%), "
              f"{(1 - result.metrics.memory.dram_txns / base.metrics.memory.dram_txns) * 100:+.1f}% DRAM txns")
    return 0


def cmd_profile(args) -> int:
    from repro.bench.harness import adapt_sectors
    from repro.core.engine import BrickDLEngine
    from repro.gpusim.device import Device
    from repro.gpusim.report import profile_report
    from repro.profiling import TraceCollector, write_chrome_trace, write_summary_csv

    graph = _build_model(args)
    engine = BrickDLEngine(graph, strategy_override=_strategy(args), brick_override=args.brick)
    plan = engine.compile()
    device = Device(adapt_sectors(A100, plan))
    trace = device.attach(TraceCollector())
    result = engine.run(inputs=None, functional=False, device=device, plan=plan)
    print(profile_report(result.metrics, A100, title=f"{args.model} / brickdl"))
    print()
    print(result.attribution_table())
    if args.per_node:
        print()
        print(result.node_attribution_table())
    names = {n.node_id: n.name for n in graph.nodes}
    if args.trace:
        path = write_chrome_trace(trace, args.trace, names=names)
        print(f"\nwrote Chrome trace ({len(trace.records)} tasks, "
              f"{trace.num_workers} lanes) to {path}")
    if args.csv:
        path = write_summary_csv(trace, args.csv, names=names)
        print(f"wrote per-node summary to {path}")
    return 0


def _sanitized_run(graph, plan, strategy, brick):
    """One functional run with the execution sanitizer attached; returns the
    engine result (carrying ``sanitizer_report``)."""
    import numpy as np

    from repro.bench.harness import adapt_sectors
    from repro.core.engine import BrickDLEngine
    from repro.gpusim.device import Device

    engine = BrickDLEngine(graph, strategy_override=strategy,
                           brick_override=brick, sanitize=True)
    device = Device(adapt_sectors(A100, plan))
    rng = np.random.default_rng(0)
    inputs = {n.name: rng.standard_normal(n.spec.shape).astype(n.spec.dtype)
              for n in graph.input_nodes}
    return engine.run(inputs=inputs, functional=True, device=device, plan=plan)


def cmd_sanitize(args) -> int:
    """Dynamic analysis: run the model functionally with the sanitizer suite
    attached (shadow memory, happens-before races, numeric screening)."""
    from repro.core.engine import BrickDLEngine

    graph = _build_model(args)
    strategy = _strategy(args)
    plan = BrickDLEngine(graph, strategy_override=strategy,
                         brick_override=args.brick).compile()
    result = _sanitized_run(graph, plan, strategy, args.brick)
    report = result.sanitizer_report
    print(report.summary(f"{args.model}: sanitized run, "
                         f"{result.metrics.num_tasks} tasks, "
                         f"{len(plan.subgraphs)} subgraphs"))
    return 1 if report.errors else 0


def cmd_lint(args) -> int:
    """Static analysis: lint the graph, verify the compiled plan, model-check
    the memoization protocol, and optionally replay a run's trace."""
    from repro.analysis import (
        GridModel,
        ProtocolModel,
        explore_protocol,
        lint_graph,
        replay_tasks_from_chrome_trace,
        replay_trace,
        verify_plan,
    )
    from repro.core.engine import BrickDLEngine

    graph = _build_model(args)
    strategy = _strategy(args)
    engine = BrickDLEngine(graph, strategy_override=strategy, brick_override=args.brick)
    plan = engine.compile()

    report = lint_graph(graph)
    report.extend(verify_plan(plan, engine.spec, engine.config,
                              strategy_override=strategy,
                              brick_override=args.brick))
    if args.protocol:
        report.extend(explore_protocol(GridModel(), ProtocolModel()))
    if args.replay:
        import json
        import pathlib

        doc = json.loads(pathlib.Path(args.replay).read_text())
        report.extend(replay_trace(plan, replay_tasks_from_chrome_trace(doc)))
    elif args.run:
        from repro.bench.harness import adapt_sectors
        from repro.gpusim.device import Device
        from repro.profiling import TraceCollector

        device = Device(adapt_sectors(A100, plan))
        trace = device.attach(TraceCollector())
        engine.run(inputs=None, functional=False, device=device, plan=plan)
        report.extend(replay_trace(plan, trace.records))
    if args.sanitize:
        result = _sanitized_run(graph, plan, strategy, args.brick)
        report.extend(result.sanitizer_report)

    print(report.summary(f"{args.model}: {len(graph)} nodes, "
                         f"{len(plan.subgraphs)} subgraphs"))
    for d in report.diagnostics:
        print(d.render())
    return 1 if report.errors else 0


def cmd_tune(args) -> int:
    from repro.core.tuner import tune_plan

    graph = _build_model(args)
    _, report = tune_plan(graph)
    print(report.summary())
    return 0


def cmd_fig(args) -> int:
    from repro.bench import figures

    if args.number == 7:
        result = figures.fig7_end_to_end()
        print(figures.fig7_summary_table(result))
    elif args.number == 8:
        print(figures.fig8_resnet_case_study().render())
    elif args.number == 9:
        print(figures.fig9_data_movement(figures.fig8_resnet_case_study()))
    elif args.number == 10:
        print(figures.fig10_subgraph_size().render())
    elif args.number == 11:
        print(figures.fig11_brick_size().render())
    else:
        print(f"no driver for figure {args.number} (evaluation figures are 7-11)", file=sys.stderr)
        return 2
    return 0


def cmd_microbench(args) -> int:
    from repro.bench.microbench import atomic_microbenchmark, compute_microbenchmark

    a = atomic_microbenchmark()
    c = compute_microbenchmark()
    print(f"T_atomic = {a.time_per_atomic_ns:.2f} ns   (paper: 87.45 ns)")
    print(f"T_brick  = {c.time_per_call_us:.2f} us   (paper: 6.72 us, 8^3 brick / 3^3 filter)")
    return 0


def _strategy(args):
    from repro.core.plan import Strategy

    if not getattr(args, "strategy", None):
        return None
    return Strategy(args.strategy)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(fn=cmd_models)

    for name, fn, help_ in (("plan", cmd_plan, "show the compiled execution plan"),
                            ("run", cmd_run, "profile a model on the simulated A100"),
                            ("profile", cmd_profile,
                             "run with the trace collector; export timeline + attribution"),
                            ("tune", cmd_tune, "empirically tune strategies/bricks per subgraph"),
                            ("lint", cmd_lint,
                             "static analysis: lint the graph and verify the plan invariants"),
                            ("sanitize", cmd_sanitize,
                             "dynamic analysis: run with the execution sanitizer suite attached")):
        sp = sub.add_parser(name, help=help_)
        sp.add_argument("model")
        sp.add_argument("--image-size", type=int, default=None)
        sp.add_argument("--reduced", action="store_true", help="use the test-scale config")
        sp.add_argument("--strategy", choices=["padded", "memoized", "wavefront"], default=None)
        sp.add_argument("--brick", type=int, default=None)
        if name == "run":
            sp.add_argument("--compare", action="store_true", help="also run the cuDNN baseline")
            sp.add_argument("--per-subgraph", action="store_true",
                            help="attribute counters to each plan subgraph")
        if name == "lint":
            sp.add_argument("--protocol", action="store_true",
                            help="also model-check the memoization tag protocol")
            sp.add_argument("--run", action="store_true",
                            help="also execute the plan and replay-check its trace")
            sp.add_argument("--replay", default=None, metavar="TRACE.json",
                            help="replay-check an exported Chrome-trace JSON")
            sp.add_argument("--sanitize", action="store_true",
                            help="also execute functionally with the sanitizer suite")
        if name == "profile":
            sp.add_argument("--trace", default=None, metavar="OUT.json",
                            help="write a Chrome-trace/Perfetto JSON timeline")
            sp.add_argument("--csv", default=None, metavar="OUT.csv",
                            help="write the per-node attribution summary as CSV")
            sp.add_argument("--per-node", action="store_true",
                            help="print the per-node attribution table")
        sp.set_defaults(fn=fn)

    fig = sub.add_parser("fig", help="run an evaluation-figure driver (7-11)")
    fig.add_argument("number", type=int)
    fig.set_defaults(fn=cmd_fig)

    sub.add_parser("microbench", help="the section 4.3 calibration scalars").set_defaults(fn=cmd_microbench)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro plan ... | head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
