"""repro -- a from-scratch reproduction of BrickDL (ICPP 2024).

BrickDL: Graph-Level Optimizations for DNNs with Fine-Grained Data Blocking
on GPUs (Lakshminarasimhan, Hall, Williams, Antepara).

The package provides:

* a DNN graph IR and NumPy reference kernels (:mod:`repro.graph`,
  :mod:`repro.kernels`),
* the brick data layout and both merged-execution strategies
  (:mod:`repro.core`),
* a simulated A100 memory hierarchy supplying the paper's hardware
  counters (:mod:`repro.gpusim`),
* the cuDNN / TorchScript / XLA baseline systems (:mod:`repro.baselines`),
* the seven evaluated CNNs (:mod:`repro.models`), and
* the benchmark harness regenerating every evaluation figure
  (:mod:`repro.bench`).

Quickstart::

    from repro import BrickDLEngine, GraphBuilder, TensorSpec

    b = GraphBuilder("net", TensorSpec(1, 3, (64, 64)))
    b.conv_bn_relu(16, 3)
    b.conv_bn_relu(16, 3)
    b.classifier(10)
    result = BrickDLEngine(b.graph).run(x)
"""

from repro.core.engine import BrickDLEngine, EngineResult
from repro.core.plan import ExecutionPlan, Strategy, SubgraphPlan
from repro.core.reference import ReferenceExecutor
from repro.graph.builder import GraphBuilder
from repro.graph.ir import Graph, Node
from repro.graph.tensorspec import TensorSpec
from repro.gpusim.spec import A100, GPUSpec

__version__ = "1.0.0"

__all__ = [
    "BrickDLEngine",
    "EngineResult",
    "ExecutionPlan",
    "Strategy",
    "SubgraphPlan",
    "ReferenceExecutor",
    "GraphBuilder",
    "Graph",
    "Node",
    "TensorSpec",
    "A100",
    "GPUSpec",
    "__version__",
]
