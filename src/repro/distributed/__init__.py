"""Spatial model parallelism with halo exchange (paper section 5.2).

The paper observes that "merged execution can be extended to enable
fine-grained hybrid model parallelism for distributed DNN training",
pointing at DistConv/DistDL-style spatial partitioning with halo exchanges.
This subpackage implements that extension for inference on a simulated
multi-GPU node:

* activations are partitioned across ranks along the first spatial
  dimension (each rank owns a contiguous slab);
* per merged subgraph, each rank exchanges exactly the halo rows the
  subgraph's *composed* receptive field requires (the same static analysis
  that sizes padded bricks, section 3.2.1) and then computes its output
  slab locally;
* communication is modeled with a latency/bandwidth interconnect
  (:class:`~repro.distributed.comm.CommModel`).

The central tradeoff this makes measurable: merging more layers per
subgraph means **fewer** halo exchanges of **wider** halos -- the
communication-avoiding behavior that motivates merged execution for
distributed training.
"""

from repro.distributed.comm import CommCounters, CommModel
from repro.distributed.engine import DistributedResult, DistributedRunner

__all__ = ["CommModel", "CommCounters", "DistributedRunner", "DistributedResult"]
