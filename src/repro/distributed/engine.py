"""Distributed merged execution over spatially partitioned activations.

Each of ``num_ranks`` simulated GPUs owns a contiguous slab of the first
spatial dimension.  Execution proceeds subgraph by subgraph (the same
partitioning the single-GPU engine uses):

1. the composed receptive field of the whole subgraph (the padded-brick
   static analysis of section 3.2.1) determines how many halo rows each
   rank needs beyond its slab;
2. ranks exchange exactly those rows (one neighbor-exchange step per
   subgraph per entry activation) through the
   :class:`~repro.distributed.comm.CommModel`;
3. each rank computes its output slab locally -- including the redundant
   halo recomputation, exactly like one giant padded brick.

Merging more layers per subgraph therefore trades *more* halo volume and
redundant compute per exchange for *fewer* exchanges -- the
communication-avoiding tradeoff the paper's section 5.2 points at.

The runner supports graphs whose operators are all mergeable
(``op.is_local``): convolutional trunks, stencil chains, multigrid cycles.
Classifier heads (global ops) belong on a single device after a gather.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.halo import required_regions
from repro.core.partition import partition_graph
from repro.core.perfmodel import DEFAULT_CONFIG, PerfModelConfig
from repro.distributed.comm import CommCounters, CommModel
from repro.errors import ExecutionError
from repro.graph.ir import Graph
from repro.graph.regions import Region
from repro.gpusim.spec import A100, GPUSpec
from repro.kernels import apply_node_local, pad_value_for

__all__ = ["DistributedRunner", "DistributedResult"]


@dataclass
class DistributedResult:
    """Outputs and cost summary of one distributed run."""

    outputs: dict[str, np.ndarray] | None
    comm: CommCounters
    compute_time_s: float
    num_ranks: int
    num_subgraphs: int
    halo_rows_exchanged: int
    per_rank_flops: list[float] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return self.compute_time_s + self.comm.time_s

    @property
    def load_imbalance(self) -> float:
        if not self.per_rank_flops or max(self.per_rank_flops) == 0:
            return 0.0
        return max(self.per_rank_flops) / (sum(self.per_rank_flops) / len(self.per_rank_flops)) - 1.0


def _partition_rows(extent: int, num_ranks: int) -> list[tuple[int, int]]:
    """Contiguous near-equal row ranges, one per rank."""
    base, extra = divmod(extent, num_ranks)
    bounds = []
    lo = 0
    for r in range(num_ranks):
        hi = lo + base + (1 if r < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class DistributedRunner:
    """Run a mergeable graph across ``num_ranks`` simulated GPUs."""

    def __init__(
        self,
        graph: Graph,
        num_ranks: int,
        spec: GPUSpec = A100,
        config: PerfModelConfig = DEFAULT_CONFIG,
        comm: CommModel | None = None,
        max_layers: int | None = None,
        layer_schedule: tuple[int, ...] | None = None,
        registry=None,
    ) -> None:
        graph.validate()
        for node in graph.nodes:
            if node.is_input:
                continue
            if node.op.is_global or not node.op.is_local:
                raise ExecutionError(
                    f"distributed execution requires mergeable ops; {node.name!r} "
                    f"({node.op.kind}) is global -- gather to one rank for heads"
                )
        if num_ranks < 1:
            raise ExecutionError("num_ranks must be >= 1")
        min_extent = min(n.spec.spatial[0] for n in graph.nodes if n.spec.spatial)
        if num_ranks > min_extent:
            raise ExecutionError(
                f"num_ranks={num_ranks} exceeds the smallest activation extent {min_extent}"
            )
        self.graph = graph
        self.num_ranks = num_ranks
        self.spec = spec
        self.comm = comm if comm is not None else CommModel()
        # Halo-exchange metrics: an explicitly passed registry wins; a comm
        # model that already carries one keeps it.
        if registry is not None:
            self.comm.registry = registry
            registry.set_base(model=graph.name)
        self.subgraphs = partition_graph(graph, spec, config, max_layers, layer_schedule)

    # -- execution ---------------------------------------------------------
    def run(self, x: np.ndarray | None = None, functional: bool = True) -> DistributedResult:
        graph = self.graph
        if functional:
            graph.init_weights()
            if x is None:
                raise ExecutionError("functional distributed run requires an input array")
            x = np.asarray(x, dtype=np.float32)

        # Per boundary node: list over ranks of (row_lo, slab array|None).
        input_node = graph.input_nodes[0]
        extent0 = input_node.spec.spatial[0]
        slabs: dict[int, list[tuple[int, int, np.ndarray | None]]] = {}
        slabs[input_node.node_id] = [
            (lo, hi, x[:, :, lo:hi] if functional else None)
            for lo, hi in _partition_rows(extent0, self.num_ranks)
        ]

        compute_time = 0.0
        halo_rows_total = 0
        per_rank_flops = [0.0] * self.num_ranks

        for view in self.subgraphs:
            step_flops = [0.0] * self.num_ranks
            messages: list[int] = []
            for exit_id in view.exit_ids:
                exit_node = graph.node(exit_id)
                rows = _partition_rows(exit_node.spec.spatial[0], self.num_ranks)
                new_slabs = []
                for rank, (olo, ohi) in enumerate(rows):
                    out_region = Region.from_bounds(
                        [olo] + [0] * (exit_node.spec.spatial_ndim - 1),
                        [ohi] + list(exit_node.spec.spatial[1:]),
                    )
                    required = required_regions(view, exit_id, out_region)
                    patch, halo_rows, msg_sizes, flops = self._rank_compute(
                        view, exit_id, rank, out_region, required, slabs, functional
                    )
                    new_slabs.append((olo, ohi, patch))
                    halo_rows_total += halo_rows
                    messages.extend(msg_sizes)
                    step_flops[rank] += flops
                slabs[exit_id] = new_slabs
            # One neighbor-exchange step per subgraph (all entry halos move
            # together), then all ranks compute; the step cost is the max.
            self.comm.exchange_step(messages)
            compute_time += max(
                self.spec.task_time(f) if f else 0.0 for f in step_flops
            )
            for r in range(self.num_ranks):
                per_rank_flops[r] += step_flops[r]

        outputs = None
        if functional:
            outputs = {}
            for out_node in graph.output_nodes:
                pieces = [p for _, _, p in slabs[out_node.node_id]]
                outputs[out_node.name] = np.concatenate(pieces, axis=2)
        return DistributedResult(
            outputs=outputs,
            comm=self.comm.counters,
            compute_time_s=compute_time,
            num_ranks=self.num_ranks,
            num_subgraphs=len(self.subgraphs),
            halo_rows_exchanged=halo_rows_total,
            per_rank_flops=per_rank_flops,
        )

    # -- per-rank subgraph evaluation -----------------------------------------
    def _rank_compute(self, view, exit_id, rank, out_region, required, slabs, functional):
        """Evaluate one rank's output slab for one subgraph exit.

        Returns ``(patch, halo_rows, message_sizes, flops)``.
        """
        graph = self.graph
        halo_rows = 0
        msg_sizes: list[int] = []
        flops = 0.0
        values: dict[int, np.ndarray] = {}
        covered: dict[int, Region] = {}

        # Entry halos: rows needed beyond this rank's slab of each entry.
        for eid in view.entry_ids:
            if eid not in required:
                continue
            spec = graph.node(eid).spec
            need = required[eid].clip(spec.spatial)
            rank_slabs = slabs[eid]
            olo, ohi, _ = rank_slabs[rank]
            lo_halo = max(0, olo - need[0].lo)
            hi_halo = max(0, need[0].hi - ohi)
            halo_rows += lo_halo + hi_halo
            row_bytes = spec.batch * spec.channels * math.prod(spec.spatial[1:]) * spec.itemsize
            # A message per contributing neighbor per direction.
            for direction, width in ((-1, lo_halo), (+1, hi_halo)):
                remaining, neighbor = width, rank + direction
                while remaining > 0 and 0 <= neighbor < self.num_ranks:
                    nlo, nhi, _ = rank_slabs[neighbor]
                    take = min(remaining, nhi - nlo)
                    msg_sizes.append(take * row_bytes)
                    remaining -= take
                    neighbor += direction
            if functional:
                values[eid] = self._gather_rows(eid, need, rank_slabs)
                covered[eid] = need

        # Evaluate the subgraph on the halo-extended slab (one giant padded
        # brick), accumulating the per-rank flops including halo recompute.
        for nid in view.node_ids:
            if nid not in required:
                continue
            node = graph.node(nid)
            spec = node.spec
            region = required[nid].clip(spec.spatial)
            if region.is_empty():
                covered[nid] = region
                continue
            input_specs = [graph.node(i).spec for i in node.inputs]
            flops += node.op.flops(input_specs, spec.channels * region.size)
            if functional:
                fill = pad_value_for(node.op)
                patches = []
                offsets: list[tuple[int, ...]] = []
                for input_index, pred in enumerate(node.inputs):
                    maps = node.op.rf_maps(input_specs, input_index)
                    need = Region(m.in_interval(iv) for m, iv in zip(maps, region))
                    offsets.append(tuple(m.local_out_offset(iv.lo, niv.lo)
                                         for m, iv, niv in zip(maps, region, need)))
                    patches.append(_extract(values[pred], covered[pred], need, fill,
                                            graph.node(pred).spec))
                values[nid] = apply_node_local(node.op, patches, node.weights,
                                               region.shape, offsets)[None]
                covered[nid] = region

        patch = None
        if functional:
            exit_region = required[exit_id].clip(graph.node(exit_id).spec.spatial)
            full = values[exit_id]
            sl = out_region.slices(origin=[iv.lo for iv in exit_region])
            patch = np.ascontiguousarray(full[(slice(None), slice(None), *sl)])
        return patch, halo_rows, msg_sizes, flops

    def _gather_rows(self, eid: int, need: Region, rank_slabs) -> np.ndarray:
        """Assemble the needed rows of an entry from the owning ranks."""
        spec = self.graph.node(eid).spec
        shape = (spec.batch, spec.channels, *need.shape)
        out = np.zeros(shape, np.float32)
        for lo, hi, slab in rank_slabs:
            olo = max(lo, need[0].lo)
            ohi = min(hi, need[0].hi)
            if olo >= ohi:
                continue
            rest = tuple(slice(iv.lo, iv.hi) for iv in need[1:])
            out[:, :, olo - need[0].lo:ohi - need[0].lo] = slab[(slice(None), slice(None),
                                                                 slice(olo - lo, ohi - lo), *rest)]
        return out


def _extract(values: np.ndarray, covered: Region, needed: Region, fill: float, spec) -> np.ndarray:
    """Slice ``needed`` out of a (N, C, *covered.shape) patch with fill."""
    out = np.full((values.shape[1], *needed.shape), fill, dtype=values.dtype)
    ov = needed.intersect(covered)
    if not ov.is_empty():
        dst = (slice(None), *ov.slices(origin=[iv.lo for iv in needed]))
        src = (0, slice(None), *ov.slices(origin=[iv.lo for iv in covered]))
        out[dst] = values[src]
    return out
