"""Interconnect model for simulated multi-GPU halo exchange.

Models an NVLink-class intra-node fabric with the standard alpha-beta cost:
``t(message) = latency + bytes / bandwidth``.  Neighbor exchanges in a 1-D
spatial decomposition are pairwise and bidirectional; exchanges of one step
proceed concurrently across rank pairs, so the step cost is the *maximum*
over the messages of the step, accumulated into the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CommModel", "CommCounters"]


@dataclass
class CommCounters:
    """Totals across a distributed run."""

    messages: int = 0
    bytes: int = 0
    steps: int = 0
    time_s: float = 0.0

    def merged_with(self, other: "CommCounters") -> "CommCounters":
        return CommCounters(
            self.messages + other.messages,
            self.bytes + other.bytes,
            self.steps + other.steps,
            self.time_s + other.time_s,
        )


@dataclass
class CommModel:
    """Alpha-beta interconnect (defaults: NVLink-3-class).

    ``registry`` optionally points at a
    :class:`~repro.metrics.registry.MetricsRegistry`: when set, every
    exchange step also records halo-exchange counters and a message-size
    histogram there (the distributed runner wires this up).
    """

    latency_s: float = 5e-6
    bandwidth: float = 300e9  # bytes/second per link
    counters: CommCounters = field(default_factory=CommCounters)
    registry: object | None = None

    def message_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.bandwidth

    def exchange_step(self, message_sizes: list[int]) -> float:
        """One neighbor-exchange step: concurrent pairwise messages.

        ``message_sizes`` lists every point-to-point message of the step;
        the step completes when the slowest finishes.
        """
        self.counters.steps += 1
        if self.registry is not None:
            self.registry.inc("halo_exchange_steps")
        if not message_sizes:
            return 0.0
        self.counters.messages += len(message_sizes)
        self.counters.bytes += sum(message_sizes)
        if self.registry is not None:
            self.registry.inc("halo_exchange_messages", len(message_sizes))
            self.registry.inc("halo_exchange_bytes", sum(message_sizes))
            hist = self.registry.histogram("halo_message_bytes")
            for nbytes in message_sizes:
                hist.observe(nbytes)
        step_time = max(self.message_time(b) for b in message_sizes)
        self.counters.time_s += step_time
        return step_time
