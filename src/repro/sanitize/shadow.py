"""Shadow memory: per-buffer interval tracking of written byte ranges.

The MSan-style half of the execution sanitizer.  Every buffer the device
allocates gets a shadow: a sorted list of disjoint, written byte intervals,
each carrying the provenance of the task that wrote it (sequence number,
worker lane, and the lane-clock epoch the race detector needs).  Reads are
checked for coverage -- a byte read that no task wrote is an uninitialized
read, the concrete symptom of a skipped halo write or a missing dependency
edge -- and all accesses are checked against the buffer's bounds and
lifetime (use-after-discard).

Initialization policy: buffers allocated *before the first submitted task*
and not marked transient are host-initialized (graph inputs and weights are
bound by the host before any kernel launches), so reads from them need no
device writer.  Everything allocated mid-run -- memo tensors, layout
conversions, scratch, fallback activations -- must be written by a task
before it is read.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

__all__ = ["WriteRecord", "BufferShadow", "ShadowMemory"]


@dataclass(frozen=True)
class WriteRecord:
    """Provenance of one written interval."""

    seq: int          # device submission order of the writing task
    lane: int         # worker lane the writer ran on
    epoch: int        # writer's vector-clock component on its own lane
    label: str        # writer task label, for diagnostics


@dataclass
class BufferShadow:
    """Shadow state of one buffer."""

    buffer_id: int
    name: str
    nbytes: int
    preinitialized: bool
    discarded_by: str | None = None
    # Disjoint written intervals, sorted by start: parallel lists of
    # (start, end) bounds and the WriteRecord provenance of each.
    starts: list[int] = field(default_factory=list)
    ends: list[int] = field(default_factory=list)
    writers: list[WriteRecord] = field(default_factory=list)

    # -- queries -------------------------------------------------------------
    def overlapping(self, lo: int, hi: int) -> list[tuple[int, int, WriteRecord]]:
        """Written intervals intersecting ``[lo, hi)``, clipped to it."""
        if hi <= lo or not self.starts:
            return []
        i = bisect_right(self.ends, lo)  # first interval with end > lo
        out = []
        while i < len(self.starts) and self.starts[i] < hi:
            out.append((max(lo, self.starts[i]), min(hi, self.ends[i]), self.writers[i]))
            i += 1
        return out

    def uncovered(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Sub-ranges of ``[lo, hi)`` that no write covers."""
        if self.preinitialized:
            return []
        gaps = []
        cursor = lo
        for s, e, _ in self.overlapping(lo, hi):
            if s > cursor:
                gaps.append((cursor, s))
            cursor = max(cursor, e)
        if cursor < hi:
            gaps.append((cursor, hi))
        return gaps

    # -- updates -------------------------------------------------------------
    def record_write(self, lo: int, hi: int, writer: WriteRecord) -> None:
        """Mark ``[lo, hi)`` written by ``writer``, replacing prior owners.

        Overlapped older intervals are trimmed (their non-overlapping tails
        survive with their original provenance).
        """
        if hi <= lo:
            return
        i = bisect_right(self.ends, lo)
        new_starts: list[int] = []
        new_ends: list[int] = []
        new_writers: list[WriteRecord] = []
        j = i
        while j < len(self.starts) and self.starts[j] < hi:
            s, e, w = self.starts[j], self.ends[j], self.writers[j]
            if s < lo:
                new_starts.append(s)
                new_ends.append(lo)
                new_writers.append(w)
            if e > hi:
                new_starts.append(hi)
                new_ends.append(e)
                new_writers.append(w)
            j += 1
        # Merge with an adjacent same-writer interval to keep lists short
        # (row-major writes arrive as many touching segments).
        new_starts.append(lo)
        new_ends.append(hi)
        new_writers.append(writer)
        self.starts[i:j] = []
        self.ends[i:j] = []
        self.writers[i:j] = []
        for s, e, w in sorted(zip(new_starts, new_ends, new_writers)):
            k = bisect_left(self.starts, s)
            if (k > 0 and self.ends[k - 1] == s and self.writers[k - 1] == w):
                self.ends[k - 1] = e
            else:
                self.starts.insert(k, s)
                self.ends.insert(k, e)
                self.writers.insert(k, w)

    @property
    def written_bytes(self) -> int:
        return sum(e - s for s, e in zip(self.starts, self.ends))


class ShadowMemory:
    """Shadow state across all buffers of one run."""

    def __init__(self) -> None:
        self._shadows: dict[int, BufferShadow] = {}
        self.saw_task = False  # flips once the first task is submitted

    def register(self, buffer, *, preinitialized: bool | None = None) -> BufferShadow:
        shadow = self._shadows.get(buffer.buffer_id)
        if shadow is not None:
            return shadow
        if preinitialized is None:
            # Host-initialized: persistent data bound before any kernel ran.
            preinitialized = not self.saw_task and not buffer.transient
        shadow = BufferShadow(buffer.buffer_id, buffer.name, buffer.nbytes,
                              preinitialized)
        self._shadows[buffer.buffer_id] = shadow
        return shadow

    def lookup(self, buffer) -> BufferShadow:
        shadow = self._shadows.get(buffer.buffer_id)
        if shadow is None:
            # Unseen buffer (registered outside the observed device): be
            # lenient and treat it as host-initialized.
            shadow = self.register(buffer, preinitialized=True)
        return shadow

    def discard(self, buffer, by: str) -> BufferShadow:
        shadow = self.lookup(buffer)
        shadow.discarded_by = by
        return shadow

    def shadows(self) -> list[BufferShadow]:
        return list(self._shadows.values())
