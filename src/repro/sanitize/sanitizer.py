"""The execution sanitizer: a device observer validating every run.

:class:`ExecutionSanitizer` attaches to a :class:`~repro.gpusim.device.Device`
through the standard observer API and cross-checks the executed task stream
against three dynamic-analysis models:

* **shadow memory** (:mod:`repro.sanitize.shadow`) -- which bytes of which
  buffer have been written, by whom.  Reads of never-written bytes are
  uninitialized reads (the concrete symptom of a skipped halo write);
  accesses outside a buffer's bounds or after its discard are flagged.
* **happens-before** (:mod:`repro.sanitize.vclock`) -- vector clocks built
  from lane program order, ``synchronize()`` barriers, and the
  release/acquire tokens executors stamp on tasks.  A read whose writer is
  not happens-before-ordered against it is a race (the symptom of a missing
  memoized dependency edge); so is a write-after-write between unordered
  tasks (an exactly-once violation).
* **numeric screening** (:mod:`repro.sanitize.numeric`) -- NaN/Inf/denormal
  checks of functional-mode kernel outputs with first-origin attribution.

Findings are reported in the same :class:`AnalysisReport` currency as the
static passes, so ``repro lint --sanitize``, strict mode, and CI all consume
them unchanged.

Approximate accesses: an access wider than the expansion cap reports a
conservative hull (see :meth:`Access.byte_intervals`).  Hull *writes* are
recorded (over-approximating coverage); hull *reads* skip the uninitialized
and race checks -- the sanitizer never reports a finding it cannot prove.
"""

from __future__ import annotations

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.profiling.observer import DeviceObserver
from repro.sanitize.numeric import NumericSanitizer
from repro.sanitize.shadow import ShadowMemory, WriteRecord
from repro.sanitize.vclock import HBState

__all__ = ["ExecutionSanitizer"]

_PASS = "sanitize"


class ExecutionSanitizer(DeviceObserver):
    """Validates a live run; produces an :class:`AnalysisReport`.

    Parameters
    ----------
    graph:
        Optional :class:`~repro.graph.core.Graph` for node-name rendering
        and derived-NaN demotion.  The sanitizer works without it.
    max_per_code:
        Diagnostic cap per code; further findings of the same code are
        counted but suppressed (a single root cause floods otherwise).
    """

    def __init__(self, graph=None, max_per_code: int = 25) -> None:
        self.graph = graph
        self.max_per_code = max_per_code
        self.shadow = ShadowMemory()
        self.hb = HBState()
        self.numeric = NumericSanitizer(graph)
        self.counts: dict[str, int] = {}
        self._diags: list[Diagnostic] = []
        self._seq = 0
        self._scopes: list[int | None] = []

    # -- diagnostics ---------------------------------------------------------
    def _emit(self, code: str, severity: Severity, message: str,
              node_id: int | None = None, subgraph_index: int | None = None,
              detail=None) -> None:
        n = self.counts.get(code, 0) + 1
        self.counts[code] = n
        if n > self.max_per_code:
            return
        self._diags.append(Diagnostic(
            pass_name=_PASS, code=code, severity=severity, message=message,
            node_id=node_id, subgraph_index=subgraph_index, detail=detail))

    def report(self) -> AnalysisReport:
        """Finalize: the full report, including numeric findings and
        suppression notes for capped codes."""
        report = AnalysisReport(list(self._diags))
        report.diagnostics.extend(self.numeric.diagnostics())
        for code, n in sorted(self.counts.items()):
            if n > self.max_per_code:
                report.add(Diagnostic(
                    pass_name=_PASS, code=code + ".suppressed",
                    severity=Severity.INFO,
                    message=f"{n - self.max_per_code} further {code} "
                            f"finding(s) suppressed (cap {self.max_per_code})",
                ))
        return report

    # -- observer hooks ------------------------------------------------------
    def on_alloc(self, device, buffer) -> None:
        self.shadow.register(buffer)

    def on_discard(self, device, buffer) -> None:
        where = (f"subgraph {self._scopes[-1]}"
                 if self._scopes and self._scopes[-1] is not None else "run")
        self.shadow.discard(buffer, by=where)

    def on_scope_begin(self, device, subgraph_index, strategy) -> None:
        self._scopes.append(subgraph_index)

    def on_scope_end(self, device, subgraph_index, strategy) -> None:
        if self._scopes:
            self._scopes.pop()

    def on_sync(self, device, time_s) -> None:
        self.hb.barrier()

    def on_task_values(self, device, task, node_id, values) -> None:
        sub = self._scopes[-1] if self._scopes else None
        self.numeric.screen(task, node_id, values, sub)

    def on_task_submit(self, device, task, delta) -> None:
        self.shadow.saw_task = True
        seq = self._seq
        self._seq += 1
        lane = task.worker if task.worker is not None else 0
        clock = self.hb.begin_task(lane, task.acquires)
        epoch = clock.get(lane)
        me = WriteRecord(seq=seq, lane=lane, epoch=epoch, label=task.label)

        for access in task.accesses:
            shadow = self.shadow.lookup(access.buffer)
            intervals, exact = access.byte_intervals()
            kind = "write" if access.write else "read"

            if shadow.discarded_by is not None:
                self._emit(
                    "sanitize.use-after-discard", Severity.ERROR,
                    f"task {task.label!r} {kind}s buffer {shadow.name!r} "
                    f"after it was discarded ({shadow.discarded_by})",
                    node_id=task.node_id, subgraph_index=task.subgraph_index,
                    detail={"buffer": shadow.name, "task": task.label})

            for lo, hi in intervals:
                if lo < 0 or hi > shadow.nbytes:
                    self._emit(
                        "sanitize.oob-access", Severity.ERROR,
                        f"task {task.label!r} {kind}s [{lo}, {hi}) of buffer "
                        f"{shadow.name!r} ({shadow.nbytes} bytes)",
                        node_id=task.node_id,
                        subgraph_index=task.subgraph_index,
                        detail={"buffer": shadow.name, "range": (lo, hi)})
                    continue
                if access.write:
                    if exact:
                        for s, e, w in shadow.overlapping(lo, hi):
                            if w.seq != seq and not clock.dominates(w.lane, w.epoch):
                                self._emit(
                                    "sanitize.race-write", Severity.ERROR,
                                    f"unordered write-after-write on buffer "
                                    f"{shadow.name!r} [{s}, {e}): "
                                    f"{task.label!r} overwrites {w.label!r} "
                                    f"with no happens-before edge",
                                    node_id=task.node_id,
                                    subgraph_index=task.subgraph_index,
                                    detail={"buffer": shadow.name,
                                            "range": (s, e),
                                            "prior": w.label})
                    shadow.record_write(lo, hi, me)
                elif exact:
                    gaps = shadow.uncovered(lo, hi)
                    if gaps:
                        g0, g1 = gaps[0]
                        self._emit(
                            "sanitize.uninit-read", Severity.ERROR,
                            f"task {task.label!r} reads "
                            f"{sum(b - a for a, b in gaps)} uninitialized "
                            f"byte(s) of buffer {shadow.name!r} (first gap "
                            f"[{g0}, {g1})): no task ever wrote them",
                            node_id=task.node_id,
                            subgraph_index=task.subgraph_index,
                            detail={"buffer": shadow.name, "gaps": gaps})
                    for s, e, w in shadow.overlapping(lo, hi):
                        if w.seq != seq and not clock.dominates(w.lane, w.epoch):
                            self._emit(
                                "sanitize.race-read", Severity.ERROR,
                                f"racy read of buffer {shadow.name!r} "
                                f"[{s}, {e}): {task.label!r} reads bytes "
                                f"written by {w.label!r} with no "
                                f"happens-before edge (missing dependency?)",
                                node_id=task.node_id,
                                subgraph_index=task.subgraph_index,
                                detail={"buffer": shadow.name,
                                        "range": (s, e),
                                        "writer": w.label})

        for token in task.releases:
            self.hb.release(token, clock)
