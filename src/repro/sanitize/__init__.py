"""Execution sanitizers for the brick runtime (dynamic analysis).

Where :mod:`repro.analysis` checks models of execution (graph, plan,
protocol state machine, recorded trace), this package validates *live* runs:
an :class:`ExecutionSanitizer` attached to the device observes every
allocation, task, barrier, and functional kernel result as it happens and
reports shadow-memory violations, happens-before races, and numeric
anomalies in the shared :class:`~repro.analysis.diagnostics.AnalysisReport`
currency.
"""

from repro.sanitize.numeric import NumericFinding, NumericSanitizer
from repro.sanitize.sanitizer import ExecutionSanitizer
from repro.sanitize.shadow import BufferShadow, ShadowMemory, WriteRecord
from repro.sanitize.vclock import HBState, VectorClock

__all__ = [
    "ExecutionSanitizer",
    "ShadowMemory",
    "BufferShadow",
    "WriteRecord",
    "HBState",
    "VectorClock",
    "NumericSanitizer",
    "NumericFinding",
]
