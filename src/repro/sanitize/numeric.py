"""Numeric sanitizer: NaN/Inf/denormal screening of kernel outputs.

Screens every functional-mode kernel result the device announces through
``note_values`` and attributes the *first origin* of each anomaly class to
the (node, subgraph, brick, batch) that produced it.  Downstream nodes that
merely inherit a poisoned input are demoted to informational "derived"
findings, so one NaN-producing kernel yields one error naming the true
origin rather than an error per consumer.

NaN and Inf are errors (a finite-input DNN forward pass should never
produce either); denormals are warnings (they are numerically valid but
flush-to-zero hardware disagrees with NumPy about them, and a flood of
denormals usually signals vanishing activations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = ["NumericFinding", "NumericSanitizer"]

_PASS = "sanitize"


@dataclass
class NumericFinding:
    """First occurrence of one anomaly class at one node."""

    kind: str                       # "nan" | "inf" | "denormal"
    node_id: int | None
    subgraph_index: int | None
    brick: tuple[int, ...] | None
    batch_index: int | None
    label: str
    count: int = 1                  # total offending elements at this node
    derived: bool = False           # inherited from a poisoned predecessor


class NumericSanitizer:
    """Accumulates numeric findings from ``on_task_values`` events."""

    def __init__(self, graph=None) -> None:
        self.graph = graph
        self.findings: dict[tuple[str, int | None], NumericFinding] = {}
        self._poisoned: set[int] = set()  # node ids that saw NaN/Inf

    def screen(self, task, node_id: int | None, values,
               subgraph_index: int | None) -> None:
        arr = np.asarray(values)
        if not np.issubdtype(arr.dtype, np.floating) or arr.size == 0:
            return
        finite = np.isfinite(arr)
        nan_count = int(np.isnan(arr).sum())
        inf_count = int(arr.size - finite.sum()) - nan_count
        mag = np.abs(arr)
        denormal_count = int(((mag > 0) & (mag < np.finfo(arr.dtype).tiny)).sum())
        for kind, count in (("nan", nan_count), ("inf", inf_count),
                            ("denormal", denormal_count)):
            if count:
                self._record(kind, count, task, node_id, subgraph_index)
        if nan_count or inf_count:
            if node_id is not None:
                self._poisoned.add(node_id)

    def _record(self, kind: str, count: int, task, node_id: int | None,
                subgraph_index: int | None) -> None:
        key = (kind, node_id)
        existing = self.findings.get(key)
        if existing is not None:
            existing.count += count
            return
        derived = kind != "denormal" and self._inherited(node_id)
        self.findings[key] = NumericFinding(
            kind=kind,
            node_id=node_id,
            subgraph_index=(task.subgraph_index if task is not None and
                            task.subgraph_index is not None else subgraph_index),
            brick=getattr(task, "brick", None),
            batch_index=getattr(task, "batch_index", None),
            label=getattr(task, "label", "(fallback kernel)"),
            count=count,
            derived=derived,
        )

    def _inherited(self, node_id: int | None) -> bool:
        """True when a predecessor of ``node_id`` already produced NaN/Inf,
        so this node is propagation, not origin."""
        if self.graph is None or node_id is None:
            return False
        try:
            node = self.graph.node(node_id)
        except Exception:
            return False
        return any(pred in self._poisoned for pred in node.inputs)

    def diagnostics(self) -> list[Diagnostic]:
        out = []
        names = {}
        if self.graph is not None:
            names = {n.node_id: n.name for n in self.graph.nodes}
        for finding in self.findings.values():
            where = names.get(finding.node_id, finding.label)
            loc = ""
            if finding.brick is not None:
                loc = f" brick {finding.brick}"
                if finding.batch_index is not None:
                    loc += f" (batch {finding.batch_index})"
            if finding.kind == "denormal":
                severity, code = Severity.WARNING, "sanitize.numeric-denormal"
                what = f"{finding.count} denormal output value(s)"
            elif finding.derived:
                severity, code = Severity.INFO, "sanitize.numeric-derived"
                what = (f"{finding.count} non-finite value(s) inherited from a "
                        f"poisoned input ({finding.kind} propagation)")
            else:
                severity = Severity.ERROR
                code = f"sanitize.numeric-{finding.kind}"
                what = f"{finding.count} {finding.kind} output value(s)"
            out.append(Diagnostic(
                pass_name=_PASS, code=code, severity=severity,
                message=f"{where!r}{loc}: {what}; first seen in task "
                        f"{finding.label!r}",
                node_id=finding.node_id,
                subgraph_index=finding.subgraph_index,
                detail={"kind": finding.kind, "count": finding.count,
                        "brick": finding.brick, "batch": finding.batch_index},
            ))
        return out
