"""Exception hierarchy for the repro (BrickDL reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """An operator was given tensors whose shapes are incompatible."""


class GraphError(ReproError):
    """A DNN graph is structurally invalid (cycles, dangling edges, ...)."""


class UnsupportedOpError(ReproError):
    """An operator is not supported by the requested execution backend."""


class PlanError(ReproError):
    """An execution plan could not be constructed or is inconsistent."""


class ExecutionError(ReproError):
    """A runtime failure during plan execution."""


class RewriteError(ReproError):
    """A graph rewrite failed translation validation (unsound rule)."""


class LayoutError(ReproError):
    """A brick-layout operation was used inconsistently (bad grid, size...)."""
