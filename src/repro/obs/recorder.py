"""Flight recorder: a bounded ring of recent spans/events, dumped on fault.

A loadgen p99 outlier or a shed request is explainable only if the context
*around* it survives -- which a streaming log does not guarantee once the
file is large and a dashboard is all anyone watches.  The flight recorder
keeps the last ``capacity`` trace entries in memory and, on a trigger
(``error``, ``reject``, ``timeout``, ``slo_breach``), freezes the ring
into a JSON dump.

Each trigger *reason* fires at most once per recorder lifetime: the first
reject is the interesting one; the next five hundred would just overwrite
the evidence with later, less relevant context.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

__all__ = ["FlightRecorder", "TRIGGER_REASONS"]

TRIGGER_REASONS = ("error", "reject", "timeout", "slo_breach")


class FlightRecorder:
    """Bounded in-memory trace ring with once-per-reason fault dumps."""

    def __init__(self, capacity: int = 512,
                 out_dir: "str | Path | None" = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.dumps: dict[str, dict] = {}
        self.paths: dict[str, Path] = {}

    def note(self, entry: dict) -> None:
        """Record one span/event entry (the tracer fans these in)."""
        self._ring.append(entry)

    def trigger(self, reason: str, detail: str = "",
                trace_id: str | None = None,
                request_id: int | None = None,
                time_s: float | None = None) -> dict | None:
        """Freeze the ring for ``reason``; returns the dump, or ``None`` if
        this reason already fired (exactly-once per reason)."""
        if reason in self.dumps:
            return None
        dump = {
            "reason": reason,
            "detail": detail,
            "trace_id": trace_id,
            "request_id": request_id,
            "time_s": time_s,
            "entries": list(self._ring),
        }
        self.dumps[reason] = dump
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            path = self.out_dir / f"flightrec-{reason}.json"
            path.write_text(json.dumps(dump, indent=1))
            self.paths[reason] = path
        return dump

    def __len__(self) -> int:
        return len(self._ring)
