"""Trace currency: contexts and spans.

A :class:`TraceContext` is the minimal propagation token -- which trace an
operation belongs to and which span is its parent -- minted at serve
admission and threaded through the batcher, the plan cache, the engine,
and down to every simulated-device task.  A :class:`Span` is one timed,
attributed operation in that tree.  Both are plain data: the clock, the
sinks, and the id minting live in :class:`~repro.obs.tracer.Tracer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceContext", "Span"]


@dataclass(frozen=True)
class TraceContext:
    """What crosses a boundary: trace identity plus the parent span."""

    trace_id: str
    span_id: str
    parent_id: str | None = None


@dataclass
class Span:
    """One timed operation inside a trace.

    ``kind`` is the coarse taxonomy the invariant checks key on:
    ``request`` (serve-request roots), ``stage`` (queued time),
    ``batch``/``execute``/``plan`` (the serving pipeline), ``task``
    (simulated-device kernel invocations).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    kind: str = "span"
    start_s: float = 0.0
    end_s: float | None = None
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    def context(self) -> TraceContext:
        """This span as a propagation token (children parent onto it)."""
        return TraceContext(self.trace_id, self.span_id, self.parent_id)

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def as_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        return cls(
            name=doc["name"],
            trace_id=doc["trace_id"],
            span_id=doc["span_id"],
            parent_id=doc.get("parent_id"),
            kind=doc.get("kind", "span"),
            start_s=doc.get("start_s", 0.0),
            end_s=doc.get("end_s"),
            status=doc.get("status", "ok"),
            attrs=dict(doc.get("attrs", {})),
        )
