"""SLO monitor: wires burn-rate math to the registry, tracer, and recorder.

The derivation lives in :mod:`repro.metrics.slo`; this module is the serve
integration.  :class:`SLOMonitor` is always on (recording one event per
request is two appends), while the tracer/recorder side effects only exist
when those sinks are attached -- a tracing-off server records burn rates
into the registry and nothing else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.slo import BurnAlert, BurnRateMonitor, SLOConfig

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.metrics.registry import MetricsRegistry
    from repro.obs.recorder import FlightRecorder
    from repro.obs.tracer import Tracer

__all__ = ["SLOMonitor"]


class SLOMonitor:
    """Per-request SLO accounting with multi-window burn-rate alerting."""

    def __init__(
        self,
        config: SLOConfig | None = None,
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
        recorder: "FlightRecorder | None" = None,
    ) -> None:
        self.config = config if config is not None else SLOConfig()
        self.monitor = BurnRateMonitor(self.config)
        self.registry = registry
        self.tracer = tracer
        self.recorder = recorder
        self.alerts: list[BurnAlert] = []

    def observe(self, now_s: float, good: bool,
                trace_id: str | None = None,
                latency_s: float | None = None) -> list[BurnAlert]:
        """Record one request outcome; returns any newly fired alerts.

        ``good`` is deadline attainment; with a configured latency target
        the request must also have completed inside it.
        """
        target = self.config.latency_target_s
        if good and target is not None and latency_s is not None:
            good = latency_s <= target
        self.monitor.record(now_s, good)
        alerts = self.monitor.check(now_s)
        if self.registry is not None:
            for short_s, long_s in self.config.windows:
                self.registry.gauge(
                    "slo_burn_rate", window=f"{short_s:g}s",
                ).set(self.monitor.burn(short_s, now_s))
                self.registry.gauge(
                    "slo_burn_rate", window=f"{long_s:g}s",
                ).set(self.monitor.burn(long_s, now_s))
        for alert in alerts:
            self.alerts.append(alert)
            if self.registry is not None:
                self.registry.counter("slo_burn_alerts").inc()
            if self.tracer is not None:
                attrs = alert.as_dict()
                self.tracer.event("slo_breach", time_s=attrs.pop("time_s"),
                                  **attrs)
            if self.recorder is not None:
                self.recorder.trigger(
                    "slo_breach",
                    detail=(f"burn {alert.short_burn:.1f}x/"
                            f"{alert.long_burn:.1f}x over threshold "
                            f"{alert.threshold:g} "
                            f"({alert.short_window_s:g}s/{alert.long_window_s:g}s)"),
                    trace_id=trace_id, time_s=alert.time_s)
        return alerts

    def stats(self, now_s: float | None = None) -> dict:
        """The ``metrics.serve.slo`` block of the serving manifest."""
        if now_s is None:
            # Latest event time: stats after the loop closed must not need a
            # live clock on the same basis.
            now_s = self.monitor._events[-1][0] if self.monitor._events else 0.0
        doc = self.monitor.stats(now_s)
        doc["alerts"] = [a.as_dict() for a in self.alerts]
        return doc
