"""Request-scoped observability for the serving layer.

``repro.obs`` connects a serve request to the device work it caused: a
:class:`TraceContext` minted at admission propagates through batching,
the plan cache, the engine, and down to every simulated-device task, so a
p99 outlier in a loadgen run decomposes into queued / plan / execute /
per-task spans instead of being a number.

Pieces:

* :mod:`~repro.obs.context` / :mod:`~repro.obs.tracer` -- spans,
  deterministic ids, JSONL sink;
* :mod:`~repro.obs.recorder` -- bounded flight-recorder ring, dumped once
  per fault reason (error/reject/timeout/slo_breach);
* :mod:`~repro.obs.slo` -- multi-window burn-rate alerting over the
  deadline-attainment objective (math in :mod:`repro.metrics.slo`);
* :mod:`~repro.obs.export` -- completeness invariants, span trees, and
  the merged Perfetto export;
* :mod:`~repro.obs.top` -- the ``repro top`` live dashboard.
"""

from repro.obs.context import Span, TraceContext
from repro.obs.export import (
    CompletenessReport,
    check_completeness,
    list_traces,
    load_entries,
    merged_chrome_trace,
    render_span_tree,
)
from repro.obs.recorder import TRIGGER_REASONS, FlightRecorder
from repro.obs.slo import SLOMonitor
from repro.obs.top import render_dashboard, run_top
from repro.obs.tracer import Tracer

__all__ = [
    "Span", "TraceContext", "Tracer", "FlightRecorder", "TRIGGER_REASONS",
    "SLOMonitor", "CompletenessReport", "check_completeness", "list_traces",
    "load_entries", "merged_chrome_trace", "render_span_tree",
    "render_dashboard", "run_top",
]
