"""Reading traces back: completeness checks, span trees, Perfetto export.

Consumes the tracer's JSONL entries (or the in-memory list) and provides
the three read paths:

* :func:`check_completeness` -- the invariant gate the tests and the CI
  obs-smoke job assert: every span's parent exists in the same trace (no
  orphans), every ``task`` span has a ``request`` ancestor, every trace
  has exactly one root and it is a serve request;
* :func:`render_span_tree` / :func:`list_traces` -- the ``repro trace
  show`` terminal view;
* :func:`merged_chrome_trace` -- one Trace Event Format file uniting the
  serve-layer spans with the device task lanes (PR 1's view), loadable in
  Perfetto.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.context import Span

__all__ = ["load_entries", "spans_of", "CompletenessReport",
           "check_completeness", "list_traces", "render_span_tree",
           "merged_chrome_trace"]


# Root-span kinds beyond serve requests: fleet control-plane decisions.
_FLEET_ROOT_KINDS = ("scale", "preempt")


def load_entries(path: "str | Path") -> list[dict]:
    """Parse a tracer JSONL file back into entry dicts."""
    entries = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def spans_of(entries: list[dict]) -> list[Span]:
    return [Span.from_dict(e) for e in entries if e.get("type") == "span"]


@dataclass
class CompletenessReport:
    """What the span-tree invariant check found."""

    traces: int = 0
    spans: int = 0
    task_spans: int = 0
    request_roots: int = 0
    fleet_roots: int = 0     # autoscaler / preemption control-plane traces
    events: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        fleet = (f", {self.fleet_roots} fleet root(s)"
                 if self.fleet_roots else "")
        return (f"trace completeness {verdict}: {self.traces} trace(s), "
                f"{self.spans} span(s) ({self.task_spans} device-task), "
                f"{self.request_roots} request root(s){fleet}, "
                f"{self.events} event(s)")


def check_completeness(entries: list[dict],
                       max_problems: int = 20) -> CompletenessReport:
    """Verify the span-tree invariants over a trace log.

    Checked: parents exist and share the child's trace (no orphans), spans
    are finished, each trace has exactly one root and it is ``kind ==
    "request"`` (or a fleet control-plane root: ``scale``/``preempt``),
    and every ``task`` span reaches a request root by walking parents.
    Problems are capped at ``max_problems`` per report.
    """
    spans = spans_of(entries)
    report = CompletenessReport(
        spans=len(spans),
        events=sum(1 for e in entries if e.get("type") == "event"))
    by_id = {s.span_id: s for s in spans}
    roots_by_trace: dict[str, list[Span]] = {}

    def problem(msg: str) -> None:
        if len(report.problems) < max_problems:
            report.problems.append(msg)

    for s in spans:
        if s.end_s is None:
            problem(f"span {s.span_id} ({s.name}) never finished")
        if s.parent_id is None:
            roots_by_trace.setdefault(s.trace_id, []).append(s)
            continue
        parent = by_id.get(s.parent_id)
        if parent is None:
            problem(f"orphan span {s.span_id} ({s.name}): "
                    f"parent {s.parent_id} not in log")
        elif parent.trace_id != s.trace_id:
            problem(f"span {s.span_id} ({s.name}) crosses traces: "
                    f"{s.trace_id} -> parent in {parent.trace_id}")

    report.traces = len({s.trace_id for s in spans})
    for trace_id, roots in sorted(roots_by_trace.items()):
        if len(roots) > 1:
            problem(f"trace {trace_id} has {len(roots)} roots")
        for root in roots:
            if root.kind == "request":
                report.request_roots += 1
            elif root.kind in _FLEET_ROOT_KINDS:
                # Control-plane traces: autoscaler decisions and batcher
                # preemptions root their own (single-span) traces.
                report.fleet_roots += 1
            else:
                problem(f"trace {trace_id} root {root.span_id} "
                        f"({root.name}) is kind={root.kind!r}, not a "
                        f"serve request")
    for trace_id in {s.trace_id for s in spans} - set(roots_by_trace):
        problem(f"trace {trace_id} has no root span")

    for s in spans:
        if s.kind != "task":
            continue
        report.task_spans += 1
        seen: set[str] = set()
        cur: Span | None = s
        while cur is not None and cur.span_id not in seen:
            seen.add(cur.span_id)
            if cur.kind == "request":
                break
            cur = by_id.get(cur.parent_id) if cur.parent_id else None
        else:
            problem(f"task span {s.span_id} ({s.name}) has no "
                    f"serve-request ancestor")
    return report


# -- terminal rendering ------------------------------------------------------
def list_traces(entries: list[dict]) -> list[dict]:
    """One summary row per trace, in trace-id order."""
    rows: dict[str, dict] = {}
    for s in spans_of(entries):
        row = rows.setdefault(s.trace_id, {
            "trace_id": s.trace_id, "spans": 0, "tasks": 0,
            "root": None, "request_id": None, "duration_ms": 0.0,
            "status": "ok",
        })
        row["spans"] += 1
        if s.kind == "task":
            row["tasks"] += 1
        if s.parent_id is None:
            row["root"] = s.name
            row["request_id"] = s.attrs.get("request_id")
            row["duration_ms"] = s.duration_s * 1e3
            if s.status != "ok":
                row["status"] = s.status
    return [rows[t] for t in sorted(rows)]


def render_span_tree(entries: list[dict], trace_id: str,
                     max_children: int = 12) -> str:
    """ASCII span tree of one trace; sibling ``task`` spans beyond
    ``max_children`` collapse into a single summary line."""
    spans = [s for s in spans_of(entries) if s.trace_id == trace_id]
    if not spans:
        return f"no spans for trace {trace_id}"
    children: dict[str | None, list[Span]] = {}
    by_id = {s.span_id: s for s in spans}
    for s in spans:
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start_s, s.span_id))

    def describe(s: Span) -> str:
        bits = [f"{s.name} [{s.kind}]", f"{s.duration_s * 1e3:.2f} ms"]
        if s.status != "ok":
            bits.append(f"status={s.status}")
        for key in ("request_id", "device", "size", "bucket", "cache_hit",
                    "worker", "node_id"):
            if key in s.attrs:
                bits.append(f"{key}={s.attrs[key]}")
        return "  ".join(bits)

    lines: list[str] = []

    def walk(span: Span, prefix: str, branch: str) -> None:
        lines.append(prefix + branch + describe(span))
        kids = children.get(span.span_id, [])
        shown = kids
        dropped = 0
        if len(kids) > max_children:
            tasks = [k for k in kids if k.kind == "task"]
            if len(tasks) > max_children // 2:
                keep = max_children // 2
                dropped = len(tasks) - keep
                drop_ids = {k.span_id for k in tasks[keep:]}
                shown = [k for k in kids if k.span_id not in drop_ids]
        child_prefix = prefix if not branch else \
            prefix + ("   " if branch == "└─ " else "│  ")
        for i, kid in enumerate(shown):
            last = i == len(shown) - 1 and not dropped
            walk(kid, child_prefix, "└─ " if last else "├─ ")
        if dropped:
            lines.append(child_prefix + f"└─ ... {dropped} more task span(s)")

    for root in children.get(None, []):
        walk(root, "", "")
    return "\n".join(lines)


# -- Perfetto export ---------------------------------------------------------
def merged_chrome_trace(entries: list[dict]) -> dict:
    """Serve spans and device task spans on one Trace Event timeline.

    Serve-layer spans render as process 0 with one thread per trace
    (requests stack visibly); ``task`` spans render as one process per
    simulated device with one thread per worker lane -- the same layout as
    the PR-1 device trace, now wall-aligned under the serve spans.
    Timestamps are microseconds from the first span's start.
    """
    spans = spans_of(entries)
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(s.start_s for s in spans)
    trace_tids = {t: i for i, t in enumerate(sorted({s.trace_id for s in spans}))}
    events: list[dict] = [{
        "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
        "args": {"name": "serve"},
    }]
    for trace_id, tid in trace_tids.items():
        events.append({"ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
                       "args": {"name": trace_id}})
    device_pids: set[int] = set()
    for s in spans:
        if s.kind == "task":
            device = s.attrs.get("device")
            pid = 1000 + int(device) if device is not None else 1000
            tid = int(s.attrs.get("worker", 0))
            if pid not in device_pids:
                device_pids.add(pid)
                events.append({
                    "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                    "args": {"name": f"device {pid - 1000}"},
                })
        else:
            pid = 0
            tid = trace_tids[s.trace_id]
        events.append({
            "ph": "X", "pid": pid, "tid": tid, "name": s.name,
            "cat": s.kind, "ts": (s.start_s - t0) * 1e6,
            "dur": s.duration_s * 1e6,
            "args": {"trace_id": s.trace_id, "span_id": s.span_id,
                     "status": s.status, **s.attrs},
        })
    for e in entries:
        if e.get("type") != "event":
            continue
        events.append({
            "ph": "i", "pid": 0,
            "tid": trace_tids.get(e.get("trace_id"), 0),
            "name": e["name"], "ts": (e.get("time_s", t0) - t0) * 1e6,
            "s": "g", "args": dict(e.get("attrs", {})),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs"}}
