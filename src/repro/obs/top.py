"""``repro top``: a live terminal dashboard over a serving session.

Renders the server's registry-backed state -- queue depth, batch sizes,
plan-cache hit ratio, latency quantiles, SLO burn rates, the per-stage
time breakdown, and (on a fleet server) per-class / per-tenant rollups
plus the autoscaler's device count and scale events -- as a plain-text
panel, refreshed while a loadgen drives traffic.  Everything is read off structures the serve path
maintains anyway, so a refresh costs a registry scan, not extra
instrumentation.
"""

from __future__ import annotations

import asyncio
import sys
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serve.loadgen import LoadgenReport
    from repro.serve.server import InferenceServer

__all__ = ["render_dashboard", "run_top"]


def _bar(value: float, peak: float, width: int = 24) -> str:
    if peak <= 0:
        return "." * width
    filled = min(width, round(value / peak * width))
    return "#" * filled + "." * (width - filled)


def render_dashboard(server: "InferenceServer", width: int = 72) -> str:
    """One frame: the serving session's vitals as aligned text lines."""
    stats = server.stats()
    reqs = stats["requests"]
    cache = stats["plan_cache"]
    depth = server._queue.qsize() if server._queue is not None else 0
    slo = stats.get("slo", {})
    stages = stats.get("stages", {})
    devices = stats.get("devices", {})
    auto = stats.get("autoscaler", {})
    current = devices.get("current", server.config.devices)
    fleet = f"{current} device(s)"
    if auto.get("enabled"):
        fleet += (f" [{auto['min']}..{auto['max']}, +{auto['scale_ups']}"
                  f"/-{auto['scale_downs']} scale]")
    title = server.graph.name
    if len(server.graphs) > 1:
        title += f" (+{len(server.graphs) - 1} model(s))"

    lines = [
        f"repro top · {title} · {fleet} "
        f"· wall {stats['wall_s']:.1f} s",
        "-" * width,
        f"requests   completed {reqs['completed']:>6}   degraded "
        f"{reqs['degraded']:>5}   timed out {reqs['timed_out']:>5}   "
        f"rejected {reqs['rejected']:>5}",
        f"throughput {stats['throughput_rps']:>8.1f} rps   batches "
        f"{stats['batches']['count']:>5}   mean size "
        f"{stats['batches']['mean_size']:>5.2f}",
        f"latency    p50 {stats['latency_s']['p50'] * 1e3:>8.1f} ms   "
        f"p99 {stats['latency_s']['p99'] * 1e3:>8.1f} ms",
        f"queue      depth {depth:>4}/{server.config.queue_depth:<4} "
        f"[{_bar(depth, server.config.queue_depth)}]",
        f"plan cache hits {cache['hits']:>5}   misses {cache['misses']:>4}   "
        f"request hit ratio {cache['request_hit_ratio']:>6.1%}   "
        f"entries {cache['size']}",
    ]
    classes = stats.get("classes", {})
    if len(classes) > 1:
        for name, c in sorted(classes.items()):
            lines.append(
                f"class      {name:<12} ({c['batching']})  done {c['completed']:>5}   "
                f"shed {c['shed_rate']:>6.1%}   attain {c['attainment']:>7.2%}   "
                f"p99 {c['p99_s'] * 1e3:>7.1f} ms")
    tenants = stats.get("tenants", {})
    if len(tenants) > 1:
        for name, t in sorted(tenants.items()):
            lines.append(
                f"tenant     {name:<12} done {t['completed']:>5}   "
                f"shed {t['shed']:>4}   p99 {t['p99_s'] * 1e3:>7.1f} ms")
    if stages:
        lines.append(
            f"stages     queued mean {stages.get('queued_mean_ms', 0.0):>7.2f} ms   "
            f"service mean {stages.get('service_mean_ms', 0.0):>7.2f} ms   "
            f"compile total {stages.get('compile_total_s', 0.0):>6.3f} s")
    if slo:
        burns = slo.get("burn_rates", {})
        burn_bits = "   ".join(
            f"{pair}: {v['short']:.2f}/{v['long']:.2f}"
            for pair, v in burns.items())
        state = (f"ALERT x{slo['alerts_fired']}" if slo.get("alerts_fired")
                 else "ok")
        lines.append(
            f"slo        attainment {slo['attainment']:>7.2%} "
            f"(objective {slo['objective']:.2%})   burn {burn_bits}   {state}")
    lines.append("-" * width)
    return "\n".join(lines)


async def _top_loop(server: "InferenceServer", loadgen_kwargs: dict,
                    refresh_s: float, stream) -> "LoadgenReport":
    from repro.serve.loadgen import run_loadgen

    clear = "\x1b[2J\x1b[H" if stream.isatty() else ""
    async with server:
        traffic = asyncio.create_task(run_loadgen(server, **loadgen_kwargs))
        while not traffic.done():
            stream.write(clear + render_dashboard(server) + "\n")
            stream.flush()
            await asyncio.wait({traffic}, timeout=refresh_s)
        stream.write(clear + render_dashboard(server) + "\n")
        stream.flush()
        return await traffic


def run_top(server: "InferenceServer", refresh_s: float = 0.5,
            stream=None, **loadgen_kwargs) -> "LoadgenReport":
    """Drive a loadgen against ``server`` while rendering the dashboard."""
    stream = stream if stream is not None else sys.stdout
    return asyncio.run(_top_loop(server, loadgen_kwargs, refresh_s, stream))
