"""The tracer: span lifecycle, deterministic ids, and sinks.

One :class:`Tracer` serves one serving session.  It mints deterministic
ids (``itertools.count``, no randomness -- two identical runs produce
identical trace files), timestamps with ``time.monotonic()`` (the same
basis as the asyncio event loop's ``loop.time()``, so serve code can pass
loop timestamps straight in), and fans every finished span and event out
to three sinks:

* an in-memory entry list (what :func:`repro.obs.export.check_completeness`
  and the tests consume),
* an optional JSONL file (``--trace PATH``; one JSON object per line),
* an optional :class:`~repro.obs.recorder.FlightRecorder` ring.

Entries are recorded on span *end* (finished spans only), so the log is
completion-ordered; parents therefore usually appear after their children,
and readers must not assume pre-order.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.obs.context import Span, TraceContext

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.recorder import FlightRecorder
    from repro.profiling.collector import TaskRecord

__all__ = ["Tracer"]


def _clean(value):
    """JSON-safe attribute values (tuples and numpy scalars appear often)."""
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


class Tracer:
    """Mint, finish, and persist spans for one serving session."""

    def __init__(
        self,
        log_path: "str | Path | None" = None,
        recorder: "FlightRecorder | None" = None,
        clock=time.monotonic,
    ) -> None:
        self.clock = clock
        self.recorder = recorder
        self.log_path = Path(log_path) if log_path is not None else None
        self.entries: list[dict] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._flushed = 0
        if self.log_path is not None:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)
            self.log_path.write_text("")  # truncate: one session per file

    # -- span lifecycle ------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: "Span | TraceContext | None" = None,
        kind: str = "span",
        start_s: float | None = None,
        **attrs,
    ) -> Span:
        """Open a span.  With no ``parent`` a fresh trace is minted (serve
        admission does this once per request); with one, the span joins the
        parent's trace."""
        if parent is None:
            trace_id = f"t{next(self._trace_ids):08d}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{next(self._span_ids):08d}",
            parent_id=parent_id,
            kind=kind,
            start_s=start_s if start_s is not None else self.clock(),
            attrs={k: _clean(v) for k, v in attrs.items() if v is not None},
        )

    def end_span(self, span: Span, end_s: float | None = None,
                 status: str = "ok", **attrs) -> Span:
        """Finish a span and record it to every sink."""
        span.end_s = end_s if end_s is not None else self.clock()
        span.status = status
        for k, v in attrs.items():
            if v is not None:
                span.attrs[k] = _clean(v)
        self._record(span.as_dict())
        return span

    def record_span(
        self,
        name: str,
        parent: "Span | TraceContext | None",
        start_s: float,
        end_s: float,
        kind: str = "span",
        status: str = "ok",
        **attrs,
    ) -> Span:
        """Record a retroactive span whose window is already known (e.g. the
        ``queued`` stage, reconstructed at resolve time)."""
        span = self.start_span(name, parent=parent, kind=kind,
                               start_s=start_s, **attrs)
        return self.end_span(span, end_s=end_s, status=status)

    @contextmanager
    def span(self, name: str, parent: "Span | TraceContext | None" = None,
             kind: str = "span", **attrs) -> Iterator[Span]:
        s = self.start_span(name, parent=parent, kind=kind, **attrs)
        try:
            yield s
        except BaseException:
            self.end_span(s, status="error")
            raise
        else:
            self.end_span(s)

    def event(self, name: str, ctx: "Span | TraceContext | None" = None,
              time_s: float | None = None, **attrs) -> dict:
        """Record a point-in-time event, optionally bound to a trace."""
        entry = {
            "type": "event",
            "name": name,
            "trace_id": ctx.trace_id if ctx is not None else None,
            "span_id": ctx.span_id if ctx is not None else None,
            "time_s": time_s if time_s is not None else self.clock(),
            "attrs": {k: _clean(v) for k, v in attrs.items() if v is not None},
        }
        self._record(entry)
        return entry

    # -- device-task fan-in --------------------------------------------------
    def emit_task_spans(self, records: "Iterable[TaskRecord]", parent: Span,
                        max_spans: int = 2048, **attrs) -> int:
        """Turn an engine run's task records into child spans of ``parent``.

        Task records carry *simulated* device times; each is scaled into the
        parent execute span's wall-clock window so the merged Perfetto view
        lines serve spans and device lanes up on one axis (the unscaled sim
        times ride along as ``sim_start_s``/``sim_end_s`` attrs).  Records
        beyond ``max_spans`` are summarized in one overflow event rather
        than silently dropped.
        """
        records = list(records)
        if parent.end_s is None:
            raise ValueError("emit_task_spans needs a finished parent span")
        sim_span = max((r.end_s for r in records), default=0.0)
        scale = (parent.end_s - parent.start_s) / sim_span if sim_span > 0 else 0.0
        emitted = 0
        for r in records:
            if emitted >= max_spans:
                self.event("task_spans_truncated", ctx=parent,
                           dropped=len(records) - emitted, limit=max_spans)
                break
            span = self.start_span(
                r.label, parent=parent, kind="task",
                start_s=parent.start_s + r.start_s * scale,
                seq=r.seq, node_id=r.node_id, subgraph=r.subgraph_index,
                strategy=r.strategy, worker=r.worker,
                sim_start_s=r.start_s, sim_end_s=r.end_s,
                dram_txns=r.dram_txns, flops=r.flops,
                brick=r.brick, batch_index=r.batch_index, **attrs)
            self.end_span(span, end_s=parent.start_s + r.end_s * scale)
            emitted += 1
        return emitted

    # -- sinks ---------------------------------------------------------------
    def _record(self, entry: dict) -> None:
        with self._lock:
            self.entries.append(entry)
        if self.recorder is not None:
            self.recorder.note(entry)

    def flush(self) -> None:
        """Append entries recorded since the last flush to the JSONL file."""
        if self.log_path is None:
            return
        with self._lock:
            pending = self.entries[self._flushed:]
            self._flushed = len(self.entries)
        if pending:
            with self.log_path.open("a") as fh:
                for entry in pending:
                    fh.write(json.dumps(entry) + "\n")

    def close(self) -> None:
        self.flush()
