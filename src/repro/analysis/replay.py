"""Trace-replay verification of the memoized runtime (§3.2.2, Kitsune-style).

The small-model checker (:mod:`repro.analysis.protocol`) proves the tag
protocol correct in the abstract; this pass checks that a *real* run obeyed
it.  It consumes the task records of a
:class:`~repro.profiling.TraceCollector` (or a Chrome-trace JSON exported
from one) plus the :class:`ExecutionPlan` that produced the run, and
asserts, for every memoized subgraph:

* **exactly once** -- no (node, brick, batch) was computed twice, and every
  exit brick of every exit node was computed;
* **happens-before** -- every member-brick dependency a task read (the same
  receptive-field derivation the executor uses, recomputed here from the
  graph) was produced by a task submitted strictly earlier.  Device lane
  clocks are per-worker, so cross-worker ordering is judged by submission
  order (``seq``), the order the simulated memory system observed; within
  one worker lane the timeline itself must also nest (producer end <=
  consumer start);
* **valid identity** -- every brick position lies inside the node's grid
  and every batch index inside the node's batch extent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.core.plan import ExecutionPlan, SubgraphPlan
from repro.graph.regions import Region

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.bricked import BrickGrid
    from repro.graph.ir import Graph

__all__ = ["ReplayTask", "replay_trace", "replay_tasks_from_chrome_trace"]

_PASS = "trace-replay"


@dataclass(frozen=True)
class ReplayTask:
    """The slice of a task record the replay checker needs."""

    seq: int
    node_id: int
    subgraph_index: int | None
    brick: tuple[int, ...]
    batch_index: int
    worker: int
    start_s: float
    end_s: float


def _diag(report: AnalysisReport, code: str, message: str,
          subgraph_index: int | None = None, node_id: int | None = None,
          severity: Severity = Severity.ERROR) -> None:
    report.add(Diagnostic(pass_name=_PASS, code=code, severity=severity,
                          message=message, node_id=node_id,
                          subgraph_index=subgraph_index))


def _as_replay_tasks(records: Iterable) -> list[ReplayTask]:
    """Adapt ``TaskRecord``-shaped objects (brick-stamped, memoized) to
    :class:`ReplayTask`."""
    out = []
    for r in records:
        if getattr(r, "strategy", None) != "memoized":
            continue
        if getattr(r, "brick", None) is None or r.node_id is None:
            continue
        out.append(ReplayTask(
            seq=r.seq, node_id=r.node_id, subgraph_index=r.subgraph_index,
            brick=tuple(r.brick),
            batch_index=r.batch_index if r.batch_index is not None else 0,
            worker=r.worker, start_s=r.start_s, end_s=r.end_s))
    return out


def replay_tasks_from_chrome_trace(doc: Mapping) -> list[ReplayTask]:
    """Reconstruct replay tasks from an exported Chrome-trace JSON object."""
    out = []
    for e in doc.get("traceEvents", ()):
        if e.get("ph") != "X" or e.get("cat") != "memoized":
            continue
        args = e.get("args", {})
        if "brick" not in args or "node_id" not in args:
            continue
        out.append(ReplayTask(
            seq=args["seq"], node_id=args["node_id"],
            subgraph_index=args.get("subgraph"),
            brick=tuple(args["brick"]), batch_index=args.get("batch", 0),
            worker=e.get("tid", 0),
            start_s=e["ts"] / 1e6, end_s=(e["ts"] + e["dur"]) / 1e6))
    return out


def replay_trace(plan: ExecutionPlan, records: Iterable) -> AnalysisReport:
    """Verify a run's memoized task stream against ``plan``.

    ``records`` may be ``TraceCollector.records`` or the output of
    :func:`replay_tasks_from_chrome_trace`.
    """
    report = AnalysisReport()
    tasks = (list(records) if records and isinstance(next(iter(records), None), ReplayTask)
             else _as_replay_tasks(records))
    by_sub: dict[int | None, list[ReplayTask]] = {}
    for t in tasks:
        by_sub.setdefault(t.subgraph_index, []).append(t)

    checked = 0
    for sub in plan.subgraphs:
        if sub.strategy.value != "memoized" or not sub.brick_shape:
            continue
        checked += 1
        _replay_subgraph(plan.graph, sub, by_sub.get(sub.index, []), report)
    if checked == 0:
        _diag(report, "replay.no-memoized-subgraphs",
              f"plan for {plan.graph.name!r} has no memoized subgraphs; nothing "
              f"to replay", severity=Severity.INFO)
    return report


def _grids(graph: "Graph", sub: SubgraphPlan) -> dict[int, "BrickGrid"]:
    from repro.core.bricked import BrickGrid

    grids = {}
    for nid in sub.subgraph.node_ids:
        spec = graph.node(nid).spec
        if not spec.spatial:
            continue
        shape = tuple(min(b, e) for b, e in zip(sub.brick_shape, spec.spatial))
        grids[nid] = BrickGrid(spec.spatial, shape)
    return grids


def _replay_subgraph(graph: "Graph", sub: SubgraphPlan, tasks: list[ReplayTask],
                     report: AnalysisReport) -> None:
    members = set(sub.subgraph.node_ids)
    grids = _grids(graph, sub)
    if not tasks:
        _diag(report, "replay.no-tasks",
              f"subgraph {sub.index} is memoized but the trace has no memoized "
              f"brick tasks for it", sub.index)
        return

    # Index the producer of every (node, brick, batch); flag duplicates.
    producer: dict[tuple[int, tuple[int, ...], int], ReplayTask] = {}
    for t in sorted(tasks, key=lambda t: t.seq):
        node = graph.node(t.node_id)
        if t.node_id not in members:
            _diag(report, "replay.foreign-node",
                  f"subgraph {sub.index}: memoized task for non-member node "
                  f"{node.name!r}", sub.index, t.node_id)
            continue
        grid = grids.get(t.node_id)
        if grid is None or len(t.brick) != len(grid.grid_shape) or any(
                not 0 <= p < g for p, g in zip(t.brick, grid.grid_shape)):
            _diag(report, "replay.invalid-brick",
                  f"subgraph {sub.index}: task brick {t.brick} outside the grid "
                  f"of {node.name!r}", sub.index, t.node_id)
            continue
        if not 0 <= t.batch_index < node.spec.batch:
            _diag(report, "replay.invalid-batch",
                  f"subgraph {sub.index}: task batch {t.batch_index} outside "
                  f"batch extent {node.spec.batch} of {node.name!r}",
                  sub.index, t.node_id)
            continue
        key = (t.node_id, t.brick, t.batch_index)
        if key in producer:
            _diag(report, "replay.double-compute",
                  f"subgraph {sub.index}: brick {t.brick} of {node.name!r} "
                  f"(batch {t.batch_index}) computed twice (tasks "
                  f"{producer[key].seq} and {t.seq}): the exactly-once guarantee "
                  f"is broken", sub.index, t.node_id)
            continue
        producer[key] = t

    # Exactly-once completeness: every exit brick must have been computed.
    for eid in sub.subgraph.exit_ids:
        grid = grids.get(eid)
        if grid is None:
            continue
        spec = graph.node(eid).spec
        missing = 0
        for gpos in _all_bricks(grid.grid_shape):
            for b in range(spec.batch):
                if (eid, gpos, b) not in producer:
                    missing += 1
        if missing:
            _diag(report, "replay.missing-brick",
                  f"subgraph {sub.index}: {missing} exit brick task(s) of "
                  f"{graph.node(eid).name!r} never ran", sub.index, eid)

    # Happens-before: every member-brick dependency was produced earlier.
    for key, t in producer.items():
        for dep_key in _member_deps(graph, members, grids, *key):
            p = producer.get(dep_key)
            dnid, dpos, _ = dep_key
            if p is None:
                _diag(report, "replay.missing-producer",
                      f"subgraph {sub.index}: task {t.seq} read brick {dpos} of "
                      f"{graph.node(dnid).name!r} which no task produced",
                      sub.index, t.node_id)
                continue
            if p.seq >= t.seq:
                _diag(report, "replay.read-before-produce",
                      f"subgraph {sub.index}: task {t.seq} ({graph.node(t.node_id).name!r} "
                      f"brick {t.brick}) was submitted before its producer task "
                      f"{p.seq} ({graph.node(dnid).name!r} brick {dpos}): consumer "
                      f"read did not happen-after the producer's completion",
                      sub.index, t.node_id)
            elif p.worker == t.worker and p.end_s > t.start_s + 1e-12:
                _diag(report, "replay.lane-overlap",
                      f"subgraph {sub.index}: producer task {p.seq} and consumer "
                      f"task {t.seq} overlap on worker lane {t.worker}",
                      sub.index, t.node_id)


def _all_bricks(grid_shape: Sequence[int]) -> list[tuple[int, ...]]:
    positions: list[tuple[int, ...]] = [()]
    for g in grid_shape:
        positions = [p + (i,) for p in positions for i in range(g)]
    return positions


def _member_deps(graph: "Graph", members: set[int], grids: dict, nid: int,
                 gpos: tuple[int, ...], batch: int) -> "set[tuple[int, tuple[int, ...], int]]":
    """Member bricks the task for (nid, gpos, batch) reads -- the same
    receptive-field derivation as ``MemoizedBrickExecutor._dependencies``,
    recomputed from the graph."""
    node = graph.node(nid)
    grid = grids[nid]
    region = grid.brick_region(gpos, clipped=True)
    input_specs = [graph.node(i).spec for i in node.inputs]
    for input_index, pred in enumerate(node.inputs):
        if pred not in members:
            continue
        maps = node.op.rf_maps(input_specs, input_index)
        need = Region(m.in_interval(iv) for m, iv in zip(maps, region))
        for dep_pos in grids[pred].bricks_overlapping(need):
            yield (pred, dep_pos, batch)
