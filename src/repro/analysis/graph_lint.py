"""The graph linter: structural, geometric, and serialization checks.

The linter is the machine check for the properties the rest of the library
silently assumes about a :class:`~repro.graph.ir.Graph`:

* **structure** -- delegated to :meth:`Graph.structural_errors` (dangling /
  backward edges, arity, consumer bookkeeping, name index, outputs), so the
  linter and ``Graph.validate`` can never disagree;
* **shape & dtype consistency** -- every node's recorded output spec must
  equal what its operator infers from its inputs' specs today (a mutated or
  hand-edited graph fails here even though construction-time inference
  passed);
* **op geometric contract** -- for mergeable (``is_local``) operators the
  receptive-field maps must agree with shape inference
  (``m.out_extent(input extent) == output extent`` per dimension) and with
  the paper's ``alpha X + beta`` linear form (section 3.2): the input
  interval required for an output block of size ``X`` must have length
  ``alpha * X + beta`` -- that linearity is what makes the halo analysis
  (and everything downstream of it) sound;
* **serialize round-trip** -- ``graph_from_dict(graph_to_dict(g))`` must
  reproduce the structure exactly (names, ops, edges, specs, outputs).
"""

from __future__ import annotations

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.errors import ReproError
from repro.graph.ir import Graph, Node
from repro.graph.regions import GlobalMap, Interval

__all__ = ["lint_graph"]

_PASS = "graph-lint"


def _diag(code: str, severity: Severity, message: str, node_id: int | None = None) -> Diagnostic:
    return Diagnostic(pass_name=_PASS, code=code, severity=severity,
                      message=message, node_id=node_id)


def lint_graph(graph: Graph, check_serialization: bool = True) -> AnalysisReport:
    """Run every graph check; returns the full :class:`AnalysisReport`."""
    report = AnalysisReport()
    _check_structure(graph, report)
    # Deeper checks index nodes by edge; skip them on a structurally broken
    # graph rather than crash chasing dangling ids.
    if report.errors:
        return report
    for node in graph.nodes:
        if node.is_input:
            continue
        _check_shapes(graph, node, report)
        _check_contract(graph, node, report)
    _check_reachability(graph, report)
    if check_serialization:
        _check_roundtrip(graph, report)
    return report


# -- structure ---------------------------------------------------------------
def _check_structure(graph: Graph, report: AnalysisReport) -> None:
    for err in graph.structural_errors():
        report.add(_diag("graph.structure", Severity.ERROR, str(err)))


# -- shape / dtype consistency ----------------------------------------------
def _check_shapes(graph: Graph, node: Node, report: AnalysisReport) -> None:
    input_specs = [graph.node(i).spec for i in node.inputs]
    try:
        inferred = node.op.infer(input_specs)
    except ReproError as exc:
        report.add(_diag("graph.infer-failure", Severity.ERROR,
                         f"node {node.name!r}: op {node.op.kind} rejects its "
                         f"current input specs: {exc}", node.node_id))
        return
    if inferred.shape != node.spec.shape:
        report.add(_diag("graph.shape-mismatch", Severity.ERROR,
                         f"node {node.name!r}: recorded output shape {node.spec.shape} "
                         f"but op {node.op.kind} infers {inferred.shape}", node.node_id))
    if inferred.dtype != node.spec.dtype:
        report.add(_diag("graph.dtype-mismatch", Severity.ERROR,
                         f"node {node.name!r}: recorded dtype {node.spec.dtype} "
                         f"but op {node.op.kind} infers {inferred.dtype}", node.node_id))


# -- the alpha X + beta mergeability contract --------------------------------
def _check_contract(graph: Graph, node: Node, report: AnalysisReport) -> None:
    """Receptive-field maps must agree with shape inference and be linear."""
    if not node.op.is_local or node.op.is_global:
        return
    input_specs = [graph.node(i).spec for i in node.inputs]
    if not node.spec.spatial:
        return
    for input_index, pred in enumerate(node.inputs):
        in_spec = input_specs[input_index]
        if len(in_spec.spatial) != len(node.spec.spatial):
            continue  # rank-changing local ops have no per-dim map to check
        try:
            maps = node.op.rf_maps(input_specs, input_index)
        except ReproError as exc:
            report.add(_diag("graph.rfmap-failure", Severity.ERROR,
                             f"node {node.name!r}: rf_maps failed on edge "
                             f"{pred} -> {node.node_id}: {exc}", node.node_id))
            continue
        if len(maps) != len(node.spec.spatial):
            report.add(_diag("graph.rfmap-rank", Severity.ERROR,
                             f"node {node.name!r}: {len(maps)} receptive-field maps "
                             f"for {len(node.spec.spatial)} spatial dims", node.node_id))
            continue
        for d, (m, in_extent, out_extent) in enumerate(
                zip(maps, in_spec.spatial, node.spec.spatial)):
            if isinstance(m, GlobalMap):
                report.add(_diag("graph.global-marked-local", Severity.ERROR,
                                 f"node {node.name!r}: dim {d} uses a GlobalMap but the "
                                 f"op claims is_local (breaks the merge contract)",
                                 node.node_id))
                continue
            try:
                forward = m.out_extent(in_extent)
            except ReproError as exc:
                report.add(_diag("graph.rfmap-extent", Severity.ERROR,
                                 f"node {node.name!r}: dim {d} map rejects input extent "
                                 f"{in_extent}: {exc}", node.node_id))
                continue
            if forward != out_extent:
                report.add(_diag("graph.rfmap-extent", Severity.ERROR,
                                 f"node {node.name!r}: dim {d} map gives extent "
                                 f"{forward}, spec says {out_extent}", node.node_id))
            ab = m.alpha_beta()
            if ab is None:
                continue  # no exact linear form (e.g. strided transposed conv)
            alpha, beta = ab
            for x in (1, 2, 5):
                need = m.in_interval(Interval(0, x)).length
                if need != alpha * x + beta:
                    report.add(_diag("graph.contract-violation", Severity.ERROR,
                                     f"node {node.name!r}: dim {d} claims input size "
                                     f"{alpha}*X+{beta} but needs {need} elements for "
                                     f"an output block of X={x}", node.node_id))
                    break


# -- reachability ------------------------------------------------------------
def _check_reachability(graph: Graph, report: AnalysisReport) -> None:
    """Nodes feeding no graph output are dead weight (warning, not error)."""
    live: set[int] = set()
    stack = [n.node_id for n in graph.output_nodes]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        stack.extend(graph.node(nid).inputs)
    for node in graph.nodes:
        if node.node_id not in live:
            report.add(_diag("graph.unreachable", Severity.WARNING,
                             f"node {node.name!r} does not reach any graph output",
                             node.node_id))


# -- serialization round-trip -------------------------------------------------
def _check_roundtrip(graph: Graph, report: AnalysisReport) -> None:
    from repro.graph.serialize import graph_from_dict, graph_to_dict

    try:
        doc = graph_to_dict(graph)
        restored = graph_from_dict(doc)
        doc2 = graph_to_dict(restored)
    except ReproError as exc:
        report.add(_diag("graph.serialize-failure", Severity.ERROR,
                         f"graph {graph.name!r} does not serialize: {exc}"))
        return
    if doc != doc2:
        report.add(_diag("graph.roundtrip-unstable", Severity.ERROR,
                         f"graph {graph.name!r}: serialize -> load -> serialize is not "
                         f"a fixpoint (structure drifts on round-trip)"))
        return
    for orig, back in zip(graph.nodes, restored.nodes):
        if orig.spec != back.spec:
            report.add(_diag("graph.roundtrip-spec", Severity.ERROR,
                             f"node {orig.name!r}: spec {orig.spec} re-infers as "
                             f"{back.spec} after round-trip", orig.node_id))
