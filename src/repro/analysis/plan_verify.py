"""The plan verifier: independent re-derivation of ExecutionPlan invariants.

``verify_plan`` trusts nothing recorded in a :class:`SubgraphPlan` beyond
its identity (the member ids and the chosen brick/strategy); every analysis
artifact the compiler wrote down is recomputed from the graph and the model
configuration and cross-checked:

* **coverage / ordering** -- every non-input node belongs to exactly one
  subgraph and subgraphs appear in topological (id) order;
* **contiguity & dependency-convexity** (section 3.3.1) -- member ids form
  a contiguous id range (modulo interleaved graph inputs), and no path
  between two members leaves the subgraph.  Convexity is what makes merged
  execution legal at all: a path escaping the subgraph would need an
  activation that is only materialized after the subgraph completes;
* **entries / exits** -- recomputed from the graph's edges;
* **footprint** (section 3.3.1) -- ``merged_footprint_bytes`` recomputed
  with the plan's actual brick shape must equal the recorded
  ``footprint_bytes`` and fit the L2 budget;
* **halo regions** (section 3.2.1) -- for sampled exit bricks, the
  ``required_regions`` table must be a fixpoint of the per-edge
  receptive-field maps (every producer region contains what its consumer's
  region demands) and must cover every member that can reach the exit;
  cross-checked against ``chain_padded_sizes`` for the central brick;
* **strategy / brick model** (sections 3.3.2-3.3.3) -- ``delta`` and
  ``rho`` recomputed; the recorded choice must match the paper's
  ``delta > 15 %`` and ``rho <= tau`` rules, and cuDNN fallbacks must be
  justified (global op, no spatial dims, or insufficient parallelism).

Compilation overrides (``strategy_override``, ``brick_override``,
``layer_schedule``) deliberately bypass parts of the model; pass the same
values here and the corresponding checks are relaxed instead of reported
as violations.
"""

from __future__ import annotations

import math

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.core.halo import chain_padded_sizes, padding_growth, required_regions
from repro.core.partition import merged_footprint_bytes
from repro.core.perfmodel import (
    DEFAULT_CONFIG,
    PerfModelConfig,
    choose_brick_size,
    choose_strategy,
    parallelism,
)
from repro.core.plan import ExecutionPlan, Strategy, SubgraphPlan
from repro.errors import ReproError
from repro.graph.ir import Graph
from repro.graph.regions import Region
from repro.graph.traversal import subgraph_view
from repro.gpusim.spec import A100, GPUSpec

__all__ = ["verify_plan"]

_PASS = "plan-verify"


def _diag(report: AnalysisReport, code: str, severity: Severity, message: str,
          subgraph_index: int | None = None, node_id: int | None = None) -> None:
    report.add(Diagnostic(pass_name=_PASS, code=code, severity=severity,
                          message=message, node_id=node_id,
                          subgraph_index=subgraph_index))


def verify_plan(
    plan: ExecutionPlan,
    spec: GPUSpec = A100,
    config: PerfModelConfig = DEFAULT_CONFIG,
    *,
    strategy_override: Strategy | None = None,
    brick_override: int | None = None,
    layer_schedule: tuple[int, ...] | None = None,
    max_region_bricks: int = 32,
) -> AnalysisReport:
    """Re-derive and check every invariant of ``plan``; see module docstring."""
    report = AnalysisReport()
    graph = plan.graph
    _check_coverage(graph, plan, report)
    for sub in plan.subgraphs:
        _check_membership(graph, sub, report)
        if sub.is_merged:
            _check_footprint(graph, sub, spec, config, report,
                             scheduled=layer_schedule is not None)
            _check_regions(graph, sub, report, max_region_bricks)
        _check_model(graph, sub, config, report,
                     strategy_override=strategy_override,
                     brick_override=brick_override)
    return report


# -- whole-plan coverage -----------------------------------------------------
def _check_coverage(graph: Graph, plan: ExecutionPlan, report: AnalysisReport) -> None:
    owner: dict[int, int] = {}
    last_min = -1
    for sub in plan.subgraphs:
        if not sub.subgraph.node_ids:
            _diag(report, "plan.empty-subgraph", Severity.ERROR,
                  f"subgraph {sub.index} has no members", sub.index)
            continue
        first = min(sub.subgraph.node_ids)
        if first <= last_min:
            _diag(report, "plan.order", Severity.ERROR,
                  f"subgraph {sub.index} starts at node {first}, not after the "
                  f"previous subgraph", sub.index)
        last_min = first
        for nid in sub.subgraph.node_ids:
            if nid in owner:
                _diag(report, "plan.overlap", Severity.ERROR,
                      f"node {graph.node(nid).name!r} appears in subgraphs "
                      f"{owner[nid]} and {sub.index}", sub.index, nid)
            owner[nid] = sub.index
    for node in graph.nodes:
        if node.is_input or node.node_id in owner:
            continue
        _diag(report, "plan.uncovered", Severity.ERROR,
              f"node {node.name!r} is not covered by any subgraph",
              node_id=node.node_id)


# -- per-subgraph structure --------------------------------------------------
def _check_membership(graph: Graph, sub: SubgraphPlan, report: AnalysisReport) -> None:
    members = set(sub.subgraph.node_ids)
    if not members:
        return

    # Contiguity: ids in [min, max] are members or graph inputs.
    lo, hi = min(members), max(members)
    for nid in range(lo, hi + 1):
        if nid not in members and not graph.node(nid).is_input:
            _diag(report, "plan.contiguity", Severity.ERROR,
                  f"subgraph {sub.index}: member ids [{lo}, {hi}] skip non-input "
                  f"node {graph.node(nid).name!r}", sub.index, nid)

    # Dependency convexity: no node outside the subgraph lies on a path
    # between two members.  A violator is any non-member that is both
    # reachable from a member and an ancestor of a member.
    downstream: set[int] = set()
    stack = [c for nid in members for c in graph.consumers(nid)]
    while stack:
        nid = stack.pop()
        if nid in downstream:
            continue
        downstream.add(nid)
        stack.extend(graph.consumers(nid))
    upstream: set[int] = set()
    stack = [i for nid in members for i in graph.node(nid).inputs]
    while stack:
        nid = stack.pop()
        if nid in upstream:
            continue
        upstream.add(nid)
        stack.extend(graph.node(nid).inputs)
    for nid in sorted((downstream & upstream) - members):
        _diag(report, "plan.convexity", Severity.ERROR,
              f"subgraph {sub.index}: node {graph.node(nid).name!r} lies on a "
              f"path between members but is not a member", sub.index, nid)

    # Entries/exits must match what the graph's edges say today.
    try:
        fresh = subgraph_view(graph, sub.subgraph.node_ids)
    except ReproError as exc:
        _diag(report, "plan.view", Severity.ERROR,
              f"subgraph {sub.index}: member set no longer forms a valid view: {exc}",
              sub.index)
        return
    if set(fresh.entry_ids) != set(sub.subgraph.entry_ids):
        _diag(report, "plan.entries", Severity.ERROR,
              f"subgraph {sub.index}: recorded entries {sorted(sub.subgraph.entry_ids)} "
              f"!= re-derived {sorted(fresh.entry_ids)}", sub.index)
    if set(fresh.exit_ids) != set(sub.subgraph.exit_ids):
        _diag(report, "plan.exits", Severity.ERROR,
              f"subgraph {sub.index}: recorded exits {sorted(sub.subgraph.exit_ids)} "
              f"!= re-derived {sorted(fresh.exit_ids)}", sub.index)


# -- footprint ---------------------------------------------------------------
def _check_footprint(graph: Graph, sub: SubgraphPlan, spec: GPUSpec,
                     config: PerfModelConfig, report: AnalysisReport,
                     scheduled: bool) -> None:
    if not sub.brick_shape:
        return
    recomputed = merged_footprint_bytes(
        graph, sub.subgraph.node_ids, sub.subgraph.entry_ids, sub.brick_shape)
    if sub.footprint_bytes and recomputed != sub.footprint_bytes:
        _diag(report, "plan.footprint-mismatch", Severity.ERROR,
              f"subgraph {sub.index}: recorded footprint {sub.footprint_bytes} B "
              f"!= recomputed {recomputed} B (brick {sub.brick_shape})", sub.index)
    budget = int(spec.l2_bytes * config.l2_budget_fraction)
    if recomputed > budget and len(sub.subgraph) > 1:
        # A forced layer schedule deliberately explores over-budget merges.
        sev = Severity.WARNING if scheduled else Severity.ERROR
        _diag(report, "plan.footprint-budget", sev,
              f"subgraph {sub.index}: footprint {recomputed} B exceeds the L2 "
              f"budget {budget} B across {len(sub.subgraph)} merged layers",
              sub.index)


# -- halo regions (section 3.2.1) --------------------------------------------
def _sample_bricks(grid_shape: tuple[int, ...], limit: int) -> list[tuple[int, ...]]:
    """Center, corners, and an edge midpoint per dim -- or all bricks when few."""
    total = math.prod(grid_shape)
    if total <= limit:
        positions: list[tuple[int, ...]] = [()]
        for g in grid_shape:
            positions = [p + (i,) for p in positions for i in range(g)]
        return positions
    picks = {tuple(g // 2 for g in grid_shape)}
    for mask in range(2 ** len(grid_shape)):
        picks.add(tuple((g - 1 if (mask >> d) & 1 else 0)
                        for d, g in enumerate(grid_shape)))
    for d, g in enumerate(grid_shape):
        mid = list(x // 2 for x in grid_shape)
        mid[d] = g - 1
        picks.add(tuple(mid))
    return sorted(picks)


def _check_regions(graph: Graph, sub: SubgraphPlan, report: AnalysisReport,
                   max_region_bricks: int) -> None:
    from repro.core.bricked import BrickGrid

    members = set(sub.subgraph.node_ids)
    for exit_id in sub.subgraph.exit_ids:
        exit_spec = graph.node(exit_id).spec
        if not exit_spec.spatial or not sub.brick_shape:
            continue
        if len(sub.brick_shape) != len(exit_spec.spatial):
            _diag(report, "plan.brick-rank", Severity.ERROR,
                  f"subgraph {sub.index}: brick rank {len(sub.brick_shape)} vs exit "
                  f"{graph.node(exit_id).name!r} spatial rank {len(exit_spec.spatial)}",
                  sub.index, exit_id)
            continue
        shape = tuple(min(b, e) for b, e in zip(sub.brick_shape, exit_spec.spatial))
        grid = BrickGrid(exit_spec.spatial, shape)

        # Members that can reach this exit inside the subgraph must all be
        # touched by its halo requirement.
        needed: set[int] = {exit_id}
        stack = [exit_id]
        while stack:
            nid = stack.pop()
            for i in graph.node(nid).inputs:
                if i in members and i not in needed:
                    needed.add(i)
                    stack.append(i)

        for gpos in _sample_bricks(grid.grid_shape, max_region_bricks):
            out_region = grid.brick_region(gpos, clipped=True)
            try:
                required = required_regions(sub.subgraph, exit_id, out_region)
            except ReproError as exc:
                _diag(report, "plan.regions", Severity.ERROR,
                      f"subgraph {sub.index}: halo analysis failed for exit "
                      f"{graph.node(exit_id).name!r} brick {gpos}: {exc}",
                      sub.index, exit_id)
                break
            if required.get(exit_id) != out_region:
                _diag(report, "plan.region-root", Severity.ERROR,
                      f"subgraph {sub.index}: exit {graph.node(exit_id).name!r} "
                      f"brick {gpos}: root region {required.get(exit_id)} != "
                      f"requested {out_region}", sub.index, exit_id)
            missing = needed - set(required)
            if missing:
                _diag(report, "plan.region-missing", Severity.ERROR,
                      f"subgraph {sub.index}: exit {graph.node(exit_id).name!r} "
                      f"brick {gpos}: members {sorted(missing)} feed the exit but "
                      f"have no required region", sub.index, exit_id)
            # Fixpoint: every producer region contains what each consumer
            # region demands along that edge.
            for nid in required:
                if nid not in members:
                    continue
                node = graph.node(nid)
                input_specs = [graph.node(i).spec for i in node.inputs]
                for input_index, pred in enumerate(node.inputs):
                    if pred not in required:
                        _diag(report, "plan.region-missing", Severity.ERROR,
                              f"subgraph {sub.index}: edge {pred} -> {nid}: producer "
                              f"{graph.node(pred).name!r} has no required region",
                              sub.index, nid)
                        continue
                    maps = node.op.rf_maps(input_specs, input_index)
                    need = Region(m.in_interval(iv)
                                  for m, iv in zip(maps, required[nid]))
                    if not required[pred].contains(need):
                        _diag(report, "plan.region-coverage", Severity.ERROR,
                              f"subgraph {sub.index}: exit brick {gpos}: region of "
                              f"{graph.node(pred).name!r} {required[pred]} does not "
                              f"cover {need} read by {node.name!r}", sub.index, nid)

        # Cross-check the Fig. 4 telescoping report against the same table
        # (chain_padded_sizes uses the unclipped central brick region).
        center = tuple(g // 2 for g in grid.grid_shape)
        required = required_regions(sub.subgraph, exit_id,
                                    grid.brick_region(center))
        chain = dict(chain_padded_sizes(sub.subgraph, exit_id, shape))
        for nid, region in required.items():
            name = graph.node(nid).name
            if chain.get(name) != region.shape:
                _diag(report, "plan.chain-sizes", Severity.ERROR,
                      f"subgraph {sub.index}: chain_padded_sizes reports "
                      f"{chain.get(name)} for {name!r} but required_regions gives "
                      f"{region.shape}", sub.index, nid)


# -- strategy / brick model (sections 3.3.2-3.3.3) ---------------------------
def _check_model(graph: Graph, sub: SubgraphPlan, config: PerfModelConfig,
                 report: AnalysisReport, *,
                 strategy_override: Strategy | None,
                 brick_override: int | None) -> None:
    from repro.core.engine import _max_kernel_extent

    view = sub.subgraph
    only = graph.node(view.node_ids[0]) if len(view) == 1 else None
    is_global = only is not None and (only.op.is_global or not only.op.is_local)
    exit_spec = graph.node(view.exit_ids[-1]).spec

    if is_global or not exit_spec.spatial:
        if sub.strategy is not Strategy.CUDNN:
            _diag(report, "plan.fallback-required", Severity.ERROR,
                  f"subgraph {sub.index}: {'global operator' if is_global else 'no spatial dims'} "
                  f"requires the cuDNN fallback, plan says {sub.strategy.value}",
                  sub.index)
        return

    narrowest = min(
        (graph.node(nid).spec.spatial for nid in view.node_ids
         if graph.node(nid).spec.spatial_ndim == exit_spec.spatial_ndim),
        key=lambda sp: math.prod(sp),
    )
    kernel_extent = _max_kernel_extent(graph, view.node_ids)
    if brick_override is not None:
        brick, rho, fallback = brick_override, parallelism(narrowest, brick_override), False
    else:
        decision = choose_brick_size(narrowest, config, kernel_extent)
        brick, rho, fallback = decision.brick, decision.rho, decision.fallback

    if fallback:
        if sub.strategy is not Strategy.CUDNN:
            _diag(report, "plan.fallback-required", Severity.ERROR,
                  f"subgraph {sub.index}: brick model finds insufficient parallelism "
                  f"(rho={rho:.0f}), plan says {sub.strategy.value}", sub.index)
        return
    if sub.strategy is Strategy.CUDNN:
        _diag(report, "plan.fallback-unjustified", Severity.ERROR,
              f"subgraph {sub.index}: plan falls back to cuDNN but the model finds "
              f"brick {brick} viable (rho={rho:.0f})", sub.index)
        return

    if not math.isclose(rho, sub.rho, rel_tol=1e-9, abs_tol=1e-9):
        _diag(report, "plan.rho-mismatch", Severity.ERROR,
              f"subgraph {sub.index}: recorded rho {sub.rho:.3f} != recomputed "
              f"{rho:.3f} (brick {brick}, narrowest {tuple(narrowest)})", sub.index)
    expected_shape = tuple(min(brick, e) for e in exit_spec.spatial)
    if sub.brick_shape != expected_shape:
        _diag(report, "plan.brick-mismatch", Severity.ERROR,
              f"subgraph {sub.index}: recorded brick {sub.brick_shape} != model "
              f"choice {expected_shape}", sub.index)
        return
    if brick_override is None and min(sub.brick_shape) < min(kernel_extent, min(exit_spec.spatial)):
        _diag(report, "plan.brick-vs-kernel", Severity.WARNING,
              f"subgraph {sub.index}: brick {sub.brick_shape} is smaller than the "
              f"largest kernel extent {kernel_extent} (section 3.3.4)", sub.index)

    delta = padding_growth(view, None, sub.brick_shape)
    if not math.isclose(delta, sub.delta, rel_tol=1e-9, abs_tol=1e-12):
        _diag(report, "plan.delta-mismatch", Severity.ERROR,
              f"subgraph {sub.index}: recorded delta {sub.delta:.4%} != recomputed "
              f"{delta:.4%}", sub.index)
    if strategy_override is None:
        expected = choose_strategy(delta, config)
        if sub.strategy is not expected and sub.strategy is not Strategy.WAVEFRONT:
            _diag(report, "plan.strategy-mismatch", Severity.ERROR,
                  f"subgraph {sub.index}: delta {delta:.1%} vs threshold "
                  f"{config.delta_threshold:.0%} implies {expected.value}, plan says "
                  f"{sub.strategy.value}", sub.index)
        if sub.strategy is Strategy.WAVEFRONT:
            _diag(report, "plan.strategy-wavefront", Severity.WARNING,
                  f"subgraph {sub.index}: wavefront strategy is never model-chosen "
                  f"(section 6 extension); expected {choose_strategy(delta, config).value}",
                  sub.index)
    elif sub.strategy is not strategy_override:
        _diag(report, "plan.override-ignored", Severity.ERROR,
              f"subgraph {sub.index}: strategy_override {strategy_override.value} "
              f"was not applied (plan says {sub.strategy.value})", sub.index)
