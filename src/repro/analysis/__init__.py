"""Static analysis & verification passes over graphs, plans, and traces.

Three passes behind one :class:`Diagnostic`/:class:`AnalysisReport` API:

* :func:`lint_graph` -- structural, shape/dtype, op-contract, and
  serialization round-trip checks on a :class:`~repro.graph.Graph`;
* :func:`verify_plan` -- independently re-derives every invariant a
  compiled :class:`~repro.core.plan.ExecutionPlan` is supposed to satisfy
  (convexity, L2 budget, halo coverage, strategy-model consistency);
* the memoization-protocol checkers -- :func:`explore_protocol`
  exhaustively model-checks the 0->1->2 CAS tag automaton on a small brick
  grid, and :func:`replay_trace` validates a real run's task trace for
  exactly-once and happens-before;
* :func:`validate_rewrite` -- translation validation for graph rewrites:
  re-derives well-formedness, interface preservation, removal/fusion
  provenance, planner convexity, and (optionally) a bit-identical
  differential run for every :class:`~repro.rewrite.Rewrite`;
* :func:`analyze_effects` -- schedule-independent effect analysis: per
  (subgraph, node, brick) read/write region summaries proving race freedom
  over all interleavings and exactly-once write coverage, plus static
  DRAM/L2 traffic bounds (:func:`check_manifest_bracket` asserts they
  bracket a measured manifest, :func:`effect_prune` uses them to skip
  dominated tuning candidates without simulation).

The *dynamic* counterpart lives in :mod:`repro.sanitize`: an
:class:`ExecutionSanitizer` device observer (re-exported here) that checks
shadow memory, happens-before races, and numeric health of live runs,
reporting through the same currency.
"""

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.effects import (
    EffectMutation,
    EffectReport,
    analyze_effects,
    check_manifest_bracket,
    effect_prune,
)
from repro.analysis.graph_lint import lint_graph
from repro.analysis.plan_verify import verify_plan
from repro.analysis.protocol import GridModel, ProtocolModel, explore_protocol
from repro.analysis.replay import (
    ReplayTask,
    replay_tasks_from_chrome_trace,
    replay_trace,
)
from repro.analysis.rewrite_validate import validate_rewrite


def __getattr__(name: str) -> object:
    # Lazy re-export: repro.sanitize itself imports repro.analysis.diagnostics
    # (which executes this package __init__ first), so an eager import here
    # would be circular.
    if name == "ExecutionSanitizer":
        from repro.sanitize import ExecutionSanitizer

        return ExecutionSanitizer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "lint_graph",
    "verify_plan",
    "EffectMutation",
    "EffectReport",
    "analyze_effects",
    "check_manifest_bracket",
    "effect_prune",
    "GridModel",
    "ProtocolModel",
    "explore_protocol",
    "ReplayTask",
    "replay_trace",
    "replay_tasks_from_chrome_trace",
    "validate_rewrite",
    "ExecutionSanitizer",
]
