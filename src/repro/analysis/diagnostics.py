"""The common currency of the static-analysis passes: diagnostics.

Every verification pass -- the graph linter, the plan verifier, the
memoization-protocol checker, and the trace-replay checker -- reports its
findings as :class:`Diagnostic` records collected into an
:class:`AnalysisReport`.  A diagnostic carries a stable machine-readable
``code`` (``"plan.footprint-mismatch"``), a severity, a human message that
names the offending node/edge/subgraph, and optional structured locators so
tools (CI, the ``repro lint`` CLI, the strict engine mode) can filter and
render without parsing messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Severity", "Diagnostic", "AnalysisReport"]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` gives the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes
    ----------
    pass_name:
        The reporting pass (``"graph-lint"``, ``"plan-verify"``,
        ``"protocol"``, ``"trace-replay"``).
    code:
        Stable dotted identifier of the check (``"graph.shape-mismatch"``).
    severity:
        :class:`Severity`; only ``ERROR`` diagnostics fail strict mode and
        the ``repro lint`` exit code.
    message:
        Human-readable description naming the offending entity.
    node_id / subgraph_index:
        Optional structured locators into the graph / plan.
    detail:
        Optional free-form payload (e.g. a counterexample interleaving).
    """

    pass_name: str
    code: str
    severity: Severity
    message: str
    node_id: int | None = None
    subgraph_index: int | None = None
    detail: object = None

    def render(self) -> str:
        loc = []
        if self.subgraph_index is not None:
            loc.append(f"subgraph {self.subgraph_index}")
        if self.node_id is not None:
            loc.append(f"node {self.node_id}")
        where = f" [{', '.join(loc)}]" if loc else ""
        return f"{self.severity}: {self.code}{where}: {self.message}"


@dataclass
class AnalysisReport:
    """An ordered collection of diagnostics from one or more passes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "AnalysisReport") -> "AnalysisReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    # -- filters -------------------------------------------------------------
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were reported."""
        return not self.errors

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    # -- rendering -----------------------------------------------------------
    def summary(self, title: str | None = None) -> str:
        lines = []
        if title:
            lines.append(title)
        for d in self.diagnostics:
            lines.append("  " + d.render())
        verdict = "clean" if not self.diagnostics else (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} note(s)")
        lines.append(("  " if self.diagnostics else "") + f"-> {verdict}")
        return "\n".join(lines)
