"""Static effect analysis: schedule-independent proofs and traffic bounds.

This pass abstractly interprets a compiled :class:`~repro.core.plan.ExecutionPlan`
*without a device*: for every (subgraph, node, brick) it derives the read/write
**region effect sets** from :class:`~repro.core.geometry.SubgraphGeometry` and the
:mod:`repro.graph.regions` algebra, mirroring exactly the access streams the
executors emit.  From those summaries it:

* (a) reconstructs the static happens-before structure each strategy's schedule
  induces -- the padded subgraph barrier, the memoized brick-token (CAS) edges,
  the wavefront per-wave barriers, and the fallback per-group barriers -- and
  proves **race freedom over all interleavings**: every write/write and
  write/read overlap of effect regions is ordered by an epoch (barrier) or an
  acquired token edge;
* (b) proves **exactly-once write coverage**: the union of write effects equals
  the declared output region of every materialized node, with pairwise-disjoint
  writers;
* (c) computes **static DRAM (and informational L2) traffic lower/upper bounds**
  per subgraph whose run-level totals must bracket the measured run manifests.

Soundness of the DRAM bounds rests on two invariants of
:mod:`repro.gpusim.memory`:

* pinned weight buffers charge exactly ``ceil(nbytes/32)`` DRAM read
  transactions on first touch per pin cycle (the engine pins every member's
  weights for the duration of its subgraph), which makes the weight term of the
  read bound *exact*, hence a valid lower bound;
* every dirty byte of a persistent buffer is written back exactly once
  (spill or flush), and ``sum(ceil(a_i/L)) >= ceil(sum(a_i)/L)``, which makes
  ``ceil(persistent_written_bytes/32)`` a valid write lower bound.  Transient
  buffers may be discarded without write-back, so they contribute only to the
  upper bound.

Dense activation reads go through the analytic residency model, whose
proportional-hit rule can serve chunked first-pass reads of a cold buffer with
*fewer* miss transactions than ``ceil(nbytes/32)`` -- so graph-input bytes are
deliberately **not** part of the read lower bound.

The analysis runs per batch-sample 0 and scales traffic by the batch size:
brick offsets are ``(batch * num_bricks + physical) * brick_nbytes`` with
``physical < num_bricks``, so distinct samples touch disjoint bytes and repeat
the identical effect pattern -- races and coverage are batch-invariant.

:class:`EffectMutation` seeds model-level corruptions (dropped dependency edge,
shrunken halo, skipped writer brick) used by the test suite to show the proofs
reject broken schedules with specific ``effects.*`` diagnostics.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.core.bricked import BrickGrid
from repro.core.geometry import SubgraphGeometry
from repro.core.perfmodel import DEFAULT_CONFIG, PerfModelConfig
from repro.core.plan import ExecutionPlan, Strategy, SubgraphPlan
from repro.graph.regions import Interval, Region
from repro.gpusim.spec import A100, GPUSpec

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.graph.ir import Graph
    from repro.graph.tensorspec import TensorSpec
    from repro.graph.traversal import SubgraphView
    from repro.metrics.manifest import RunManifest

__all__ = [
    "EffectMutation",
    "EffectSet",
    "SubgraphEffects",
    "EffectReport",
    "analyze_effects",
    "check_manifest_bracket",
    "candidate_time_lower_bound",
    "effect_prune",
]

_PASS = "effects"
# Cap per-code diagnostics per subgraph so mutant plans with thousands of
# violating bricks stay readable; the count is always reported.
_MAX_DIAGS = 5
# Flat slack added to the run-level upper bounds: flush/eviction events round
# partial lines up once per event beyond the per-access ``+1`` already charged.
_UB_SLACK = 256


def _txns(nbytes: int, line: int) -> int:
    """Transactions (32-byte lines on the A100) covering ``nbytes``."""
    return -(-nbytes // line) if nbytes > 0 else 0


def _diag(
    report: AnalysisReport,
    code: str,
    severity: Severity,
    message: str,
    *,
    node_id: int | None = None,
    subgraph_index: int | None = None,
    detail: str | None = None,
) -> None:
    report.add(Diagnostic(_PASS, code, severity, message, node_id=node_id,
                          subgraph_index=subgraph_index, detail=detail))


# ---------------------------------------------------------------------------
# Effect sets (byte-interval summaries for the soundness property test)
# ---------------------------------------------------------------------------


class EffectSet:
    """A coalesced set of half-open byte intervals over one buffer.

    Dense strided region accesses are stored as their contiguous hull (a
    superset -- sound for the containment property the sanitizer test
    checks); brick and weight accesses are stored exactly.
    """

    __slots__ = ("_raw", "_norm")

    def __init__(self) -> None:
        self._raw: list[tuple[int, int]] = []
        self._norm: list[tuple[int, int]] | None = None

    def add(self, lo: int, hi: int) -> None:
        if hi > lo:
            self._raw.append((lo, hi))
            self._norm = None

    def intervals(self) -> tuple[tuple[int, int], ...]:
        return tuple(self._normalized())

    def covers(self, lo: int, hi: int) -> bool:
        """True when ``[lo, hi)`` is fully contained in the set."""
        if hi <= lo:
            return True
        import bisect

        norm = self._normalized()
        i = bisect.bisect_right(norm, (lo, float("inf"))) - 1
        return i >= 0 and norm[i][0] <= lo and hi <= norm[i][1]

    def _normalized(self) -> list[tuple[int, int]]:
        if self._norm is None:
            merged: list[tuple[int, int]] = []
            for lo, hi in sorted(self._raw):
                if merged and lo <= merged[-1][1]:
                    if hi > merged[-1][1]:
                        merged[-1] = (merged[-1][0], hi)
                else:
                    merged.append((lo, hi))
            self._norm = merged
        return self._norm

    def __len__(self) -> int:
        return len(self._normalized())


# ---------------------------------------------------------------------------
# Public currency
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EffectMutation:
    """Seeded model corruptions for the static rejection tests.

    ``drop_dep_edge=(consumer, producer)`` makes the *model* schedule forget
    that edge (no reads, no token acquires, no wave-placement dependency);
    ``shrink_halo=k`` trims every derived need/required region by ``k``
    elements per side; ``skip_writer=(node, flat_brick)`` omits that brick's
    writer task while its consumers still read it.  Each must be rejected by
    the analysis with a specific ``effects.*`` diagnostic.
    """

    drop_dep_edge: tuple[int, int] | None = None
    shrink_halo: int = 0
    skip_writer: tuple[int, int] | None = None

    @property
    def active(self) -> bool:
        return (self.drop_dep_edge is not None or self.shrink_halo > 0
                or self.skip_writer is not None)


@dataclass
class SubgraphEffects:
    """Static summary of one plan entry."""

    index: int
    strategy: str
    num_tasks: int = 0
    sync_count: int = 0
    flops: float = 0.0
    task_time_sum: float = 0.0
    task_time_max: float = 0.0
    dram_read_lb: int = 0   # exact pinned weight first-touch transactions
    dram_read_ub: int = 0
    dram_write_ub: int = 0
    race_free: bool = True
    write_exact: bool = True
    read_covered: bool = True

    @property
    def proven(self) -> bool:
        return self.race_free and self.write_exact and self.read_covered


@dataclass
class EffectReport(AnalysisReport):
    """An :class:`AnalysisReport` extended with the derived summaries."""

    subgraphs: list[SubgraphEffects] = field(default_factory=list)
    dram_read_lb: int = 0
    dram_read_ub: int = 0
    dram_write_lb: int = 0
    dram_write_ub: int = 0
    l2_lb: int = 0
    l2_ub: int = 0
    sync_count: int = 0
    num_tasks: int = 0
    total_flops: float = 0.0
    task_time_sum: float = 0.0
    task_time_max: float = 0.0
    effect_sets: dict[str, EffectSet] = field(default_factory=dict)

    @property
    def dram_lb(self) -> int:
        return self.dram_read_lb + self.dram_write_lb

    @property
    def dram_ub(self) -> int:
        return self.dram_read_ub + self.dram_write_ub

    @property
    def proven(self) -> bool:
        return self.ok and all(s.proven for s in self.subgraphs)

    def bounds_summary(self) -> str:
        return (f"DRAM read [{self.dram_read_lb}, {self.dram_read_ub}] txns, "
                f"write [{self.dram_write_lb}, {self.dram_write_ub}] txns, "
                f"L2 [{self.l2_lb}, {self.l2_ub}] txns, "
                f"{self.num_tasks} tasks, {self.sync_count} syncs")


# ---------------------------------------------------------------------------
# Traffic accounting
# ---------------------------------------------------------------------------


@dataclass
class _Traffic:
    """Per-subgraph transaction bound accumulator (32-byte lines)."""

    line: int
    read_ub: int = 0
    write_ub: int = 0
    weight_txns: int = 0
    weight_l2: int = 0
    write_bytes: int = 0
    l2_write_lines: int = 0

    def access(self, seg_nbytes: int, segs: int, *, write: bool, mult: int = 1) -> None:
        if seg_nbytes <= 0 or segs <= 0 or mult <= 0:
            return
        # Upper bound per segment: every contiguous segment misses at most
        # ceil(seg/line)+1 lines (one extra for straddling the first line).
        lines = segs * (_txns(seg_nbytes, self.line) + 1) * mult
        if write:
            self.write_ub += lines
            self.write_bytes += seg_nbytes * segs * mult
            self.l2_write_lines += segs * _txns(seg_nbytes, self.line) * mult
        else:
            self.read_ub += lines

    def weight(self, nbytes: int, *, first_touch: bool) -> None:
        # Pinned first touch: exactly ceil(nbytes/line) DRAM reads per pin
        # cycle -- contributes identically to the lower and upper bound.
        # Every read of a pinned buffer (first or not) passes through L2.
        if first_touch:
            self.weight_txns += _txns(nbytes, self.line)
        self.weight_l2 += _txns(nbytes, self.line) + 1


def _layout_nbytes(spec: "TensorSpec", layout: tuple[int, ...] | None) -> int:
    """Backing-buffer size of an activation in the given layout."""
    if layout is None:
        return spec.nbytes
    grid = BrickGrid(spec.spatial, layout)
    return spec.batch * grid.num_bricks * spec.channels * math.prod(layout) * spec.itemsize


def _flat_index(gpos: tuple[int, ...], grid_shape: tuple[int, ...]) -> int:
    idx = 0
    for p, g in zip(gpos, grid_shape):
        idx = idx * g + p
    return idx


def _all_gpos(grid: BrickGrid) -> Iterator[tuple[int, ...]]:
    yield from itertools.product(*(range(g) for g in grid.grid_shape))


def _shrink(region: Region, k: int) -> Region:
    """Trim ``k`` elements per side of every interval (never inverting)."""
    return Region(
        Interval(iv.lo + k, max(iv.lo + k, iv.hi - k)) for iv in region
    )


def _dense_layout(spec: "TensorSpec") -> tuple[int, list[int]]:
    """(channel plane bytes, per-dim strides) of a row-major activation."""
    item = spec.itemsize
    spatial = spec.spatial
    nd = len(spatial)
    plane = math.prod(spatial) * item
    strides = [item] * nd
    for d in range(nd - 2, -1, -1):
        strides[d] = strides[d + 1] * spatial[d + 1]
    return plane, strides


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class _Violations:
    """Capped per-code violation collector for one subgraph."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.samples: dict[str, list[str]] = {}

    def add(self, code: str, message: str) -> None:
        n = self.counts.get(code, 0)
        self.counts[code] = n + 1
        if n < _MAX_DIAGS:
            self.samples.setdefault(code, []).append(message)

    def flush(self, report: EffectReport, subgraph_index: int) -> None:
        for code, count in sorted(self.counts.items()):
            for msg in self.samples[code]:
                _diag(report, code, Severity.ERROR, msg, subgraph_index=subgraph_index)
            if count > _MAX_DIAGS:
                _diag(report, code, Severity.ERROR,
                      f"... and {count - _MAX_DIAGS} more {code} violations",
                      subgraph_index=subgraph_index)


class _Analyzer:
    """Shared run state: boundary layouts, epochs, and run totals."""

    def __init__(self, plan: ExecutionPlan, spec: GPUSpec, mutation: EffectMutation,
                 collect: bool, report: EffectReport) -> None:
        self.plan = plan
        self.graph: "Graph" = plan.graph
        self.spec = spec
        self.line = spec.transaction_bytes
        self.mutation = mutation
        self.collect = collect
        self.report = report
        # Boundary layout per produced node id: None = dense row-major,
        # tuple = bricked with that brick shape.  Mirrors the engine's
        # ``boundary`` handle dict.
        self.fmt: dict[int, tuple[int, ...] | None] = {}
        self.buf_name: dict[int, str] = {}
        # Epoch = number of device barriers before a task; two tasks in
        # different epochs are ordered by a synchronize().
        self.epoch = 0
        self.seq = 0
        self.produced_epoch: dict[int, int] = {}
        self.persistent_written = 0
        self.outputs = {n.node_id for n in self.graph.output_nodes}
        self.tail = _Traffic(self.line)
        for node in self.graph.input_nodes:
            self.fmt[node.node_id] = None
            self.buf_name[node.node_id] = f"{self.graph.name}/{node.name}"
            self.produced_epoch[node.node_id] = -1

    # -- small helpers -------------------------------------------------------
    def _next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def _span(self, name: str, lo: int, hi: int) -> None:
        if self.collect:
            self.report.effect_sets.setdefault(name, EffectSet()).add(lo, hi)

    def _task_time(self, se: SubgraphEffects, flops: float, calls: int) -> None:
        t = self.spec.task_time(flops, calls)
        se.task_time_sum += t
        se.task_time_max = max(se.task_time_max, t)
        se.num_tasks += 1
        se.flops += flops

    def _dense_access(self, tr: _Traffic, name: str, spec: "TensorSpec",
                      region: Region, *, write: bool, mult: int = 1) -> None:
        """A strided region read/write on a row-major buffer (all channels,
        mirrored from ``DenseHandle._region_access``); traffic is charged
        per batch sample (``mult``), effect spans recorded for all samples."""
        clipped = region.clip(spec.spatial)
        if clipped.is_empty():
            return
        plane, strides = _dense_layout(spec)
        seg = clipped[-1].length * spec.itemsize
        segs = spec.channels * math.prod(iv.length for iv in clipped[:-1])
        tr.access(seg, segs, write=write, mult=mult)
        if self.collect:
            rel = sum(iv.lo * s for iv, s in zip(clipped, strides))
            end = ((spec.channels - 1) * plane
                   + sum((iv.hi - 1) * s for iv, s in zip(clipped, strides))
                   + spec.itemsize)
            for n in range(spec.batch):
                base = n * spec.channels * plane
                self._span(name, base + rel, base + end)

    def _brick_access(self, tr: _Traffic, name: str, offsets: Sequence[int],
                      nbytes: int, batch_stride: int, nbatch: int, *,
                      write: bool) -> None:
        """Whole-brick accesses at per-sample-0 ``offsets``, repeated (and
        charged) for every batch sample."""
        if not offsets:
            return
        tr.access(nbytes, len(offsets), write=write, mult=nbatch)
        if self.collect:
            for n in range(nbatch):
                base = n * batch_stride
                for off in offsets:
                    self._span(name, base + off, base + off + nbytes)

    def _full_access(self, tr: _Traffic, name: str, nbytes: int, *, write: bool) -> None:
        tr.access(nbytes, 1, write=write)
        self._span(name, 0, nbytes)

    def _weight_read(self, tr: _Traffic, weights_used: set[int], nid: int) -> None:
        node = self.graph.node(nid)
        input_specs = [self.graph.node(i).spec for i in node.inputs]
        nbytes = node.op.weight_bytes(input_specs)
        if nbytes:
            tr.weight(nbytes, first_touch=nid not in weights_used)
            if nid not in weights_used:
                weights_used.add(nid)
                self._span(f"{self.graph.name}/{node.name}/w", 0, nbytes)

    # -- entry layout & conversions -----------------------------------------
    def _convert_to_bricks(self, tr: _Traffic, se: SubgraphEffects, eid: int,
                           brick_shape: tuple[int, ...]) -> int:
        """Mirror ``BrickDLEngine._ensure_bricked``; returns the conversion
        task's sequence number (its whole-buffer token orders consumers)."""
        node = self.graph.node(eid)
        spec = node.spec
        shape = tuple(min(b, e) for b, e in zip(brick_shape, spec.spatial))
        self._full_access(tr, self.buf_name[eid],
                          _layout_nbytes(spec, self.fmt[eid]), write=False)
        grid = BrickGrid(spec.spatial, shape)
        per_brick = spec.channels * math.prod(shape) * spec.itemsize
        offsets = [i * per_brick for i in range(grid.num_bricks)]
        name = f"{node.name}/bricked"
        self._brick_access(tr, name, offsets, per_brick,
                           grid.num_bricks * per_brick, spec.batch, write=True)
        self.fmt[eid] = shape
        self.buf_name[eid] = name
        self._task_time(se, 0.0, 1)
        return self._next_seq()

    def _convert_to_dense(self, tr: _Traffic, se: SubgraphEffects | None, eid: int) -> None:
        """Mirror ``BrickDLEngine._ensure_dense`` (no-op on dense handles)."""
        layout = self.fmt[eid]
        if layout is None:
            return
        node = self.graph.node(eid)
        spec = node.spec
        grid = BrickGrid(spec.spatial, layout)
        per_brick = spec.channels * math.prod(layout) * spec.itemsize
        offsets = [i * per_brick for i in range(grid.num_bricks)]
        self._brick_access(tr, self.buf_name[eid], offsets, per_brick,
                           grid.num_bricks * per_brick, spec.batch, write=False)
        name = f"{node.name}/dense"
        self._full_access(tr, name, spec.nbytes, write=True)
        if eid in self.outputs:
            # Allocated non-transient: flushed (and charged) at run end.
            self.persistent_written += spec.nbytes
        self.fmt[eid] = None
        self.buf_name[eid] = name
        self._next_seq()
        if se is not None:
            self._task_time(se, 0.0, 1)

    def _entry_read(self, tr: _Traffic, name: str, spec: "TensorSpec",
                    layout: tuple[int, ...] | None, region: Region,
                    nbatch: int) -> None:
        """A region read against an entry in its current layout: strided
        row-major segments when dense, whole overlapping bricks when bricked."""
        if layout is None:
            self._dense_access(tr, name, spec, region, write=False, mult=nbatch)
            return
        grid = BrickGrid(spec.spatial, layout)
        per_brick = spec.channels * math.prod(layout) * spec.itemsize
        offsets = [_flat_index(g, grid.grid_shape) * per_brick
                   for g in grid.overlap_plan(region)]
        self._brick_access(tr, name, offsets, per_brick,
                           grid.num_bricks * per_brick, nbatch, write=False)

    # -- mutation-aware geometry ---------------------------------------------
    def _model_required(self, geom: SubgraphGeometry, exit_id: int,
                        out_region: Region) -> dict[int, Region]:
        req = geom.required(exit_id, out_region)
        m = self.mutation
        if not m.active:
            return req
        req = dict(req)
        if m.shrink_halo:
            req = {nid: (r if nid == exit_id else _shrink(r, m.shrink_halo))
                   for nid, r in req.items()}
        if m.drop_dep_edge is not None:
            consumer, producer = m.drop_dep_edge
            if consumer in req and producer != exit_id:
                req.pop(producer, None)
        return req

    def _model_needs(self, geom: SubgraphGeometry, nid: int,
                     region: Region) -> list[Region | None]:
        """Per-input model need regions; ``None`` marks a dropped edge."""
        needs, _ = geom.needs(nid, region)
        m = self.mutation
        out: list[Region | None] = []
        for input_index, pred in enumerate(self.graph.node(nid).inputs):
            if m.drop_dep_edge is not None and m.drop_dep_edge == (nid, pred):
                out.append(None)
                continue
            need = needs[input_index]
            if m.shrink_halo:
                need = _shrink(need, m.shrink_halo)
            out.append(need)
        return out

    def _skipped(self, nid: int, gpos: tuple[int, ...], grid_shape: tuple[int, ...]) -> bool:
        skip = self.mutation.skip_writer
        return skip is not None and skip == (nid, _flat_index(gpos, grid_shape))

    # -- per-strategy builders ----------------------------------------------
    def merged(self, sub: SubgraphPlan) -> SubgraphEffects:
        strategy = sub.strategy
        view = sub.subgraph
        if strategy is Strategy.WAVEFRONT:
            from repro.core.wavefront import is_chain_subgraph

            if not is_chain_subgraph(view):
                strategy = Strategy.MEMOIZED  # mirrors the engine fallback
        se = SubgraphEffects(index=sub.index, strategy=strategy.value)
        tr = _Traffic(self.line)
        viol = _Violations()
        graph = self.graph
        brick_shape = tuple(sub.brick_shape)
        batch = graph.node(view.node_ids[0]).spec.batch
        epoch0 = self.epoch

        # Entry layouts + any to-bricks conversions (ordered against the
        # consuming tasks by the conversion buffer's whole-buffer token).
        entry_layout: dict[int, tuple[int, ...] | None] = {}
        conv_seq: dict[int, int] = {}
        for eid in view.entry_ids:
            layout = self.fmt[eid]
            if layout is None or layout == brick_shape:
                entry_layout[eid] = layout
            else:
                conv_seq[eid] = self._convert_to_bricks(tr, se, eid, brick_shape)
                entry_layout[eid] = self.fmt[eid]
            if self.produced_epoch[eid] >= epoch0:
                viol.add("effects.race",
                         f"entry {eid} produced in epoch {self.produced_epoch[eid]} "
                         f"but consumed in epoch {epoch0} without a barrier")

        geom = SubgraphGeometry(view)
        geom_true = SubgraphGeometry(view) if self.mutation.active else geom

        if strategy is Strategy.PADDED:
            self._padded(sub, se, tr, viol, geom, geom_true, entry_layout,
                         conv_seq, batch, epoch0)
            exit_name = "bricked"
        elif strategy is Strategy.WAVEFRONT:
            self._wavefront(sub, se, tr, viol, geom, geom_true, entry_layout,
                            conv_seq, batch, epoch0)
            exit_name = "wave"
        else:
            self._memoized(sub, se, tr, viol, geom, geom_true, entry_layout,
                           conv_seq, batch, epoch0)
            exit_name = "memo"

        for eid in view.exit_ids:
            self.fmt[eid] = brick_shape
            self.buf_name[eid] = f"{graph.node(eid).name}/{exit_name}"
            self.produced_epoch[eid] = self.epoch - 1

        viol.flush(self.report, sub.index)
        se.race_free = not any(c in ("effects.race", "effects.multi-writer",
                                     "effects.unordered-entry") for c in viol.counts)
        se.write_exact = "effects.write-coverage" not in viol.counts
        se.read_covered = "effects.read-coverage" not in viol.counts
        self._close(sub, se, tr)
        return se

    def _check_entry_order(self, viol: _Violations, conv_seq: Mapping[int, int],
                           acquired: Iterable[int], read: Iterable[int]) -> None:
        """Entry reads ordered against a same-epoch layout conversion only
        via the conversion buffer's token (prior-epoch producers are ordered
        by the inter-subgraph barrier, checked at subgraph entry)."""
        acq = set(acquired)
        for eid in read:
            if eid in conv_seq and eid not in acq:
                viol.add("effects.unordered-entry",
                         f"read of entry {eid} is not ordered against its "
                         f"same-epoch layout conversion (missing token acquire)")

    def _read_coverage(self, viol: _Violations, nid: int,
                       model: Region | None, true: Region,
                       pred_spec: "TensorSpec", what: str) -> None:
        true_c = true.clip(pred_spec.spatial)
        if true_c.is_empty():
            return
        if model is None or not model.clip(pred_spec.spatial).contains(true_c):
            viol.add("effects.read-coverage",
                     f"node {nid}: modeled {what} read {model} does not cover "
                     f"required region {true}")

    def _padded(self, sub: SubgraphPlan, se: SubgraphEffects, tr: _Traffic,
                viol: _Violations, geom: SubgraphGeometry, geom_true: SubgraphGeometry,
                entry_layout: Mapping[int, tuple[int, ...] | None],
                conv_seq: Mapping[int, int], batch: int, epoch0: int) -> None:
        graph = self.graph
        view = sub.subgraph
        brick_shape = tuple(sub.brick_shape)
        weights_used: set[int] = set()
        entry_ids = list(view.entry_ids)
        for exit_id in [e.node_id for e in view.exits]:
            espec = graph.node(exit_id).spec
            grid = BrickGrid(espec.spatial, brick_shape)
            per_brick = espec.channels * math.prod(brick_shape) * espec.itemsize
            name = f"{graph.node(exit_id).name}/bricked"
            written = 0
            covered_elems = 0
            for gpos in _all_gpos(grid):
                if self._skipped(exit_id, gpos, grid.grid_shape):
                    continue
                out_region = grid.brick_region(gpos, clipped=True)
                model_req = self._model_required(geom, exit_id, out_region)
                true_req = geom_true.required(exit_id, out_region)
                # Read coverage: the task's effect regions (entries copied in,
                # member patches recomputed) must cover the true closure.
                for nid, true_region in true_req.items():
                    if nid == exit_id:
                        continue
                    self._read_coverage(viol, exit_id, model_req.get(nid), true_region,
                                        graph.node(nid).spec, f"closure of node {nid}")
                # Entry reads + whole-buffer token acquires (model effects).
                read_entries = [eid for eid in entry_ids if eid in model_req]
                for eid in read_entries:
                    self._entry_read(tr, self.buf_name[eid], graph.node(eid).spec,
                                     entry_layout[eid], model_req[eid], batch)
                self._check_entry_order(viol, conv_seq, read_entries, read_entries)
                # Member compute (scratch traffic is on-chip: L1 only).
                flops = 0.0
                calls = 0
                for nid in view.node_ids:
                    if nid not in model_req:
                        continue
                    nspec = graph.node(nid).spec
                    region = model_req[nid].clip(nspec.spatial)
                    if region.is_empty():
                        continue
                    if nid != exit_id and self._skipped(nid, gpos, grid.grid_shape):
                        # A member's "brick" in the padded schedule is its
                        # scratch patch inside this exit-brick task: skipping
                        # the patch write leaves its consumers reading
                        # unwritten scratch.
                        viol.add("effects.race",
                                 f"task for exit brick {gpos} skips the patch "
                                 f"write of member {nid} that its consumers read")
                        continue
                    self._weight_read(tr, weights_used, nid)
                    flops += geom.flops(nid, nspec.channels * region.size)
                    calls += 1
                self._brick_access(
                    tr, name, [_flat_index(gpos, grid.grid_shape) * per_brick],
                    per_brick, grid.num_bricks * per_brick, batch, write=True)
                self._task_time(se, flops, max(calls, 1))
                self._next_seq()
                written += 1
                covered_elems += out_region.size
            if written < grid.num_bricks:
                viol.add("effects.write-coverage",
                         f"exit {exit_id}: {written}/{grid.num_bricks} bricks written")
            elif covered_elems != math.prod(espec.spatial):
                viol.add("effects.write-coverage",
                         f"exit {exit_id}: write effects cover {covered_elems} "
                         f"of {math.prod(espec.spatial)} elements")
        se.sync_count = 1
        self.epoch = epoch0 + 1

    def _memoized(self, sub: SubgraphPlan, se: SubgraphEffects, tr: _Traffic,
                  viol: _Violations, geom: SubgraphGeometry, geom_true: SubgraphGeometry,
                  entry_layout: Mapping[int, tuple[int, ...] | None],
                  conv_seq: Mapping[int, int], batch: int, epoch0: int) -> None:
        graph = self.graph
        view = sub.subgraph
        brick_shape = tuple(sub.brick_shape)
        members = set(view.node_ids)
        grids = {nid: BrickGrid(graph.node(nid).spec.spatial, brick_shape)
                 for nid in view.node_ids}
        weights_used: set[int] = set()

        def model_deps(nid: int, region: Region) -> list[tuple[int, tuple[int, ...]]]:
            deps: list[tuple[int, tuple[int, ...]]] = []
            for need, pred in zip(self._model_needs(geom, nid, region),
                                  graph.node(nid).inputs):
                if pred not in members or need is None:
                    continue
                deps.extend((pred, dp) for dp in grids[pred].overlap_plan(need))
            return deps

        # Demand closure from the exit goals -- exactly the brick set the
        # recursive executor computes (exactly once, via the 3-state tags).
        demanded: set[tuple[int, tuple[int, ...]]] = set()
        stack: list[tuple[int, tuple[int, ...]]] = []
        for eid in view.exit_ids:
            stack.extend((eid, g) for g in _all_gpos(grids[eid]))
        while stack:
            key = stack.pop()
            if key in demanded:
                continue
            demanded.add(key)
            nid, gpos = key
            region = grids[nid].brick_region(gpos, clipped=True)
            stack.extend(model_deps(nid, region))

        writers = {key for key in demanded
                   if not self._skipped(key[0], key[1], grids[key[0]].grid_shape)}

        for nid, gpos in sorted(demanded):
            if (nid, gpos) not in writers:
                continue  # seeded skip: consumers below still read this brick
            node = graph.node(nid)
            region = grids[nid].brick_region(gpos, clipped=True)
            model_needs = self._model_needs(geom, nid, region)
            true_needs, _ = geom_true.needs(nid, region)
            read_entries: list[int] = []
            for input_index, pred in enumerate(node.inputs):
                pspec = graph.node(pred).spec
                self._read_coverage(viol, nid, model_needs[input_index],
                                    true_needs[input_index], pspec,
                                    f"need of input {pred}")
                need = model_needs[input_index]
                if need is None:
                    continue
                if pred in members:
                    # Token-ordered brick reads: the dependency scan and the
                    # acquire stamping derive from the same needs, so the
                    # proof obligation is writer existence (dangling reads).
                    per_brick = pspec.channels * math.prod(brick_shape) * pspec.itemsize
                    offsets = []
                    for dp in grids[pred].overlap_plan(need):
                        if (pred, dp) not in writers:
                            viol.add("effects.race",
                                     f"node {nid} brick {gpos} reads {pred} brick "
                                     f"{dp} which no ordered task writes")
                        offsets.append(_flat_index(dp, grids[pred].grid_shape) * per_brick)
                    self._brick_access(tr, f"{graph.node(pred).name}/memo", offsets,
                                       per_brick, grids[pred].num_bricks * per_brick,
                                       batch, write=False)
                else:
                    self._entry_read(tr, self.buf_name[pred], pspec,
                                     entry_layout[pred], need, batch)
                    read_entries.append(pred)
            self._check_entry_order(viol, conv_seq, read_entries, read_entries)
            self._weight_read(tr, weights_used, nid)
            per_brick = node.spec.channels * math.prod(brick_shape) * node.spec.itemsize
            self._brick_access(
                tr, f"{node.name}/memo",
                [_flat_index(gpos, grids[nid].grid_shape) * per_brick],
                per_brick, grids[nid].num_bricks * per_brick, batch, write=True)
            self._task_time(se, geom.flops(nid, node.spec.channels * region.size), 1)
            self._next_seq()

        self._exit_write_coverage(viol, view, grids, writers)
        se.sync_count = 1
        self.epoch = epoch0 + 1

    def _wavefront(self, sub: SubgraphPlan, se: SubgraphEffects, tr: _Traffic,
                   viol: _Violations, geom: SubgraphGeometry, geom_true: SubgraphGeometry,
                   entry_layout: Mapping[int, tuple[int, ...] | None],
                   conv_seq: Mapping[int, int], batch: int, epoch0: int) -> None:
        graph = self.graph
        view = sub.subgraph
        brick_shape = tuple(sub.brick_shape)
        members = set(view.node_ids)
        grids = {nid: BrickGrid(graph.node(nid).spec.spatial, brick_shape)
                 for nid in view.node_ids}
        weights_used: set[int] = set()

        # Wave placement by dependency longest path, from the *model* needs
        # (exactly the executor's derivation; only the first member input
        # places, mirroring the chain executor).
        wave_of: dict[tuple[int, tuple[int, ...]], int] = {}
        max_wave = 0
        for nid in view.node_ids:
            node = graph.node(nid)
            member_pred = next((i for i in node.inputs if i in members), None)
            idx = node.inputs.index(member_pred) if member_pred is not None else -1
            for gpos in _all_gpos(grids[nid]):
                if member_pred is None:
                    w = gpos[0]
                else:
                    region = grids[nid].brick_region(gpos, clipped=True)
                    need = self._model_needs(geom, nid, region)[idx]
                    dep_waves = ([] if need is None else
                                 [wave_of[(member_pred, dp)]
                                  for dp in grids[member_pred].overlap_plan(need)])
                    w = max(dep_waves) + 1 if dep_waves else 0
                wave_of[(nid, gpos)] = w
                max_wave = max(max_wave, w)

        writers = {key for key in wave_of
                   if not self._skipped(key[0], key[1], grids[key[0]].grid_shape)}

        for nid in view.node_ids:
            node = graph.node(nid)
            for gpos in _all_gpos(grids[nid]):
                if (nid, gpos) not in writers:
                    continue
                w = wave_of[(nid, gpos)]
                region = grids[nid].brick_region(gpos, clipped=True)
                model_needs = self._model_needs(geom, nid, region)
                true_needs, _ = geom_true.needs(nid, region)
                read_entries: list[int] = []
                for input_index, pred in enumerate(node.inputs):
                    pspec = graph.node(pred).spec
                    self._read_coverage(viol, nid, model_needs[input_index],
                                        true_needs[input_index], pspec,
                                        f"need of input {pred}")
                    need = model_needs[input_index]
                    if need is None:
                        continue
                    if pred in members:
                        # No token edges: the per-wave barrier is the whole
                        # protocol, so every dependency brick must land on a
                        # strictly earlier wave (and be written at all).
                        per_brick = (pspec.channels * math.prod(brick_shape)
                                     * pspec.itemsize)
                        offsets = []
                        for dp in grids[pred].overlap_plan(need):
                            if (pred, dp) not in writers:
                                viol.add("effects.race",
                                         f"node {nid} brick {gpos} reads {pred} "
                                         f"brick {dp} which no task writes")
                            elif wave_of[(pred, dp)] >= w:
                                viol.add("effects.race",
                                         f"node {nid} brick {gpos} on wave {w} reads "
                                         f"{pred} brick {dp} on wave "
                                         f"{wave_of[(pred, dp)]} (no barrier between)")
                            offsets.append(_flat_index(dp, grids[pred].grid_shape)
                                           * per_brick)
                        self._brick_access(tr, f"{graph.node(pred).name}/wave",
                                           offsets, per_brick,
                                           grids[pred].num_bricks * per_brick,
                                           batch, write=False)
                    else:
                        self._entry_read(tr, self.buf_name[pred], pspec,
                                         entry_layout[pred], need, batch)
                        read_entries.append(pred)
                self._check_entry_order(viol, conv_seq, read_entries, read_entries)
                self._weight_read(tr, weights_used, nid)
                per_brick = node.spec.channels * math.prod(brick_shape) * node.spec.itemsize
                self._brick_access(
                    tr, f"{node.name}/wave",
                    [_flat_index(gpos, grids[nid].grid_shape) * per_brick],
                    per_brick, grids[nid].num_bricks * per_brick, batch, write=True)
                self._task_time(se, geom.flops(nid, node.spec.channels * region.size), 1)
                self._next_seq()

        self._exit_write_coverage(viol, view, grids, writers)
        se.sync_count = max_wave + 1
        self.epoch = epoch0 + max_wave + 1

    def _exit_write_coverage(self, viol: _Violations, view: "SubgraphView",
                             grids: Mapping[int, BrickGrid],
                             writers: set[tuple[int, tuple[int, ...]]]) -> None:
        """Exactly-once coverage of every materialized member: each brick has
        one writer (structural: one task per (node, brick)) and the clipped
        write effects tile the declared output region."""
        graph = self.graph
        for nid in view.node_ids:
            grid = grids[nid]
            spec = graph.node(nid).spec
            missing = grid.num_bricks - sum(1 for g in _all_gpos(grid)
                                            if (nid, g) in writers)
            if nid in view.exit_ids and missing:
                viol.add("effects.write-coverage",
                         f"exit {nid}: {missing} of {grid.num_bricks} bricks "
                         f"have no writer")
                continue
            covered = sum(grid.brick_region(g, clipped=True).size
                          for g in _all_gpos(grid) if (nid, g) in writers)
            if nid in view.exit_ids and covered != math.prod(spec.spatial):
                viol.add("effects.write-coverage",
                         f"exit {nid}: write effects cover {covered} of "
                         f"{math.prod(spec.spatial)} elements")

    # -- vendor-library fallback --------------------------------------------
    def fallback(self, sub: SubgraphPlan) -> SubgraphEffects:
        from repro.baselines.fusion import FusionGroup
        from repro.baselines.tiled import adaptive_tiles, group_flops_per_out_element

        graph = self.graph
        view = sub.subgraph
        se = SubgraphEffects(index=sub.index, strategy=Strategy.CUDNN.value)
        tr = _Traffic(self.line)
        viol = _Violations()
        members = set(view.node_ids)

        # Mirror of BrickDLEngine._fallback_groups (conv+pointwise fusion).
        groups: list[FusionGroup] = []
        absorbed: set[int] = set()
        for nid in view.node_ids:
            if nid in absorbed:
                continue
            group = FusionGroup(primary=graph.node(nid))
            current = group.primary
            while True:
                consumers = list(graph.consumers(current.node_id))
                if len(consumers) != 1 or consumers[0] not in members:
                    break
                nxt = graph.node(consumers[0])
                if not nxt.op.is_pointwise:
                    break
                if any(i >= group.primary.node_id
                       for i in nxt.inputs if i != current.node_id):
                    break
                group.fused.append(nxt)
                absorbed.add(nxt.node_id)
                current = nxt
            groups.append(group)

        weights_used: set[int] = set()
        for group in groups:
            out = group.output
            group_ids = {n.node_id for n in group.nodes}
            for gnode in group.nodes:
                for pred in gnode.inputs:
                    if pred not in group_ids:
                        self._convert_to_dense(tr, se, pred)
            out_name = f"{graph.name}/{out.name}"
            # Fallback outputs are persistent (flush-charged at run end).
            self.persistent_written += out.spec.nbytes
            fpe = group_flops_per_out_element(graph, group)
            if group.primary.op.is_global or not out.spec.spatial:
                for gnode in group.nodes:
                    for pred in gnode.inputs:
                        if pred not in group_ids:
                            self._full_access(tr, self.buf_name[pred],
                                              _layout_nbytes(graph.node(pred).spec, None),
                                              write=False)
                    self._weight_read(tr, weights_used, gnode.node_id)
                self._full_access(tr, out_name, out.spec.nbytes, write=True)
                self._task_time(se, fpe * out.spec.num_elements, 1)
                self._next_seq()
            else:
                tile = 16 if out.spec.spatial_ndim >= 3 else 32
                tiles = list(adaptive_tiles(out.spec.spatial, tile, self.spec.num_sms))
                primary = group.primary
                primary_specs = [graph.node(i).spec for i in primary.inputs]
                batch = out.spec.batch
                covered = 0
                for region in tiles:
                    for input_index, pred in enumerate(primary.inputs):
                        maps = primary.op.rf_maps(primary_specs, input_index)
                        need = Region(m.in_interval(iv) for m, iv in zip(maps, region))
                        self._dense_access(tr, self.buf_name[pred],
                                           graph.node(pred).spec, need,
                                           write=False, mult=batch)
                    for fnode in group.fused:
                        for pred in fnode.inputs:
                            if pred not in group_ids:
                                self._dense_access(tr, self.buf_name[pred],
                                                   graph.node(pred).spec, region,
                                                   write=False, mult=batch)
                    for gnode in group.nodes:
                        self._weight_read(tr, weights_used, gnode.node_id)
                    self._dense_access(tr, out_name, out.spec, region,
                                       write=True, mult=batch)
                    self._task_time(se, fpe * out.spec.channels * region.size, 1)
                    self._next_seq()
                    covered += region.size
                # Exactly-once coverage: row-major clipped tiles partition the
                # output extents (disjoint by construction, verified by sum).
                if covered != math.prod(out.spec.spatial):
                    viol.add("effects.write-coverage",
                             f"group {out.node_id}: tiles cover {covered} of "
                             f"{math.prod(out.spec.spatial)} elements")
            # One barrier per group orders it against the next (and the reads
            # of the producing conversions are token-acquired in-task).
            se.sync_count += 1
            self.epoch += 1
            for gnode in group.nodes:
                self.fmt[gnode.node_id] = None
                self.buf_name[gnode.node_id] = out_name
                self.produced_epoch[gnode.node_id] = self.epoch - 1

        viol.flush(self.report, sub.index)
        se.race_free = True  # per-group barriers + token-ordered conversions
        se.write_exact = "effects.write-coverage" not in viol.counts
        se.read_covered = True  # needs derived directly from rf_maps
        self._close(sub, se, tr)
        return se

    # -- aggregation ---------------------------------------------------------
    def _close(self, sub: SubgraphPlan, se: SubgraphEffects, tr: _Traffic) -> None:
        se.dram_read_lb = tr.weight_txns
        se.dram_read_ub = tr.read_ub + tr.weight_txns
        se.dram_write_ub = tr.write_ub
        r = self.report
        r.subgraphs.append(se)
        r.dram_read_lb += tr.weight_txns
        r.dram_read_ub += se.dram_read_ub
        r.dram_write_ub += tr.write_ub
        r.l2_lb += tr.l2_write_lines
        r.l2_ub += tr.read_ub + tr.write_ub + tr.weight_l2
        r.sync_count += se.sync_count
        r.num_tasks += se.num_tasks
        r.total_flops += se.flops
        r.task_time_sum += se.task_time_sum
        r.task_time_max = max(r.task_time_max, se.task_time_max)
        self._write_bytes = getattr(self, "_write_bytes", 0) + tr.write_bytes

    def finish(self) -> None:
        """Graph outputs are densified (mirroring ``BrickDLEngine.run``),
        then run-level slack closes the upper bounds."""
        r = self.report
        for node in self.graph.output_nodes:
            self._convert_to_dense(self.tail, None, node.node_id)
        r.dram_read_ub += self.tail.read_ub
        r.dram_write_ub += self.tail.write_ub
        r.l2_lb += self.tail.l2_write_lines
        r.l2_ub += self.tail.read_ub + self.tail.write_ub
        write_bytes = getattr(self, "_write_bytes", 0) + self.tail.write_bytes
        # Write-back fragmentation: dirty bytes leave in eviction/flush chunks
        # whose per-event round-up is bounded by one extra line per written
        # line plus flat slack.
        r.dram_write_ub += _txns(write_bytes, self.line) + _UB_SLACK
        r.dram_read_ub += _UB_SLACK
        r.l2_ub += 2 * _UB_SLACK
        r.dram_write_lb = _txns(self.persistent_written, self.line)


# ---------------------------------------------------------------------------
# Distributed schedule proof
# ---------------------------------------------------------------------------


def _check_distributed(plan: ExecutionPlan, report: EffectReport, num_ranks: int) -> None:
    """Prove the exchange-then-compute halo schedule of
    :class:`repro.distributed.engine.DistributedRunner`: rank row-slabs are
    disjoint and covering (exactly-once writes), and every entry row a rank
    needs beyond its slab is delivered by the pre-compute exchange (each
    subgraph's single ``exchange_step`` is the happens-before barrier)."""
    from repro.distributed.engine import _partition_rows

    graph = plan.graph
    if num_ranks < 2:
        return
    for node in graph.nodes:
        if node.is_input:
            continue
        if node.op.is_global or not node.op.is_local:
            _diag(report, "effects.distributed-skip", Severity.INFO,
                  f"distributed schedule inapplicable: {node.name} is global/non-local")
            return
    min_rows = min((n.spec.spatial[0] for n in graph.nodes if n.spec.spatial),
                   default=0)
    if num_ranks > min_rows:
        _diag(report, "effects.distributed-skip", Severity.INFO,
              f"distributed schedule inapplicable: {num_ranks} ranks > "
              f"{min_rows} rows in the narrowest activation")
        return

    from repro.core.halo import required_regions

    ok = True
    for sub in plan.subgraphs:
        view = sub.subgraph
        for exit_id in view.exit_ids:
            espec = graph.node(exit_id).spec
            rows = _partition_rows(espec.spatial[0], num_ranks)
            if [r[0] for r in rows[1:]] != [r[1] for r in rows[:-1]] or \
                    rows[0][0] != 0 or rows[-1][1] != espec.spatial[0]:
                _diag(report, "effects.distributed-coverage", Severity.ERROR,
                      f"rank row slabs of exit {exit_id} are not a disjoint cover",
                      subgraph_index=sub.index, node_id=exit_id)
                ok = False
                continue
            for rank, (olo, ohi) in enumerate(rows):
                out_region = Region.from_bounds(
                    [olo] + [0] * (len(espec.spatial) - 1),
                    [ohi] + list(espec.spatial[1:]))
                required = required_regions(view, exit_id, out_region)
                for eid in view.entry_ids:
                    if eid not in required:
                        continue
                    spec = graph.node(eid).spec
                    need = required[eid].clip(spec.spatial)
                    if need.is_empty():
                        continue
                    erows = _partition_rows(spec.spatial[0], num_ranks)
                    elo, ehi = erows[rank]
                    # Halo rows outside the owned slab must be owned by
                    # *some* neighbor chain -- the runner's message walk
                    # gathers them before the compute phase.
                    if need[0].lo < 0 or need[0].hi > spec.spatial[0]:
                        _diag(report, "effects.distributed-coverage", Severity.ERROR,
                              f"rank {rank} of exit {exit_id} needs rows "
                              f"{need[0]} outside entry {eid}",
                              subgraph_index=sub.index, node_id=eid)
                        ok = False
    if ok:
        _diag(report, "effects.distributed", Severity.INFO,
              f"distributed halo schedule proven for {num_ranks} ranks: "
              f"disjoint covering row slabs, all halo needs gathered before compute")


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def analyze_effects(
    plan: ExecutionPlan,
    spec: GPUSpec = A100,
    config: PerfModelConfig = DEFAULT_CONFIG,
    *,
    mutation: EffectMutation | None = None,
    collect_sets: bool = False,
    check_distributed: bool = True,
    num_ranks: int = 2,
) -> EffectReport:
    """Statically analyze a compiled plan: race freedom, exactly-once write
    coverage, and DRAM/L2 traffic bounds.  Pure geometry -- no Device."""
    del config  # the analysis depends only on the plan and the GPU geometry
    report = EffectReport()
    graph = plan.graph
    seen: dict[int, int] = {}
    for sub in plan.subgraphs:
        for nid in sub.subgraph.node_ids:
            if nid in seen:
                _diag(report, "effects.plan-coverage", Severity.ERROR,
                      f"node {nid} appears in subgraphs {seen[nid]} and {sub.index}",
                      node_id=nid, subgraph_index=sub.index)
            seen[nid] = sub.index
    for node in graph.nodes:
        if not node.is_input and node.node_id not in seen:
            _diag(report, "effects.plan-coverage", Severity.ERROR,
                  f"node {node.node_id} ({node.name}) is not covered by the plan",
                  node_id=node.node_id)
    if not report.ok:
        return report

    analyzer = _Analyzer(plan, spec, mutation or EffectMutation(), collect_sets, report)
    for sub in plan.subgraphs:
        if sub.strategy is Strategy.CUDNN:
            se = analyzer.fallback(sub)
        else:
            se = analyzer.merged(sub)
        if se.proven:
            _diag(report, "effects.proven", Severity.INFO,
                  f"subgraph {sub.index} [{se.strategy}]: race-free, exactly-once "
                  f"coverage; DRAM read [{se.dram_read_lb}, {se.dram_read_ub}] "
                  f"write ub {se.dram_write_ub} txns over {se.num_tasks} tasks",
                  subgraph_index=sub.index)
    analyzer.finish()
    if check_distributed:
        _check_distributed(plan, report, num_ranks)
    _diag(report, "effects.bounds", Severity.INFO,
          f"{graph.name}: {report.bounds_summary()}")
    return report


def check_manifest_bracket(report: EffectReport, manifest: "RunManifest") -> AnalysisReport:
    """Assert the static DRAM bounds bracket a measured run manifest."""
    out = AnalysisReport()
    mem = manifest.metrics.get("memory", {})
    checks = (
        ("dram_read_txns", report.dram_read_lb, report.dram_read_ub),
        ("dram_write_txns", report.dram_write_lb, report.dram_write_ub),
        ("dram_txns", report.dram_lb, report.dram_ub),
    )
    ok = True
    for key, lb, ub in checks:
        measured = mem.get(key)
        if measured is None:
            continue
        if not lb <= measured <= ub:
            ok = False
            _diag(out, "effects.bracket", Severity.ERROR,
                  f"{key}: measured {measured} outside static bounds [{lb}, {ub}]")
    if ok:
        _diag(out, "effects.bracket-ok", Severity.INFO,
              f"measured DRAM traffic within static bounds "
              f"({mem.get('dram_read_txns')} r / {mem.get('dram_write_txns')} w; "
              f"read [{report.dram_read_lb}, {report.dram_read_ub}], "
              f"write [{report.dram_write_lb}, {report.dram_write_ub}])")
    return out


def candidate_time_lower_bound(
    sub: SubgraphPlan,
    strategy: Strategy,
    brick: int,
    spec: GPUSpec = A100,
    config: PerfModelConfig = DEFAULT_CONFIG,
) -> float | None:
    """A provable lower bound on the simulated time of one tuning candidate
    (``None`` = inapplicable), derived without running the simulator.

    The simulator's total is at least ``max(dram_time, busy) + overhead``
    with ``dram_time = dram_txns / R_txn``, ``busy`` at least the ideal
    makespan ``max(sum(durations)/num_sms, max(duration))``, and ``overhead``
    at least ``sync_count * sync_time``; every term below lower-bounds its
    measured counterpart, so pruning candidates whose bound already exceeds
    the best measured time can never change the winner.
    """
    from repro.core.engine import BrickDLEngine
    from repro.core.wavefront import is_chain_subgraph
    from repro.graph.traversal import materialize_subgraph

    if strategy is Strategy.WAVEFRONT and not is_chain_subgraph(sub.subgraph):
        return None
    model = materialize_subgraph(sub.subgraph, name=f"effects/sub{sub.index}")
    engine = BrickDLEngine(
        model, spec=spec, config=config,
        strategy_override=strategy, brick_override=brick,
        layer_schedule=(len(sub.subgraph),),
    )
    plan = engine.compile()
    rep = analyze_effects(plan, spec, config, check_distributed=False)
    if not rep.ok:  # pragma: no cover - defensive: never prune on a broken model
        return None
    dram_time = rep.dram_lb / spec.txn_rate
    busy = max(rep.task_time_sum / max(1, spec.num_sms), rep.task_time_max)
    return max(dram_time, busy) + rep.sync_count * spec.sync_time_s


def effect_prune(
    sub: SubgraphPlan,
    strategy: Strategy,
    brick: int,
    spec: GPUSpec,
    config: PerfModelConfig,
    best_time: float | None,
) -> bool:
    """The default ``tune_plan`` pruning hook: skip a candidate when its
    static time lower bound already meets or exceeds the best measured time
    (the tuner replaces only on strictly better, so the winner is preserved)."""
    if best_time is None:
        return False
    lb = candidate_time_lower_bound(sub, strategy, brick, spec, config)
    return lb is not None and lb >= best_time
