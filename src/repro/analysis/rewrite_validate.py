"""Translation validation for graph rewrites.

Given the graph *before* a rule application and the :class:`Rewrite` the
rule returned, this pass independently re-derives soundness -- it trusts
the provenance only as a statement of *what to check*, never that the
claim holds:

* **well-formedness** -- the rewritten graph passes the full graph linter
  (acyclicity / ``structural_errors``, shape and dtype inference, contract
  checks) with no errors (``rewrite.malformed``);
* **interface** -- graph input/output node names and specs are preserved
  (modulo the declared interface batch for rebatch) (``rewrite.interface``);
* **removals** -- every node that disappeared is justified, and every
  justification is re-proved: liveness analysis for ``dead``
  (``rewrite.live-node-dropped``), a value-preservation proof for
  ``identity`` (``rewrite.not-identity``), op/weights/resolved-input
  equality with the surviving twin for ``merged``
  (``rewrite.merge-mismatch``);
* **fusions** -- each fused host's stage pipeline and weights are exactly
  the flattened chain it claims to have absorbed, and that chain really
  was a sole-consumer run in the source graph (``rewrite.fused-chain``,
  ``rewrite.fused-weights``);
* **dataflow** -- every surviving node keeps its op, its weights (shared
  arrays when the rule declares ``shares_weights``), and edges that
  resolve to the same producers as before (``rewrite.op-changed``,
  ``rewrite.dataflow``, ``rewrite.weights-changed``,
  ``rewrite.weights-not-shared``);
* **convexity** -- the planner still produces convex subgraphs on the
  rewritten graph (``rewrite.convexity``, re-using the plan verifier's
  ancestor/descendant intersection argument);
* **differential** (optional) -- the before and after graphs are run
  through the reference executor on seeded random inputs and compared
  bit-for-bit when the rule declares ``exact`` (``rewrite.differential``).

Every diagnostic names the offending rule and (when the caller supplies
it) the runner step, so an unsound rewrite in a long pipeline is pinned to
the exact application that introduced it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.errors import ReproError
from repro.graph.ir import Graph, Node
from repro.graph.ops import BatchNorm, Bias, FusedOp, OpSpec, Pool

if TYPE_CHECKING:
    from repro.graph.tensorspec import TensorSpec
    from repro.rewrite.rule import RemovedNode, Rewrite, Rule

__all__ = ["validate_rewrite"]

PASS_NAME = "rewrite-validate"


def validate_rewrite(
    before: Graph,
    rewrite: "Rewrite",
    rule: "Rule | None" = None,
    *,
    step: int | None = None,
    differential: bool = False,
    seeds: Sequence[int] = (0,),
    check_partition: bool = True,
) -> AnalysisReport:
    """Prove (or refute) that ``rewrite`` soundly transforms ``before``."""
    report = AnalysisReport()
    ctx = _Context(before=before, rewrite=rewrite, report=report,
                   rule=rule.name if rule is not None else rewrite.rule,
                   step=step,
                   exact=rule.exact if rule is not None else True,
                   preserves_interface=(rule.preserves_interface
                                        if rule is not None else True),
                   shares_weights=(rule.shares_weights
                                   if rule is not None else False))
    _check_wellformed(ctx)
    if report.errors:
        # Name/edge-based obligations need a sound graph to be meaningful.
        return report
    _check_interface(ctx)
    _check_removals(ctx)
    _check_fusions(ctx)
    _check_dataflow(ctx)
    if check_partition:
        _check_convexity(ctx)
    if differential:
        _check_differential(ctx, seeds)
    return report


class _Context:
    """The before/after pair plus the rule's declared obligations."""

    def __init__(self, before: Graph, rewrite: "Rewrite", report: AnalysisReport,
                 rule: str, step: int | None, exact: bool,
                 preserves_interface: bool, shares_weights: bool) -> None:
        self.before = before
        self.after = rewrite.graph
        self.rewrite = rewrite
        self.report = report
        self.rule = rule
        self.step = step
        self.exact = exact
        self.preserves_interface = preserves_interface
        self.shares_weights = shares_weights
        self.removed = {r.name: r for r in rewrite.removed}
        self.before_by_name = {n.name: n for n in before.nodes}
        self.after_by_name = {n.name: n for n in self.after.nodes}

    def diag(self, code: str, message: str, severity: Severity = Severity.ERROR,
             node_id: int | None = None, subgraph_index: int | None = None) -> None:
        where = f"rule {self.rule!r}"
        if self.step is not None:
            where += f" (step {self.step})"
        self.report.add(Diagnostic(
            pass_name=PASS_NAME, code=code, severity=severity,
            message=f"{where}: {message}", node_id=node_id,
            subgraph_index=subgraph_index,
            detail={"rule": self.rule, "step": self.step}))

    def resolve(self, name: str) -> str | None:
        """The after-graph node that stands for before-node ``name``, chasing
        removal provenance transitively; None for dead ends / cycles."""
        hops = 0
        while name in self.removed:
            entry = self.removed[name]
            if entry.into is None:
                return None
            name = entry.into
            hops += 1
            if hops > len(self.removed) + 1:  # provenance cycle
                return None
        return name


# -- well-formedness ---------------------------------------------------------
def _check_wellformed(ctx: _Context) -> None:
    from repro.analysis.graph_lint import lint_graph

    inner = lint_graph(ctx.after, check_serialization=True)
    for diag in inner.errors:
        ctx.diag("rewrite.malformed",
                 f"rewritten graph fails {diag.code}: {diag.message}",
                 node_id=diag.node_id)


# -- interface ---------------------------------------------------------------
def _spec_matches(before_spec: "TensorSpec", after_spec: "TensorSpec",
                  batch: int | None) -> bool:
    if batch is None:
        return before_spec == after_spec
    return (after_spec.batch == batch
            and after_spec.channels == before_spec.channels
            and after_spec.spatial == before_spec.spatial
            and after_spec.dtype == before_spec.dtype)


def _check_interface(ctx: _Context) -> None:
    if not ctx.preserves_interface:
        return
    batch = ctx.rewrite.batch
    for kind, b_nodes, a_nodes in (
        ("input", ctx.before.input_nodes, ctx.after.input_nodes),
        ("output", ctx.before.output_nodes, ctx.after.output_nodes),
    ):
        b_names = [n.name for n in b_nodes]
        a_names = [n.name for n in a_nodes]
        if b_names != a_names:
            ctx.diag("rewrite.interface",
                     f"{kind} signature changed: {b_names} -> {a_names}")
            continue
        for b, a in zip(b_nodes, a_nodes):
            if not _spec_matches(b.spec, a.spec, batch):
                ctx.diag("rewrite.interface",
                         f"{kind} {b.name!r} spec changed: {b.spec} -> {a.spec}"
                         + ("" if batch is None
                            else f" (declared batch rescale to {batch})"),
                         node_id=a.node_id)


# -- removals ----------------------------------------------------------------
def _live_ids(graph: Graph) -> set[int]:
    live: set[int] = set()
    stack = [n.node_id for n in graph.output_nodes]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        stack.extend(graph.node(nid).inputs)
    return live


def _provably_identity(node: Node) -> bool:
    """Re-derive (independently of the rules) that ``node`` is a no-op."""
    op = node.op
    if op.arity != 1:
        return False
    if isinstance(op, Pool):
        return (all(k == 1 for k in op.kernel)
                and all(s == 1 for s in op.stride)
                and all(p == 0 for p in op.padding))
    if isinstance(op, BatchNorm):
        w = node.weights
        return bool(w) and bool(np.all(w["scale"] == 1.0)) and not np.any(w["shift"])
    if isinstance(op, Bias):
        w = node.weights
        return bool(w) and not np.any(w["bias"])
    return False


def _same_weight_values(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    return all(w is b[k] or np.array_equal(w, b[k]) for k, w in a.items())


def _check_removals(ctx: _Context) -> None:
    live = _live_ids(ctx.before)
    # (a) every node that disappeared must carry a justification.
    for node in ctx.before.nodes:
        if node.name in ctx.after_by_name or node.name in ctx.removed:
            continue
        code = ("rewrite.live-node-dropped" if node.node_id in live
                else "rewrite.unjustified-removal")
        ctx.diag(code,
                 f"node {node.name!r} ({node.op.kind}) disappeared with no "
                 f"declared justification"
                 + (" and is live (reaches a graph output)"
                    if node.node_id in live else ""),
                 node_id=node.node_id)
    # (b) every declared justification must be re-provable.
    for entry in ctx.rewrite.removed:
        node = ctx.before_by_name.get(entry.name)
        if node is None:
            ctx.diag("rewrite.bad-provenance",
                     f"removal of {entry.name!r} declared, but the source graph "
                     f"has no such node")
            continue
        if entry.name in ctx.after_by_name:
            ctx.diag("rewrite.bad-provenance",
                     f"node {entry.name!r} declared removed ({entry.reason}) but "
                     f"is still present in the rewritten graph",
                     node_id=node.node_id)
            continue
        if entry.reason == "dead":
            if node.node_id in live:
                ctx.diag("rewrite.live-node-dropped",
                         f"node {entry.name!r} was removed as dead but reaches "
                         f"a graph output", node_id=node.node_id)
        elif entry.reason == "identity":
            if not _provably_identity(node):
                ctx.diag("rewrite.not-identity",
                         f"node {entry.name!r} ({node.op.kind}) was removed as "
                         f"an identity but is not provably value-preserving",
                         node_id=node.node_id)
            producer = (ctx.before.node(node.inputs[0]).name
                        if node.inputs else None)
            if entry.into != producer:
                ctx.diag("rewrite.bad-forward",
                         f"identity removal of {entry.name!r} forwards to "
                         f"{entry.into!r}, expected its producer {producer!r}",
                         node_id=node.node_id)
            elif node.node_id in {n.node_id for n in ctx.before.output_nodes}:
                ctx.diag("rewrite.bad-forward",
                         f"identity removal of {entry.name!r} drops a graph "
                         f"output", node_id=node.node_id)
        elif entry.reason == "merged":
            _check_merge(ctx, entry, node)
        elif entry.reason == "fused":
            if entry.into is None or entry.into not in ctx.rewrite.fused:
                ctx.diag("rewrite.bad-provenance",
                         f"fused removal of {entry.name!r} names host "
                         f"{entry.into!r} with no declared fusion chain",
                         node_id=node.node_id)
        else:
            ctx.diag("rewrite.bad-provenance",
                     f"removal of {entry.name!r} carries unknown reason "
                     f"{entry.reason!r}", node_id=node.node_id)


def _check_merge(ctx: _Context, entry: "RemovedNode", node: Node) -> None:
    twin = ctx.before_by_name.get(entry.into) if entry.into else None
    if twin is None:
        ctx.diag("rewrite.bad-provenance",
                 f"merged removal of {entry.name!r} names twin {entry.into!r} "
                 f"which is not in the source graph", node_id=node.node_id)
        return
    if twin.op != node.op:
        ctx.diag("rewrite.merge-mismatch",
                 f"node {entry.name!r} was merged into {twin.name!r} but their "
                 f"ops differ ({node.op.kind} vs {twin.op.kind})",
                 node_id=node.node_id)
        return
    if twin.spec != node.spec:
        ctx.diag("rewrite.merge-mismatch",
                 f"node {entry.name!r} was merged into {twin.name!r} but their "
                 f"layouts differ ({node.spec} vs {twin.spec})",
                 node_id=node.node_id)
        return
    if not _same_weight_values(twin.weights, node.weights):
        ctx.diag("rewrite.merge-mismatch",
                 f"node {entry.name!r} was merged into {twin.name!r} but their "
                 f"weights differ", node_id=node.node_id)
        return
    mine = [ctx.resolve(ctx.before.node(i).name) for i in node.inputs]
    theirs = [ctx.resolve(ctx.before.node(i).name) for i in twin.inputs]
    if mine != theirs or None in mine:
        ctx.diag("rewrite.merge-mismatch",
                 f"node {entry.name!r} was merged into {twin.name!r} but their "
                 f"resolved inputs differ ({mine} vs {theirs})",
                 node_id=node.node_id)


# -- fusions -----------------------------------------------------------------
def _chain_stage_split(node: Node) -> tuple[tuple[OpSpec, ...], list[dict]]:
    if isinstance(node.op, FusedOp):
        return node.op.stages, node.op.split_weights(node.weights)
    return (node.op,), [dict(node.weights)]


def _check_fusions(ctx: _Context) -> None:
    output_ids = {n.node_id for n in ctx.before.output_nodes}
    for host_name, sources in ctx.rewrite.fused.items():
        host = ctx.after_by_name.get(host_name)
        if host is None or not isinstance(host.op, FusedOp):
            ctx.diag("rewrite.fused-chain",
                     f"declared fusion host {host_name!r} is "
                     + ("missing from the rewritten graph" if host is None
                        else "not a fused op"))
            continue
        if not sources or sources[-1] != host_name:
            ctx.diag("rewrite.fused-chain",
                     f"fusion chain for host {host_name!r} must end with the "
                     f"host itself, got {list(sources)}")
            continue
        members = [ctx.before_by_name.get(s) for s in sources]
        if any(m is None for m in members):
            missing = [s for s, m in zip(sources, members) if m is None]
            ctx.diag("rewrite.fused-chain",
                     f"fusion chain for host {host_name!r} names nodes not in "
                     f"the source graph: {missing}")
            continue
        # The chain must really be a producer->sole-consumer run in `before`,
        # with no interior member observable as a graph output.
        chain_ok = True
        for a, b in zip(members, members[1:]):
            if b.inputs != (a.node_id,):
                ctx.diag("rewrite.fused-chain",
                         f"host {host_name!r}: {b.name!r} does not consume "
                         f"{a.name!r} as its sole input", node_id=b.node_id)
                chain_ok = False
            if ctx.before.consumers(a) != (b.node_id,):
                ctx.diag("rewrite.fused-chain",
                         f"host {host_name!r}: absorbed node {a.name!r} has "
                         f"consumers outside the chain", node_id=a.node_id)
                chain_ok = False
            if a.node_id in output_ids:
                ctx.diag("rewrite.fused-chain",
                         f"host {host_name!r}: absorbed node {a.name!r} is a "
                         f"graph output", node_id=a.node_id)
                chain_ok = False
        if not chain_ok:
            continue
        # The host's stage pipeline must be exactly the flattened chain.
        expected_stages: tuple[OpSpec, ...] = ()
        expected_weights: list[dict] = []
        for member in members:
            stages, weights = _chain_stage_split(member)
            expected_stages = expected_stages + stages
            expected_weights.extend(weights)
        if host.op.stages != expected_stages:
            ctx.diag("rewrite.fused-chain",
                     f"host {host_name!r} computes stage pipeline "
                     f"{[s.kind for s in host.op.stages]} but the declared "
                     f"chain flattens to {[s.kind for s in expected_stages]}",
                     node_id=host.node_id)
            continue
        expected = FusedOp.join_weights(expected_weights)
        if not _same_weight_values(expected, host.weights):
            ctx.diag("rewrite.fused-weights",
                     f"host {host_name!r} weights do not match the absorbed "
                     f"chain's weights", node_id=host.node_id)
        # The host must read exactly what the chain's head read.
        expected_inputs = [ctx.resolve(ctx.before.node(i).name)
                           for i in members[0].inputs]
        actual_inputs = [ctx.after.node(i).name for i in host.inputs]
        if expected_inputs != actual_inputs:
            ctx.diag("rewrite.dataflow",
                     f"host {host_name!r} reads {actual_inputs}, expected the "
                     f"chain head's inputs {expected_inputs}",
                     node_id=host.node_id)


# -- dataflow of surviving nodes ---------------------------------------------
def _check_dataflow(ctx: _Context) -> None:
    hosts = set(ctx.rewrite.fused)
    for node in ctx.after.nodes:
        if node.name in hosts:
            continue  # op/weights/inputs re-derived by _check_fusions
        original = ctx.before_by_name.get(node.name)
        if original is None:
            ctx.diag("rewrite.node-added",
                     f"rewritten graph contains node {node.name!r} "
                     f"({node.op.kind}) with no counterpart in the source "
                     f"graph", node_id=node.node_id)
            continue
        if node.is_input:
            continue  # specs covered by the interface check
        if node.op != original.op:
            ctx.diag("rewrite.op-changed",
                     f"node {node.name!r} changed op: {original.op!r} -> "
                     f"{node.op!r}", node_id=node.node_id)
        expected = [ctx.resolve(ctx.before.node(i).name)
                    for i in original.inputs]
        actual = [ctx.after.node(i).name for i in node.inputs]
        if expected != actual:
            ctx.diag("rewrite.dataflow",
                     f"node {node.name!r} reads {actual}, expected {expected} "
                     f"(its original producers after removal resolution)",
                     node_id=node.node_id)
        if ctx.shares_weights:
            if (node.weights.keys() != original.weights.keys()
                    or any(node.weights[k] is not original.weights[k]
                           for k in original.weights)):
                ctx.diag("rewrite.weights-not-shared",
                         f"node {node.name!r} does not share its weight arrays "
                         f"with the source graph (rule declares "
                         f"shares_weights)", node_id=node.node_id)
        elif not _same_weight_values(original.weights, node.weights):
            ctx.diag("rewrite.weights-changed",
                     f"node {node.name!r} weights differ from the source "
                     f"graph", node_id=node.node_id)


# -- planner convexity --------------------------------------------------------
def _check_convexity(ctx: _Context) -> None:
    from repro.core.partition import partition_graph

    after = ctx.after
    try:
        views = partition_graph(after)
    except ReproError as exc:
        ctx.diag("rewrite.partition-failure",
                 f"planner cannot partition the rewritten graph: {exc}")
        return
    for index, view in enumerate(views):
        members = set(view.node_ids)
        if not members:
            continue
        downstream: set[int] = set()
        stack = [c for nid in members for c in after.consumers(nid)]
        while stack:
            nid = stack.pop()
            if nid in downstream:
                continue
            downstream.add(nid)
            stack.extend(after.consumers(nid))
        upstream: set[int] = set()
        stack = [i for nid in members for i in after.node(nid).inputs]
        while stack:
            nid = stack.pop()
            if nid in upstream:
                continue
            upstream.add(nid)
            stack.extend(after.node(nid).inputs)
        for nid in sorted((downstream & upstream) - members):
            ctx.diag("rewrite.convexity",
                     f"planner subgraph {index} on the rewritten graph is not "
                     f"convex: node {after.node(nid).name!r} lies on a path "
                     f"between members", node_id=nid, subgraph_index=index)


# -- differential ------------------------------------------------------------
def _check_differential(ctx: _Context, seeds: Sequence[int]) -> None:
    from repro.core.reference import ReferenceExecutor

    try:
        ref_before = ReferenceExecutor(ctx.before)
        ref_after = ReferenceExecutor(ctx.after)
    except ReproError as exc:
        ctx.diag("rewrite.differential",
                 f"reference executor rejects the graph pair: {exc}")
        return
    batch = ctx.rewrite.batch
    if batch is not None and any(n.spec.batch != 1 for n in ctx.before.input_nodes):
        ctx.diag("rewrite.differential-skipped",
                 f"batch rescale from multi-sample source graph has no "
                 f"per-sample differential obligation", severity=Severity.INFO)
        return
    for seed in seeds:
        rng = np.random.default_rng(seed)
        if batch is None:
            feeds = {n.name: rng.standard_normal(n.spec.shape).astype(n.spec.dtype)
                     for n in ctx.before.input_nodes}
            out_before = ref_before.run(feeds)
            out_after = ref_after.run(feeds)
            for name, expected in out_before.items():
                _compare_outputs(ctx, name, expected, out_after.get(name), seed)
        else:
            # Rebatch: sample k of the batched run must equal a single-shot
            # run on sample k (the PR-5 batch-invariance contract).
            samples = [
                {n.name: rng.standard_normal(n.spec.shape).astype(n.spec.dtype)
                 for n in ctx.before.input_nodes}
                for _ in range(batch)
            ]
            batched = {
                name: np.concatenate([s[name] for s in samples], axis=0)
                for name in samples[0]
            }
            out_after = ref_after.run(batched)
            for k, sample in enumerate(samples):
                out_before = ref_before.run(sample)
                for name, expected in out_before.items():
                    got = out_after.get(name)
                    _compare_outputs(
                        ctx, f"{name}[sample {k}]", expected,
                        None if got is None else got[k:k + 1], seed)


def _compare_outputs(ctx: _Context, name: str, expected: "np.ndarray",
                     got: "np.ndarray | None", seed: int) -> None:
    if got is None:
        ctx.diag("rewrite.differential",
                 f"output {name!r} missing from the rewritten graph's results "
                 f"(seed {seed})")
        return
    if ctx.exact:
        same = expected.shape == got.shape and np.array_equal(expected, got)
        contract = "bit-identical"
    else:
        same = expected.shape == got.shape and np.allclose(
            expected, got, rtol=1e-5, atol=1e-5)
        contract = "allclose"
    if not same:
        if expected.shape != got.shape:
            delta = f"shape {expected.shape} -> {got.shape}"
        else:
            delta = f"max |diff| = {np.max(np.abs(expected - got)):.3e}"
        ctx.diag("rewrite.differential",
                 f"output {name!r} violates the {contract} contract on seed "
                 f"{seed}: {delta}")
