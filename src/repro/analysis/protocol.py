"""Small-model checker for the memoized 3-state CAS tag protocol (§3.2.2).

``core/memoized.py`` simulates the paper's runtime: every brick carries a
tag (0 not-started, 1 in-progress, 2 complete), workers acquire bricks with
a CAS 0->1, compute, and release with a CAS 1->2; observers of tag 1 either
find other state-0 work or stall.  The correctness claims -- every brick is
computed **exactly once**, every consumer reads a **completed** brick, and
the schedule always **terminates** -- are protocol properties, not
properties of any single run.  This module model-checks them: it builds a
tiny abstract brick grid (a few layers, a few bricks, halo-overlapping
dependencies, 2-3 workers), and exhaustively explores *every* worker
interleaving of the scheduler's step function, reporting

* ``protocol.double-compute`` -- two workers acquired the same brick,
* ``protocol.lost-release`` -- a brick left in-progress after its owner
  finished (the release CAS never landed),
* ``protocol.stall-deadlock`` -- a reachable state where every worker
  stalls forever,
* ``protocol.incomplete`` -- a terminal state where some goal brick never
  completed.

The protocol semantics are injectable via :class:`ProtocolModel` so tests
can *mutate* them (drop the release CAS, split the acquire into a
non-atomic read-then-write) and assert the explorer catches the bug a real
lost tag transition would introduce -- the checker's own test coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity

__all__ = ["ProtocolModel", "GridModel", "explore_protocol"]

_NOT_STARTED, _IN_PROGRESS, _COMPLETE = 0, 1, 2


@dataclass(frozen=True)
class ProtocolModel:
    """Injectable tag-protocol semantics (the default is §3.2.2's CAS pair).

    ``atomic_acquire=False`` splits the acquire CAS into a read step and a
    later write step, opening the classic check-then-act race window.
    ``release=False`` drops the 1->2 release CAS entirely: owners finish
    but the tag never reaches COMPLETE.
    """

    atomic_acquire: bool = True
    release: bool = True


@dataclass(frozen=True)
class GridModel:
    """The small model: ``layers`` stacked layers of ``bricks`` bricks each.

    Brick ``i`` of layer ``l > 0`` depends on bricks ``[i-halo, i+halo]``
    of layer ``l-1`` (the halo-overlap sharing that makes workers collide).
    Goals are the last layer's bricks, chunked across ``workers`` like the
    executor's clustered assignment.
    """

    layers: int = 2
    bricks: int = 3
    workers: int = 2
    halo: int = 1
    compute_turns: int = 1

    def deps(self, node: tuple[int, int]) -> tuple[tuple[int, int], ...]:
        layer, i = node
        if layer == 0:
            return ()
        return tuple((layer - 1, j) for j in
                     range(max(0, i - self.halo), min(self.bricks, i + self.halo + 1)))

    def num_nodes(self) -> int:
        return self.layers * self.bricks

    def index(self, node: tuple[int, int]) -> int:
        return node[0] * self.bricks + node[1]

    def goals(self) -> list[list[tuple[int, int]]]:
        top = [(self.layers - 1, i) for i in range(self.bricks)]
        per = -(-len(top) // self.workers)
        return [top[w * per:(w + 1) * per] for w in range(self.workers)]


# A worker is (goals, stack, busy, computing, intent):
#   goals    -- remaining exit bricks, tuple of nodes;
#   stack    -- recursion stack, tuple of (node, blocked-deps-tuple);
#   busy     -- compute turns remaining;
#   computing-- the node being computed (busy > 0);
#   intent   -- node read as state-0 but not yet written to 1 (only with
#               atomic_acquire=False: the race window between the two steps).
_IDLE = ((), (), 0, None, None)


def _step(grid: GridModel, protocol: ProtocolModel, tags: tuple, owns: tuple,
          workers: tuple, w: int) -> tuple:
    """One deterministic scheduler turn for worker ``w``.

    Returns ``(tags, owns, workers, event)`` where ``event`` is None or one
    of ``"double-compute"`` (this acquire is the second owner).  Mirrors
    ``MemoizedBrickExecutor._step``: finish compute, else pull goals, else
    scan the top frame's dependencies.
    """
    goals, stack, busy, computing, intent = workers[w]
    tags = list(tags)
    owns = list(owns)

    def acquire(node: tuple[int, int]) -> str | None:
        idx = grid.index(node)
        tags[idx] = _IN_PROGRESS
        owns[idx] += 1
        return "double-compute" if owns[idx] > 1 else None

    def put(state: tuple) -> tuple:
        ws = list(workers)
        ws[w] = state
        return tuple(tags), tuple(owns), tuple(ws)

    # Second half of a non-atomic acquire: write the tag we read as 0.
    if intent is not None:
        event = acquire(intent)
        frame = (intent, None)
        return *put((goals, stack + (frame,), 0, None, None)), event

    if busy > 0:
        busy -= 1
        if busy == 0:
            if protocol.release:
                tags[grid.index(computing)] = _COMPLETE
            return *put((goals, stack[:-1], 0, None, None)), None
        return *put((goals, stack, busy, computing, None)), None

    if not stack:
        goals = list(goals)
        while goals:
            node = goals.pop(0)
            tag = tags[grid.index(node)]
            if tag == _COMPLETE:
                continue
            if tag == _NOT_STARTED:
                if not protocol.atomic_acquire:
                    return *put((tuple(goals), stack, 0, None, node)), None
                event = acquire(node)
                frame = (node, None)
                return *put((tuple(goals), stack + (frame,), 0, None, None)), event
            # In progress elsewhere: spin on our exit brick.
            goals.insert(0, node)
            return *put((tuple(goals), stack, 0, None, None)), None
        return *put(_IDLE), None

    node, blocked = stack[-1]
    pending = grid.deps(node) if blocked is None else blocked
    keep = []
    for i, dep in enumerate(pending):
        tag = tags[grid.index(dep)]
        if tag == _COMPLETE:
            continue
        if tag == _IN_PROGRESS:
            keep.append(dep)
            continue
        # state 0: descend into this dependency.
        rest = tuple(keep) + tuple(pending[i + 1:])
        new_stack = stack[:-1] + ((node, rest),)
        if not protocol.atomic_acquire:
            return *put((goals, new_stack, 0, None, dep)), None
        event = acquire(dep)
        return *put((goals, new_stack + ((dep, None),), 0, None, None)), event
    if keep:
        # Stall: every pending dependency is in progress elsewhere.
        return *put((goals, stack[:-1] + ((node, tuple(keep)),), 0, None, None)), None
    # All dependencies complete: compute.
    return *put((goals, stack, grid.compute_turns, node, None)), None


def explore_protocol(
    grid: GridModel = GridModel(),
    protocol: ProtocolModel = ProtocolModel(),
    max_states: int = 500_000,
) -> AnalysisReport:
    """Exhaustively explore every interleaving; report protocol violations.

    Each distinct violation code is reported once, with the shortest-first
    counterexample interleaving (the sequence of worker indices stepped) in
    ``Diagnostic.detail``.
    """
    report = AnalysisReport()
    seen_codes: set[str] = set()

    def add(code: str, message: str, path: tuple[int, ...]) -> None:
        if code in seen_codes:
            return
        seen_codes.add(code)
        report.add(Diagnostic(
            pass_name="protocol", code=f"protocol.{code}", severity=Severity.ERROR,
            message=f"{message} (grid {grid.layers}x{grid.bricks}, "
                    f"{grid.workers} workers; interleaving {list(path)})",
            detail=list(path)))

    n = grid.num_nodes()
    init = (tuple([_NOT_STARTED] * n), tuple([0] * n),
            tuple((tuple(g), (), 0, None, None) for g in grid.goals()))
    visited = {init}
    stack: list[tuple[tuple, tuple[int, ...]]] = [(init, ())]
    truncated = False

    while stack:
        (tags, owns, workers), path = stack.pop()
        active = [w for w in range(grid.workers) if workers[w] != _IDLE]
        if not active:
            # Terminal state: check completeness and exactly-once.
            for node in ((l, i) for l in range(grid.layers) for i in range(grid.bricks)):
                idx = grid.index(node)
                if owns[idx] and tags[idx] != _COMPLETE:
                    add("lost-release",
                        f"brick L{node[0]}/{node[1]} was owned but never released "
                        f"to COMPLETE (tag {tags[idx]})", path)
            for i in range(grid.bricks):
                if tags[grid.index((grid.layers - 1, i))] != _COMPLETE:
                    add("incomplete",
                        f"terminal state reached with goal brick {i} not complete", path)
            continue

        progressed = False
        for w in active:
            nxt_tags, nxt_owns, nxt_workers, event = _step(
                grid, protocol, tags, owns, workers, w)
            nxt = (nxt_tags, nxt_owns, nxt_workers)
            if event == "double-compute":
                node = next(node for node, blocked in nxt_workers[w][1][-1:])
                add("double-compute",
                    f"worker {w} acquired brick L{node[0]}/{node[1]} that another "
                    f"worker already owns", path + (w,))
            if nxt == (tags, owns, workers):
                continue  # a pure stall turn; not a new state
            progressed = True
            if nxt not in visited:
                if len(visited) >= max_states:
                    truncated = True
                    continue
                visited.add(nxt)
                stack.append((nxt, path + (w,)))
        if not progressed:
            # Work remains but no interleaving can change the state again.
            stalled = [w for w in active]
            bricks = sorted((l, i) for l in range(grid.layers)
                            for i in range(grid.bricks)
                            if tags[grid.index((l, i))] == _IN_PROGRESS)
            add("stall-deadlock",
                f"workers {stalled} spin forever on in-progress bricks "
                f"{[f'L{l}/{i}' for l, i in bricks]}", path)

    if truncated:
        report.add(Diagnostic(
            pass_name="protocol", code="protocol.truncated", severity=Severity.WARNING,
            message=f"state space exceeded max_states={max_states}; "
                    f"exploration incomplete"))
    return report
