"""The rewrite-rule interface: match/apply plus declared proof obligations.

A :class:`Rule` is a semantics-preserving graph transformation.  Its
``apply`` does *not* mutate the input graph -- the IR is append-only, so
every rule rebuilds -- and returns a :class:`Rewrite` carrying the result
**and a justification for every change it made**: which nodes were removed
and why (dead / identity / merged-into-a-twin / fused-into-a-host), which
host nodes absorbed which source chains, whether the interface batch was
rescaled.  The rule additionally declares machine-checkable obligations as
class attributes (``exact``, ``preserves_interface``, ``shares_weights``).

None of this is trusted.  The translation-validation pass
(:func:`repro.analysis.validate_rewrite`) independently re-derives every
claim from the before/after graph pair: liveness for "dead", weight-value
identities for "identity", structural+weight equality for "merged", chain
reconstruction for "fused", and a differential run through the reference
executor for the declared numerical contract.  The provenance here only
tells the validator *what to check*, never *that it holds*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.ir import Graph

__all__ = ["RemovedNode", "Rewrite", "Rule"]

# Justification tags a rule may attach to a removed node.
REASONS = ("dead", "identity", "merged", "fused")


@dataclass(frozen=True)
class RemovedNode:
    """One node the rewrite dropped, with its claimed justification.

    ``into`` names the node that now stands for the removed one's value:
    the forwarding producer for ``identity``, the surviving twin for
    ``merged``, the absorbing host for ``fused``; ``None`` for ``dead``
    (nothing consumed it, so nothing stands in).
    """

    name: str
    reason: str
    into: str | None = None


@dataclass
class Rewrite:
    """One rule application: the rewritten graph plus its provenance."""

    rule: str
    graph: Graph
    removed: tuple[RemovedNode, ...] = ()
    # host node name -> the ordered chain of source node names (ending with
    # the host's own pre-rewrite self) whose fused stages it now computes.
    fused: dict[str, tuple[str, ...]] = field(default_factory=dict)
    # RebatchRule: the new interface batch size (None for batch-preserving
    # rules).
    batch: int | None = None
    detail: str = ""

    @property
    def nodes_removed(self) -> int:
        return len(self.removed)

    @property
    def nodes_fused(self) -> int:
        return sum(1 for r in self.removed if r.reason == "fused")


class Rule:
    """Base class for rewrite rules.

    Subclasses implement :meth:`apply` and override the obligation flags
    they cannot honor.  ``apply`` returns ``None`` when the rule does not
    fire (so fixed-point batches terminate on no-change, and callers can
    rely on ``rewrite.graph is not graph``).
    """

    #: Stable registry name (also what diagnostics cite).
    name: str = "rule"
    #: Differential obligation: outputs must be *bit-identical* (else the
    #: validator relaxes to allclose -- no seed rule needs that today).
    exact: bool = True
    #: Interface obligation: input/output node names and specs unchanged.
    preserves_interface: bool = True
    #: Weight obligation: surviving nodes must reference the *same* weight
    #: arrays as their originals (not equal copies).  Declared by rebatch,
    #: where sharing is what makes batched clones bit-identical for free.
    shares_weights: bool = False

    def apply(self, graph: Graph) -> Rewrite | None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
